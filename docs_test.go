package cnnsfi_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links; images and reference-style
// links don't occur in this repo's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks fails on dead relative links anywhere in the top-level
// docs or docs/ — `make docs-check` runs exactly this test in CI, so
// renaming or moving a documented file without fixing its references
// breaks the build instead of the reader.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found; wrong working directory?")
	}
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // in-file anchors
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("found no relative links at all; the link scanner is broken")
	}
}
