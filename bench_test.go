// Package cnnsfi_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured values):
//
//	BenchmarkTableI_ResNet20Plan          Table I   (sample-size plans)
//	BenchmarkTableII_MobileNetV2Plan      Table II
//	BenchmarkTableIII_ResNet20Oracle      Table III (ResNet-20 row block)
//	BenchmarkTableIII_MobileNetV2Oracle   Table III (MobileNetV2 block)
//	BenchmarkFig1_VarianceCurve           Fig. 1 (left)
//	BenchmarkFig2_BitFlipDistance         Fig. 2
//	BenchmarkFig3_BitFrequencies          Fig. 3
//	BenchmarkFig4_DataAwareP              Fig. 4
//	BenchmarkFig5_PerLayerComparison      Fig. 5
//	BenchmarkFig6_ReplicatedSamples       Fig. 6
//	BenchmarkFig7_MobileNetV2PerLayer     Fig. 7
//	BenchmarkSmallCNN_Exhaustive*         the inference-based validation
//	BenchmarkAblation_*                   design-choice ablations
//	BenchmarkParallel_*                   serial vs shard-parallel runner
//	                                      (both evaluator families)
//	BenchmarkEngine_Overhead              engine vs legacy wrapper cost
//	BenchmarkEngine_Telemetry{Off,On}     the cost of full tracing vs
//	                                      the disabled-seam baseline
//
// Key quantities are attached as custom benchmark metrics
// (injections/op, avg_margin_pct, …), so `go test -bench=.` both
// regenerates and documents the numbers.
package cnnsfi_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/inject"
	"cnnsfi/internal/quantize"
	"cnnsfi/internal/stats"
	"cnnsfi/internal/telemetry"
	"cnnsfi/sfi"
)

// Lazily shared fixtures so the heavyweight exhaustive enumerations run
// once per `go test` process, not once per benchmark.
var (
	resnetOnce  sync.Once
	resnetNet   *sfi.Network
	resnetO     *sfi.Oracle
	resnetTruth []float64

	mbv2Once  sync.Once
	mbv2Net   *sfi.Network
	mbv2O     *sfi.Oracle
	mbv2Truth []float64

	smallOnce sync.Once
	smallInj  *sfi.Injector
	smallNet  *sfi.Network
)

func resnetFixture(b *testing.B) (*sfi.Network, *sfi.Oracle, []float64) {
	b.Helper()
	resnetOnce.Do(func() {
		net, err := sfi.BuildModel("resnet20", 1)
		if err != nil {
			panic(err)
		}
		resnetNet = net
		resnetO = sfi.NewOracle(net, sfi.OracleDefaults(3))
		resnetTruth = make([]float64, resnetO.Space().NumLayers())
		for l := range resnetTruth {
			resnetTruth[l] = resnetO.ExhaustiveLayerRate(l)
		}
	})
	return resnetNet, resnetO, resnetTruth
}

func mbv2Fixture(b *testing.B) (*sfi.Network, *sfi.Oracle, []float64) {
	b.Helper()
	mbv2Once.Do(func() {
		net, err := sfi.BuildModel("mobilenetv2", 1)
		if err != nil {
			panic(err)
		}
		mbv2Net = net
		mbv2O = sfi.NewOracle(net, sfi.OracleDefaults(3))
		mbv2Truth = make([]float64, mbv2O.Space().NumLayers())
		for l := range mbv2Truth {
			mbv2Truth[l] = mbv2O.ExhaustiveLayerRate(l)
		}
	})
	return mbv2Net, mbv2O, mbv2Truth
}

func smallFixture(b *testing.B) (*sfi.Network, *sfi.Injector) {
	b.Helper()
	smallOnce.Do(func() {
		smallNet = sfi.TrainableSmallCNN(1)
		data := sfi.SyntheticDataset(sfi.DatasetConfig{N: 260, Seed: 5, Size: 16, Noise: 0.1})
		trainSet, _ := data.Split(200)
		tr, err := sfi.NewTrainer(smallNet, 0.002, 0.9)
		if err != nil {
			panic(err)
		}
		tr.Fit(trainSet, 10)
		evalSet := sfi.SyntheticDataset(sfi.DatasetConfig{N: 8, Seed: 9, Size: 16, Noise: 0.1})
		smallInj = sfi.NewInjector(smallNet, evalSet)
	})
	return smallNet, smallInj
}

// BenchmarkTableI_ResNet20Plan regenerates the sample-size columns of
// Table I (the layer-wise and data-unaware columns match the paper
// digit-for-digit; see EXPERIMENTS.md).
func BenchmarkTableI_ResNet20Plan(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	b.ResetTimer()

	var total int64
	for i := 0; i < b.N; i++ {
		network := sfi.PlanNetworkWise(space, cfg)
		layer := sfi.PlanLayerWise(space, cfg)
		unaware := sfi.PlanDataUnaware(space, cfg)
		aware := sfi.PlanDataAware(space, cfg, analysis.P)
		total = network.TotalInjections() + layer.TotalInjections() +
			unaware.TotalInjections() + aware.TotalInjections()

		// Guard the paper-exact cells.
		if network.TotalInjections() != 16625 {
			b.Fatalf("network-wise n = %d, want 16,625", network.TotalInjections())
		}
		if layer.LayerInjections(0) != 10389 || unaware.LayerInjections(0) != 26272 {
			b.Fatal("Table I row 0 mismatch")
		}
	}
	b.ReportMetric(float64(total), "planned_injections")
}

// BenchmarkTableII_MobileNetV2Plan regenerates Table II.
func BenchmarkTableII_MobileNetV2Plan(b *testing.B) {
	net, _, _ := mbv2Fixture(b)
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	b.ResetTimer()

	for i := 0; i < b.N; i++ {
		network := sfi.PlanNetworkWise(space, cfg)
		if network.TotalInjections() != 16639 {
			b.Fatalf("network-wise n = %d, want 16,639", network.TotalInjections())
		}
		layer := sfi.PlanLayerWise(space, cfg)
		aware := sfi.PlanDataAware(space, cfg, analysis.P)
		b.ReportMetric(float64(layer.TotalInjections()), "layerwise_n")
		b.ReportMetric(float64(aware.TotalInjections()), "dataaware_n")
	}
	if space.Total() != 141029376 {
		b.Fatalf("population = %d, want 141,029,376", space.Total())
	}
}

// tableIII executes all four campaigns against exhaustive truth and
// reports the Table III row metrics for the named approach.
func tableIII(b *testing.B, net *sfi.Network, ev sfi.Evaluator, truth []float64) {
	space := ev.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	plans := []*sfi.Plan{
		sfi.PlanNetworkWise(space, cfg),
		sfi.PlanLayerWise(space, cfg),
		sfi.PlanDataUnaware(space, cfg),
		sfi.PlanDataAware(space, cfg, analysis.P),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			cmp := sfi.Compare(sfi.Run(ev, plan, int64(i)), truth)
			b.ReportMetric(cmp.AvgMargin*100, plan.Approach.String()+"_avg_margin_pct")
		}
	}
}

// BenchmarkTableIII_ResNet20Oracle regenerates the ResNet-20 block of
// Table III on the full 17.2M-fault population.
func BenchmarkTableIII_ResNet20Oracle(b *testing.B) {
	net, o, truth := resnetFixture(b)
	tableIII(b, net, o, truth)
}

// BenchmarkTableIII_MobileNetV2Oracle regenerates the MobileNetV2 block
// of Table III on the full 141M-fault population.
func BenchmarkTableIII_MobileNetV2Oracle(b *testing.B) {
	net, o, truth := mbv2Fixture(b)
	tableIII(b, net, o, truth)
}

// BenchmarkFig1_VarianceCurve regenerates the Bernoulli variance curve.
func BenchmarkFig1_VarianceCurve(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		for p := 0.0; p <= 1.0; p += 0.01 {
			acc += stats.BernoulliVariance(p)
		}
	}
	_ = acc
}

// BenchmarkFig2_BitFlipDistance regenerates the per-bit distance example.
func BenchmarkFig2_BitFlipDistance(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		for bit := 0; bit < 32; bit++ {
			acc += fp.FlipDistance32(0.0417, bit)
		}
	}
	_ = acc
}

// BenchmarkFig3_BitFrequencies regenerates the f0/f1 scan over the
// ResNet-20 weights.
func BenchmarkFig3_BitFrequencies(b *testing.B) {
	net, _, _ := resnetFixture(b)
	weights := net.AllWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := dataaware.AnalyzeFP32(weights)
		if a.F1[30] > 0.001 {
			b.Fatal("exponent MSB should be almost never 1")
		}
	}
}

// BenchmarkFig4_DataAwareP regenerates p(i) for both CNNs.
func BenchmarkFig4_DataAwareP(b *testing.B) {
	rNet, _, _ := resnetFixture(b)
	mNet, _, _ := mbv2Fixture(b)
	rw, mw := rNet.AllWeights(), mNet.AllWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := dataaware.AnalyzeFP32(rw)
		ma := dataaware.AnalyzeFP32(mw)
		if ra.MostCriticalBit() != 30 || ma.MostCriticalBit() != 30 {
			b.Fatal("exponent MSB must be most critical on both CNNs")
		}
	}
}

// BenchmarkFig5_PerLayerComparison regenerates the all-layer ResNet-20
// comparison (layer-wise and data-aware vs exhaustive).
func BenchmarkFig5_PerLayerComparison(b *testing.B) {
	net, o, truth := resnetFixture(b)
	space := o.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	lw := sfi.PlanLayerWise(space, cfg)
	da := sfi.PlanDataAware(space, cfg, analysis.P)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sfi.Compare(sfi.Run(o, lw, int64(i)), truth)
		c := sfi.Compare(sfi.Run(o, da, int64(i)), truth)
		b.ReportMetric(float64(a.CoveredLayers), "layerwise_covered")
		b.ReportMetric(float64(c.CoveredLayers), "dataaware_covered")
	}
}

// BenchmarkFig6_ReplicatedSamples regenerates the S0-S9 replication for
// ResNet-20 layer 0 under all four approaches.
func BenchmarkFig6_ReplicatedSamples(b *testing.B) {
	net, o, truth := resnetFixture(b)
	space := o.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	plans := []*sfi.Plan{
		sfi.PlanNetworkWise(space, cfg),
		sfi.PlanLayerWise(space, cfg),
		sfi.PlanDataUnaware(space, cfg),
		sfi.PlanDataAware(space, cfg, analysis.P),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			reps := sfi.ReplicatedEstimates(o, plan, 0, 10)
			covered := 0
			for _, est := range reps {
				if est.Covers(cfg, truth[0]) {
					covered++
				}
			}
			b.ReportMetric(float64(covered), plan.Approach.String()+"_covered_of_10")
		}
	}
}

// BenchmarkFig7_MobileNetV2PerLayer regenerates the MobileNetV2
// network-wise vs data-aware per-layer comparison.
func BenchmarkFig7_MobileNetV2PerLayer(b *testing.B) {
	net, o, truth := mbv2Fixture(b)
	space := o.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	nw := sfi.PlanNetworkWise(space, cfg)
	da := sfi.PlanDataAware(space, cfg, analysis.P)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sfi.Compare(sfi.Run(o, nw, int64(i)), truth)
		c := sfi.Compare(sfi.Run(o, da, int64(i)), truth)
		b.ReportMetric(a.AvgMargin*100, "networkwise_avg_margin_pct")
		b.ReportMetric(c.AvgMargin*100, "dataaware_avg_margin_pct")
	}
}

// BenchmarkSmallCNN_ExhaustiveLayer0 measures the inference-based
// exhaustive campaign over SmallCNN's first layer (6,912 real
// fault-injection experiments with prefix-cached re-inference).
func BenchmarkSmallCNN_ExhaustiveLayer0(b *testing.B) {
	_, inj := smallFixture(b)
	space := inj.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var critical int64
		n := space.LayerTotal(0)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(0, j)) {
				critical++
			}
		}
		b.ReportMetric(float64(critical)/float64(n)*100, "critical_pct")
	}
}

// BenchmarkSmallCNN_ExhaustiveLayer0Batched reruns the exhaustive
// layer-0 campaign on the batched evaluation path — the whole 8-image
// evaluation set evaluated as one chunk per experiment, so the graph
// walk and patch gather are paid once per fault instead of once per
// image. critical_pct must match BenchmarkSmallCNN_ExhaustiveLayer0
// exactly: batching changes wall time only, never a verdict.
func BenchmarkSmallCNN_ExhaustiveLayer0Batched(b *testing.B) {
	net, root := smallFixture(b)
	inj := root.Clone() // the fixture injector is shared; batch a private clone
	inj.SetBatchSize(8)
	space := inj.Space()
	// Warm with one unmasked experiment so the lazy batched golden state
	// and the arena are built before timing starts.
	w := net.WeightLayers()[0].WeightData()[0]
	warm := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1}
	if fp.Bit32(w, 0) {
		warm.Model = faultmodel.StuckAt0
	}
	inj.IsCritical(warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var critical int64
		n := space.LayerTotal(0)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(0, j)) {
				critical++
			}
		}
		b.ReportMetric(float64(critical)/float64(n)*100, "critical_pct")
	}
}

// BenchmarkIsCritical_Masked prices one masked-fault experiment on the
// real-inference injector: a stuck-at whose target bit already holds
// the stuck value, which the short-circuit classifies without running
// any inference. Pair with BenchmarkIsCritical_Unmasked for the
// speedup, and with allocs/op = 0 as the allocation-free evidence.
func BenchmarkIsCritical_Masked(b *testing.B) {
	net, inj := smallFixture(b)
	w := net.WeightLayers()[0].WeightData()[0]
	// Bit 0 of the first weight is either 0 or 1; pick the stuck-at
	// variant that matches so the fault is masked by construction.
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt0}
	if fp.Bit32(w, 0) {
		f.Model = faultmodel.StuckAt1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inj.IsCritical(f) {
			b.Fatal("masked fault classified critical")
		}
	}
}

// BenchmarkIsCritical_Unmasked prices one full fault-injection
// experiment through the arena-backed hot path: the complementary
// (unmasked, benign) stuck-at on the same mantissa LSB, re-running the
// whole-network suffix over every evaluation image. allocs/op is the
// steady-state allocation count of a real experiment.
func BenchmarkIsCritical_Unmasked(b *testing.B) {
	net, inj := smallFixture(b)
	w := net.WeightLayers()[0].WeightData()[0]
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1}
	if fp.Bit32(w, 0) {
		f.Model = faultmodel.StuckAt0
	}
	inj.IsCritical(f) // warm the arena so b.N=1 runs are steady-state too
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.IsCritical(f)
	}
}

// BenchmarkSmallCNN_StatisticalVsExhaustive runs the four statistical
// campaigns on the trained SmallCNN with real inference, restricted to
// layer 0, and reports each estimate (the inference-substrate
// counterpart of Fig. 6).
func BenchmarkSmallCNN_StatisticalVsExhaustive(b *testing.B) {
	net, inj := smallFixture(b)
	space := inj.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	keepLayer0 := func(p *sfi.Plan) *sfi.Plan {
		var subpops []sfi.Subpopulation
		for _, s := range p.Subpops {
			if s.Layer == 0 || s.Layer == -1 {
				subpops = append(subpops, s)
			}
		}
		out := *p
		out.Subpops = subpops
		return &out
	}
	plans := []*sfi.Plan{
		sfi.PlanNetworkWise(space, cfg),
		keepLayer0(sfi.PlanLayerWise(space, cfg)),
		keepLayer0(sfi.PlanDataUnaware(space, cfg)),
		keepLayer0(sfi.PlanDataAware(space, cfg, analysis.P)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plan := range plans {
			res := sfi.Run(inj, plan, int64(i))
			est := res.LayerEstimate(0)
			b.ReportMetric(est.PHat()*100, plan.Approach.String()+"_estimate_pct")
		}
	}
}

// BenchmarkAblation_RoundedVsExactZ quantifies the paper's rounded
// z = 2.58 convention against the exact 2.5758 quantile.
func BenchmarkAblation_RoundedVsExactZ(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := sfi.StuckAtSpace(net)
	rounded := sfi.DefaultConfig()
	exact := sfi.DefaultConfig()
	exact.UseExactZ = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nr := sfi.PlanLayerWise(space, rounded).TotalInjections()
		ne := sfi.PlanLayerWise(space, exact).TotalInjections()
		b.ReportMetric(float64(nr), "rounded_n")
		b.ReportMetric(float64(ne), "exact_n")
		if ne >= nr {
			b.Fatal("exact z (2.5758 < 2.58) must plan slightly fewer injections")
		}
	}
}

// BenchmarkAblation_GammaSweep sweeps the data-aware sharpness exponent:
// γ = 1 is the literal linear Eq. 5, γ = 2 the calibrated default.
func BenchmarkAblation_GammaSweep(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()
	weights := net.AllWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gamma := range []float64{1, 2, 3} {
			a := dataaware.AnalyzeGamma(weights, fp.FP32, gamma)
			plan := sfi.PlanDataAware(space, cfg, a.P)
			b.ReportMetric(float64(plan.TotalInjections()), "gamma_n")
		}
	}
}

// BenchmarkAblation_ErrorMarginSweep shows how the campaign cost scales
// with the requested error margin.
func BenchmarkAblation_ErrorMarginSweep(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := sfi.StuckAtSpace(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range []float64{0.005, 0.01, 0.02, 0.05} {
			cfg := sfi.DefaultConfig()
			cfg.ErrorMargin = e
			b.ReportMetric(float64(sfi.PlanLayerWise(space, cfg).TotalInjections()), "layerwise_n")
		}
	}
}

// BenchmarkAblation_SamplingWithoutReplacement measures the Floyd
// sampler at campaign scale.
func BenchmarkAblation_SamplingWithoutReplacement(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := faultmodel.NewStuckAt(net.LayerParamCounts(), 32)
	_ = space
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sfi.DefaultConfig()
		n := cfg.SampleSize(space.Total())
		b.ReportMetric(float64(n), "n")
	}
}

// BenchmarkExtension_INT8DataAware runs the data-aware analysis on the
// INT8-quantized ResNet-20 weights (the "different data representations"
// extension): the integer staircase spreads criticality across bits, so
// the data-aware saving shrinks relative to FP32.
func BenchmarkExtension_INT8DataAware(b *testing.B) {
	net, _, _ := resnetFixture(b)
	weights := net.AllWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := quantize.Analyze(weights)
		var sum float64
		for _, p := range a.P {
			sum += p * (1 - p)
		}
		b.ReportMetric(sum/(quantize.Bits*0.25), "variance_ratio")
	}
}

// BenchmarkExtension_ActivationFaults runs a layer-wise statistical
// campaign over the transient activation-fault universe of the trained
// SmallCNN with real inference.
func BenchmarkExtension_ActivationFaults(b *testing.B) {
	net, _ := smallFixture(b)
	evalSet := sfi.SyntheticDataset(sfi.DatasetConfig{N: 4, Seed: 9, Size: 16, Noise: 0.1})
	act := sfi.NewActivationInjector(net, evalSet)
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = 0.05 // keep the inference budget modest
	plan := sfi.PlanLayerWise(act.Space(), cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sfi.Run(act, plan, int64(i))
		for l := 0; l < act.Space().NumLayers(); l++ {
			est := res.LayerEstimate(l)
			b.ReportMetric(est.PHat()*100, fmt.Sprintf("layer%d_critical_pct", l))
		}
	}
}

// BenchmarkExtension_ResNetFamilyPlans scales the Table I planning
// across the CIFAR ResNet family (the "different architectures"
// direction of the conclusions).
func BenchmarkExtension_ResNetFamilyPlans(b *testing.B) {
	cfg := sfi.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"resnet20", "resnet32", "resnet44", "resnet56"} {
			net, err := sfi.BuildModel(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			space := sfi.StuckAtSpace(net)
			analysis := sfi.AnalyzeWeights(net.AllWeights())
			aware := sfi.PlanDataAware(space, cfg, analysis.P)
			b.ReportMetric(aware.InjectedFraction()*100, name+"_injected_pct")
		}
	}
}

// BenchmarkAblation_CriterionChoice compares the SDC and accuracy-drop
// criticality criteria on the trained SmallCNN with real inference.
func BenchmarkAblation_CriterionChoice(b *testing.B) {
	_, inj := smallFixture(b)
	space := inj.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, crit := range []inject.Criterion{inject.SDC, inject.AccuracyDrop} {
			inj.Criterion = crit
			critical := 0
			const probes = 500
			n := space.LayerTotal(0)
			for k := 0; k < probes; k++ {
				j := int64(k) * (n - 1) / (probes - 1)
				if inj.IsCritical(space.LayerFault(0, j)) {
					critical++
				}
			}
			b.ReportMetric(float64(critical)/probes*100, crit.String()+"_critical_pct")
		}
		inj.Criterion = inject.SDC
	}
}

// benchSerialVsParallel measures the serial Run against the
// shard-parallel RunParallel (2 and 4 workers) on the same plan, as
// sub-benchmarks, so the ns/op ratio is the wall-clock speedup
// (EXPERIMENTS.md records the measured ratios; on a single-core host
// the runners tie, on an n-core host the network-wise plan — one
// stratum, previously unparallelizable — scales with min(n, workers)).
// It first asserts the results are bit-identical: parallelism must
// never change the statistics it accelerates.
func benchSerialVsParallel(b *testing.B, ev sfi.Evaluator, plan *sfi.Plan) {
	serial := sfi.Run(ev, plan, 0)
	parallel := sfi.RunParallel(ev, plan, 0, 4)
	for i := range serial.Estimates {
		if parallel.Estimates[i] != serial.Estimates[i] {
			b.Fatalf("stratum %d: parallel result diverged from serial", i)
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sfi.Run(ev, plan, int64(i))
		}
	})
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sfi.RunParallel(ev, plan, int64(i), w)
			}
		})
	}
}

// inferenceBenchConfig relaxes the error margin to 2% for the
// inference-family parallel benchmarks: real forward passes are ~10³×
// the cost of an oracle verdict, and the speedup ratio is margin-
// independent.
func inferenceBenchConfig() sfi.Config {
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = 0.02
	return cfg
}

func BenchmarkParallel_NetworkWiseOracle(b *testing.B) {
	_, o, _ := resnetFixture(b)
	benchSerialVsParallel(b, o, sfi.PlanNetworkWise(o.Space(), sfi.DefaultConfig()))
}

func BenchmarkParallel_LayerWiseOracle(b *testing.B) {
	_, o, _ := resnetFixture(b)
	benchSerialVsParallel(b, o, sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig()))
}

func BenchmarkParallel_DataAwareOracle(b *testing.B) {
	net, o, _ := resnetFixture(b)
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	benchSerialVsParallel(b, o, sfi.PlanDataAware(o.Space(), sfi.DefaultConfig(), analysis.P))
}

func BenchmarkParallel_NetworkWiseInference(b *testing.B) {
	_, inj := smallFixture(b)
	benchSerialVsParallel(b, inj, sfi.PlanNetworkWise(inj.Space(), inferenceBenchConfig()))
}

func BenchmarkParallel_LayerWiseInference(b *testing.B) {
	_, inj := smallFixture(b)
	benchSerialVsParallel(b, inj, sfi.PlanLayerWise(inj.Space(), inferenceBenchConfig()))
}

func BenchmarkParallel_DataAwareInference(b *testing.B) {
	net, inj := smallFixture(b)
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	benchSerialVsParallel(b, inj, sfi.PlanDataAware(inj.Space(), inferenceBenchConfig(), analysis.P))
}

// BenchmarkEngine_Overhead prices the unified campaign engine against
// the legacy entry points it replaced. Run/RunParallel are now thin
// wrappers over NewEngine(...).Execute, so "wrapper" vs "engine" at the
// same worker count isolates pure wrapper cost (one allocation + a
// context plumb) — the ns/op pairs should tie within noise, which is
// the evidence that unifying the runners cost nothing
// (EXPERIMENTS.md records the measured ratios). Oracle layer-wise plan:
// big enough to amortize setup, cheap enough for -benchtime defaults.
func BenchmarkEngine_Overhead(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	ctx := context.Background()
	b.Run("wrapper/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sfi.Run(o, plan, int64(i))
		}
	})
	b.Run("engine/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sfi.NewEngine(sfi.WithWorkers(1)).Execute(ctx, o, plan, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wrapper/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sfi.RunParallel(o, plan, int64(i), 4)
		}
	})
	b.Run("engine/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sfi.NewEngine(sfi.WithWorkers(4)).Execute(ctx, o, plan, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngine_TelemetryOff prices the engine with every telemetry
// seam left nil — the baseline the telemetry layer must not move. Pair
// with BenchmarkEngine_TelemetryOn: the Off/On ns/op ratio is the whole
// cost of full tracing (JSONL trace + progress + per-experiment latency
// histogram), and Off must match BenchmarkEngine_Overhead's
// engine/serial case exactly, since a disabled seam is just a nil check.
func BenchmarkEngine_TelemetryOff(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfi.NewEngine(sfi.WithWorkers(1)).Execute(ctx, o, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_TelemetryOn runs the identical campaign with the full
// telemetry stack attached: a Tracer recording JSONL to io.Discard,
// progress streaming through the same tracer, and the experiment
// latency histogram on the oracle's verdict path.
func BenchmarkEngine_TelemetryOn(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	var hist sfi.LatencyHistogram
	o.SetLatencyHistogram(&hist)
	defer o.SetLatencyHistogram(nil) // the fixture is shared across benchmarks
	tr := telemetry.NewTracer(io.Discard, 1024)
	defer tr.Close()
	sink, prog := tr.Sink("bench"), tr.Progress("bench")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sfi.NewEngine(
			sfi.WithWorkers(1),
			sfi.WithTrace(sink),
			sfi.WithProgress(prog),
			sfi.WithProgressInterval(8192),
		)
		if _, err := eng.Execute(ctx, o, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_SupervisionOff prices the engine with campaign
// supervision disabled — the default, where the supervised() check is a
// plain field comparison and every experiment runs on the classic
// allocation-free path. This is the baseline the supervision layer must
// not move; it should match BenchmarkEngine_TelemetryOff.
func BenchmarkEngine_SupervisionOff(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfi.NewEngine(sfi.WithWorkers(1)).Execute(ctx, o, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_SupervisionOn runs the identical campaign under panic
// isolation with retries enabled (no watchdog): each experiment executes
// inside a recover-protected closure. The Off/On ns/op ratio is the cost
// of supervision on a healthy evaluator.
func BenchmarkEngine_SupervisionOn(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sfi.NewEngine(sfi.WithWorkers(1), sfi.WithMaxRetries(2))
		if _, err := eng.Execute(ctx, o, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_SupervisionWatchdog adds the per-experiment deadline:
// every experiment is handed to a persistent lane goroutine and raced
// against a timer, the most expensive supervision configuration.
func BenchmarkEngine_SupervisionWatchdog(b *testing.B) {
	_, o, _ := resnetFixture(b)
	plan := sfi.PlanLayerWise(o.Space(), sfi.DefaultConfig())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sfi.NewEngine(sfi.WithWorkers(1), sfi.WithMaxRetries(2),
			sfi.WithExperimentTimeout(time.Minute))
		if _, err := eng.Execute(ctx, o, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineBatched runs one layer-wise inference campaign per
// iteration on a private clone of the fixture injector at the given
// batch size, under the grouped shard schedule sfirun's -batch flag
// enables (1 = the unbatched baseline; 32 exceeds the 8-image
// evaluation set, so every experiment runs as one full chunk). The
// Result is bit-identical across all three sizes — the Batched1 /
// Batched8 / Batched32 ns/op ratios are pure wall-time effects of
// batching.
func benchEngineBatched(b *testing.B, batch int) {
	_, root := smallFixture(b)
	inj := root.Clone()
	inj.SetBatchSize(batch)
	plan := sfi.PlanLayerWise(inj.Space(), inferenceBenchConfig())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sfi.NewEngine(sfi.WithWorkers(1), sfi.WithGroupedEvaluation(true))
		if _, err := eng.Execute(ctx, inj, plan, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_Batched1(b *testing.B)  { benchEngineBatched(b, 1) }
func BenchmarkEngine_Batched8(b *testing.B)  { benchEngineBatched(b, 8) }
func BenchmarkEngine_Batched32(b *testing.B) { benchEngineBatched(b, 32) }

// BenchmarkIsCritical_Grouped prices a grouped run of experiments: the
// 64 stuck-at faults of one deepest-layer weight evaluated back to
// back, exactly the order a WithGroupedEvaluation shard produces. Each
// op is the whole 64-fault group; consecutive experiments re-execute
// the same short suffix from the same golden prefix, so the cached
// activations and the mutated weight's cache lines stay hot.
func BenchmarkIsCritical_Grouped(b *testing.B) {
	_, inj := smallFixture(b)
	space := inj.Space()
	layer := space.NumLayers() - 1 // deepest layer: longest shared prefix
	faults := make([]faultmodel.Fault, 0, 64)
	for bit := 0; bit < 32; bit++ {
		faults = append(faults,
			faultmodel.Fault{Layer: layer, Param: 0, Bit: bit, Model: faultmodel.StuckAt0},
			faultmodel.Fault{Layer: layer, Param: 0, Bit: bit, Model: faultmodel.StuckAt1})
	}
	inj.IsCritical(faults[1]) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			inj.IsCritical(f)
		}
	}
}

// BenchmarkAblation_PerLayerDataAware compares the paper's network-wide
// p(i) against the per-layer refinement p(i, l): matching each layer's
// own weight distribution shifts the injection budget between layers.
func BenchmarkAblation_PerLayerDataAware(b *testing.B) {
	net, _, _ := resnetFixture(b)
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()
	global := sfi.AnalyzeWeights(net.AllWeights())
	perLayer := sfi.AnalyzeWeightsPerLayer(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := sfi.PlanDataAware(space, cfg, global.P)
		pl := sfi.PlanDataAwarePerLayer(space, cfg, perLayer.P())
		b.ReportMetric(float64(g.TotalInjections()), "global_n")
		b.ReportMetric(float64(pl.TotalInjections()), "perlayer_n")
	}
}

// BenchmarkExtension_MBUWidthSweep lifts the paper's single-fault
// assumption: bursts of adjacent bit-flips (multi-bit upsets) become
// increasingly critical as the burst reaches the high exponent bits.
func BenchmarkExtension_MBUWidthSweep(b *testing.B) {
	_, inj := smallFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, width := range []int{1, 2, 3} {
			critical := 0
			const probes = 100
			for k := 0; k < probes; k++ {
				seed := faultmodel.Fault{
					Layer: 2, Param: k * 11 % 1152, Bit: 28,
					Model: faultmodel.BitFlip,
				}
				if inj.IsCriticalMulti(inject.AdjacentMBU(seed, width, fp.Bits32)) {
					critical++
				}
			}
			b.ReportMetric(float64(critical), fmt.Sprintf("width%d_critical_of_100", width))
		}
	}
}
