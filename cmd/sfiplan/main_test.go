package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestCLIPlanGolden pins the Table I/II rendering — every plan is a pure
// function of (model weights, e, confidence), so the output is exact.
func TestCLIPlanGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"smallcnn_default", []string{"-model", "smallcnn"}, "plan_smallcnn.stdout.golden"},
		{"smallcnn_exact_z", []string{"-model", "smallcnn", "-e", "0.05", "-confidence", "0.95", "-exact-z"}, "plan_smallcnn_exactz.stdout.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 0 {
				t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
			}
			if stderr != "" {
				t.Errorf("stderr not empty: %q", stderr)
			}
			checkGolden(t, tc.golden, stdout)
		})
	}
}

// TestCLIFlagValidation pins the failure modes: exit code 1 and a single
// "sfiplan: ..." line on stderr.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown_model", []string{"-model", "nosuch"}, "nosuch"},
		{"bad_margin", []string{"-e", "1.5"}, "-e must be inside (0,1)"},
		{"bad_confidence", []string{"-confidence", "0"}, "-confidence must be inside (0,1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if stdout != "" {
				t.Errorf("stdout not empty: %q", stdout)
			}
			if !strings.HasPrefix(stderr, "sfiplan: ") || strings.Count(stderr, "\n") != 1 {
				t.Errorf("want a single 'sfiplan: ...' line, got %q", stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, tc.wantErr)
			}
		})
	}
}

func TestCLIBadFlagSyntax(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-e", "lots")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}
