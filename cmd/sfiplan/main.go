// Command sfiplan prints the statistical fault-injection campaign plans
// of the paper's Tables I and II for a registered model: the per-layer
// exhaustive population and the sample sizes of the four SFI approaches
// (network-wise, layer-wise, data-unaware, data-aware).
//
// Usage:
//
//	sfiplan -model resnet20            # Table I
//	sfiplan -model mobilenetv2         # Table II
//	sfiplan -model resnet20 -e 0.005 -confidence 0.95 -exact-z
package main

import (
	"flag"
	"fmt"
	"os"

	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	model := flag.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := flag.Int64("seed", 1, "weight-generation seed")
	e := flag.Float64("e", 0.01, "error margin")
	confidence := flag.Float64("confidence", 0.99, "confidence level")
	exactZ := flag.Bool("exact-z", false, "use the exact normal quantile instead of the paper's rounded convention (2.58)")
	flag.Parse()

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = *e
	cfg.Confidence = *confidence
	cfg.UseExactZ = *exactZ

	space := sfi.StuckAtSpace(net)
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	network := sfi.PlanNetworkWise(space, cfg)
	layer := sfi.PlanLayerWise(space, cfg)
	unaware := sfi.PlanDataUnaware(space, cfg)
	aware := sfi.PlanDataAware(space, cfg, analysis.P)

	title := fmt.Sprintf("%s: Exhaustive vs Statistical FIs (e=%.2g%%, confidence=%.3g, t=%.4g)",
		net.NetName, *e*100, *confidence, cfg.Z())
	tab := report.NewTable(title,
		"Layer", "Parameters", "Exhaustive FI",
		"Network-wise [9]", "Layer-wise", "Data-unaware (p==0.5)", "Data-aware (p!=0.5)")

	params := net.LayerParamCounts()
	for l := 0; l < space.NumLayers(); l++ {
		netWiseCell := "-" // the global stratum does not target layers
		tab.AddRow(l, params[l], space.LayerTotal(l),
			netWiseCell,
			layer.LayerInjections(l),
			unaware.LayerInjections(l),
			aware.LayerInjections(l))
	}
	tab.AddRow("Total", net.TotalWeights(), space.Total(),
		network.TotalInjections(),
		layer.TotalInjections(),
		unaware.TotalInjections(),
		aware.TotalInjections())
	tab.Render(os.Stdout)

	fmt.Printf("\nInjected fraction of the population:\n")
	fmt.Printf("  network-wise  %8s\n", report.Pct(network.InjectedFraction()))
	fmt.Printf("  layer-wise    %8s\n", report.Pct(layer.InjectedFraction()))
	fmt.Printf("  data-unaware  %8s\n", report.Pct(unaware.InjectedFraction()))
	fmt.Printf("  data-aware    %8s\n", report.Pct(aware.InjectedFraction()))
}
