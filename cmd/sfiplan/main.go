// Command sfiplan prints the statistical fault-injection campaign plans
// of the paper's Tables I and II for a registered model: the per-layer
// exhaustive population and the sample sizes of the four SFI approaches
// (network-wise, layer-wise, data-unaware, data-aware).
//
// Usage:
//
//	sfiplan -model resnet20            # Table I
//	sfiplan -model mobilenetv2         # Table II
//	sfiplan -model resnet20 -e 0.005 -confidence 0.95 -exact-z
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind main, parameterised for testing: it
// parses args, writes the plan tables to stdout and diagnostics to
// stderr, and returns the process exit code. Bad input yields one
// actionable line on stderr and exit code 1 — the CLI never panics.
func run(_ context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfiplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := fs.Int64("seed", 1, "weight-generation seed")
	e := fs.Float64("e", 0.01, "error margin")
	confidence := fs.Float64("confidence", 0.99, "confidence level")
	exactZ := fs.Bool("exact-z", false, "use the exact normal quantile instead of the paper's rounded convention (2.58)")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error + usage
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sfiplan: "+format+"\n", args...)
		return 1
	}
	if *e <= 0 || *e >= 1 {
		return fail("-e must be inside (0,1) (got %v); the paper uses 0.01", *e)
	}
	if *confidence <= 0 || *confidence >= 1 {
		return fail("-confidence must be inside (0,1) (got %v); the paper uses 0.99", *confidence)
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		return fail("unknown model %q; available: %v", *model, sfi.ModelNames())
	}
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = *e
	cfg.Confidence = *confidence
	cfg.UseExactZ = *exactZ

	space := sfi.StuckAtSpace(net)
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	network := sfi.PlanNetworkWise(space, cfg)
	layer := sfi.PlanLayerWise(space, cfg)
	unaware := sfi.PlanDataUnaware(space, cfg)
	aware := sfi.PlanDataAware(space, cfg, analysis.P)

	title := fmt.Sprintf("%s: Exhaustive vs Statistical FIs (e=%.2g%%, confidence=%.3g, t=%.4g)",
		net.NetName, *e*100, *confidence, cfg.Z())
	tab := report.NewTable(title,
		"Layer", "Parameters", "Exhaustive FI",
		"Network-wise [9]", "Layer-wise", "Data-unaware (p==0.5)", "Data-aware (p!=0.5)")

	params := net.LayerParamCounts()
	for l := 0; l < space.NumLayers(); l++ {
		netWiseCell := "-" // the global stratum does not target layers
		tab.AddRow(l, params[l], space.LayerTotal(l),
			netWiseCell,
			layer.LayerInjections(l),
			unaware.LayerInjections(l),
			aware.LayerInjections(l))
	}
	tab.AddRow("Total", net.TotalWeights(), space.Total(),
		network.TotalInjections(),
		layer.TotalInjections(),
		unaware.TotalInjections(),
		aware.TotalInjections())
	tab.Render(stdout)

	fmt.Fprintf(stdout, "\nInjected fraction of the population:\n")
	fmt.Fprintf(stdout, "  network-wise  %8s\n", report.Pct(network.InjectedFraction()))
	fmt.Fprintf(stdout, "  layer-wise    %8s\n", report.Pct(layer.InjectedFraction()))
	fmt.Fprintf(stdout, "  data-unaware  %8s\n", report.Pct(unaware.InjectedFraction()))
	fmt.Fprintf(stdout, "  data-aware    %8s\n", report.Pct(aware.InjectedFraction()))
	return 0
}
