// Command sfirun executes statistical fault-injection campaigns and
// reproduces the paper's evaluation artifacts:
//
//	-table3          all four approaches vs exhaustive (Table III)
//	-fig5            per-layer exhaustive vs layer-wise vs data-aware
//	-fig6 -layer 0   ten replicated samples per approach for one layer
//	-fig7            per-layer network-wise vs data-aware vs exhaustive
//
// The -substrate flag selects the evaluator: "oracle" (full-scale
// simulated ground truth, default; see DESIGN.md for the substitution
// argument) or "inference" (real forward-pass injection; only feasible
// for -model smallcnn).
//
// Campaigns run through the unified engine, shard-parallel on all cores
// by default; -workers 1 forces serial evaluation. The same -run-seed
// produces bit-identical results at any worker count — and across
// interruption: with -checkpoint set, a campaign killed by -timeout or
// Ctrl-C persists its per-stratum tallies and a later invocation with
// -resume continues where it left off, ending in the exact Result an
// uninterrupted run would have produced. -progress streams per-stratum
// completion, running critical tallies, injections/sec, and the
// evaluator's experiment breakdown (masked-fault skips vs full
// evaluations, SDC early exits, scratch-arena bytes) to stderr;
// -early-stop halts each stratum once its achieved margin (Eq. 3
// inverted at the observed proportion) reaches the target.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/report"
	"cnnsfi/internal/telemetry"
	"cnnsfi/sfi"
)

func main() {
	// SIGTERM is the orderly-shutdown signal containers receive; both it
	// and Ctrl-C cancel the context so campaigns checkpoint before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the whole CLI behind main, parameterised for testing: it
// parses args, executes the requested campaigns, writes artifacts to
// stdout and diagnostics to stderr, and returns the process exit code.
// Bad input yields one actionable line on stderr and exit code 1 — the
// CLI never panics.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfirun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := fs.Int64("seed", 1, "weight-generation seed")
	oracleSeed := fs.Int64("oracle-seed", 3, "ground-truth labelling seed")
	runSeed := fs.Int64("run-seed", 0, "sampling seed")
	substrate := fs.String("substrate", "oracle", "evaluator: oracle or inference")
	images := fs.Int("images", 8, "evaluation-set size for the inference substrate")
	batch := fs.Int("batch", 0, "images per batched forward pass on the inference substrate (0 or 1 = unbatched); verdicts are bit-identical at every batch size")
	margin := fs.Float64("margin", 0.01, "requested error margin e, in (0,1)")
	confidence := fs.Float64("confidence", 0.99, "confidence level, in (0,1)")
	table3 := fs.Bool("table3", false, "print Table III")
	fig5 := fs.Bool("fig5", false, "print Fig. 5 series")
	fig6 := fs.Bool("fig6", false, "print Fig. 6 series")
	fig7 := fs.Bool("fig7", false, "print Fig. 7 series")
	layer := fs.Int("layer", 0, "layer for -fig6")
	replicas := fs.Int("replicas", 10, "replicated samples for -fig6")
	workers := fs.Int("workers", 0, "concurrent evaluation workers (0 = GOMAXPROCS, 1 = serial; both substrates — the inference injector clones per-worker weights)")
	progress := fs.Bool("progress", false, "stream campaign progress to stderr")
	checkpoint := fs.String("checkpoint", "", "checkpoint path prefix; campaigns persist per-stratum tallies there (one file per approach)")
	resume := fs.Bool("resume", false, "resume campaigns from existing -checkpoint files")
	timeout := fs.Duration("timeout", 0, "abort campaigns after this duration (0 = none); with -checkpoint, progress is preserved")
	earlyStop := fs.Float64("early-stop", -1, "stop each stratum at this achieved margin (0 = the requested -margin; negative = disabled)")
	expTimeout := fs.Duration("experiment-timeout", 0, "per-experiment watchdog deadline (0 = none); a timed-out experiment is retried under -max-retries, then quarantined")
	maxRetries := fs.Int("max-retries", -1, "retries per failing (panicking or timed-out) experiment before quarantine; negative disables campaign supervision entirely")
	traceFile := fs.String("trace", "", "record structured campaign trace events (JSONL) to this file; replay with sfitrace")
	traceSummary := fs.Bool("trace-summary", false, "after the campaigns finish, replay the -trace file and print a summary to stderr")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus metrics on /metrics and profiling on /debug/pprof at this address while campaigns run (e.g. localhost:9090)")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error + usage
	}

	// Validate inputs up-front with actionable one-line errors.
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sfirun: "+format+"\n", args...)
		return 1
	}
	if *workers < 0 {
		return fail("-workers must be >= 0 (got %d); 0 selects all cores", *workers)
	}
	if *margin <= 0 || *margin >= 1 {
		return fail("-margin must be inside (0,1) (got %v); the paper uses 0.01", *margin)
	}
	if *confidence <= 0 || *confidence >= 1 {
		return fail("-confidence must be inside (0,1) (got %v); the paper uses 0.99", *confidence)
	}
	if *earlyStop >= 1 {
		return fail("-early-stop must be below 1 (got %v); it is an error margin, not a percentage", *earlyStop)
	}
	if *resume && *checkpoint == "" {
		return fail("-resume needs -checkpoint to know where the saved campaign lives")
	}
	if *timeout < 0 {
		return fail("-timeout must be >= 0 (got %v)", *timeout)
	}
	if *images <= 0 {
		return fail("-images must be > 0 (got %d)", *images)
	}
	if *replicas <= 0 {
		return fail("-replicas must be > 0 (got %d)", *replicas)
	}
	if *traceSummary && *traceFile == "" {
		return fail("-trace-summary needs -trace to know which trace to replay")
	}
	if *expTimeout < 0 {
		return fail("-experiment-timeout must be >= 0 (got %v); 0 disables the watchdog", *expTimeout)
	}
	if *batch < 0 {
		return fail("-batch must be >= 0 (got %d); 0 disables batching", *batch)
	}
	if *batch > 1 && *substrate != "inference" {
		return fail("-batch needs -substrate inference; the oracle substrate runs no forward passes to batch")
	}

	if !*table3 && !*fig5 && !*fig6 && !*fig7 {
		*table3 = true
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		return fail("unknown model %q; available: %v", *model, sfi.ModelNames())
	}

	// Campaigns stop cleanly on Ctrl-C or -timeout; with -checkpoint the
	// tallies survive for a -resume invocation.
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ev sfi.Evaluator
	var exhaustive []float64
	switch *substrate {
	case "oracle":
		o := sfi.NewOracle(net, sfi.OracleDefaults(*oracleSeed))
		fmt.Fprintf(stderr, "enumerating exhaustive ground truth over %s faults...\n",
			report.Comma(o.Space().Total()))
		exhaustive = make([]float64, o.Space().NumLayers())
		for l := range exhaustive {
			exhaustive[l] = o.ExhaustiveLayerRate(l)
		}
		ev = o
	case "inference":
		if *model != "smallcnn" {
			return fail("inference substrate: exhaustive validation is only feasible for -model smallcnn")
		}
		ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: *images, Seed: 1, Size: 16})
		inj := sfi.NewInjector(net, ds)
		inj.SetBatchSize(*batch) // worker clones inherit the size
		fmt.Fprintf(stderr, "running exhaustive inference FI over %s faults × %d images...\n",
			report.Comma(inj.Space().Total()), *images)
		exhaustive = exhaustiveByInference(stderr, inj)
		ev = inj
	default:
		return fail("unknown substrate %q; available: oracle, inference", *substrate)
	}

	space := ev.Space()
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = *margin
	cfg.Confidence = *confidence
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	// Telemetry: the JSONL trace recorder and the metrics endpoint are
	// both optional and both strictly observational — the campaign
	// Result is bit-identical with or without them.
	var tracer *telemetry.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fail("-trace: %v", err)
		}
		tracer = telemetry.NewTracer(f, 1024)
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(stderr, "sfirun: trace: %v\n", err)
			}
			if d := tracer.Dropped(); d > 0 {
				fmt.Fprintf(stderr, "sfirun: trace: %d events dropped (incomplete trace)\n", d)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "sfirun: trace: %v\n", err)
			}
			if *traceSummary {
				printTraceSummary(stderr, *traceFile)
			}
		}()
	}
	var rateGauge, doneGauge *telemetry.Gauge
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		rateGauge = reg.Gauge("sfi_injections_per_second", "Campaign throughput over the running Execute call.")
		doneGauge = reg.Gauge("sfi_injections_done", "Injections tallied by the running campaign.")
		if sr, ok := ev.(sfi.StatsReporter); ok {
			reg.CounterFunc("sfi_masked_skips_total", "Experiments classified by the masked-fault short-circuit.",
				func() int64 { return sr.EvalStats().Skipped })
			reg.CounterFunc("sfi_evaluated_total", "Experiments that ran the full evaluation path.",
				func() int64 { return sr.EvalStats().Evaluated })
			reg.CounterFunc("sfi_early_exits_total", "Evaluated experiments ended by the SDC first-mismatch exit.",
				func() int64 { return sr.EvalStats().EarlyExits })
			reg.GaugeFunc("sfi_arena_bytes", "Scratch-arena storage retained across the evaluator and its clones.",
				func() float64 { return float64(sr.EvalStats().ArenaBytes) })
		}
		reg.GaugeFunc("sfi_watchdog_abandoned_lanes", "Watchdog-abandoned experiment goroutines still pinned by a hung evaluation.",
			func() float64 { return float64(sfi.WatchdogAbandonedLanes()) })
		if ls, ok := ev.(evalstats.LatencySampler); ok {
			hist := &evalstats.Histogram{}
			ls.SetLatencyHistogram(hist) // before Execute, so worker clones inherit it
			reg.Histogram("sfi_experiment_duration_seconds", "Wall time of fully evaluated experiments.", hist)
		}
		srv, err := telemetry.StartServer(*metricsAddr, reg)
		if err != nil {
			return fail("-metrics-addr: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "sfirun: serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr())
	}

	// Same seed ⇒ bit-identical Result at any worker count, with or
	// without an interrupt/resume cycle in between. errInterrupted means
	// the message is already on stderr and the process must exit 1.
	errInterrupted := errors.New("interrupted")
	runCampaign := func(name string, plan *sfi.Plan, seed int64) (*sfi.Result, error) {
		opts := []sfi.EngineOption{
			sfi.WithWorkers(*workers),
			sfi.WithWarnings(func(msg string) { fmt.Fprintf(stderr, "sfirun: %s: %s\n", name, msg) }),
		}
		if *expTimeout > 0 {
			opts = append(opts, sfi.WithExperimentTimeout(*expTimeout))
		}
		if *batch > 1 {
			// Batched experiments amortize graph-walk overhead per image
			// chunk; grouping the shard schedule by fault identity lets
			// consecutive same-weight draws reuse the injector's golden
			// prefix too. Supervised campaigns ignore the grouping flag.
			opts = append(opts, sfi.WithGroupedEvaluation(true))
		}
		if *maxRetries >= 0 {
			opts = append(opts, sfi.WithMaxRetries(*maxRetries))
		}
		if *checkpoint != "" {
			opts = append(opts, sfi.WithCheckpoint(fmt.Sprintf("%s.%s.ckpt", *checkpoint, name)))
			if *resume {
				opts = append(opts, sfi.WithResume())
			}
		}
		var sinks []sfi.ProgressSink
		if *progress {
			sinks = append(sinks, progressPrinter(stderr, name))
		}
		if tracer != nil {
			opts = append(opts, sfi.WithTrace(tracer.Sink(name)))
			sinks = append(sinks, tracer.Progress(name))
		}
		if rateGauge != nil {
			rg, dg := rateGauge, doneGauge
			sinks = append(sinks, func(p sfi.Progress) {
				rg.Set(p.Rate)
				dg.Set(float64(p.Done))
			})
		}
		if len(sinks) > 0 {
			opts = append(opts, sfi.WithProgress(composeSinks(sinks)))
		}
		if *earlyStop >= 0 {
			opts = append(opts, sfi.WithEarlyStop(*earlyStop))
		}
		res, err := sfi.NewEngine(opts...).Execute(ctx, ev, plan, seed)
		if err != nil {
			if res != nil && res.Partial {
				fmt.Fprintf(stderr, "sfirun: campaign %q interrupted after %s of %s injections (%v)\n",
					name, report.Comma(res.Injections()), report.Comma(plan.TotalInjections()), err)
				if *checkpoint != "" {
					fmt.Fprintf(stderr, "sfirun: tallies saved; rerun with -checkpoint %s -resume to continue\n", *checkpoint)
				}
				return nil, errInterrupted
			}
			if hint := checkpointHint(err); hint != "" {
				fmt.Fprintf(stderr, "sfirun: campaign %q: %v\n", name, err)
				fmt.Fprintf(stderr, "sfirun: %s\n", hint)
				return nil, errInterrupted // message already printed; exit 1
			}
			return nil, fmt.Errorf("campaign %q: %v", name, err)
		}
		if n := len(res.Quarantined); n > 0 {
			fmt.Fprintf(stderr, "sfirun: %s: %d draw(s) quarantined after exhausting retries — excluded from the tally; per-stratum margins are over the reduced n\n",
				name, n)
		}
		if n := len(res.EarlyStopped); n > 0 {
			fmt.Fprintf(stderr, "sfirun: %s: early stop halted %d/%d strata (%s of %s planned injections)\n",
				name, n, len(plan.Subpops), report.Comma(res.Injections()), report.Comma(plan.TotalInjections()))
		}
		return res, nil
	}
	campaignErr := func(err error) int {
		if errors.Is(err, errInterrupted) {
			return 1
		}
		return fail("%v", err)
	}

	plans := map[string]*sfi.Plan{
		"network-wise": sfi.PlanNetworkWise(space, cfg),
		"layer-wise":   sfi.PlanLayerWise(space, cfg),
		"data-unaware": sfi.PlanDataUnaware(space, cfg),
		"data-aware":   sfi.PlanDataAware(space, cfg, analysis.P),
	}
	order := []string{"network-wise", "layer-wise", "data-unaware", "data-aware"}

	if *table3 {
		tab := report.NewTable(
			fmt.Sprintf("Table III — %s (%s substrate)", net.NetName, *substrate),
			"Approach", "FIs (n)", "Injected Faults [%]", "Avg Error Margin [%] (acceptable<1%)", "Covered layers")
		tab.AddRow("exhaustive", space.Total(), "100.00%", "-", "-")
		for _, name := range order {
			res, err := runCampaign(name, plans[name], *runSeed)
			if err != nil {
				return campaignErr(err)
			}
			cmp := sfi.Compare(res, exhaustive)
			tab.AddRow(name, cmp.Injections, report.Pct(cmp.InjectedFraction),
				fmt.Sprintf("%.3f", cmp.AvgMargin*100),
				fmt.Sprintf("%d/%d", cmp.CoveredLayers, space.NumLayers()))
		}
		tab.Render(stdout)
		fmt.Fprintln(stdout)
	}

	if *fig5 {
		fmt.Fprintf(stdout, "# Fig. 5 — %s: per-layer critical rate, layer-wise and data-aware SFI vs exhaustive\n", net.NetName)
		lwRes, err := runCampaign("layer-wise", plans["layer-wise"], *runSeed)
		if err != nil {
			return campaignErr(err)
		}
		daRes, err := runCampaign("data-aware", plans["data-aware"], *runSeed)
		if err != nil {
			return campaignErr(err)
		}
		lw, da := sfi.Compare(lwRes, exhaustive), sfi.Compare(daRes, exhaustive)
		csv := report.NewCSV(stdout,
			"layer", "exhaustive",
			"layerwise_est", "layerwise_margin", "layerwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := lw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
		fmt.Fprintln(stdout)
	}

	if *fig6 {
		if *layer < 0 || *layer >= space.NumLayers() {
			return fail("-layer must be in [0, %d) for %s", space.NumLayers(), net.NetName)
		}
		fmt.Fprintf(stdout, "# Fig. 6 — %s layer %d: %d replicated samples per approach (exhaustive = %.4f%%)\n",
			net.NetName, *layer, *replicas, exhaustive[*layer]*100)
		csv := report.NewCSV(stdout, "approach", "sample", "n", "estimate", "margin", "covers_exhaustive")
		for _, name := range order {
			reps := sfi.ReplicatedEstimates(ev, plans[name], *layer, *replicas)
			for s, est := range reps {
				csv.Row(name, fmt.Sprintf("S%d", s), est.SampleSize(), est.PHat(),
					est.Margin(cfg), est.Covers(cfg, exhaustive[*layer]))
			}
		}
		fmt.Fprintln(stdout)
	}

	if *fig7 {
		fmt.Fprintf(stdout, "# Fig. 7 — %s: per-layer critical rate, network-wise vs data-aware vs exhaustive\n", net.NetName)
		nwRes, err := runCampaign("network-wise", plans["network-wise"], *runSeed)
		if err != nil {
			return campaignErr(err)
		}
		daRes, err := runCampaign("data-aware", plans["data-aware"], *runSeed)
		if err != nil {
			return campaignErr(err)
		}
		nw, da := sfi.Compare(nwRes, exhaustive), sfi.Compare(daRes, exhaustive)
		csv := report.NewCSV(stdout,
			"layer", "exhaustive",
			"networkwise_est", "networkwise_margin", "networkwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := nw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
	}
	return 0
}

// checkpointHint maps each checkpoint failure sentinel to one
// actionable line; empty for non-checkpoint errors.
func checkpointHint(err error) string {
	switch {
	case errors.Is(err, sfi.ErrCheckpointSeed):
		return "the checkpoint was written with a different -run-seed; rerun with the original seed, or delete the checkpoint file to start this seed fresh"
	case errors.Is(err, sfi.ErrCheckpointWorkers):
		return "the checkpoint was written at a different -workers count; rerun with the original worker count, or delete the checkpoint file to restart"
	case errors.Is(err, sfi.ErrCheckpointVersion):
		return "the checkpoint was written by an incompatible sfirun version; delete the checkpoint file to restart the campaign"
	case errors.Is(err, sfi.ErrCheckpointPlan):
		return "the checkpoint belongs to a different campaign plan (model, margin, confidence, substrate, or approach changed); point -checkpoint elsewhere or delete the file"
	case errors.Is(err, sfi.ErrCheckpointCorrupt):
		return "the checkpoint (and its .bak backup, if any) is unreadable; delete the checkpoint files to restart the campaign"
	}
	return ""
}

// composeSinks fans one progress stream out to several sinks, in order.
func composeSinks(sinks []sfi.ProgressSink) sfi.ProgressSink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return func(p sfi.Progress) {
		for _, s := range sinks {
			s(p)
		}
	}
}

// printTraceSummary replays the recorded trace into a human-readable
// report on w (the -trace-summary flag). Failures are diagnostics, not
// fatal — the campaigns already completed.
func printTraceSummary(w io.Writer, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(w, "sfirun: trace summary: %v\n", err)
		return
	}
	defer f.Close()
	events, err := telemetry.ReadTrace(f)
	if err != nil {
		fmt.Fprintf(w, "sfirun: trace summary: %v\n", err)
		return
	}
	telemetry.Summarize(events).WriteReport(w, false)
}

// progressPrinter renders streaming engine events as stderr lines, one
// per progress interval plus a final summary carrying the evaluator's
// experiment breakdown (masked skips, evaluations, early exits, arena
// bytes).
func progressPrinter(w io.Writer, name string) sfi.ProgressSink {
	return func(p sfi.Progress) {
		pct := 0.0
		if p.Planned > 0 {
			pct = float64(p.Done) / float64(p.Planned) * 100
		}
		if p.Final {
			fmt.Fprintf(w, "%s: done %s/%s injections (%.1f%%) critical=%s in %s (%.0f inj/s)%s\n",
				name, report.Comma(p.Done), report.Comma(p.Planned), pct,
				report.Comma(p.Critical), p.Elapsed.Round(time.Millisecond), p.Rate,
				evalSuffix(p.Eval))
			return
		}
		fmt.Fprintf(w, "%s: %s/%s injections (%.1f%%) critical=%s stratum %d (%s/%s) %.0f inj/s\n",
			name, report.Comma(p.Done), report.Comma(p.Planned), pct, report.Comma(p.Critical),
			p.Stratum, report.Comma(p.StratumDone), report.Comma(p.StratumPlanned), p.Rate)
	}
}

// evalSuffix formats the skip/eval counters of a final progress event;
// empty when the evaluator reports no stats.
func evalSuffix(s sfi.EvalStats) string {
	if s.Experiments() == 0 {
		return ""
	}
	out := fmt.Sprintf(" [skipped %s masked, evaluated %s, early-exits %s",
		report.Comma(s.Skipped), report.Comma(s.Evaluated), report.Comma(s.EarlyExits))
	if s.ArenaBytes > 0 {
		out += fmt.Sprintf(", arena %s B", report.Comma(s.ArenaBytes))
	}
	return out + "]"
}

// exhaustiveByInference enumerates the whole population with real
// forward passes (SmallCNN only; ~2 minutes on one core).
func exhaustiveByInference(stderr io.Writer, inj *sfi.Injector) []float64 {
	space := inj.Space()
	rates := make([]float64, space.NumLayers())
	for l := 0; l < space.NumLayers(); l++ {
		var critical int64
		n := space.LayerTotal(l)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(l, j)) {
				critical++
			}
		}
		rates[l] = float64(critical) / float64(n)
		fmt.Fprintf(stderr, "  layer %d: %s faults, critical rate %.4f%%\n",
			l, report.Comma(n), rates[l]*100)
	}
	return rates
}

// Compile-time checks that both substrates satisfy the Evaluator and
// StatsReporter interfaces used above.
var (
	_ core.Evaluator     = (*oracle.Oracle)(nil)
	_ core.StatsReporter = (*oracle.Oracle)(nil)
	_ core.StatsReporter = (*sfi.Injector)(nil)
)
