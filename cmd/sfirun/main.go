// Command sfirun executes statistical fault-injection campaigns and
// reproduces the paper's evaluation artifacts:
//
//	-table3          all four approaches vs exhaustive (Table III)
//	-fig5            per-layer exhaustive vs layer-wise vs data-aware
//	-fig6 -layer 0   ten replicated samples per approach for one layer
//	-fig7            per-layer network-wise vs data-aware vs exhaustive
//
// The -substrate flag selects the evaluator: "oracle" (full-scale
// simulated ground truth, default; see DESIGN.md for the substitution
// argument) or "inference" (real forward-pass injection; only feasible
// for -model smallcnn).
//
// Campaigns run through the unified engine, shard-parallel on all cores
// by default; -workers 1 forces serial evaluation. The same -run-seed
// produces bit-identical results at any worker count — and across
// interruption: with -checkpoint set, a campaign killed by -timeout or
// Ctrl-C persists its per-stratum tallies and a later invocation with
// -resume continues where it left off, ending in the exact Result an
// uninterrupted run would have produced. -progress streams per-stratum
// completion, running critical tallies, and injections/sec to stderr;
// -early-stop halts each stratum once its achieved margin (Eq. 3
// inverted at the observed proportion) reaches the target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

// fatalf prints one actionable line and exits — the CLI never panics on
// bad input.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sfirun: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	model := flag.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := flag.Int64("seed", 1, "weight-generation seed")
	oracleSeed := flag.Int64("oracle-seed", 3, "ground-truth labelling seed")
	runSeed := flag.Int64("run-seed", 0, "sampling seed")
	substrate := flag.String("substrate", "oracle", "evaluator: oracle or inference")
	images := flag.Int("images", 8, "evaluation-set size for the inference substrate")
	margin := flag.Float64("margin", 0.01, "requested error margin e, in (0,1)")
	confidence := flag.Float64("confidence", 0.99, "confidence level, in (0,1)")
	table3 := flag.Bool("table3", false, "print Table III")
	fig5 := flag.Bool("fig5", false, "print Fig. 5 series")
	fig6 := flag.Bool("fig6", false, "print Fig. 6 series")
	fig7 := flag.Bool("fig7", false, "print Fig. 7 series")
	layer := flag.Int("layer", 0, "layer for -fig6")
	replicas := flag.Int("replicas", 10, "replicated samples for -fig6")
	workers := flag.Int("workers", 0, "concurrent evaluation workers (0 = GOMAXPROCS, 1 = serial; both substrates — the inference injector clones per-worker weights)")
	progress := flag.Bool("progress", false, "stream campaign progress to stderr")
	checkpoint := flag.String("checkpoint", "", "checkpoint path prefix; campaigns persist per-stratum tallies there (one file per approach)")
	resume := flag.Bool("resume", false, "resume campaigns from existing -checkpoint files")
	timeout := flag.Duration("timeout", 0, "abort campaigns after this duration (0 = none); with -checkpoint, progress is preserved")
	earlyStop := flag.Float64("early-stop", -1, "stop each stratum at this achieved margin (0 = the requested -margin; negative = disabled)")
	flag.Parse()

	// Validate inputs up-front with actionable one-line errors.
	if *workers < 0 {
		fatalf("-workers must be >= 0 (got %d); 0 selects all cores", *workers)
	}
	if *margin <= 0 || *margin >= 1 {
		fatalf("-margin must be inside (0,1) (got %v); the paper uses 0.01", *margin)
	}
	if *confidence <= 0 || *confidence >= 1 {
		fatalf("-confidence must be inside (0,1) (got %v); the paper uses 0.99", *confidence)
	}
	if *earlyStop >= 1 {
		fatalf("-early-stop must be below 1 (got %v); it is an error margin, not a percentage", *earlyStop)
	}
	if *resume && *checkpoint == "" {
		fatalf("-resume needs -checkpoint to know where the saved campaign lives")
	}
	if *timeout < 0 {
		fatalf("-timeout must be >= 0 (got %v)", *timeout)
	}
	if *images <= 0 {
		fatalf("-images must be > 0 (got %d)", *images)
	}
	if *replicas <= 0 {
		fatalf("-replicas must be > 0 (got %d)", *replicas)
	}

	if !*table3 && !*fig5 && !*fig6 && !*fig7 {
		*table3 = true
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		fatalf("unknown model %q; available: %v", *model, sfi.ModelNames())
	}

	// Campaigns stop cleanly on Ctrl-C or -timeout; with -checkpoint the
	// tallies survive for a -resume invocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ev sfi.Evaluator
	var exhaustive []float64
	switch *substrate {
	case "oracle":
		o := sfi.NewOracle(net, sfi.OracleDefaults(*oracleSeed))
		fmt.Fprintf(os.Stderr, "enumerating exhaustive ground truth over %s faults...\n",
			report.Comma(o.Space().Total()))
		exhaustive = make([]float64, o.Space().NumLayers())
		for l := range exhaustive {
			exhaustive[l] = o.ExhaustiveLayerRate(l)
		}
		ev = o
	case "inference":
		if *model != "smallcnn" {
			fatalf("inference substrate: exhaustive validation is only feasible for -model smallcnn")
		}
		ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: *images, Seed: 1, Size: 16})
		inj := sfi.NewInjector(net, ds)
		fmt.Fprintf(os.Stderr, "running exhaustive inference FI over %s faults × %d images...\n",
			report.Comma(inj.Space().Total()), *images)
		exhaustive = exhaustiveByInference(inj)
		ev = inj
	default:
		fatalf("unknown substrate %q; available: oracle, inference", *substrate)
	}

	space := ev.Space()
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = *margin
	cfg.Confidence = *confidence
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	// Same seed ⇒ bit-identical Result at any worker count, with or
	// without an interrupt/resume cycle in between.
	run := func(name string, plan *sfi.Plan, seed int64) *sfi.Result {
		opts := []sfi.EngineOption{sfi.WithWorkers(*workers)}
		if *checkpoint != "" {
			opts = append(opts, sfi.WithCheckpoint(fmt.Sprintf("%s.%s.ckpt", *checkpoint, name)))
			if *resume {
				opts = append(opts, sfi.WithResume())
			}
		}
		if *progress {
			opts = append(opts, sfi.WithProgress(progressPrinter(name)))
		}
		if *earlyStop >= 0 {
			opts = append(opts, sfi.WithEarlyStop(*earlyStop))
		}
		res, err := sfi.NewEngine(opts...).Execute(ctx, ev, plan, seed)
		if err != nil {
			if res != nil && res.Partial {
				fmt.Fprintf(os.Stderr, "sfirun: campaign %q interrupted after %s of %s injections (%v)\n",
					name, report.Comma(res.Injections()), report.Comma(plan.TotalInjections()), err)
				if *checkpoint != "" {
					fmt.Fprintf(os.Stderr, "sfirun: tallies saved; rerun with -checkpoint %s -resume to continue\n", *checkpoint)
				}
				os.Exit(1)
			}
			fatalf("campaign %q: %v", name, err)
		}
		if n := len(res.EarlyStopped); n > 0 {
			fmt.Fprintf(os.Stderr, "sfirun: %s: early stop halted %d/%d strata (%s of %s planned injections)\n",
				name, n, len(plan.Subpops), report.Comma(res.Injections()), report.Comma(plan.TotalInjections()))
		}
		return res
	}

	plans := map[string]*sfi.Plan{
		"network-wise": sfi.PlanNetworkWise(space, cfg),
		"layer-wise":   sfi.PlanLayerWise(space, cfg),
		"data-unaware": sfi.PlanDataUnaware(space, cfg),
		"data-aware":   sfi.PlanDataAware(space, cfg, analysis.P),
	}
	order := []string{"network-wise", "layer-wise", "data-unaware", "data-aware"}

	if *table3 {
		tab := report.NewTable(
			fmt.Sprintf("Table III — %s (%s substrate)", net.NetName, *substrate),
			"Approach", "FIs (n)", "Injected Faults [%]", "Avg Error Margin [%] (acceptable<1%)", "Covered layers")
		tab.AddRow("exhaustive", space.Total(), "100.00%", "-", "-")
		for _, name := range order {
			cmp := sfi.Compare(run(name, plans[name], *runSeed), exhaustive)
			tab.AddRow(name, cmp.Injections, report.Pct(cmp.InjectedFraction),
				fmt.Sprintf("%.3f", cmp.AvgMargin*100),
				fmt.Sprintf("%d/%d", cmp.CoveredLayers, space.NumLayers()))
		}
		tab.Render(os.Stdout)
		fmt.Println()
	}

	if *fig5 {
		fmt.Printf("# Fig. 5 — %s: per-layer critical rate, layer-wise and data-aware SFI vs exhaustive\n", net.NetName)
		lw := sfi.Compare(run("layer-wise", plans["layer-wise"], *runSeed), exhaustive)
		da := sfi.Compare(run("data-aware", plans["data-aware"], *runSeed), exhaustive)
		csv := report.NewCSV(os.Stdout,
			"layer", "exhaustive",
			"layerwise_est", "layerwise_margin", "layerwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := lw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
		fmt.Println()
	}

	if *fig6 {
		if *layer < 0 || *layer >= space.NumLayers() {
			fatalf("-layer must be in [0, %d) for %s", space.NumLayers(), net.NetName)
		}
		fmt.Printf("# Fig. 6 — %s layer %d: %d replicated samples per approach (exhaustive = %.4f%%)\n",
			net.NetName, *layer, *replicas, exhaustive[*layer]*100)
		csv := report.NewCSV(os.Stdout, "approach", "sample", "n", "estimate", "margin", "covers_exhaustive")
		for _, name := range order {
			reps := sfi.ReplicatedEstimates(ev, plans[name], *layer, *replicas)
			for s, est := range reps {
				csv.Row(name, fmt.Sprintf("S%d", s), est.SampleSize(), est.PHat(),
					est.Margin(cfg), est.Covers(cfg, exhaustive[*layer]))
			}
		}
		fmt.Println()
	}

	if *fig7 {
		fmt.Printf("# Fig. 7 — %s: per-layer critical rate, network-wise vs data-aware vs exhaustive\n", net.NetName)
		nw := sfi.Compare(run("network-wise", plans["network-wise"], *runSeed), exhaustive)
		da := sfi.Compare(run("data-aware", plans["data-aware"], *runSeed), exhaustive)
		csv := report.NewCSV(os.Stdout,
			"layer", "exhaustive",
			"networkwise_est", "networkwise_margin", "networkwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := nw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
	}
}

// progressPrinter renders streaming engine events as stderr lines, one
// per progress interval plus a final summary.
func progressPrinter(name string) sfi.ProgressSink {
	return func(p sfi.Progress) {
		pct := 0.0
		if p.Planned > 0 {
			pct = float64(p.Done) / float64(p.Planned) * 100
		}
		if p.Final {
			fmt.Fprintf(os.Stderr, "%s: done %s/%s injections (%.1f%%) critical=%s in %s (%.0f inj/s)\n",
				name, report.Comma(p.Done), report.Comma(p.Planned), pct,
				report.Comma(p.Critical), p.Elapsed.Round(time.Millisecond), p.Rate)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: %s/%s injections (%.1f%%) critical=%s stratum %d (%s/%s) %.0f inj/s\n",
			name, report.Comma(p.Done), report.Comma(p.Planned), pct, report.Comma(p.Critical),
			p.Stratum, report.Comma(p.StratumDone), report.Comma(p.StratumPlanned), p.Rate)
	}
}

// exhaustiveByInference enumerates the whole population with real
// forward passes (SmallCNN only; ~2 minutes on one core).
func exhaustiveByInference(inj *sfi.Injector) []float64 {
	space := inj.Space()
	rates := make([]float64, space.NumLayers())
	for l := 0; l < space.NumLayers(); l++ {
		var critical int64
		n := space.LayerTotal(l)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(l, j)) {
				critical++
			}
		}
		rates[l] = float64(critical) / float64(n)
		fmt.Fprintf(os.Stderr, "  layer %d: %s faults, critical rate %.4f%%\n",
			l, report.Comma(n), rates[l]*100)
	}
	return rates
}

// Compile-time checks that both substrates satisfy the Evaluator
// interface used above.
var (
	_ core.Evaluator = (*oracle.Oracle)(nil)
)
