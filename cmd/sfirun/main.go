// Command sfirun executes statistical fault-injection campaigns and
// reproduces the paper's evaluation artifacts:
//
//	-table3          all four approaches vs exhaustive (Table III)
//	-fig5            per-layer exhaustive vs layer-wise vs data-aware
//	-fig6 -layer 0   ten replicated samples per approach for one layer
//	-fig7            per-layer network-wise vs data-aware vs exhaustive
//
// The -substrate flag selects the evaluator: "oracle" (full-scale
// simulated ground truth, default; see DESIGN.md for the substitution
// argument) or "inference" (real forward-pass injection; only feasible
// for -model smallcnn).
//
// Campaigns run shard-parallel on all cores by default; -workers 1
// forces the serial runner. The two are interchangeable: the same
// -run-seed produces bit-identical results at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"cnnsfi/internal/core"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	model := flag.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := flag.Int64("seed", 1, "weight-generation seed")
	oracleSeed := flag.Int64("oracle-seed", 3, "ground-truth labelling seed")
	runSeed := flag.Int64("run-seed", 0, "sampling seed")
	substrate := flag.String("substrate", "oracle", "evaluator: oracle or inference")
	images := flag.Int("images", 8, "evaluation-set size for the inference substrate")
	table3 := flag.Bool("table3", false, "print Table III")
	fig5 := flag.Bool("fig5", false, "print Fig. 5 series")
	fig6 := flag.Bool("fig6", false, "print Fig. 6 series")
	fig7 := flag.Bool("fig7", false, "print Fig. 7 series")
	layer := flag.Int("layer", 0, "layer for -fig6")
	replicas := flag.Int("replicas", 10, "replicated samples for -fig6")
	workers := flag.Int("workers", 0, "concurrent evaluation workers (0 = GOMAXPROCS, 1 = serial; both substrates — the inference injector clones per-worker weights)")
	flag.Parse()

	if !*table3 && !*fig5 && !*fig6 && !*fig7 {
		*table3 = true
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var ev sfi.Evaluator
	var exhaustive []float64
	switch *substrate {
	case "oracle":
		o := sfi.NewOracle(net, sfi.OracleDefaults(*oracleSeed))
		fmt.Fprintf(os.Stderr, "enumerating exhaustive ground truth over %s faults...\n",
			report.Comma(o.Space().Total()))
		exhaustive = make([]float64, o.Space().NumLayers())
		for l := range exhaustive {
			exhaustive[l] = o.ExhaustiveLayerRate(l)
		}
		ev = o
	case "inference":
		if *model != "smallcnn" {
			fmt.Fprintln(os.Stderr, "inference substrate: exhaustive validation is only feasible for -model smallcnn")
			os.Exit(1)
		}
		ds := sfi.SyntheticDataset(sfi.DatasetConfig{N: *images, Seed: 1, Size: 16})
		inj := sfi.NewInjector(net, ds)
		fmt.Fprintf(os.Stderr, "running exhaustive inference FI over %s faults × %d images...\n",
			report.Comma(inj.Space().Total()), *images)
		exhaustive = exhaustiveByInference(inj)
		ev = inj
	default:
		fmt.Fprintf(os.Stderr, "unknown substrate %q\n", *substrate)
		os.Exit(1)
	}

	space := ev.Space()
	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())

	// Same seed ⇒ bit-identical Result either way; -workers only changes
	// wall-clock time.
	run := func(plan *sfi.Plan, seed int64) *sfi.Result {
		if *workers != 1 {
			return sfi.RunParallel(ev, plan, seed, *workers)
		}
		return sfi.Run(ev, plan, seed)
	}

	plans := map[string]*sfi.Plan{
		"network-wise": sfi.PlanNetworkWise(space, cfg),
		"layer-wise":   sfi.PlanLayerWise(space, cfg),
		"data-unaware": sfi.PlanDataUnaware(space, cfg),
		"data-aware":   sfi.PlanDataAware(space, cfg, analysis.P),
	}
	order := []string{"network-wise", "layer-wise", "data-unaware", "data-aware"}

	if *table3 {
		tab := report.NewTable(
			fmt.Sprintf("Table III — %s (%s substrate)", net.NetName, *substrate),
			"Approach", "FIs (n)", "Injected Faults [%]", "Avg Error Margin [%] (acceptable<1%)", "Covered layers")
		tab.AddRow("exhaustive", space.Total(), "100.00%", "-", "-")
		for _, name := range order {
			cmp := sfi.Compare(run(plans[name], *runSeed), exhaustive)
			tab.AddRow(name, cmp.Injections, report.Pct(cmp.InjectedFraction),
				fmt.Sprintf("%.3f", cmp.AvgMargin*100),
				fmt.Sprintf("%d/%d", cmp.CoveredLayers, space.NumLayers()))
		}
		tab.Render(os.Stdout)
		fmt.Println()
	}

	if *fig5 {
		fmt.Printf("# Fig. 5 — %s: per-layer critical rate, layer-wise and data-aware SFI vs exhaustive\n", net.NetName)
		lw := sfi.Compare(run(plans["layer-wise"], *runSeed), exhaustive)
		da := sfi.Compare(run(plans["data-aware"], *runSeed), exhaustive)
		csv := report.NewCSV(os.Stdout,
			"layer", "exhaustive",
			"layerwise_est", "layerwise_margin", "layerwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := lw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
		fmt.Println()
	}

	if *fig6 {
		fmt.Printf("# Fig. 6 — %s layer %d: %d replicated samples per approach (exhaustive = %.4f%%)\n",
			net.NetName, *layer, *replicas, exhaustive[*layer]*100)
		csv := report.NewCSV(os.Stdout, "approach", "sample", "n", "estimate", "margin", "covers_exhaustive")
		for _, name := range order {
			reps := sfi.ReplicatedEstimates(ev, plans[name], *layer, *replicas)
			for s, est := range reps {
				csv.Row(name, fmt.Sprintf("S%d", s), est.SampleSize(), est.PHat(),
					est.Margin(cfg), est.Covers(cfg, exhaustive[*layer]))
			}
		}
		fmt.Println()
	}

	if *fig7 {
		fmt.Printf("# Fig. 7 — %s: per-layer critical rate, network-wise vs data-aware vs exhaustive\n", net.NetName)
		nw := sfi.Compare(run(plans["network-wise"], *runSeed), exhaustive)
		da := sfi.Compare(run(plans["data-aware"], *runSeed), exhaustive)
		csv := report.NewCSV(os.Stdout,
			"layer", "exhaustive",
			"networkwise_est", "networkwise_margin", "networkwise_n",
			"dataaware_est", "dataaware_margin", "dataaware_n")
		for l := 0; l < space.NumLayers(); l++ {
			a, b := nw.Layers[l], da.Layers[l]
			csv.Row(l, a.Exhaustive,
				a.Estimate.PHat(), a.Margin, a.Estimate.SampleSize(),
				b.Estimate.PHat(), b.Margin, b.Estimate.SampleSize())
		}
	}
}

// exhaustiveByInference enumerates the whole population with real
// forward passes (SmallCNN only; ~2 minutes on one core).
func exhaustiveByInference(inj *sfi.Injector) []float64 {
	space := inj.Space()
	rates := make([]float64, space.NumLayers())
	for l := 0; l < space.NumLayers(); l++ {
		var critical int64
		n := space.LayerTotal(l)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(l, j)) {
				critical++
			}
		}
		rates[l] = float64(critical) / float64(n)
		fmt.Fprintf(os.Stderr, "  layer %d: %s faults, critical rate %.4f%%\n",
			l, report.Comma(n), rates[l]*100)
	}
	return rates
}

// Compile-time checks that both substrates satisfy the Evaluator
// interface used above.
var (
	_ core.Evaluator = (*oracle.Oracle)(nil)
)
