package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cnnsfi/internal/core"
	"cnnsfi/internal/telemetry"
	"cnnsfi/sfi"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCLI drives the whole CLI in-process, capturing both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestCLIFlagValidation pins the one-line actionable error for every
// rejected input: exit code 1, a single "sfirun: ..." line on stderr,
// nothing on stdout.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative_workers", []string{"-workers", "-1"}},
		{"margin_out_of_range", []string{"-margin", "2"}},
		{"confidence_out_of_range", []string{"-confidence", "0"}},
		{"early_stop_not_a_margin", []string{"-early-stop", "1.5"}},
		{"resume_without_checkpoint", []string{"-resume"}},
		{"negative_timeout", []string{"-timeout", "-1s"}},
		{"zero_images", []string{"-images", "0"}},
		{"zero_replicas", []string{"-replicas", "0"}},
		{"unknown_model", []string{"-model", "nosuch"}},
		{"unknown_substrate", []string{"-model", "smallcnn", "-substrate", "fpga"}},
		{"inference_needs_smallcnn", []string{"-model", "resnet20", "-substrate", "inference"}},
		{"fig6_layer_out_of_range", []string{"-model", "smallcnn", "-margin", "0.05", "-fig6", "-layer", "99"}},
		{"trace_summary_without_trace", []string{"-trace-summary"}},
		{"negative_experiment_timeout", []string{"-experiment-timeout", "-1s"}},
		{"negative_batch", []string{"-batch", "-4"}},
		{"batch_needs_inference", []string{"-model", "smallcnn", "-substrate", "oracle", "-batch", "8"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if stdout != "" {
				t.Errorf("stdout not empty: %q", stdout)
			}
			// Drop diagnostics that precede validation of campaign flags
			// (the oracle-enumeration notice for the fig6 case).
			line := stderr
			if i := strings.LastIndex(strings.TrimSuffix(stderr, "\n"), "\n"); i >= 0 {
				line = stderr[i+1:]
			}
			if !strings.HasPrefix(line, "sfirun: ") || strings.Count(line, "\n") != 1 {
				t.Errorf("want a single 'sfirun: ...' line, got %q", stderr)
			}
			checkGolden(t, "err_"+tc.name+".golden", line)
		})
	}
}

// TestCLIBadFlagSyntax: the flag package rejects malformed values itself
// (exit 2, usage on stderr) — the CLI must not panic or proceed.
func TestCLIBadFlagSyntax(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-margin", "lots")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}

// TestCLICheckpointHints pins the actionable one-liner each checkpoint
// failure sentinel earns: the raw engine error followed by one
// "sfirun: ..." hint telling the user how to get unstuck. Checkpoint
// documents are crafted against the real plan fingerprint, so each case
// trips exactly the validation under test.
func TestCLICheckpointHints(t *testing.T) {
	net, err := sfi.BuildModel("smallcnn", 1)
	if err != nil {
		t.Fatal(err)
	}
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = 0.05
	fp := core.PlanFingerprint(sfi.PlanNetworkWise(o.Space(), cfg))

	// A zero crc32 is the documented no-checksum escape hatch, so these
	// hand-written documents parse cleanly and reach the validation.
	doc := func(version int, seed int64, fingerprint uint64, workers int) string {
		return fmt.Sprintf(`{"version":%d,"seed":%d,"plan_fingerprint":%d,"workers":%d,"injections":0,"strata":[]}`,
			version, seed, fingerprint, workers)
	}
	cases := []struct {
		name string
		doc  string
	}{
		{"seed", doc(2, 999, fp, 1)},
		{"workers", doc(2, 0, fp, 7)},
		{"version", doc(99, 0, fp, 1)},
		{"plan", doc(2, 0, 1, 1)},
		{"corrupt", `{"version":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prefix := filepath.Join(t.TempDir(), "ck")
			if err := os.WriteFile(prefix+".network-wise.ckpt", []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			code, stdout, stderr := runCLI(t,
				"-model", "smallcnn", "-substrate", "oracle", "-margin", "0.05",
				"-workers", "1", "-checkpoint", prefix, "-resume", "-table3")
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if stdout != "" {
				t.Errorf("stdout not empty: %q", stdout)
			}
			var lines []string
			for _, line := range strings.Split(stderr, "\n") {
				if strings.HasPrefix(line, "sfirun: ") {
					lines = append(lines, line)
				}
			}
			got := strings.Join(lines, "\n") + "\n"
			got = strings.ReplaceAll(got, prefix, "<ckpt>")
			got = fingerprintRe.ReplaceAllString(got, "<fp>")
			checkGolden(t, "hint_checkpoint_"+tc.name+".golden", got)
		})
	}
}

var (
	rateRe        = regexp.MustCompile(`\d[\d,]*(\.\d+)? inj/s`)
	elapsedRe     = regexp.MustCompile(`in \S+ \(`)
	fingerprintRe = regexp.MustCompile(`[0-9a-f]{16}`)
)

// normalizeTiming strips wall-clock-dependent fields (elapsed time,
// injections/sec) from progress output so the rest stays goldenable.
func normalizeTiming(s string) string {
	s = rateRe.ReplaceAllString(s, "RATE inj/s")
	return elapsedRe.ReplaceAllString(s, "in ELAPSED (")
}

// TestCLITable3Golden pins the full -table3 run on the oracle substrate
// at -workers 1: the Table III artifact on stdout byte-for-byte, and the
// progress stream on stderr — including the final lines' masked-skip /
// evaluated counters — up to timing normalization. Single-worker serial
// execution makes every count deterministic.
func TestCLITable3Golden(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-model", "smallcnn", "-substrate", "oracle",
		"-margin", "0.05", "-workers", "1", "-progress", "-table3")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}
	checkGolden(t, "table3_oracle.stdout.golden", stdout)
	checkGolden(t, "table3_oracle.stderr.golden", normalizeTiming(stderr))
}

// TestCLISupervisedMatchesGolden: switching campaign supervision on
// (watchdog + retries) over a healthy substrate must not change one
// output byte — both streams still match the unsupervised goldens.
func TestCLISupervisedMatchesGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-model", "smallcnn", "-substrate", "oracle",
		"-margin", "0.05", "-workers", "1", "-progress", "-table3",
		"-experiment-timeout", "1m", "-max-retries", "2")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}
	checkGolden(t, "table3_oracle.stdout.golden", stdout)
	checkGolden(t, "table3_oracle.stderr.golden", normalizeTiming(stderr))
}

// TestCLIFig5Golden covers the CSV emitters with the same determinism
// argument.
func TestCLIFig5Golden(t *testing.T) {
	code, stdout, _ := runCLI(t,
		"-model", "smallcnn", "-substrate", "oracle",
		"-margin", "0.05", "-workers", "1", "-fig5")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	checkGolden(t, "fig5_oracle.stdout.golden", stdout)
}

// TestCLITraceRoundTrip drives the -trace/-trace-summary flags through
// the real CLI: the recorded JSONL must parse strictly, each of the four
// Table III campaigns must be complete with its final progress counters
// agreeing with the campaign_end tallies, and the replayed summary must
// land on stderr.
func TestCLITraceRoundTrip(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	code, _, stderr := runCLI(t,
		"-model", "smallcnn", "-substrate", "oracle",
		"-margin", "0.05", "-workers", "1", "-table3",
		"-trace", tracePath, "-trace-summary")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadTrace(f)
	if err != nil {
		t.Fatalf("recorded trace does not parse: %v", err)
	}
	sum := telemetry.Summarize(events)
	if sum.Dropped != 0 {
		t.Errorf("trace dropped %d events", sum.Dropped)
	}
	if len(sum.Campaigns) != 4 {
		t.Fatalf("traced campaigns = %d, want 4 (one per Table III approach)", len(sum.Campaigns))
	}
	for _, c := range sum.Campaigns {
		if !c.Complete {
			t.Errorf("campaign %q has no campaign_end", c.Campaign)
		}
		if c.FinalProgress == nil {
			t.Errorf("campaign %q has no final progress event", c.Campaign)
			continue
		}
		if c.Done != c.FinalProgress.Done || c.Critical != c.FinalProgress.Critical {
			t.Errorf("campaign %q: campaign_end (done=%d critical=%d) != final progress (done=%d critical=%d)",
				c.Campaign, c.Done, c.Critical, c.FinalProgress.Done, c.FinalProgress.Critical)
		}
		if !strings.Contains(stderr, fmt.Sprintf("campaign %q", c.Campaign)) {
			t.Errorf("-trace-summary output missing campaign %q:\n%s", c.Campaign, stderr)
		}
	}
}

// TestCLIProgressReportsEvalStats asserts the final progress line
// carries the evaluator's experiment breakdown and that skipped +
// evaluated accounts for every injection of the campaign.
func TestCLIProgressReportsEvalStats(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-model", "smallcnn", "-substrate", "oracle",
		"-margin", "0.05", "-workers", "1", "-progress", "-table3")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	finals := 0
	for _, line := range strings.Split(stderr, "\n") {
		if !strings.Contains(line, ": done ") {
			continue
		}
		finals++
		if !strings.Contains(line, "skipped") || !strings.Contains(line, "evaluated") {
			t.Errorf("final progress line missing eval stats: %q", line)
		}
	}
	if finals != 4 {
		t.Errorf("got %d final progress lines, want 4 (one per approach)", finals)
	}
}
