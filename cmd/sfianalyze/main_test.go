package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestCLIFlagValidation pins the one-line actionable error for rejected
// input: exit code 1, a single "sfianalyze: ..." line on stderr, nothing
// after any partial stdout.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown_format", []string{"-format", "fp8"}},
		{"unknown_model", []string{"-model", "nosuch"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if !strings.HasPrefix(stderr, "sfianalyze: ") || strings.Count(stderr, "\n") != 1 {
				t.Errorf("want a single 'sfianalyze: ...' line, got %q", stderr)
			}
			checkGolden(t, "err_"+tc.name+".golden", stderr)
		})
	}
}

func TestCLIBadFlagSyntax(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seed", "lots")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}

// TestCLIAnalysisGolden pins the default (fig3+fig4) analysis of the
// seeded smallcnn weights — a pure function of (model, seed, format).
func TestCLIAnalysisGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-model", "smallcnn", "-fig1", "-fig2", "-fig3", "-fig4")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}
	if stderr != "" {
		t.Errorf("stderr not empty: %q", stderr)
	}
	checkGolden(t, "analysis_smallcnn.stdout.golden", stdout)
}
