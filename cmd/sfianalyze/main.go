// Command sfianalyze runs the data-aware weight-distribution analysis of
// the paper's Section III-B and prints the data behind Figs. 1-4:
//
//	-fig1   p·(1−p) vs p (the Bernoulli variance curve, Fig. 1 left)
//	-fig2   the bit-flip distance example of Fig. 2
//	-fig3   per-bit f0/f1 counts over the model's weights (Fig. 3)
//	-fig4   the derived per-bit criticality p(i) (Fig. 4)
//
// Output is CSV on stdout (ready for plotting) plus an ASCII rendition
// on request (-bars).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"cnnsfi/internal/fp"
	"cnnsfi/internal/report"
	"cnnsfi/internal/stats"
	"cnnsfi/sfi"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind main, parameterised for testing. Bad
// input yields one actionable line on stderr and exit code 1.
func run(_ context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfianalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := fs.Int64("seed", 1, "weight-generation seed")
	format := fs.String("format", "fp32", "representation: fp32, fp16, bf16, int8")
	fig1 := fs.Bool("fig1", false, "print the p·(1−p) curve")
	fig2 := fs.Bool("fig2", false, "print a bit-flip distance example")
	fig3 := fs.Bool("fig3", false, "print per-bit f0/f1 counts")
	fig4 := fs.Bool("fig4", false, "print the derived p(i)")
	bars := fs.Bool("bars", false, "also render ASCII bars")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !*fig1 && !*fig2 && !*fig3 && !*fig4 {
		*fig3, *fig4 = true, true // the paper's headline analysis
	}

	var f sfi.Format
	int8Mode := false
	switch *format {
	case "fp32":
		f = sfi.FP32
	case "fp16":
		f = sfi.FP16
	case "bf16":
		f = sfi.BF16
	case "int8":
		int8Mode = true
	default:
		fmt.Fprintf(stderr, "sfianalyze: unknown format %q (want fp32, fp16, bf16, or int8)\n", *format)
		return 1
	}

	if *fig1 {
		fmt.Fprintln(stdout, "# Fig. 1 (left): Bernoulli variance p·(1-p)")
		csv := report.NewCSV(stdout, "p", "p_times_1_minus_p")
		for p := 0.0; p <= 1.0001; p += 0.05 {
			csv.Row(p, stats.BernoulliVariance(p))
		}
		fmt.Fprintln(stdout)
	}

	if *fig2 {
		fmt.Fprintln(stdout, "# Fig. 2: bit-flip distance example (bit 28 on a typical weight)")
		w := float32(0.0417)
		csv := report.NewCSV(stdout, "bit", "golden", "faulty", "distance")
		for _, bit := range []int{0, 10, 22, 23, 28, 30, 31} {
			faulty := fp.FlipBit32(w, bit)
			csv.Row(bit, w, faulty, fp.FlipDistance32(w, bit))
		}
		fmt.Fprintln(stdout)
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "sfianalyze: %v\n", err)
		return 1
	}

	if int8Mode {
		a := sfi.AnalyzeWeightsINT8(net.AllWeights())
		fmt.Fprintf(stdout, "# INT8 data-aware analysis of %s (%d weights, Δ = %g)\n",
			net.NetName, a.Count, a.Scheme.Delta)
		csv := report.NewCSV(stdout, "bit", "f0", "f1", "davg", "p")
		for i := 7; i >= 0; i-- {
			csv.Row(i, a.F0[i], a.F1[i], a.Davg[i], a.P[i])
		}
		return 0
	}

	analysis := sfi.AnalyzeWeightsIn(net.AllWeights(), f)

	if *fig3 {
		fmt.Fprintf(stdout, "# Fig. 3: bit value frequencies over %s weights (%s, %d weights)\n",
			net.NetName, f.Name, analysis.Count)
		csv := report.NewCSV(stdout, "bit", "role", "f0_count", "f1_count")
		for i := f.Bits - 1; i >= 0; i-- {
			csv.Row(i, f.RoleOf(i).String(), analysis.CountF0(i), analysis.CountF1(i))
		}
		fmt.Fprintln(stdout)
		if *bars {
			labels := make([]string, f.Bits)
			vals := make([]float64, f.Bits)
			for i := 0; i < f.Bits; i++ {
				labels[i] = fmt.Sprintf("bit %2d f1", f.Bits-1-i)
				vals[i] = analysis.F1[f.Bits-1-i]
			}
			report.Bars(stdout, "f1(i) relative frequency", labels, vals, 50)
			fmt.Fprintln(stdout)
		}
	}

	if *fig4 {
		fmt.Fprintf(stdout, "# Fig. 4: data-aware p(i) for %s (%s)\n", net.NetName, f.Name)
		csv := report.NewCSV(stdout, "bit", "role", "davg", "p")
		for i := f.Bits - 1; i >= 0; i-- {
			csv.Row(i, f.RoleOf(i).String(), analysis.Davg[i], analysis.P[i])
		}
		fmt.Fprintf(stdout, "# most critical bit: %d\n", analysis.MostCriticalBit())
		if *bars {
			labels := make([]string, f.Bits)
			vals := make([]float64, f.Bits)
			for i := 0; i < f.Bits; i++ {
				labels[i] = fmt.Sprintf("bit %2d", f.Bits-1-i)
				vals[i] = analysis.P[f.Bits-1-i]
			}
			report.Bars(stdout, "p(i)", labels, vals, 50)
		}
	}
	return 0
}
