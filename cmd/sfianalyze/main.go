// Command sfianalyze runs the data-aware weight-distribution analysis of
// the paper's Section III-B and prints the data behind Figs. 1-4:
//
//	-fig1   p·(1−p) vs p (the Bernoulli variance curve, Fig. 1 left)
//	-fig2   the bit-flip distance example of Fig. 2
//	-fig3   per-bit f0/f1 counts over the model's weights (Fig. 3)
//	-fig4   the derived per-bit criticality p(i) (Fig. 4)
//
// Output is CSV on stdout (ready for plotting) plus an ASCII rendition
// on request (-bars).
package main

import (
	"flag"
	"fmt"
	"os"

	"cnnsfi/internal/fp"
	"cnnsfi/internal/report"
	"cnnsfi/internal/stats"
	"cnnsfi/sfi"
)

func main() {
	model := flag.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	seed := flag.Int64("seed", 1, "weight-generation seed")
	format := flag.String("format", "fp32", "representation: fp32, fp16, bf16")
	fig1 := flag.Bool("fig1", false, "print the p·(1−p) curve")
	fig2 := flag.Bool("fig2", false, "print a bit-flip distance example")
	fig3 := flag.Bool("fig3", false, "print per-bit f0/f1 counts")
	fig4 := flag.Bool("fig4", false, "print the derived p(i)")
	bars := flag.Bool("bars", false, "also render ASCII bars")
	flag.Parse()

	if !*fig1 && !*fig2 && !*fig3 && !*fig4 {
		*fig3, *fig4 = true, true // the paper's headline analysis
	}

	var f sfi.Format
	int8Mode := false
	switch *format {
	case "fp32":
		f = sfi.FP32
	case "fp16":
		f = sfi.FP16
	case "bf16":
		f = sfi.BF16
	case "int8":
		int8Mode = true
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want fp32, fp16, bf16, or int8)\n", *format)
		os.Exit(1)
	}

	if *fig1 {
		fmt.Println("# Fig. 1 (left): Bernoulli variance p·(1-p)")
		csv := report.NewCSV(os.Stdout, "p", "p_times_1_minus_p")
		for p := 0.0; p <= 1.0001; p += 0.05 {
			csv.Row(p, stats.BernoulliVariance(p))
		}
		fmt.Println()
	}

	if *fig2 {
		fmt.Println("# Fig. 2: bit-flip distance example (bit 28 on a typical weight)")
		w := float32(0.0417)
		csv := report.NewCSV(os.Stdout, "bit", "golden", "faulty", "distance")
		for _, bit := range []int{0, 10, 22, 23, 28, 30, 31} {
			faulty := fp.FlipBit32(w, bit)
			csv.Row(bit, w, faulty, fp.FlipDistance32(w, bit))
		}
		fmt.Println()
	}

	net, err := sfi.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if int8Mode {
		a := sfi.AnalyzeWeightsINT8(net.AllWeights())
		fmt.Printf("# INT8 data-aware analysis of %s (%d weights, Δ = %g)\n",
			net.NetName, a.Count, a.Scheme.Delta)
		csv := report.NewCSV(os.Stdout, "bit", "f0", "f1", "davg", "p")
		for i := 7; i >= 0; i-- {
			csv.Row(i, a.F0[i], a.F1[i], a.Davg[i], a.P[i])
		}
		return
	}

	analysis := sfi.AnalyzeWeightsIn(net.AllWeights(), f)

	if *fig3 {
		fmt.Printf("# Fig. 3: bit value frequencies over %s weights (%s, %d weights)\n",
			net.NetName, f.Name, analysis.Count)
		csv := report.NewCSV(os.Stdout, "bit", "role", "f0_count", "f1_count")
		for i := f.Bits - 1; i >= 0; i-- {
			csv.Row(i, f.RoleOf(i).String(), analysis.CountF0(i), analysis.CountF1(i))
		}
		fmt.Println()
		if *bars {
			labels := make([]string, f.Bits)
			vals := make([]float64, f.Bits)
			for i := 0; i < f.Bits; i++ {
				labels[i] = fmt.Sprintf("bit %2d f1", f.Bits-1-i)
				vals[i] = analysis.F1[f.Bits-1-i]
			}
			report.Bars(os.Stdout, "f1(i) relative frequency", labels, vals, 50)
			fmt.Println()
		}
	}

	if *fig4 {
		fmt.Printf("# Fig. 4: data-aware p(i) for %s (%s)\n", net.NetName, f.Name)
		csv := report.NewCSV(os.Stdout, "bit", "role", "davg", "p")
		for i := f.Bits - 1; i >= 0; i-- {
			csv.Row(i, f.RoleOf(i).String(), analysis.Davg[i], analysis.P[i])
		}
		fmt.Printf("# most critical bit: %d\n", analysis.MostCriticalBit())
		if *bars {
			labels := make([]string, f.Bits)
			vals := make([]float64, f.Bits)
			for i := 0; i < f.Bits; i++ {
				labels[i] = fmt.Sprintf("bit %2d", f.Bits-1-i)
				vals[i] = analysis.P[f.Bits-1-i]
			}
			report.Bars(os.Stdout, "p(i)", labels, vals, 50)
		}
	}
}
