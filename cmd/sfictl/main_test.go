package main

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cnnsfi/internal/service"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestUsage pins the exit-2 usage surface: no subcommand, unknown
// subcommand, and the shared usage text.
func TestUsage(t *testing.T) {
	t.Run("no_command", func(t *testing.T) {
		code, stdout, stderr := runCLI(t)
		if code != 2 || stdout != "" {
			t.Fatalf("code=%d stdout=%q, want 2 and empty", code, stdout)
		}
		checkGolden(t, "usage.golden", stderr)
	})
	t.Run("unknown_command", func(t *testing.T) {
		code, stdout, stderr := runCLI(t, "destroy")
		if code != 2 || stdout != "" {
			t.Fatalf("code=%d stdout=%q, want 2 and empty", code, stdout)
		}
		checkGolden(t, "unknown_command.golden", stderr)
	})
}

// TestMissingID pins the exit-1 one-liner for every subcommand that
// requires -id.
func TestMissingID(t *testing.T) {
	for _, cmd := range []string{"status", "watch", "result", "cancel", "trace"} {
		t.Run(cmd, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, cmd)
			if code != 1 || stdout != "" {
				t.Fatalf("code=%d stdout=%q, want 1 and empty", code, stdout)
			}
			want := "sfictl: " + cmd + ": -id is required\n"
			if stderr != want {
				t.Errorf("stderr = %q, want %q", stderr, want)
			}
		})
	}
}

// TestAgainstLiveService drives every subcommand against an in-process
// sfid service: submit → watch → status → list → result → cancel.
func TestAgainstLiveService(t *testing.T) {
	svc, err := service.New(service.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()
	addr := []string{"-addr", srv.URL}

	code, stdout, stderr := runCLI(t, append(addr,
		"submit", "-model", "smallcnn", "-approach", "network-wise", "-margin", "0.1")...)
	if code != 0 {
		t.Fatalf("submit exit %d: %s", code, stderr)
	}
	id := strings.TrimSpace(stdout)
	if id == "" {
		t.Fatal("submit printed no job ID on stdout")
	}
	if !strings.Contains(stderr, "sfictl: submitted "+id) {
		t.Errorf("submit diagnostics = %q", stderr)
	}

	code, stdout, _ = runCLI(t, append(addr, "watch", "-id", id)...)
	if code != 0 {
		t.Fatalf("watch exit %d, want 0 (completed); stdout=%q", code, stdout)
	}
	if !strings.Contains(stdout, "state=completed") {
		t.Errorf("watch final line = %q, want state=completed", stdout)
	}

	code, stdout, _ = runCLI(t, append(addr, "status", "-id", id)...)
	if code != 0 || !strings.Contains(stdout, "state=completed") {
		t.Fatalf("status exit %d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, append(addr, "status", "-id", id, "-json")...)
	if code != 0 || !strings.Contains(stdout, `"state": "completed"`) {
		t.Fatalf("status -json exit %d stdout=%q", code, stdout)
	}

	code, stdout, _ = runCLI(t, append(addr, "list")...)
	if code != 0 || !strings.Contains(stdout, id) {
		t.Fatalf("list exit %d stdout=%q", code, stdout)
	}

	code, stdout, _ = runCLI(t, append(addr, "result", "-id", id)...)
	if code != 0 {
		t.Fatalf("result exit %d", code)
	}
	want, err := svc.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("result bytes differ from the service's stored document")
	}

	// Terminal jobs refuse cancellation with one actionable line.
	code, _, stderr = runCLI(t, append(addr, "cancel", "-id", id)...)
	if code != 1 || !strings.Contains(stderr, "HTTP 409") {
		t.Errorf("cancel of completed job: exit %d stderr=%q, want 1 with HTTP 409", code, stderr)
	}
	// Unknown jobs 404 through the same path.
	code, _, stderr = runCLI(t, append(addr, "status", "-id", "nosuch")...)
	if code != 1 || !strings.Contains(stderr, "HTTP 404") {
		t.Errorf("status of unknown job: exit %d stderr=%q, want 1 with HTTP 404", code, stderr)
	}
	// members against a non-coordinator fails with the 409 one-liner.
	code, _, stderr = runCLI(t, append(addr, "members")...)
	if code != 1 || !strings.Contains(stderr, "HTTP 409") {
		t.Errorf("members on non-coordinator: exit %d stderr=%q, want 1 with HTTP 409", code, stderr)
	}
}

// TestFederatedAgainstFleet drives the federation client surface: list
// a coordinator's members (table and -json) and submit one campaign
// with -federated, fetching the merged Result at the end.
func TestFederatedAgainstFleet(t *testing.T) {
	newService := func(cfg service.Config) *service.Service {
		cfg.Dir = t.TempDir()
		svc, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		})
		return svc
	}
	coord := newService(service.Config{
		Coordinator:    true,
		MemberTimeout:  time.Hour,
		FederationPoll: 10 * time.Millisecond,
		ScrapeInterval: 20 * time.Millisecond,
	})
	coordSrv := httptest.NewServer(service.NewMux(coord))
	defer coordSrv.Close()
	member := newService(service.Config{})
	memberSrv := httptest.NewServer(service.NewMux(member))
	defer memberSrv.Close()
	if _, err := coord.RegisterMember(memberSrv.URL, "node-a"); err != nil {
		t.Fatal(err)
	}
	addr := []string{"-addr", coordSrv.URL}

	code, stdout, stderr := runCLI(t, append(addr, "members")...)
	if code != 0 || !strings.Contains(stdout, "node-a") || !strings.Contains(stdout, memberSrv.URL) {
		t.Fatalf("members exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
	code, stdout, _ = runCLI(t, append(addr, "members", "-json")...)
	if code != 0 || !strings.Contains(stdout, `"id": "m0001"`) {
		t.Fatalf("members -json exit %d stdout=%q", code, stdout)
	}

	code, stdout, stderr = runCLI(t, append(addr,
		"submit", "-federated", "-model", "smallcnn", "-approach", "network-wise", "-margin", "0.1")...)
	if code != 0 {
		t.Fatalf("federated submit exit %d: %s", code, stderr)
	}
	id := strings.TrimSpace(stdout)
	code, stdout, _ = runCLI(t, append(addr, "watch", "-id", id)...)
	if code != 0 || !strings.Contains(stdout, "state=completed") {
		t.Fatalf("watch exit %d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, append(addr, "result", "-id", id)...)
	if code != 0 {
		t.Fatalf("result exit %d", code)
	}
	want, err := coord.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("result bytes differ from the coordinator's stored document")
	}

	// The merged correlated trace streams through the same client.
	code, stdout, _ = runCLI(t, append(addr, "trace", "-id", id)...)
	if code != 0 {
		t.Fatalf("trace exit %d", code)
	}
	wantTrace, err := coord.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(wantTrace) {
		t.Errorf("trace bytes differ from the coordinator's merged trace")
	}

	// The fleet view renders as a table, as JSON, and via a single top
	// refresh; a one-member fleet always shows its member row.
	code, stdout, _ = runCLI(t, append(addr, "fleet")...)
	if code != 0 || !strings.Contains(stdout, "node-a") || !strings.Contains(stdout, "fleet:") {
		t.Fatalf("fleet exit %d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, append(addr, "fleet", "-json")...)
	if code != 0 || !strings.Contains(stdout, `"fleet_injections_total"`) {
		t.Fatalf("fleet -json exit %d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, append(addr, "top", "-n", "1", "-interval", "10ms")...)
	if code != 0 || !strings.Contains(stdout, "node-a") {
		t.Fatalf("top exit %d stdout=%q", code, stdout)
	}
}
