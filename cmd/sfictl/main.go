// Command sfictl is the client for the sfid campaign service:
//
//	sfictl submit -model smallcnn -approach data-aware   queue a campaign, print its job ID
//	sfictl list                                          list all campaigns
//	sfictl status -id j000001                            one campaign's status
//	sfictl watch -id j000001                             stream progress (SSE) until the job settles
//	sfictl result -id j000001                            fetch the Result document (sfirun-identical bytes)
//	sfictl trace -id j000001                             fetch the JSONL trace (pipe to sfitrace)
//	sfictl cancel -id j000001                            cancel a pending or running campaign
//	sfictl members                                       list a coordinator's registered member daemons
//	sfictl fleet                                         one-shot fleet view: members, health, running parts
//	sfictl top                                           the fleet view, refreshed until interrupted
//	sfictl submit -federated ...                         run one campaign across the member fleet
//
// Every subcommand takes -addr (default http://localhost:8766) and
// -timeout (default 30s; 0 disables), which bounds the whole subcommand
// except the streaming watch/top loops. Job IDs print on stdout, human
// diagnostics on stderr, so submit composes in scripts:
// id=$(sfictl submit ...). Exit codes: 0 success, 1 failure (one
// "sfictl: ..." line on stderr), 2 usage errors.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cnnsfi/internal/report"
	"cnnsfi/internal/service"
	"cnnsfi/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

const usageText = `usage: sfictl [-addr URL] <command> [flags]

commands:
  submit   queue a campaign (prints the job ID on stdout)
  list     list all campaigns
  status   print one campaign's status
  watch    stream a campaign's progress until it settles
  result   fetch a completed campaign's Result document
  trace    fetch a terminal campaign's JSONL trace
  cancel   cancel a pending or running campaign
  members  list a coordinator's registered member daemons
  fleet    print a coordinator's live fleet view
  top      refresh the fleet view periodically

run "sfictl <command> -h" for per-command flags.
`

// run dispatches the subcommand; it is the whole CLI behind main,
// parameterised for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	// -addr may appear before the subcommand; parse it here so every
	// subcommand shares it.
	global := flag.NewFlagSet("sfictl", flag.ContinueOnError)
	global.SetOutput(stderr)
	global.Usage = func() { fmt.Fprint(stderr, usageText) }
	addr := global.String("addr", "http://localhost:8766", "sfid base URL")
	timeout := global.Duration("timeout", 30*time.Second, "bound on the whole subcommand (0 = none; watch and top are never bounded)")
	if err := global.Parse(args); err != nil {
		return 2
	}
	if *timeout < 0 {
		fmt.Fprintf(stderr, "sfictl: -timeout must be >= 0 (got %v)\n", *timeout)
		return 2
	}
	if global.NArg() == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	cmd, rest := global.Arg(0), global.Args()[1:]
	c := &client{base: strings.TrimRight(*addr, "/"), stdout: stdout, stderr: stderr}
	// watch and top stream until the job (or the user) settles the
	// matter; every other subcommand is a bounded request/response
	// exchange that must not hang on a wedged daemon.
	if cmd != "watch" && cmd != "top" && *timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, *timeout)
		defer cancel()
		ctx = tctx
	}
	switch cmd {
	case "submit":
		return c.submit(ctx, rest)
	case "list":
		return c.list(ctx, rest)
	case "status":
		return c.status(ctx, rest)
	case "watch":
		return c.watch(ctx, rest)
	case "result":
		return c.result(ctx, rest)
	case "trace":
		return c.trace(ctx, rest)
	case "cancel":
		return c.cancel(ctx, rest)
	case "members":
		return c.members(ctx, rest)
	case "fleet":
		return c.fleet(ctx, rest)
	case "top":
		return c.top(ctx, rest)
	}
	fmt.Fprintf(stderr, "sfictl: unknown command %q\n", cmd)
	fmt.Fprint(stderr, usageText)
	return 2
}

type client struct {
	base   string
	stdout io.Writer
	stderr io.Writer
}

func (c *client) fail(format string, args ...any) int {
	fmt.Fprintf(c.stderr, "sfictl: "+format+"\n", args...)
	return 1
}

// newFlagSet builds a subcommand flag set with the shared error
// handling.
func (c *client) newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("sfictl "+name, flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	return fs
}

// api issues one request and decodes the JSON response into out (unless
// out is nil). Non-2xx responses decode the error envelope into one
// actionable message.
func (c *client) api(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *client) submit(ctx context.Context, args []string) int {
	fs := c.newFlagSet("submit")
	name := fs.String("name", "", "display name (default model/approach)")
	model := fs.String("model", "resnet20", "model name (resnet20, mobilenetv2, smallcnn)")
	substrate := fs.String("substrate", "oracle", "evaluator: oracle or inference")
	approach := fs.String("approach", "data-aware", "network-wise, layer-wise, data-unaware, or data-aware")
	margin := fs.Float64("margin", 0.01, "requested error margin e, in (0,1)")
	confidence := fs.Float64("confidence", 0.99, "confidence level, in (0,1)")
	modelSeed := fs.Int64("seed", 1, "weight-generation seed")
	oracleSeed := fs.Int64("oracle-seed", 3, "ground-truth labelling seed")
	runSeed := fs.Int64("run-seed", 0, "sampling seed")
	images := fs.Int("images", 8, "evaluation-set size for the inference substrate")
	workers := fs.Int("workers", 1, "fixed worker count for this campaign (part of its identity)")
	priority := fs.Int("priority", 0, "queue priority; higher runs first")
	earlyStop := fs.Float64("early-stop", -1, "stop each stratum at this achieved margin (0 = the requested margin; negative = disabled)")
	expTimeout := fs.Duration("experiment-timeout", 0, "per-experiment watchdog deadline (0 = none)")
	maxRetries := fs.Int("max-retries", -1, "retries per failing experiment before quarantine; negative disables supervision")
	federated := fs.Bool("federated", false, "run across the coordinator's member fleet (merged Result is byte-identical to a single-node run)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec := service.CampaignSpec{
		Name:                *name,
		Model:               *model,
		Substrate:           *substrate,
		Approach:            *approach,
		Margin:              *margin,
		Confidence:          *confidence,
		ModelSeed:           *modelSeed,
		OracleSeed:          *oracleSeed,
		RunSeed:             *runSeed,
		Images:              *images,
		Workers:             *workers,
		Priority:            *priority,
		ExperimentTimeoutMS: expTimeout.Milliseconds(),
		Federated:           *federated,
	}
	if *earlyStop >= 0 {
		spec.EarlyStop = earlyStop
	}
	if *maxRetries >= 0 {
		spec.MaxRetries = maxRetries
	}
	var st service.JobStatus
	if err := c.api(ctx, http.MethodPost, "/api/v1/campaigns", spec, &st); err != nil {
		return c.fail("submit: %v", err)
	}
	fmt.Fprintf(c.stderr, "sfictl: submitted %s (%s, state %s", st.ID, st.Name, st.State)
	if st.QueuePosition > 0 {
		fmt.Fprintf(c.stderr, ", queue position %d", st.QueuePosition)
	}
	fmt.Fprintln(c.stderr, ")")
	fmt.Fprintln(c.stdout, st.ID)
	return 0
}

func (c *client) list(ctx context.Context, args []string) int {
	fs := c.newFlagSet("list")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var resp struct {
		Campaigns []service.JobStatus `json:"campaigns"`
	}
	if err := c.api(ctx, http.MethodGet, "/api/v1/campaigns", nil, &resp); err != nil {
		return c.fail("list: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp)
		return 0
	}
	tab := report.NewTable("Campaigns", "ID", "Name", "State", "Done", "Planned", "Critical")
	for _, st := range resp.Campaigns {
		tab.AddRow(st.ID, st.Name, string(st.State), st.Done, st.Planned, st.Critical)
	}
	tab.Render(c.stdout)
	return 0
}

func (c *client) status(ctx context.Context, args []string) int {
	fs := c.newFlagSet("status")
	id := fs.String("id", "", "job ID (required)")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		return c.fail("status: -id is required")
	}
	var st service.JobStatus
	if err := c.api(ctx, http.MethodGet, "/api/v1/campaigns/"+*id, nil, &st); err != nil {
		return c.fail("status: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", " ")
		_ = enc.Encode(st)
		return 0
	}
	c.printStatus(st)
	return 0
}

func (c *client) printStatus(st service.JobStatus) {
	fmt.Fprintf(c.stdout, "%s %s state=%s done=%s/%s critical=%s",
		st.ID, st.Name, st.State, report.Comma(st.Done), report.Comma(st.Planned), report.Comma(st.Critical))
	if st.QueuePosition > 0 {
		fmt.Fprintf(c.stdout, " queue=%d", st.QueuePosition)
	}
	if st.Restored > 0 {
		fmt.Fprintf(c.stdout, " restored=%s", report.Comma(st.Restored))
	}
	if st.Error != "" {
		fmt.Fprintf(c.stdout, " error=%q", st.Error)
	}
	fmt.Fprintln(c.stdout)
}

// watch consumes the SSE event stream, printing progress lines until
// the job reaches a terminal state. A dropped stream (daemon drain,
// proxy timeout) reconnects with Last-Event-ID so the server replays
// the retained frames the outage missed, and falls back to polling
// status — watch always ends with the truth.
func (c *client) watch(ctx context.Context, args []string) int {
	fs := c.newFlagSet("watch")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		return c.fail("watch: -id is required")
	}
	var lastID string
	for {
		final, err := c.streamEvents(ctx, *id, &lastID)
		if err != nil {
			return c.fail("watch: %v", err)
		}
		if final != nil {
			return c.reportFinal(*final)
		}
		// Stream ended without a terminal event: re-check the job.
		var st service.JobStatus
		if err := c.api(ctx, http.MethodGet, "/api/v1/campaigns/"+*id, nil, &st); err != nil {
			return c.fail("watch: %v", err)
		}
		if st.State != service.StatePending && st.State != service.StateRunning {
			c.printStatus(st)
			return exitFor(st.State)
		}
		select {
		case <-ctx.Done():
			return c.fail("watch: %v", ctx.Err())
		case <-time.After(500 * time.Millisecond):
		}
	}
}

func exitFor(st service.JobState) int {
	if st == service.StateCompleted {
		return 0
	}
	return 1
}

func (c *client) reportFinal(ev service.JobStateEvent) int {
	fmt.Fprintf(c.stdout, "%s %s state=%s done=%s critical=%s",
		ev.ID, ev.Name, ev.State, report.Comma(ev.Done), report.Comma(ev.Critical))
	if ev.Error != "" {
		fmt.Fprintf(c.stdout, " error=%q", ev.Error)
	}
	fmt.Fprintln(c.stdout)
	return exitFor(ev.State)
}

// streamEvents reads one SSE connection. It returns the terminal
// job_state event if one arrived, or (nil, nil) when the stream ended
// without one. lastID tracks the newest `id:` line seen and is sent
// back as Last-Event-ID on the next connection, so a reconnect resumes
// where the dropped stream stopped.
func (c *client) streamEvents(ctx context.Context, id string, lastID *string) (*service.JobStateEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return nil, errors.New(eb.Error)
		}
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if seq, ok := strings.CutPrefix(line, "id: "); ok {
			*lastID = seq
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators and comments
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(payload), &kind); err != nil {
			continue
		}
		if kind.Kind == service.KindJobState {
			var ev service.JobStateEvent
			if err := json.Unmarshal([]byte(payload), &ev); err != nil {
				continue
			}
			if ev.State != service.StatePending && ev.State != service.StateRunning {
				return &ev, nil
			}
			continue
		}
		if kind.Kind == telemetry.KindProgress {
			ev, err := telemetry.ParseEvent([]byte(payload))
			if err != nil {
				continue
			}
			pct := 0.0
			if ev.Planned > 0 {
				pct = float64(ev.Done) / float64(ev.Planned) * 100
			}
			label := ev.Campaign
			if ev.Part != nil {
				// A federated job's per-part roll-up frame: attribute
				// the tallies to the member executing the window.
				label = fmt.Sprintf("%s part %d (%s)", ev.Campaign, *ev.Part, ev.Member)
			}
			fmt.Fprintf(c.stderr, "%s: %s/%s injections (%.1f%%) critical=%s %.0f inj/s\n",
				label, report.Comma(ev.Done), report.Comma(ev.Planned), pct,
				report.Comma(ev.Critical), ev.Rate)
		}
	}
	// EOF (or scanner error) without a terminal event: let the caller
	// poll and reconnect.
	return nil, nil
}

func (c *client) result(ctx context.Context, args []string) int {
	fs := c.newFlagSet("result")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		return c.fail("result: -id is required")
	}
	var raw []byte
	if err := c.api(ctx, http.MethodGet, "/api/v1/campaigns/"+*id+"/result", nil, &raw); err != nil {
		return c.fail("result: %v", err)
	}
	_, err := c.stdout.Write(raw)
	if err != nil {
		return c.fail("result: %v", err)
	}
	return 0
}

// trace fetches a terminal campaign's JSONL event trace — the merged
// global trace for a completed federated job — suitable for piping
// into sfitrace.
func (c *client) trace(ctx context.Context, args []string) int {
	fs := c.newFlagSet("trace")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		return c.fail("trace: -id is required")
	}
	var raw []byte
	if err := c.api(ctx, http.MethodGet, "/api/v1/campaigns/"+*id+"/trace", nil, &raw); err != nil {
		return c.fail("trace: %v", err)
	}
	if _, err := c.stdout.Write(raw); err != nil {
		return c.fail("trace: %v", err)
	}
	return 0
}

// members lists the coordinator's registered member daemons. A plain
// (non-coordinator) daemon answers 409, which surfaces as the usual
// one-line failure.
func (c *client) members(ctx context.Context, args []string) int {
	fs := c.newFlagSet("members")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var resp struct {
		Members []service.MemberStatus `json:"members"`
	}
	if err := c.api(ctx, http.MethodGet, "/api/v1/members", nil, &resp); err != nil {
		return c.fail("members: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp)
		return 0
	}
	tab := report.NewTable("Members", "ID", "Name", "URL", "Alive", "Last seen")
	for _, m := range resp.Members {
		tab.AddRow(m.ID, m.Name, m.URL, m.Alive, m.LastSeen.Format(time.RFC3339))
	}
	tab.Render(c.stdout)
	return 0
}

// fleet renders the coordinator's live fleet view once: one row per
// member with health and load, the federated parts assigned to each,
// and the fleet-wide roll-ups.
func (c *client) fleet(ctx context.Context, args []string) int {
	fs := c.newFlagSet("fleet")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var fl service.FleetStatus
	if err := c.api(ctx, http.MethodGet, "/api/v1/fleet", nil, &fl); err != nil {
		return c.fail("fleet: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", " ")
		_ = enc.Encode(fl)
		return 0
	}
	c.printFleet(fl)
	return 0
}

func (c *client) printFleet(fl service.FleetStatus) {
	tab := report.NewTable("Fleet", "Member", "Name", "Up", "Heartbeat", "Queue", "Rate", "Parts")
	for _, m := range fl.Members {
		parts := make([]string, 0, len(m.Parts))
		for _, p := range m.Parts {
			parts = append(parts, fmt.Sprintf("%s#%d %s/%s",
				p.Job, p.Part, report.Comma(p.Done), report.Comma(p.Planned)))
		}
		tab.AddRow(m.Member.ID, m.Member.Name, m.Up,
			fmt.Sprintf("%.1fs", m.HeartbeatAgeSeconds), m.QueueLength,
			fmt.Sprintf("%.0f", m.Rate), strings.Join(parts, ", "))
	}
	tab.Render(c.stdout)
	fmt.Fprintf(c.stdout, "fleet: %s injections total, %.0f inj/s\n",
		report.Comma(fl.FleetInjectionsTotal), fl.FleetRate)
}

// top is fleet on a refresh loop: it clears the screen and re-renders
// the view every -interval until interrupted (or -n refreshes).
func (c *client) top(ctx context.Context, args []string) int {
	fs := c.newFlagSet("top")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	count := fs.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *interval <= 0 {
		return c.fail("top: -interval must be > 0 (got %v)", *interval)
	}
	for i := 0; ; i++ {
		var fl service.FleetStatus
		if err := c.api(ctx, http.MethodGet, "/api/v1/fleet", nil, &fl); err != nil {
			return c.fail("top: %v", err)
		}
		if i > 0 {
			fmt.Fprint(c.stdout, "\x1b[H\x1b[2J") // cursor home + clear
		}
		c.printFleet(fl)
		if *count > 0 && i+1 >= *count {
			return 0
		}
		select {
		case <-ctx.Done():
			return 0 // interrupt is how top normally ends
		case <-time.After(*interval):
		}
	}
}

func (c *client) cancel(ctx context.Context, args []string) int {
	fs := c.newFlagSet("cancel")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		return c.fail("cancel: -id is required")
	}
	var st service.JobStatus
	if err := c.api(ctx, http.MethodDelete, "/api/v1/campaigns/"+*id, nil, &st); err != nil {
		return c.fail("cancel: %v", err)
	}
	fmt.Fprintf(c.stderr, "sfictl: %s is %s\n", st.ID, st.State)
	return 0
}
