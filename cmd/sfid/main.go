// Command sfid is the long-running campaign service: it schedules many
// statistical fault-injection campaigns against one shared worker pool
// and exposes an HTTP/JSON API to submit plans, stream progress (SSE),
// fetch results, and cancel jobs. Use sfictl (or curl) as the client;
// docs/API.md documents every endpoint and docs/OPERATIONS.md the
// operational surface.
//
// Durability: every job persists under -state-dir — the job record, the
// engine's checkpoint v2 file while interrupted, and the final Result
// document. SIGTERM (or Ctrl-C) drains gracefully: running campaigns
// write a final checkpoint at their next shard boundary, and the next
// sfid over the same directory resumes each of them with zero
// re-evaluated draws. Results are bit-identical to an sfirun invocation
// of the same (plan, seed, workers), whether or not a restart happened
// in between.
//
// Federation: start one daemon with -coordinator and others with -join
// pointing at it, and campaigns submitted with "federated": true are
// split into contiguous per-stratum draw windows, run across the member
// fleet, and merged into a Result byte-identical to a single-node run —
// see "Running a member fleet" in docs/OPERATIONS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/resilience"
	"cnnsfi/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// delayedEvaluator wraps the default evaluator builder with a fixed
// per-experiment sleep. The verdicts (and therefore the Result) are
// untouched — only wall-clock throughput drops, which is exactly what
// the chaos smoke needs to turn one member into a straggler.
func delayedEvaluator(d time.Duration) service.EvaluatorBuilder {
	return func(spec service.CampaignSpec, net *nn.Network) (core.Evaluator, error) {
		inner, err := service.DefaultEvaluator(spec, net)
		if err != nil {
			return nil, err
		}
		return &slowEvaluator{inner: inner, delay: d}, nil
	}
}

type slowEvaluator struct {
	inner core.Evaluator
	delay time.Duration
}

func (e *slowEvaluator) IsCritical(f faultmodel.Fault) bool {
	time.Sleep(e.delay)
	return e.inner.IsCritical(f)
}
func (e *slowEvaluator) Space() faultmodel.Space { return e.inner.Space() }

// run is the whole daemon behind main, parameterised for testing: it
// serves until ctx is canceled, then drains (campaigns checkpoint and
// release) and returns. Bad input yields one actionable line on stderr
// and exit code 1.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8766", "HTTP listen address (host:port; :0 picks an ephemeral port)")
	stateDir := fs.String("state-dir", "sfid-state", "state directory: job records, checkpoints, results")
	workers := fs.Int("workers", 0, "size of the shared worker-token pool (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 64, "pending-queue cap; submissions beyond it get HTTP 429")
	ckptEvery := fs.Int64("checkpoint-interval", 0, "per-job checkpoint cadence in injections (0 = engine default)")
	progEvery := fs.Int64("progress-interval", 0, "per-job progress/SSE cadence in injections (0 = engine default)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "max wait for running campaigns to checkpoint on shutdown")
	coordinator := fs.Bool("coordinator", false, "accept member registrations and federated submissions")
	memberTimeout := fs.Duration("member-timeout", 10*time.Second, "heartbeat age past which a member counts dead (coordinator)")
	join := fs.String("join", "", "coordinator base URL to register with as a member")
	advertise := fs.String("advertise", "", "base URL the coordinator should reach this member at (default the listen address)")
	memberName := fs.String("member-name", "", "display label for the member listing (default the hostname)")
	heartbeat := fs.Duration("heartbeat-interval", 2*time.Second, "cadence of the member's liveness pings")
	scrapeEvery := fs.Duration("scrape-interval", 2*time.Second, "cadence of the coordinator's member /metrics scrapes")
	rpcTimeout := fs.Duration("member-rpc-timeout", 5*time.Second, "per-attempt deadline for fleet RPCs (document fetches get six times this)")
	fedPoll := fs.Duration("federation-poll", 0, "coordinator's member-job polling cadence (0 = 500ms default)")
	chaosSpec := fs.String("chaos", "", "inject faults into this daemon's outbound fleet RPCs, e.g. \"drop=0.1,err=0.1,delay=5ms,flap=2s/500ms,seed=7\" (testing)")
	evalDelay := fs.Duration("eval-delay", 0, "artificial per-experiment delay, for inducing stragglers in fleet tests")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error + usage
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sfid: "+format+"\n", args...)
		return 1
	}
	if fs.NArg() > 0 {
		return fail("unexpected argument %q; sfid takes only flags", fs.Arg(0))
	}
	if *addr == "" {
		return fail("-addr must not be empty")
	}
	if *workers < 0 {
		return fail("-workers must be >= 0 (got %d); 0 selects all cores", *workers)
	}
	if *maxQueue <= 0 {
		return fail("-max-queue must be > 0 (got %d)", *maxQueue)
	}
	if *ckptEvery < 0 {
		return fail("-checkpoint-interval must be >= 0 (got %d)", *ckptEvery)
	}
	if *progEvery < 0 {
		return fail("-progress-interval must be >= 0 (got %d)", *progEvery)
	}
	if *drainTimeout <= 0 {
		return fail("-drain-timeout must be > 0 (got %v)", *drainTimeout)
	}
	if *coordinator && *join != "" {
		return fail("-coordinator and -join are mutually exclusive; a daemon plays one federation role")
	}
	if *join == "" && (*advertise != "" || *memberName != "") {
		return fail("-advertise and -member-name only apply with -join")
	}
	if *memberTimeout <= 0 {
		return fail("-member-timeout must be > 0 (got %v)", *memberTimeout)
	}
	if *heartbeat <= 0 {
		return fail("-heartbeat-interval must be > 0 (got %v)", *heartbeat)
	}
	if *scrapeEvery <= 0 {
		return fail("-scrape-interval must be > 0 (got %v)", *scrapeEvery)
	}
	if *rpcTimeout <= 0 {
		return fail("-member-rpc-timeout must be > 0 (got %v)", *rpcTimeout)
	}
	if *fedPoll < 0 {
		return fail("-federation-poll must be >= 0 (got %v)", *fedPoll)
	}
	if *evalDelay < 0 {
		return fail("-eval-delay must be >= 0 (got %v)", *evalDelay)
	}
	var transport http.RoundTripper
	if *chaosSpec != "" {
		chaos, err := resilience.ParseChaos(*chaosSpec)
		if err != nil {
			return fail("-chaos: %v", err)
		}
		transport = resilience.NewTransport(chaos, nil)
		fmt.Fprintf(stderr, "sfid: chaos transport active on outbound fleet RPCs (%s)\n", *chaosSpec)
	}
	var build service.EvaluatorBuilder
	if *evalDelay > 0 {
		build = delayedEvaluator(*evalDelay)
	}

	svc, err := service.New(service.Config{
		Dir:              *stateDir,
		TotalWorkers:     *workers,
		MaxQueue:         *maxQueue,
		CheckpointEvery:  *ckptEvery,
		ProgressEvery:    *progEvery,
		Coordinator:      *coordinator,
		MemberTimeout:    *memberTimeout,
		ScrapeInterval:   *scrapeEvery,
		MemberRPCTimeout: *rpcTimeout,
		FederationPoll:   *fedPoll,
		Transport:        transport,
		BuildEvaluator:   build,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "sfid: "+format+"\n", args...)
		},
	})
	if err != nil {
		return fail("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("%v", err)
	}
	srv := &http.Server{Handler: service.NewMux(svc)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "sfid: listening on http://%s (state %s, %d jobs recovered)\n",
		ln.Addr(), *stateDir, len(svc.List()))
	if *coordinator {
		fmt.Fprintln(stderr, "sfid: coordinator mode: accepting member registrations and federated submissions")
	}
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		name := *memberName
		if name == "" {
			name, _ = os.Hostname()
		}
		fmt.Fprintf(stderr, "sfid: joining coordinator %s as %q (advertising %s)\n", *join, name, adv)
		go service.JoinFleet(ctx, service.JoinConfig{
			Coordinator: strings.TrimRight(*join, "/"),
			Advertise:   adv,
			Name:        name,
			Interval:    *heartbeat,
			RPCTimeout:  *rpcTimeout,
			Transport:   transport,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(stderr, "sfid: "+format+"\n", args...)
			},
		})
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return fail("serving: %v", err)
	}

	// Drain: stop accepting connections, then cancel every running
	// campaign and wait for their final checkpoints.
	fmt.Fprintln(stderr, "sfid: shutting down; draining campaigns...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := svc.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "sfid: drain: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "sfid: http shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stderr, "sfid: drained; state persisted for resume")
	return code
}
