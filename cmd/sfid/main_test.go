package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/service"
	"cnnsfi/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestFlagValidation pins the one-line actionable error for every
// rejected input: exit code 1, a single "sfid: ..." line on stderr.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unexpected_argument", []string{"serve"}},
		{"empty_addr", []string{"-addr", ""}},
		{"negative_workers", []string{"-workers", "-1"}},
		{"zero_max_queue", []string{"-max-queue", "0"}},
		{"negative_checkpoint_interval", []string{"-checkpoint-interval", "-1"}},
		{"negative_progress_interval", []string{"-progress-interval", "-1"}},
		{"zero_drain_timeout", []string{"-drain-timeout", "0s"}},
		{"join_and_coordinator", []string{"-coordinator", "-join", "http://c:8766"}},
		{"advertise_without_join", []string{"-advertise", "http://m:8766"}},
		{"zero_member_timeout", []string{"-member-timeout", "0s"}},
		{"zero_heartbeat_interval", []string{"-heartbeat-interval", "0s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run(context.Background(), tc.args, &out, &errOut)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, errOut.String())
			}
			if out.Len() != 0 {
				t.Errorf("stdout not empty: %q", out.String())
			}
			checkGolden(t, "err_"+tc.name+".golden", errOut.String())
		})
	}
	t.Run("bad_flag_exits_2", func(t *testing.T) {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), []string{"-nosuch"}, &out, &errOut); code != 2 {
			t.Fatalf("exit code = %d, want 2", code)
		}
	})
}

// syncBuffer lets the test read daemon stderr while run() is still
// writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^ ]+) \(state [^,]+, (\d+) jobs recovered\)`)

// startDaemon launches run() on an ephemeral port and waits for the
// listen banner, returning the base URL, recovered-job count, and a
// stop function that triggers the SIGTERM drain path and waits for exit.
func startDaemon(t *testing.T, dir string, extra ...string) (base string, recovered string, stderr *syncBuffer, stop func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr = &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{
			"-addr", "127.0.0.1:0",
			"-state-dir", dir,
			"-checkpoint-interval", "64",
			"-progress-interval", "64",
		}, extra...), io.Discard, stderr)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			base, recovered = m[1], m[2]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported listening; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop = func() int {
		cancel()
		select {
		case code := <-done:
			return code
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not exit; stderr:\n%s", stderr.String())
			return -1
		}
	}
	return base, recovered, stderr, stop
}

// directResult reproduces the sfirun path for the given spec.
func directResult(t *testing.T, spec service.CampaignSpec) []byte {
	t.Helper()
	net, err := models.Build(spec.Model, spec.ModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	ev := oracle.New(net, oracle.DefaultConfig(spec.OracleSeed))
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = spec.Margin
	cfg.Confidence = spec.Confidence
	var plan *core.Plan
	switch spec.Approach {
	case "network-wise":
		plan = core.PlanNetworkWise(ev.Space(), cfg)
	case "data-aware":
		plan = core.PlanDataAware(ev.Space(), cfg, dataaware.AnalyzeFP32(net.AllWeights()).P)
	default:
		t.Fatalf("directResult: unhandled approach %q", spec.Approach)
	}
	res, err := core.NewEngine(core.WithWorkers(spec.Workers)).Execute(context.Background(), ev, plan, spec.RunSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceSmokeGolden maintains the golden `make service-smoke`
// diffs a live daemon's served result against. The golden IS the
// direct-engine bytes for the smoke spec, so the shell-level smoke
// asserts the same bit-identity contract as the integration tests —
// regenerate with -update only when the campaign math itself changes.
func TestServiceSmokeGolden(t *testing.T) {
	spec := service.CampaignSpec{
		Model: "smallcnn", Substrate: "oracle", Approach: "data-aware",
		Margin: 0.05, Confidence: 0.99, ModelSeed: 1, OracleSeed: 3, Workers: 1,
	}
	checkGolden(t, "service_smoke.result.golden", string(directResult(t, spec)))
}

// TestDaemonServesAndResumesAcrossRestart is the SIGTERM ladder end to
// end at the binary level: serve, accept campaigns, drain on signal,
// restart over the same state directory, recover both jobs, and produce
// Results bit-identical to the direct engine path.
func TestDaemonServesAndResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	base, recovered, _, stop := startDaemon(t, dir)
	if recovered != "0" {
		t.Fatalf("fresh daemon recovered %s jobs, want 0", recovered)
	}

	spec := service.CampaignSpec{
		Model: "smallcnn", Substrate: "oracle", Approach: "network-wise",
		Margin: 0.05, Confidence: 0.99, ModelSeed: 1, OracleSeed: 3, Workers: 1,
	}
	var ids []string
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d, want 202", resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}

	// SIGTERM-equivalent: drain (possibly mid-campaign) and exit clean.
	if code := stop(); code != 0 {
		t.Fatalf("first daemon exited %d, want 0", code)
	}

	base2, recovered2, stderr2, stop2 := startDaemon(t, dir)
	if recovered2 != "2" {
		t.Fatalf("restarted daemon recovered %s jobs, want 2 (stderr:\n%s)", recovered2, stderr2.String())
	}
	want := directResult(t, spec)
	for _, id := range ids {
		var st service.JobStatus
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(base2 + "/api/v1/campaigns/" + id)
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == service.StateCompleted {
				break
			}
			if st.State == service.StateFailed || st.State == service.StateCanceled || time.Now().After(deadline) {
				t.Fatalf("job %s: state %s (error %q)", id, st.State, st.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/campaigns/%s/result", base2, id))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		got.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result = %d: %s", resp.StatusCode, got.String())
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("job %s: daemon Result differs from direct engine Result", id)
		}
	}
	if code := stop2(); code != 0 {
		t.Fatalf("second daemon exited %d, want 0", code)
	}
	if s := stderr2.String(); !strings.Contains(s, "drained; state persisted for resume") {
		t.Errorf("drain banner missing from stderr:\n%s", s)
	}
}

// TestDaemonFederation wires the federation flags end to end at the
// binary level: one -coordinator daemon, two -join members registering
// over real HTTP, one federated submission — and the merged Result must
// be byte-identical to the direct single-node engine run.
func TestDaemonFederation(t *testing.T) {
	coordBase, _, coordStderr, stopCoord := startDaemon(t, t.TempDir(), "-coordinator")
	memberStops := make([]func() int, 2)
	memberStderrs := make([]*syncBuffer, 2)
	for i := range memberStops {
		_, _, memberStderr, stop := startDaemon(t, t.TempDir(),
			"-join", coordBase, "-heartbeat-interval", "100ms", "-member-name", fmt.Sprintf("m%d", i))
		memberStops[i] = stop
		memberStderrs[i] = memberStderr
	}
	// Wait until both members registered and heartbeat as alive.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(coordBase + "/api/v1/members")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Members []service.MemberStatus `json:"members"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, m := range list.Members {
			if m.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("members never registered: %+v", list.Members)
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := service.CampaignSpec{
		Model: "smallcnn", Substrate: "oracle", Approach: "data-aware",
		Margin: 0.05, Confidence: 0.99, ModelSeed: 1, OracleSeed: 3, Workers: 1,
		Federated: true,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(coordBase+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("federated submit = %d, want 202", resp.StatusCode)
	}
	for {
		resp, err := http.Get(coordBase + "/api/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateCompleted {
			break
		}
		if st.State == service.StateFailed || st.State == service.StateCanceled || time.Now().After(deadline) {
			t.Fatalf("federated job %s: state %s (error %q)", st.ID, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(coordBase + "/api/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, got.String())
	}
	fedSpec := spec
	fedSpec.Federated = false
	if want := directResult(t, fedSpec); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("federated daemon Result differs from direct engine Result")
	}
	for i, stop := range memberStops {
		if code := stop(); code != 0 {
			t.Errorf("member %d exited %d, want 0", i, code)
		}
		if s := memberStderrs[i].String(); !strings.Contains(s, "joining coordinator "+coordBase) {
			t.Errorf("member %d banner missing:\n%s", i, s)
		}
	}
	if code := stopCoord(); code != 0 {
		t.Errorf("coordinator exited %d, want 0", code)
	}
	if s := coordStderr.String(); !strings.Contains(s, "coordinator mode") {
		t.Errorf("coordinator banner missing:\n%s", s)
	}
}
