// Command sfitrace replays a JSONL campaign trace recorded with
// `sfirun -trace` (or any telemetry.Tracer) into a human-readable
// summary: per-campaign tallies, per-stratum lifecycle, worker
// utilization, and the tracer's drop count.
//
//	sfirun -model smallcnn -table3 -trace run.jsonl
//	sfitrace -in run.jsonl
//	sfitrace -in run.jsonl -strip-timing   # deterministic output for diffing
//
// With -in - (the default) the trace is read from stdin, so traces can
// be piped or streamed from another host.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"cnnsfi/internal/telemetry"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind main, parameterised for testing. Bad
// input yields one actionable line on stderr and exit code 1.
func run(_ context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfitrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "trace file to replay (- reads stdin)")
	strip := fs.Bool("strip-timing", false,
		"render durations, rates, and scheduling detail (shards, checkpoints, utilization) as '-' so the report depends only on (plan, seed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "sfitrace: unexpected arguments %v (the trace comes from -in)\n", fs.Args())
		return 1
	}

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "sfitrace: %v\n", err)
			return 1
		}
		defer f.Close()
		r = f
	}

	events, err := telemetry.ReadTrace(r)
	if err != nil {
		fmt.Fprintf(stderr, "sfitrace: %s: %v\n", *in, err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "sfitrace: %s: empty trace\n", *in)
		return 1
	}
	telemetry.Summarize(events).WriteReport(stdout, *strip)
	return 0
}
