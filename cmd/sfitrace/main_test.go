package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestSummaryGolden pins the replayed report for a checked-in fixture
// trace, in both timing modes. Every duration in the fixture is a
// recorded constant, so even the un-stripped report is deterministic.
func TestSummaryGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		args   []string
	}{
		{"demo.golden", []string{"-in", "testdata/demo.jsonl"}},
		{"demo_strip.golden", []string{"-in", "testdata/demo.jsonl", "-strip-timing"}},
		{"truncated.golden", []string{"-in", "testdata/truncated.jsonl"}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 0 {
				t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
			}
			if stderr != "" {
				t.Errorf("stderr not empty: %q", stderr)
			}
			checkGolden(t, tc.golden, stdout)
		})
	}
}

// TestCLIErrors pins the one-line actionable failure modes: exit code 1,
// a single "sfitrace: ..." line on stderr, nothing on stdout.
func TestCLIErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"missing_file", []string{"-in", "testdata/nosuch.jsonl"}, "no such file"},
		{"positional_args", []string{"trace.jsonl"}, "unexpected arguments"},
		{"bad_trace_line", []string{"-in", "testdata/bad.jsonl"}, `line 2: telemetry: unknown event kind "nonsense"`},
		{"empty_trace", []string{"-in", empty}, "empty trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if stdout != "" {
				t.Errorf("stdout not empty: %q", stdout)
			}
			if !strings.HasPrefix(stderr, "sfitrace: ") || strings.Count(stderr, "\n") != 1 {
				t.Errorf("want a single 'sfitrace: ...' line, got %q", stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, tc.wantErr)
			}
		})
	}
}

func TestCLIBadFlagSyntax(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-strip-timing=maybe")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}
	if !strings.Contains(stderr, "invalid") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}
