package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cnnsfi/sfi"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

var resultFile = sync.OnceValues(func() (string, error) {
	net, err := sfi.BuildModel("smallcnn", 1)
	if err != nil {
		return "", err
	}
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	cfg := sfi.DefaultConfig()
	cfg.ErrorMargin = 0.05 // keep the fixture campaign small
	plan := sfi.PlanDataUnaware(o.Space(), cfg)
	res := sfi.Run(o, plan, 0)
	path := filepath.Join(os.TempDir(), "sfireport_test_result.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return path, res.WriteJSON(f)
})

// savedResult runs one seeded data-unaware smallcnn campaign (shared
// across tests) and returns the saved result path. Every seed is pinned,
// so the file — and any report over it — is deterministic.
func savedResult(t *testing.T) string {
	t.Helper()
	path, err := resultFile()
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIReportGolden pins the full report — rankings plus the
// reliability sweep — over a seeded saved campaign.
func TestCLIReportGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-in", savedResult(t), "-fit", "1e-4", "-top-bits", "3")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}
	if stderr != "" {
		t.Errorf("stderr not empty: %q", stderr)
	}
	checkGolden(t, "report_smallcnn.stdout.golden", stdout)
}

// TestCLIQuarantineGolden pins the quarantine surfacing: a supervised
// campaign's excluded draws are listed per stratum with the effective n
// and the (inflated) margin over the reduced sample.
func TestCLIQuarantineGolden(t *testing.T) {
	f, err := os.Open(savedResult(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sfi.ReadResultJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the healthy fixture into a supervised outcome: two draws
	// of stratum 0 quarantined, so its effective n shrinks by two.
	res.Estimates[0].SampleSize -= 2
	res.Quarantined = []sfi.QuarantinedFault{
		{Stratum: 0, Index: 3, Fault: "stuck-at-0 layer 0 bit 31 param 7", Attempts: 3, Err: "experiment panicked on attempt 3: index out of range"},
		{Stratum: 0, Index: 11, Fault: "stuck-at-0 layer 0 bit 31 param 19", Attempts: 3, Err: "experiment exceeded the experiment timeout on attempt 3"},
	}
	path := filepath.Join(t.TempDir(), "quarantined.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	out.Close()

	code, stdout, stderr := runCLI(t, "-in", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %q)", code, stderr)
	}
	checkGolden(t, "report_quarantined.stdout.golden", stdout)
}

// TestCLIFlagValidation pins the failure modes: exit code 1 and a single
// "sfireport: ..." line on stderr.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"missing_input", []string{"-in", filepath.Join(t.TempDir(), "nosuch.json")}, "no such file"},
		{"run_unknown_model", []string{"-run", "-model", "nosuch", "-in", filepath.Join(t.TempDir(), "r.json")}, "nosuch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %q)", code, stderr)
			}
			if stdout != "" {
				t.Errorf("stdout not empty: %q", stdout)
			}
			if !strings.HasPrefix(stderr, "sfireport: ") || strings.Count(stderr, "\n") != 1 {
				t.Errorf("want a single 'sfireport: ...' line, got %q", stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, tc.wantErr)
			}
		})
	}
}

func TestCLIBadFlagSyntax(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fit", "lots")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}
