// Command sfireport renders saved campaign results (Result.WriteJSON /
// sfirun output) into vulnerability and reliability reports without
// re-running any injections:
//
//	sfirun ... (save a campaign)          # produce result.json
//	sfireport -in result.json             # layer/bit rankings
//	sfireport -in result.json -fit 1e-4   # + SDC FIT and protection sweep
//
// With -run, the tool first executes a fresh data-unaware campaign on
// the named model against the oracle substrate and saves it to -in, so a
// full report can be produced in one invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind main, parameterised for testing. Bad
// input yields one actionable line on stderr and exit code 1.
func run(_ context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfireport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "result.json", "campaign result file")
	runFresh := fs.Bool("run", false, "run a fresh data-unaware oracle campaign on -model and save it to -in first")
	model := fs.String("model", "smallcnn", "model for -run")
	seed := fs.Int64("seed", 1, "weight seed for -run")
	oracleSeed := fs.Int64("oracle-seed", 3, "ground-truth seed for -run")
	fitPerBit := fs.Float64("fit", 0, "raw soft-error rate (FIT/bit); > 0 enables the reliability report")
	mission := fs.Float64("mission", 50000, "mission duration in hours for the reliability report")
	topBits := fs.Int("top-bits", 6, "bit-ranking entries to print")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *runFresh {
		if err := runAndSave(*model, *seed, *oracleSeed, *in); err != nil {
			fmt.Fprintf(stderr, "sfireport: %v\n", err)
			return 1
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "sfireport: %v\n", err)
		return 1
	}
	defer f.Close()
	result, err := sfi.ReadResultJSON(f)
	if err != nil {
		fmt.Fprintf(stderr, "sfireport: %s: %v\n", *in, err)
		return 1
	}

	cfg := result.Plan.Config
	fmt.Fprintf(stdout, "campaign: %s, %s injections over %s faults (e=%.2g%%, confidence %.3g)\n",
		result.Plan.Approach, report.Comma(result.Injections()),
		report.Comma(result.Plan.Space.Total()), cfg.ErrorMargin*100, cfg.Confidence)
	// Supervised campaigns may have excluded draws; every margin below is
	// already computed over the reduced effective n, but the reader needs
	// to know the sample shrank and where.
	if n := len(result.Quarantined); n > 0 {
		perStratum := map[int]int{}
		for _, q := range result.Quarantined {
			perStratum[q.Stratum]++
		}
		fmt.Fprintf(stdout, "quarantined: %d draw(s) excluded after exhausting retries across %d strata; margins below are over the reduced n\n",
			n, len(perStratum))
		for i, est := range result.Estimates {
			if k := perStratum[i]; k > 0 {
				sub := result.Plan.Subpops[i]
				fmt.Fprintf(stdout, "  stratum %d (layer %d, bit %d): %d quarantined, effective n %d of %d planned, margin %.4f%%\n",
					i, sub.Layer, sub.Bit, k, est.SampleSize, sub.SampleSize, est.Margin(cfg)*100)
			}
		}
	}
	fmt.Fprintln(stdout)

	// Layer ranking.
	ranks := result.RankLayers()
	tab := report.NewTable("layer vulnerability ranking", "rank", "layer", "critical [%]", "margin [%]", "n")
	for i, r := range ranks {
		tab.AddRow(i+1, r.Layer,
			fmt.Sprintf("%.4f", r.Estimate.PHat()*100),
			fmt.Sprintf("%.4f", r.Estimate.Margin(cfg)*100),
			r.Estimate.SampleSize())
	}
	tab.Render(stdout)
	fmt.Fprintf(stdout, "top-2 statistically separated: %v\n\n", sfi.TopSeparated(ranks, cfg))

	// Bit ranking (bit-granular plans only).
	if result.Plan.Approach == sfi.DataUnaware || result.Plan.Approach == sfi.DataAware {
		bits := result.RankBits()
		if *topBits > len(bits) {
			*topBits = len(bits)
		}
		bt := report.NewTable("bit vulnerability ranking", "rank", "bit", "role", "critical [%]", "margin [%]")
		for i, r := range bits[:*topBits] {
			bt.AddRow(i+1, r.Bit, sfi.FP32.RoleOf(r.Bit).String(),
				fmt.Sprintf("%.4f", r.Estimate.PHat()*100),
				fmt.Sprintf("%.4f", r.Estimate.Margin(cfg)*100))
		}
		bt.Render(stdout)
		fmt.Fprintln(stdout)

		if *fitPerBit > 0 {
			rep, err := sfi.AssessReliability(result, sfi.SERConfig{RawFITPerBit: *fitPerBit})
			if err != nil {
				fmt.Fprintf(stderr, "sfireport: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "SDC rate (unprotected): %.6f FIT over %s cells\n",
				rep.SDCFIT, report.Comma(rep.TotalCells))
			for k := 0; k <= 2; k++ {
				p := rep.BestProtection(k)
				fmt.Fprintf(stdout, "  protect %-12v residual %.6f FIT, overhead %s, mission(%gh) R=%.6f\n",
					p.Bits, rep.ResidualFIT(p), report.Pct(rep.ProtectionOverhead(p)),
					*mission, sfi.MissionReliability(rep.ResidualFIT(p), *mission))
			}
		}
	} else if *fitPerBit > 0 {
		fmt.Fprintln(stderr, "sfireport: reliability report needs a bit-granular campaign (data-unaware or data-aware)")
	}
	return 0
}

func runAndSave(model string, seed, oracleSeed int64, path string) error {
	net, err := sfi.BuildModel(model, seed)
	if err != nil {
		return err
	}
	o := sfi.NewOracle(net, sfi.OracleDefaults(oracleSeed))
	plan := sfi.PlanDataUnaware(o.Space(), sfi.DefaultConfig())
	res := sfi.Run(o, plan, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}
