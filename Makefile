# Developer entry points. Everything is plain `go` — no external tools.
#
#   make build   compile every package and command
#   make test    run the full test suite (tier-1 gate, with build)
#   make race    run the concurrency-relevant packages under the race
#                detector (slow: real inference under -race)
#   make vet     static analysis
#   make bench   the serial-vs-parallel runner benchmarks
#   make verify  what CI would run: build + vet + test
#
# Override GO to pin a toolchain: `make test GO=go1.22`.

GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/inject/ ./internal/nn/ ./sfi/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench BenchmarkParallel_ -benchtime 3x .

verify: build vet test
