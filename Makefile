# Developer entry points. Everything is plain `go` — no external tools.
#
#   make build   compile every package and command
#   make test    run the full test suite (tier-1 gate, with build)
#   make race    run the concurrency-relevant packages under the race
#                detector (slow: real inference under -race)
#   make vet     static analysis
#   make bench   the serial-vs-parallel runner benchmarks
#   make fuzz-smoke  run every fuzz target for a short budget (the CI
#                fuzz stage; seed corpora live in testdata/fuzz/)
#   make trace-smoke  record a tiny traced campaign, replay it with
#                sfitrace, and diff the summary against its golden
#   make vuln    scan the module against the Go vulnerability database
#                (needs network access; CI runs it on every push)
#   make verify  what CI would run: build + vet + test
#
# Override GO to pin a toolchain: `make test GO=go1.22`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench fuzz-smoke trace-smoke vuln verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/inject/ ./internal/nn/ ./internal/telemetry/ ./sfi/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench BenchmarkParallel_ -benchtime 3x .

# `go test -fuzz` accepts one target per invocation, so loop over every
# Fuzz function in the packages that define them.
fuzz-smoke:
	@for pkg in ./internal/fp ./internal/stats; do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
		done; \
	done

# End-to-end trace smoke: record the Table III smallcnn campaigns with
# -trace at a single worker, replay the JSONL with sfitrace, and diff
# the timing-stripped summary against the checked-in golden. Stripped
# output is a pure function of (plan, seed, workers), so any drift means
# the trace schema or the engine's event stream changed.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/sfirun -model smallcnn -substrate oracle -margin 0.05 \
		-workers 1 -table3 -trace "$$tmp/run.jsonl" >/dev/null; \
	$(GO) run ./cmd/sfitrace -in "$$tmp/run.jsonl" -strip-timing \
		| diff -u cmd/sfitrace/testdata/trace_smoke.golden -; \
	echo "trace-smoke: OK"

# govulncheck is fetched on demand (not a module dependency); it needs
# network access to both proxy.golang.org and vuln.go.dev, so the target
# is CI-oriented and safe to skip offline.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

verify: build vet test
