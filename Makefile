# Developer entry points. Everything is plain `go` — no external tools.
#
#   make build   compile every package and command
#   make test    run the full test suite (tier-1 gate, with build)
#   make race    run the concurrency-relevant packages under the race
#                detector (slow: real inference under -race)
#   make vet     static analysis
#   make bench   the serial-vs-parallel runner benchmarks
#   make fuzz-smoke  run every fuzz target for a short budget (the CI
#                fuzz stage; seed corpora live in testdata/fuzz/)
#   make verify  what CI would run: build + vet + test
#
# Override GO to pin a toolchain: `make test GO=go1.22`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench fuzz-smoke verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/inject/ ./internal/nn/ ./sfi/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench BenchmarkParallel_ -benchtime 3x .

# `go test -fuzz` accepts one target per invocation, so loop over every
# Fuzz function in the packages that define them.
fuzz-smoke:
	@for pkg in ./internal/fp ./internal/stats; do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
		done; \
	done

verify: build vet test
