# Developer entry points. Everything is plain `go` — no external tools.
#
#   make build   compile every package and command
#   make test    run the full test suite (tier-1 gate, with build)
#   make race    run the concurrency-relevant packages under the race
#                detector (slow: real inference under -race)
#   make vet     static analysis
#   make bench   the serial-vs-parallel runner benchmarks, plus the
#                batched-engine and grouped-experiment hot-path prices
#   make fuzz-smoke  run every fuzz target for a short budget (the CI
#                fuzz stage; seed corpora live in testdata/fuzz/)
#   make trace-smoke  record a tiny traced campaign, replay it with
#                sfitrace, and diff the summary against its golden
#   make service-smoke  start sfid, drive a campaign through sfictl,
#                and diff the served result against the sfirun golden
#   make federation-smoke  boot a coordinator and two member daemons,
#                run a federated campaign, and diff the merged result
#                against the same golden; also asserts the fleet
#                metrics roll-up and the merged-trace strip-timing
#                identity against a single-node daemon
#   make chaos-smoke  federation smoke with a fault-injecting transport
#                on the coordinator's fleet RPCs (drops, 5xx, torn
#                bodies, a flapping link) and one induced straggler
#                member; asserts the merged result still matches the
#                single-node golden and the resilience layer's metrics
#                (retries, breaker state, speculative dispatch) moved
#   make docs-check  fail on dead relative links in README/docs
#   make vuln    scan the module against the Go vulnerability database
#                (needs network access; CI runs it on every push)
#   make verify  what CI would run: build + vet + test
#
# Override GO to pin a toolchain: `make test GO=go1.22`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench fuzz-smoke trace-smoke service-smoke federation-smoke chaos-smoke docs-check vuln verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/inject/ ./internal/nn/ ./internal/telemetry/ ./internal/service/ ./sfi/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel_|BenchmarkEngine_Batched|BenchmarkIsCritical_Grouped' -benchtime 3x .

# `go test -fuzz` accepts one target per invocation, so loop over every
# Fuzz function in the packages that define them.
fuzz-smoke:
	@for pkg in ./internal/fp ./internal/stats; do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
		done; \
	done

# End-to-end trace smoke: record the Table III smallcnn campaigns with
# -trace at a single worker, replay the JSONL with sfitrace, and diff
# the timing-stripped summary against the checked-in golden. Stripped
# output is a pure function of (plan, seed, workers), so any drift means
# the trace schema or the engine's event stream changed.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/sfirun -model smallcnn -substrate oracle -margin 0.05 \
		-workers 1 -table3 -trace "$$tmp/run.jsonl" >/dev/null; \
	$(GO) run ./cmd/sfitrace -in "$$tmp/run.jsonl" -strip-timing \
		| diff -u cmd/sfitrace/testdata/trace_smoke.golden -; \
	echo "trace-smoke: OK"

# End-to-end service smoke: boot sfid on an ephemeral port, submit the
# smallcnn data-aware campaign through sfictl, watch it to completion,
# and diff the served Result document against the checked-in golden.
# The golden is maintained by TestServiceSmokeGolden (cmd/sfid) as the
# direct-engine bytes for the same spec, so this asserts the service's
# bit-identity contract from outside the process boundary.
service-smoke:
	@set -e; tmp=$$(mktemp -d); pid=; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sfid" ./cmd/sfid; \
	$(GO) build -o "$$tmp/sfictl" ./cmd/sfictl; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/state" 2>"$$tmp/log" & pid=$$!; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^sfid: listening on \(http://[^ ]*\) .*|\1|p' "$$tmp/log"); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "service-smoke: sfid never came up"; cat "$$tmp/log"; exit 1; }; \
	id=$$("$$tmp/sfictl" -addr "$$addr" submit -model smallcnn -approach data-aware \
		-margin 0.05 -workers 1 2>/dev/null); \
	"$$tmp/sfictl" -addr "$$addr" watch -id "$$id" >/dev/null 2>&1; \
	"$$tmp/sfictl" -addr "$$addr" result -id "$$id" >"$$tmp/result.json"; \
	diff -u cmd/sfid/testdata/service_smoke.result.golden "$$tmp/result.json"; \
	kill -TERM $$pid; wait $$pid; \
	echo "service-smoke: OK"

# End-to-end federation smoke: boot a coordinator and two member
# daemons, wait for both registrations, submit the same campaign as
# service-smoke with -federated, and diff the merged Result against the
# identical golden. This asserts the coordinator's byte-identity
# contract — a federated merge over real daemons equals a single-node
# direct-engine run — from outside the process boundary. On top of the
# Result diff it asserts the observability surface: the coordinator's
# /metrics must report both members up and a nonzero fleet injection
# roll-up, and the merged correlated trace, stripped of timing, must be
# byte-identical to a single-node daemon's stripped trace of the same
# spec.
federation-smoke:
	@set -e; tmp=$$(mktemp -d); pids=; \
	trap 'kill $$pids 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sfid" ./cmd/sfid; \
	$(GO) build -o "$$tmp/sfictl" ./cmd/sfictl; \
	$(GO) build -o "$$tmp/sfitrace" ./cmd/sfitrace; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/coord" -coordinator \
		-scrape-interval 200ms 2>"$$tmp/coord.log" & pids="$$pids $$!"; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^sfid: listening on \(http://[^ ]*\) .*|\1|p' "$$tmp/coord.log"); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "federation-smoke: coordinator never came up"; cat "$$tmp/coord.log"; exit 1; }; \
	for m in 1 2; do \
		"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/member$$m" \
			-join "$$addr" -member-name "member$$m" -heartbeat-interval 200ms \
			2>"$$tmp/member$$m.log" & pids="$$pids $$!"; \
	done; \
	for i in $$(seq 1 100); do \
		n=$$("$$tmp/sfictl" -addr "$$addr" members -json 2>/dev/null | grep -c '"alive": true' || true); \
		[ "$$n" = 2 ] && break; sleep 0.1; \
	done; \
	[ "$$n" = 2 ] || { echo "federation-smoke: members never registered"; cat "$$tmp"/member*.log; exit 1; }; \
	id=$$("$$tmp/sfictl" -addr "$$addr" submit -model smallcnn -approach data-aware \
		-margin 0.05 -workers 1 -federated 2>/dev/null); \
	"$$tmp/sfictl" -addr "$$addr" watch -id "$$id" >/dev/null 2>&1; \
	"$$tmp/sfictl" -addr "$$addr" result -id "$$id" >"$$tmp/result.json"; \
	diff -u cmd/sfid/testdata/service_smoke.result.golden "$$tmp/result.json"; \
	for i in $$(seq 1 100); do \
		curl -sf "$$addr/metrics" >"$$tmp/metrics" || true; \
		grep -q 'sfid_member_up{[^}]*} 1' "$$tmp/metrics" \
			&& grep -Eq '^sfid_fleet_injections_total [1-9]' "$$tmp/metrics" && break; \
		sleep 0.1; \
	done; \
	grep -q 'sfid_member_up{[^}]*} 1' "$$tmp/metrics" \
		|| { echo "federation-smoke: coordinator /metrics never reported a member up"; cat "$$tmp/metrics"; exit 1; }; \
	grep -Eq '^sfid_fleet_injections_total [1-9]' "$$tmp/metrics" \
		|| { echo "federation-smoke: sfid_fleet_injections_total never left zero"; cat "$$tmp/metrics"; exit 1; }; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/single" 2>"$$tmp/single.log" & pids="$$pids $$!"; \
	saddr=; for i in $$(seq 1 100); do \
		saddr=$$(sed -n 's|^sfid: listening on \(http://[^ ]*\) .*|\1|p' "$$tmp/single.log"); \
		[ -n "$$saddr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$saddr" ] || { echo "federation-smoke: single-node daemon never came up"; cat "$$tmp/single.log"; exit 1; }; \
	sid=$$("$$tmp/sfictl" -addr "$$saddr" submit -model smallcnn -approach data-aware \
		-margin 0.05 -workers 1 2>/dev/null); \
	"$$tmp/sfictl" -addr "$$saddr" watch -id "$$sid" >/dev/null 2>&1; \
	"$$tmp/sfictl" -addr "$$saddr" trace -id "$$sid" | "$$tmp/sfitrace" -strip-timing >"$$tmp/single.stripped"; \
	"$$tmp/sfictl" -addr "$$addr" trace -id "$$id" | "$$tmp/sfitrace" -strip-timing >"$$tmp/fed.stripped"; \
	diff -u "$$tmp/single.stripped" "$$tmp/fed.stripped"; \
	kill -TERM $$pids; wait $$pids; \
	echo "federation-smoke: OK"

# Chaos smoke: the federation smoke with the screws turned. The
# coordinator's outbound fleet RPCs run through the -chaos transport
# (dropped connections, synthesized 5xx, torn bodies, a link that flaps
# down 300ms of every 1500ms), member2 is made a straggler with
# -eval-delay, and the merged Result must still be byte-identical to
# the same single-node golden as service-smoke — retries, breaker
# trips, speculative re-execution and all. The metrics greps pin that
# the resilience layer actually worked for it: retries were scheduled,
# every member carries a breaker series, and the straggling window was
# speculatively re-dispatched.
chaos-smoke:
	@set -e; tmp=$$(mktemp -d); pids=; \
	trap 'kill $$pids 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sfid" ./cmd/sfid; \
	$(GO) build -o "$$tmp/sfictl" ./cmd/sfictl; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/coord" -coordinator \
		-chaos "drop=0.1,err=0.1,truncate=0.05,delay=2ms,flap=1500ms/300ms,seed=7" \
		-federation-poll 100ms -member-rpc-timeout 2s -scrape-interval 200ms \
		2>"$$tmp/coord.log" & pids="$$pids $$!"; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^sfid: listening on \(http://[^ ]*\) .*|\1|p' "$$tmp/coord.log"); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "chaos-smoke: coordinator never came up"; cat "$$tmp/coord.log"; exit 1; }; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/member1" -join "$$addr" \
		-member-name member1 -heartbeat-interval 200ms -eval-delay 2ms \
		-progress-interval 16 2>"$$tmp/member1.log" & pids="$$pids $$!"; \
	"$$tmp/sfid" -addr 127.0.0.1:0 -state-dir "$$tmp/member2" -join "$$addr" \
		-member-name member2 -heartbeat-interval 200ms -eval-delay 15ms \
		-progress-interval 16 2>"$$tmp/member2.log" & pids="$$pids $$!"; \
	for i in $$(seq 1 100); do \
		n=$$("$$tmp/sfictl" -addr "$$addr" members -json 2>/dev/null | grep -c '"alive": true' || true); \
		[ "$$n" = 2 ] && break; sleep 0.1; \
	done; \
	[ "$$n" = 2 ] || { echo "chaos-smoke: members never registered"; cat "$$tmp"/member*.log; exit 1; }; \
	id=$$("$$tmp/sfictl" -addr "$$addr" submit -model smallcnn -approach data-aware \
		-margin 0.05 -workers 1 -federated 2>/dev/null); \
	"$$tmp/sfictl" -addr "$$addr" watch -id "$$id" >/dev/null 2>&1; \
	"$$tmp/sfictl" -addr "$$addr" result -id "$$id" >"$$tmp/result.json"; \
	diff -u cmd/sfid/testdata/service_smoke.result.golden "$$tmp/result.json"; \
	curl -sf "$$addr/metrics" >"$$tmp/metrics"; \
	grep -Eq '^sfid_retries_total [1-9]' "$$tmp/metrics" \
		|| { echo "chaos-smoke: sfid_retries_total never left zero under chaos"; cat "$$tmp/metrics"; exit 1; }; \
	grep -q 'sfid_member_breaker_state{member=' "$$tmp/metrics" \
		|| { echo "chaos-smoke: no per-member breaker-state series"; cat "$$tmp/metrics"; exit 1; }; \
	grep -Eq '^sfid_speculative_parts_total [1-9]' "$$tmp/metrics" \
		|| { echo "chaos-smoke: the induced straggler was never speculatively re-dispatched"; cat "$$tmp/metrics"; exit 1; }; \
	kill -TERM $$pids; wait $$pids; \
	echo "chaos-smoke: OK"

# The doc-link checker is a root-level test; running it by name keeps
# the target fast and the logic in Go instead of shell.
docs-check:
	$(GO) test -run '^TestDocLinks$$' .

# govulncheck is fetched on demand (not a module dependency); it needs
# network access to both proxy.golang.org and vuln.go.dev, so the target
# is CI-oriented and safe to skip offline.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

verify: build vet test
