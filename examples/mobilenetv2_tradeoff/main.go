// Reproduce the MobileNetV2 side of the evaluation (Table II, Table III,
// Fig. 7): the 54-layer, 2.2M-parameter CIFAR MobileNetV2 has a
// 141,029,376-fault population, so this example demonstrates the
// methodology at the paper's full scale using the simulated ground-truth
// substrate (the exhaustive enumeration alone walks all 141M faults).
//
// Run with:
//
//	go run ./examples/mobilenetv2_tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	net, err := sfi.BuildModel("mobilenetv2", 1)
	if err != nil {
		log.Fatal(err)
	}
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()

	// Table II: aggregate plan figures.
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	network := sfi.PlanNetworkWise(space, cfg)
	layer := sfi.PlanLayerWise(space, cfg)
	unaware := sfi.PlanDataUnaware(space, cfg)
	aware := sfi.PlanDataAware(space, cfg, analysis.P)

	tab := report.NewTable("Table II — MobileNetV2: Exhaustive vs Statistical FIs (totals)",
		"Total Layers", "Total Parameters", "Exhaustive FI",
		"Network-wise [9]", "Layer-wise", "Data-unaware", "Data-aware")
	tab.AddRow(space.NumLayers(), net.TotalWeights(), space.Total(),
		network.TotalInjections(), layer.TotalInjections(),
		unaware.TotalInjections(), aware.TotalInjections())
	tab.Render(os.Stdout)

	// Exhaustive ground truth over all 141M faults.
	fmt.Printf("\nenumerating exhaustive ground truth over %s faults...\n",
		report.Comma(space.Total()))
	start := time.Now()
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	truth := make([]float64, space.NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Table III: cost/validity trade-off. Campaigns run shard-parallel
	// on every core; the seed fixes the result regardless of worker count.
	t3 := report.NewTable("Table III — MobileNetV2",
		"Approach", "FIs (n)", "Injected Faults [%]", "Avg Error Margin [%]", "Covered layers")
	t3.AddRow("exhaustive", space.Total(), "100.00%", "-", "-")
	for _, p := range []struct {
		name string
		plan *sfi.Plan
	}{
		{"network-wise", network}, {"layer-wise", layer},
		{"data-unaware", unaware}, {"data-aware", aware},
	} {
		cmp := sfi.Compare(sfi.RunParallel(o, p.plan, 0, 0), truth)
		t3.AddRow(p.name, cmp.Injections, report.Pct(cmp.InjectedFraction),
			fmt.Sprintf("%.3f", cmp.AvgMargin*100),
			fmt.Sprintf("%d/%d", cmp.CoveredLayers, space.NumLayers()))
	}
	t3.Render(os.Stdout)

	// Fig. 7 flavor: the first layers where network-wise goes wrong.
	nw := sfi.Compare(sfi.RunParallel(o, network, 0, 0), truth)
	da := sfi.Compare(sfi.RunParallel(o, aware, 0, 0), truth)
	fmt.Println("\nFig. 7 excerpt — per-layer estimates (first 10 layers):")
	fmt.Println("layer  exhaustive    network-wise (± margin)    data-aware (± margin)")
	for l := 0; l < 10; l++ {
		a, b := nw.Layers[l], da.Layers[l]
		fmt.Printf("%5d   %8.4f%%   %8.4f%% ± %7.4f%%   %8.4f%% ± %7.4f%%\n",
			l, a.Exhaustive*100,
			a.Estimate.PHat()*100, a.Margin*100,
			b.Estimate.PHat()*100, b.Margin*100)
	}
}
