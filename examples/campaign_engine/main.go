// Campaign engine tour: execute a layer-wise campaign through
// sfi.NewEngine with streaming progress and margin-based early stop,
// then demonstrate the checkpoint/resume guarantee — a campaign
// interrupted mid-run and resumed ends in a Result byte-identical to
// the uninterrupted run at the same seed and worker count.
//
// Run with:
//
//	go run ./examples/campaign_engine
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"cnnsfi/sfi"
)

func main() {
	net, err := sfi.BuildModel("smallcnn", 1)
	if err != nil {
		log.Fatal(err)
	}
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig() // e = 1%, 99% confidence
	plan := sfi.PlanLayerWise(space, cfg)
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	const seed, workers = 7, 4

	// 1. Streaming progress + early stop. Progress sinks run on the
	//    engine's dispatcher goroutine every WithProgressInterval merged
	//    injections, so a sink that does I/O (like this printer) is
	//    decoupled through sfi.AsyncSink: events are handed to a
	//    drain goroutine through a small buffer, interior events are
	//    dropped rather than ever blocking the dispatcher, and the final
	//    event is always delivered. WithEarlyStop(0.02) halts each
	//    stratum as soon as its achieved margin (Eq. 3 inverted at the
	//    observed proportion) reaches 2%, reporting the actual sample
	//    size next to the plan's.
	fmt.Printf("layer-wise plan: %d strata, %d injections\n\n",
		len(plan.Subpops), plan.TotalInjections())
	progress, stopProgress := sfi.AsyncSink(func(p sfi.Progress) {
		fmt.Printf("  %6.1f%%  done=%-6d critical=%-5d %.0f inj/s\n",
			float64(p.Done)/float64(p.Planned)*100, p.Done, p.Critical, p.Rate)
	}, 64)
	eng := sfi.NewEngine(
		sfi.WithWorkers(workers),
		sfi.WithProgressInterval(8192),
		sfi.WithProgress(progress),
		sfi.WithEarlyStop(0.02),
	)
	res, err := eng.Execute(context.Background(), o, plan, seed)
	stopProgress() // drain buffered progress lines before printing the tally
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nearly stop halted %d/%d strata:\n", len(res.EarlyStopped), len(plan.Subpops))
	for _, i := range res.EarlyStopped {
		est := res.Estimates[i]
		fmt.Printf("  stratum %d (layer %d): n=%d of planned %d, margin %.4f\n",
			i, plan.Subpops[i].Layer, est.SampleSize, plan.Subpops[i].SampleSize,
			cfg.ObservedMargin(est.PHat(), est.SampleSize, est.PopulationSize))
	}

	// 2. Checkpoint/resume bit-identity. Reference: the uninterrupted
	//    run at the same seed and worker count.
	want := runBytes(sfi.RunParallel(o, plan, seed, workers))

	// Interrupt the same campaign a third of the way through by
	// cancelling the context from the progress sink; the engine writes
	// the checkpoint and returns the merged prefix as a partial Result.
	dir, err := os.MkdirTemp("", "campaign-engine")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "layerwise.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	partial, err := sfi.NewEngine(
		sfi.WithWorkers(workers),
		sfi.WithCheckpoint(ckpt),
		sfi.WithProgressInterval(4096),
		sfi.WithProgress(func(p sfi.Progress) {
			if p.Done >= plan.TotalInjections()/3 {
				once.Do(cancel)
			}
		}),
	).Execute(ctx, o, plan, seed)
	cancel()
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected cancellation, got %v", err)
	}
	fmt.Printf("\ninterrupted after %d/%d injections (partial=%v), checkpoint saved\n",
		partial.Injections(), plan.TotalInjections(), partial.Partial)

	// Resume from the checkpoint and finish the campaign.
	resumed, err := sfi.NewEngine(
		sfi.WithWorkers(workers),
		sfi.WithCheckpoint(ckpt),
		sfi.WithResume(),
	).Execute(context.Background(), o, plan, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed to completion: %d injections\n", resumed.Injections())

	if bytes.Equal(runBytes(resumed), want) {
		fmt.Println("resumed result is byte-identical to the uninterrupted run")
	} else {
		log.Fatal("resumed result diverged from the uninterrupted run")
	}
}

func runBytes(r *sfi.Result) []byte {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
