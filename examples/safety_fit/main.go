// Safety FIT analysis: turn a statistical fault-injection campaign into
// the numbers a functional-safety engineer needs (the ISO 26262 context
// the paper's introduction motivates).
//
//  1. Run a data-aware SFI on ResNet-20's full 17.2M-fault population.
//  2. Convert the per-bit criticality estimates into a silent-data-
//     corruption FIT rate, given a raw memory soft-error rate.
//  3. Explore selective protection: how much FIT does protecting only
//     the most critical bit positions remove, at what memory overhead?
//  4. Check the result against a vehicle-lifetime mission target.
//
// Run with:
//
//	go run ./examples/safety_fit
package main

import (
	"fmt"
	"log"

	"cnnsfi/sfi"
)

func main() {
	net, err := sfi.BuildModel("resnet20", 1)
	if err != nil {
		log.Fatal(err)
	}
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))

	// 1. Data-aware campaign (≈2.2% of the population).
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	plan := sfi.PlanDataAware(space, cfg, analysis.P)
	result := sfi.Run(o, plan, 0)
	fmt.Printf("campaign: %d injections over %s's %d faults\n",
		result.Injections(), net.NetName, space.Total())

	// 2. SDC FIT under a typical SRAM soft-error rate.
	ser := sfi.SERConfig{RawFITPerBit: 1e-4} // FIT per bit
	report, err := sfi.AssessReliability(result, ser)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweight memory: %d bits; raw upset rate %.2g FIT/bit\n",
		report.TotalCells, ser.RawFITPerBit)
	fmt.Printf("estimated SDC rate (unprotected): %.4f FIT\n", report.SDCFIT)
	fmt.Println("\ntop contributors:")
	for _, bc := range report.Bits[:4] {
		fmt.Printf("  bit %2d: P(critical|upset) = %.4f → %.4f FIT\n",
			bc.Bit, bc.CriticalProbability, bc.FIT)
	}

	// 3. Selective protection sweep.
	fmt.Println("\nselective protection (parity + reload on chosen bit positions):")
	fmt.Println("protected bits   residual FIT   removed   memory overhead")
	for k := 0; k <= 4; k++ {
		p := report.BestProtection(k)
		res := report.ResidualFIT(p)
		fmt.Printf("  %-14v %.6f FIT   %5.1f%%   %5.1f%%\n",
			p.Bits, res, (1-res/report.SDCFIT)*100, report.ProtectionOverhead(p)*100)
	}

	// 4. Mission check: a 50,000-hour vehicle lifetime.
	const missionHours = 50000
	fmt.Printf("\nmission: %d h; survival unprotected: %.6f\n",
		missionHours, sfi.MissionReliability(report.SDCFIT, missionHours))
	best1 := report.BestProtection(1)
	fmt.Printf("with bit-%d protection:            %.6f\n",
		best1.Bits[0], sfi.MissionReliability(report.ResidualFIT(best1), missionHours))
	fmt.Printf("FIT budget for R = 0.999 over the mission: %.4f FIT\n",
		sfi.RequiredFIT(0.999, missionHours))
}
