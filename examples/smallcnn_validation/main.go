// End-to-end inference-based validation on a genuinely trained CNN: the
// real-forward-pass counterpart of the paper's exhaustive campaigns.
//
//  1. Train SmallCNN on the synthetic dataset with the built-in SGD
//     substrate (reaches ≈100% test accuracy in a few epochs).
//  2. Run an exhaustive fault-injection campaign over one layer with
//     real inference (every stuck-at fault on every weight bit,
//     classified by top-1 SDC against the golden predictions).
//  3. Run the four statistical campaigns restricted to that layer and
//     check each estimate against the exhaustive rate.
//
// The full four-layer exhaustive run (109,312 faults × 8 images) takes a
// couple of minutes; pass -all to do it. The default single-layer run
// finishes in a few seconds.
//
// Run with:
//
//	go run ./examples/smallcnn_validation [-all]
package main

import (
	"flag"
	"fmt"
	"time"

	"cnnsfi/sfi"
)

func main() {
	all := flag.Bool("all", false, "exhaustively inject every layer (minutes) instead of layer 0")
	flag.Parse()

	// 1. Train.
	net := sfi.TrainableSmallCNN(1)
	data := sfi.SyntheticDataset(sfi.DatasetConfig{N: 260, Seed: 5, Size: 16, Noise: 0.1})
	trainSet, testSet := data.Split(200)
	tr, err := sfi.NewTrainer(net, 0.002, 0.9)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	losses := tr.Fit(trainSet, 10)
	fmt.Printf("trained SmallCNN in %v: loss %.3f → %.3f, test accuracy %.1f%%\n",
		time.Since(start).Round(time.Millisecond),
		losses[0], losses[len(losses)-1], sfi.Accuracy(net, testSet)*100)

	// 2. Golden state + injector over a fixed evaluation set.
	evalSet := sfi.SyntheticDataset(sfi.DatasetConfig{N: 8, Seed: 9, Size: 16, Noise: 0.1})
	inj := sfi.NewInjector(net, evalSet)
	space := inj.Space()
	fmt.Printf("fault population: %d (4 layers × 32 bits × 2 stuck-at)\n", space.Total())

	layers := []int{0}
	if *all {
		layers = []int{0, 1, 2, 3}
	}

	cfg := sfi.DefaultConfig()
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	plans := []struct {
		name string
		plan *sfi.Plan
	}{
		{"network-wise", sfi.PlanNetworkWise(space, cfg)},
		{"layer-wise", restrict(sfi.PlanLayerWise(space, cfg), layers)},
		{"data-unaware", restrict(sfi.PlanDataUnaware(space, cfg), layers)},
		{"data-aware", restrict(sfi.PlanDataAware(space, cfg, analysis.P), layers)},
	}

	for _, l := range layers {
		// Exhaustive inference FI over the layer.
		start = time.Now()
		var critical int64
		n := space.LayerTotal(l)
		for j := int64(0); j < n; j++ {
			if inj.IsCritical(space.LayerFault(l, j)) {
				critical++
			}
		}
		truth := float64(critical) / float64(n)
		fmt.Printf("\nlayer %d exhaustive: %d faults, %.4f%% critical (%v)\n",
			l, n, truth*100, time.Since(start).Round(time.Millisecond))

		// Statistical estimates for the same layer, evaluated on all
		// cores: the injector clones its network weights per worker, and
		// the result is bit-identical to the serial sfi.Run at seed 0.
		for _, p := range plans {
			res := sfi.RunParallel(inj, p.plan, 0, 0)
			est := res.LayerEstimate(l)
			fmt.Printf("  %-13s n=%7d  estimate %.4f%% ± %.4f%%  covers=%v\n",
				p.name, est.SampleSize(), est.PHat()*100, est.Margin(cfg)*100,
				est.Covers(cfg, truth))
		}
	}
	fmt.Printf("\ntotal inference experiments: %d\n", inj.Injections)
}

// restrict keeps only the plan strata targeting the given layers, so the
// example does not pay for injections in layers it never reports on.
func restrict(plan *sfi.Plan, layers []int) *sfi.Plan {
	keep := make(map[int]bool, len(layers))
	for _, l := range layers {
		keep[l] = true
	}
	var subpops []sfi.Subpopulation
	for _, s := range plan.Subpops {
		if keep[s.Layer] {
			subpops = append(subpops, s)
		}
	}
	out := *plan
	out.Subpops = subpops
	return &out
}
