// Quickstart: plan a data-aware statistical fault-injection campaign on
// a small CNN, execute it against the simulated ground-truth substrate,
// and compare a per-layer estimate with the exhaustive value.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cnnsfi/sfi"
)

func main() {
	// 1. A CNN with injectable weight layers (4 layers, 1,708 weights,
	//    109,312 possible stuck-at faults).
	net, err := sfi.BuildModel("smallcnn", 1)
	if err != nil {
		log.Fatal(err)
	}
	space := sfi.StuckAtSpace(net)
	fmt.Printf("model %s: %d weight layers, %d weights, %d faults\n",
		net.NetName, space.NumLayers(), net.TotalWeights(), space.Total())

	// 2. Derive the per-bit criticality p(i) from the golden weights
	//    (the paper's Eq. 4-5) and plan the campaign (Eq. 1/3).
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	cfg := sfi.DefaultConfig() // e = 1%, 99% confidence, t = 2.58
	plan := sfi.PlanDataAware(space, cfg, analysis.P)
	fmt.Printf("data-aware plan: %d injections (%.2f%% of the population)\n",
		plan.TotalInjections(), plan.InjectedFraction()*100)

	// 3. Execute against the ground-truth substrate on all cores
	//    (workers = 0 selects GOMAXPROCS; the same seed gives a result
	//    bit-identical to the serial sfi.Run) and compare with the
	//    exhaustive per-layer critical rates.
	o := sfi.NewOracle(net, sfi.OracleDefaults(3))
	result := sfi.RunParallel(o, plan, 0, 0)

	fmt.Println("\nlayer  exhaustive   estimate ± margin   covered")
	for l := 0; l < space.NumLayers(); l++ {
		truth := o.ExhaustiveLayerRate(l)
		est := result.LayerEstimate(l)
		fmt.Printf("%5d   %8.4f%%   %7.4f%% ± %.4f%%   %v\n",
			l, truth*100, est.PHat()*100, est.Margin(cfg)*100,
			est.Covers(cfg, truth))
	}
}
