// The paper's future-work extension: apply the data-aware analysis to
// different data representations. This example derives p(i) for the
// same ResNet-20 weights stored as FP32, FP16, and BF16, and compares
// the resulting campaign sizes — fewer bits means a smaller population,
// but the relative compression of the data-aware approach persists
// because every IEEE-like format concentrates criticality in its top
// exponent bits.
//
// Run with:
//
//	go run ./examples/datatype_sweep
package main

import (
	"fmt"
	"log"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	net, err := sfi.BuildModel("resnet20", 1)
	if err != nil {
		log.Fatal(err)
	}
	weights := net.AllWeights()
	cfg := sfi.DefaultConfig()

	for _, format := range []sfi.Format{sfi.FP32, sfi.FP16, sfi.BF16} {
		analysis := sfi.AnalyzeWeightsIn(weights, format)
		space := faultmodel.NewStuckAt(net.LayerParamCounts(), format.Bits)

		unaware := sfi.PlanDataUnaware(space, cfg)
		aware := sfi.PlanDataAware(space, cfg, analysis.P)

		fmt.Printf("=== %s (%d bits: 1 sign, %d exponent, %d mantissa) ===\n",
			format.Name, format.Bits, format.ExpBits, format.MantBits)
		fmt.Printf("population: %s faults; most critical bit: %d\n",
			report.Comma(space.Total()), analysis.MostCriticalBit())
		fmt.Printf("data-unaware: %s injections (%s)\n",
			report.Comma(unaware.TotalInjections()), report.Pct(unaware.InjectedFraction()))
		fmt.Printf("data-aware:   %s injections (%s) — %.1f× cheaper\n",
			report.Comma(aware.TotalInjections()), report.Pct(aware.InjectedFraction()),
			float64(unaware.TotalInjections())/float64(aware.TotalInjections()))

		fmt.Println("p(i) over the exponent field and sign:")
		for i := format.Bits - 1; i >= format.MantBits; i-- {
			fmt.Printf("  bit %2d (%-8s): p = %.4f\n", i, format.RoleOf(i), analysis.P[i])
		}
		fmt.Println()
	}
}
