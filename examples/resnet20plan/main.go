// Reproduce Table I of the paper: the per-layer sample sizes of the four
// statistical fault-injection approaches on ResNet-20, plus the weight-
// distribution analysis (Figs. 3-4) that drives the data-aware column.
//
// Run with:
//
//	go run ./examples/resnet20plan
package main

import (
	"fmt"
	"log"
	"os"

	"cnnsfi/internal/report"
	"cnnsfi/sfi"
)

func main() {
	net, err := sfi.BuildModel("resnet20", 1)
	if err != nil {
		log.Fatal(err)
	}
	space := sfi.StuckAtSpace(net)
	cfg := sfi.DefaultConfig()

	// The weight-distribution analysis behind Figs. 3 and 4.
	analysis := sfi.AnalyzeWeights(net.AllWeights())
	fmt.Printf("ResNet-20: %d weights; most critical bit: %d (p = %.2f)\n",
		analysis.Count, analysis.MostCriticalBit(), analysis.PFor(analysis.MostCriticalBit()))
	fmt.Println("\nper-bit criticality p(i) (Fig. 4):")
	for i := 31; i >= 23; i-- {
		fmt.Printf("  bit %2d (%-8s): f1 = %.3f, p = %.4f\n",
			i, sfi.FP32.RoleOf(i), analysis.F1[i], analysis.P[i])
	}
	fmt.Println("  bits 22..0 (mantissa): p < 0.01 everywhere")

	// Table I.
	network := sfi.PlanNetworkWise(space, cfg)
	layer := sfi.PlanLayerWise(space, cfg)
	unaware := sfi.PlanDataUnaware(space, cfg)
	aware := sfi.PlanDataAware(space, cfg, analysis.P)

	fmt.Println()
	tab := report.NewTable("Table I — ResNet-20: Exhaustive vs Statistical FIs",
		"Layer", "Parameters", "Exhaustive", "Layer-wise", "Data-unaware", "Data-aware")
	params := net.LayerParamCounts()
	for l := 0; l < space.NumLayers(); l++ {
		tab.AddRow(l, params[l], space.LayerTotal(l),
			layer.LayerInjections(l), unaware.LayerInjections(l), aware.LayerInjections(l))
	}
	tab.AddRow("Total", net.TotalWeights(), space.Total(),
		layer.TotalInjections(), unaware.TotalInjections(), aware.TotalInjections())
	tab.Render(os.Stdout)

	fmt.Printf("\nnetwork-wise [9] total: %s injections (%s of the population)\n",
		report.Comma(network.TotalInjections()), report.Pct(network.InjectedFraction()))
	fmt.Printf("data-aware total:       %s injections (%s of the population; the paper reports 1.21%%)\n",
		report.Comma(aware.TotalInjections()), report.Pct(aware.InjectedFraction()))
}
