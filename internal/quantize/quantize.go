// Package quantize implements symmetric linear INT8 weight quantization
// and the bit-level fault analysis of quantized weights — the "different
// data representations for storing their parameters" direction named in
// the paper's conclusions (and studied by the authors' earlier work on
// data representations, Ruospo et al., Microprocessors and Microsystems
// 2021).
//
// Quantized integer representations behave very differently from
// floating point under single-bit faults: the bit-flip distance of bit i
// is exactly 2^i·Δ (Δ the quantization step), so criticality grows
// geometrically with bit position but never explodes the way an exponent
// flip does — there is no counterpart of the FP32 "bit 30 cliff". The
// data-aware analysis consequently assigns a smooth p(i) staircase and
// yields a smaller relative saving than in FP32.
package quantize

import (
	"fmt"
	"math"

	"cnnsfi/internal/stats"
)

// Scheme is a symmetric linear INT8 quantizer: q = clamp(round(w/Δ)),
// w ≈ q·Δ, with q ∈ [-127, 127] (the -128 code is unused, as is common
// practice to keep the scheme symmetric).
type Scheme struct {
	// Delta is the quantization step.
	Delta float64
}

// Bits is the width of the quantized representation.
const Bits = 8

// Fit chooses the step Δ so that the largest-magnitude weight maps to
// ±127. It panics on empty input; an all-zero input gets Δ = 1.
func Fit(weights []float32) Scheme {
	if len(weights) == 0 {
		panic("quantize: no weights")
	}
	var max float64
	for _, w := range weights {
		if a := math.Abs(float64(w)); a > max {
			max = a
		}
	}
	if max == 0 {
		return Scheme{Delta: 1}
	}
	return Scheme{Delta: max / 127}
}

// Quantize maps a weight to its signed code.
func (s Scheme) Quantize(w float32) int8 {
	q := math.Round(float64(w) / s.Delta)
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}

// Dequantize maps a code back to the real domain.
func (s Scheme) Dequantize(q int8) float32 {
	return float32(float64(q) * s.Delta)
}

// FlipDistance returns |dequant(q) − dequant(q XOR 1<<bit)| for a
// two's-complement INT8 code. Flipping the sign bit (bit 7) of code q
// changes its value by exactly 128·Δ in two's complement.
func (s Scheme) FlipDistance(q int8, bit int) float64 {
	if bit < 0 || bit >= Bits {
		panic(fmt.Sprintf("quantize: bit %d out of range", bit))
	}
	flipped := int8(uint8(q) ^ (1 << uint(bit)))
	return math.Abs(float64(flipped)-float64(q)) * s.Delta
}

// Analysis mirrors dataaware.Analysis for the INT8 representation.
type Analysis struct {
	// Scheme is the fitted quantizer.
	Scheme Scheme
	// Count is the number of weights scanned.
	Count int
	// F0 and F1 are the per-bit relative frequencies of 0/1 codes.
	F0, F1 []float64
	// D01, D10 are the average 0→1 / 1→0 flip distances per bit.
	D01, D10 []float64
	// Davg is Eq. 4 applied to the quantized codes.
	Davg []float64
	// P is Eq. 5: Davg min-max normalized into [0, 0.5].
	P []float64
}

// Analyze quantizes the weights and runs the data-aware analysis in the
// integer domain. Unlike FP32, integer flip distances span only two
// orders of magnitude (Δ to 128·Δ), so no outlier exclusion is needed
// and the literal linear Eq. 5 is used.
func Analyze(weights []float32) *Analysis {
	if len(weights) == 0 {
		panic("quantize: no weights to analyze")
	}
	s := Fit(weights)
	a := &Analysis{
		Scheme: s,
		Count:  len(weights),
		F0:     make([]float64, Bits),
		F1:     make([]float64, Bits),
		D01:    make([]float64, Bits),
		D10:    make([]float64, Bits),
		Davg:   make([]float64, Bits),
	}
	ones := make([]int64, Bits)
	sum01 := make([]float64, Bits)
	sum10 := make([]float64, Bits)
	for _, w := range weights {
		q := s.Quantize(w)
		for i := 0; i < Bits; i++ {
			d := s.FlipDistance(q, i)
			if uint8(q)&(1<<uint(i)) != 0 {
				ones[i]++
				sum10[i] += d
			} else {
				sum01[i] += d
			}
		}
	}
	n := float64(len(weights))
	for i := 0; i < Bits; i++ {
		zeros := int64(len(weights)) - ones[i]
		a.F1[i] = float64(ones[i]) / n
		a.F0[i] = float64(zeros) / n
		if zeros > 0 {
			a.D01[i] = sum01[i] / float64(zeros)
		}
		if ones[i] > 0 {
			a.D10[i] = sum10[i] / float64(ones[i])
		}
		a.Davg[i] = a.D01[i]*a.F0[i] + a.D10[i]*a.F1[i]
	}
	a.P = stats.MinMaxNormalize(a.Davg, 0, 0.5)
	return a
}

// QuantizationError returns the RMS error of representing the weights in
// the fitted scheme — the accuracy cost of moving to INT8.
func QuantizationError(weights []float32) float64 {
	if len(weights) == 0 {
		return 0
	}
	s := Fit(weights)
	var ss float64
	for _, w := range weights {
		d := float64(w) - float64(s.Dequantize(s.Quantize(w)))
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(weights)))
}
