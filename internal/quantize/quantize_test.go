package quantize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitMapsMaxTo127(t *testing.T) {
	s := Fit([]float32{-0.5, 0.25, 0.1})
	if got := s.Quantize(0.5); got != 127 {
		t.Errorf("quantize(max) = %d, want 127", got)
	}
	if got := s.Quantize(-0.5); got != -127 {
		t.Errorf("quantize(-max) = %d, want -127", got)
	}
	if got := s.Quantize(0); got != 0 {
		t.Errorf("quantize(0) = %d", got)
	}
}

func TestFitAllZeros(t *testing.T) {
	s := Fit(make([]float32, 10))
	if s.Delta != 1 {
		t.Errorf("zero-weight delta = %v", s.Delta)
	}
}

func TestFitPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty Fit did not panic")
		}
	}()
	Fit(nil)
}

func TestQuantizeClamps(t *testing.T) {
	s := Scheme{Delta: 0.01}
	if got := s.Quantize(100); got != 127 {
		t.Errorf("overflow quantize = %d", got)
	}
	if got := s.Quantize(-100); got != -127 {
		t.Errorf("underflow quantize = %d", got)
	}
}

func TestRoundTripErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float32, 1000)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	s := Fit(w)
	for _, v := range w {
		back := s.Dequantize(s.Quantize(v))
		if math.Abs(float64(back-v)) > s.Delta/2+1e-9 {
			t.Fatalf("round-trip error %v exceeds Δ/2 = %v", back-v, s.Delta/2)
		}
	}
}

func TestFlipDistanceGeometric(t *testing.T) {
	// For a positive code with bit i = 0, flipping bit i (i < 7) adds
	// exactly 2^i·Δ.
	s := Scheme{Delta: 0.5}
	q := int8(0)
	for i := 0; i < 7; i++ {
		want := float64(int64(1)<<uint(i)) * 0.5
		if got := s.FlipDistance(q, i); got != want {
			t.Errorf("bit %d: distance = %v, want %v", i, got, want)
		}
	}
	// Sign bit of 0 (two's complement): 0 ^ 0x80 = -128 → distance 128Δ.
	if got := s.FlipDistance(0, 7); got != 64 {
		t.Errorf("sign flip distance = %v, want 64", got)
	}
}

func TestFlipDistancePanics(t *testing.T) {
	s := Scheme{Delta: 1}
	defer func() {
		if recover() == nil {
			t.Error("bad bit did not panic")
		}
	}()
	s.FlipDistance(0, 8)
}

func TestFlipDistanceSymmetricProperty(t *testing.T) {
	// Distance is invariant under flipping back.
	s := Scheme{Delta: 0.01}
	f := func(q int8, bit uint8) bool {
		i := int(bit % 8)
		flipped := int8(uint8(q) ^ (1 << uint(i)))
		return s.FlipDistance(q, i) == s.FlipDistance(flipped, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := make([]float32, 20000)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	a := Analyze(w)
	if len(a.P) != 8 {
		t.Fatalf("bits = %d", len(a.P))
	}
	for i := 0; i < 8; i++ {
		if math.Abs(a.F0[i]+a.F1[i]-1) > 1e-12 {
			t.Errorf("bit %d: f0+f1 != 1", i)
		}
		if a.P[i] < 0 || a.P[i] > 0.5 {
			t.Errorf("bit %d: p = %v", i, a.P[i])
		}
	}
}

// TestAnalyzeNoCliff: in INT8 the criticality staircase is geometric —
// each magnitude bit roughly doubles the previous one's Davg — without
// the FP32 exponent cliff (max/second ratio ~2, not ~10^37).
func TestAnalyzeNoCliff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([]float32, 20000)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	a := Analyze(w)
	// Monotone increase across magnitude bits 0..6.
	for i := 1; i < 7; i++ {
		if a.Davg[i] <= a.Davg[i-1] {
			t.Errorf("Davg not increasing at bit %d: %v <= %v", i, a.Davg[i], a.Davg[i-1])
		}
	}
	// The top two Davg values are within a small constant factor.
	hi, second := a.Davg[7], a.Davg[6]
	if hi < second {
		hi, second = second, hi
	}
	if hi/second > 10 {
		t.Errorf("INT8 cliff detected: %v / %v", hi, second)
	}
}

// TestDataAwareSavingSmallerThanFP32: because criticality is spread
// across bits, Σ p(1−p) relative to the agnostic 8 × 0.25 is larger
// than FP32's ratio — the saving from data-awareness shrinks.
func TestDataAwareSavingSmallerThanFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := make([]float32, 20000)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	a := Analyze(w)
	var sum float64
	for _, p := range a.P {
		sum += p * (1 - p)
	}
	ratio := sum / (8 * 0.25)
	if ratio < 0.05 || ratio > 0.9 {
		t.Errorf("Σp(1-p) ratio = %v, want a moderate fraction", ratio)
	}
}

func TestQuantizationError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := make([]float32, 5000)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	rms := QuantizationError(w)
	s := Fit(w)
	if rms <= 0 || rms > s.Delta {
		t.Errorf("rms error = %v, delta = %v", rms, s.Delta)
	}
	if QuantizationError(nil) != 0 {
		t.Error("empty error should be 0")
	}
}

func TestAnalyzePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty Analyze did not panic")
		}
	}()
	Analyze(nil)
}
