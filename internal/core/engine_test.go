package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cnnsfi/internal/stats"
)

// resultBytes serializes a result the way callers persist it; byte
// equality of two results is the strongest identity the engine promises.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineMatchesRun: a plain engine run (no checkpoint, no early
// stop) must be bit-identical to the classic Run for every approach and
// worker count — the wrappers and the explicit API share one pipeline.
func TestEngineMatchesRun(t *testing.T) {
	o, _ := smallOracle(t)
	nw, lw, du, da := allApproachPlans(t)
	for _, plan := range []*Plan{nw, lw, du, da} {
		want := Run(o, plan, 11)
		for _, workers := range []int{1, 3} {
			eng := NewEngine(WithWorkers(workers))
			got, err := eng.Execute(context.Background(), o, plan, 11)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", plan.Approach, workers, err)
			}
			requireSameResult(t, plan.Approach.String(), want, got)
			if got.Partial || len(got.EarlyStopped) != 0 {
				t.Fatalf("%s: complete run marked partial/early-stopped", plan.Approach)
			}
		}
	}
}

// interruptAfter returns an engine option pair that cancels ctx once
// the campaign has tallied at least n injections.
func interruptAfter(cancel context.CancelFunc, n int64) []Option {
	var once sync.Once
	return []Option{
		WithProgressInterval(64),
		WithProgress(func(p Progress) {
			if p.Done >= n && !p.Final {
				once.Do(cancel)
			}
		}),
	}
}

// TestEngineCheckpointResumeBitIdentity is the acceptance criterion: a
// campaign killed mid-run (checkpoint written) then resumed must yield a
// Result byte-identical to the uninterrupted run at the same seed and
// worker count. Covers the network-wise shape (global stratum with
// per-layer slices) and both bit-granular plan shapes.
func TestEngineCheckpointResumeBitIdentity(t *testing.T) {
	o, _ := smallOracle(t)
	nw, lw, _, da := allApproachPlans(t)
	const seed, workers = 7, 4
	for _, plan := range []*Plan{nw, lw, da} {
		want := resultBytes(t, RunParallel(o, plan, seed, workers))

		ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		opts := append(interruptAfter(cancel, plan.TotalInjections()/3),
			WithWorkers(workers), WithCheckpoint(ckpt), WithCheckpointInterval(128))
		partial, err := NewEngine(opts...).Execute(ctx, o, plan, seed)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted run returned %v, want context.Canceled", plan.Approach, err)
		}
		if !partial.Partial {
			t.Fatalf("%s: interrupted result not marked partial", plan.Approach)
		}
		if partial.Injections() >= plan.TotalInjections() {
			t.Fatalf("%s: interruption left no work to resume", plan.Approach)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("%s: no checkpoint written on cancellation: %v", plan.Approach, err)
		}

		resumed, err := NewEngine(WithWorkers(workers), WithCheckpoint(ckpt), WithResume()).
			Execute(context.Background(), o, plan, seed)
		if err != nil {
			t.Fatalf("%s: resume failed: %v", plan.Approach, err)
		}
		if got := resultBytes(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("%s: resumed result differs from uninterrupted run:\n got %s\nwant %s",
				plan.Approach, got, want)
		}
		if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
			t.Errorf("%s: checkpoint not removed after completed campaign", plan.Approach)
		}
	}
}

// TestEngineResumeSkipsTalliedWork: resuming must not re-evaluate the
// checkpointed prefix — the oracle's experiment counter over the resumed
// run plus the partial run must equal one full campaign (each draw
// evaluated exactly once across the two runs, minus the cancelled
// in-flight shards whose tallies were discarded).
func TestEngineResumeSkipsTalliedWork(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed, workers = 3, 2

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	opts := append(interruptAfter(cancel, lw.TotalInjections()/2),
		WithWorkers(workers), WithCheckpoint(ckpt), WithCheckpointInterval(64))
	partial, err := NewEngine(opts...).Execute(ctx, o, lw, seed)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}

	resumed, err := NewEngine(WithWorkers(workers), WithCheckpoint(ckpt), WithResume()).
		Execute(context.Background(), o, lw, seed)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Injections() != lw.TotalInjections() {
		t.Fatalf("resumed campaign tallied %d of %d injections",
			resumed.Injections(), lw.TotalInjections())
	}
	// The resumed run must start from the checkpoint, not from zero: at
	// least the partial run's tallied prefix was skipped.
	if partial.Injections() == 0 {
		t.Fatal("partial run tallied nothing; interruption landed too early to test resume")
	}
}

// TestEngineCancelJoinsWorkers: cancellation mid-campaign returns a
// partial result and leaks no goroutines — every worker is joined before
// Execute returns.
func TestEngineCancelJoinsWorkers(t *testing.T) {
	o, _ := smallOracle(t)
	_, _, du, _ := allApproachPlans(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	opts := append(interruptAfter(cancel, du.TotalInjections()/4), WithWorkers(8))
	res, err := NewEngine(opts...).Execute(ctx, o, du, 5)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Partial {
		t.Error("cancelled result not marked partial")
	}
	if n := res.Injections(); n <= 0 || n >= du.TotalInjections() {
		t.Errorf("partial tally %d outside (0, %d)", n, du.TotalInjections())
	}
	// Estimates must be internally consistent prefixes, never beyond plan.
	for i, est := range res.Estimates {
		if est.SampleSize > du.Subpops[i].SampleSize || est.Successes > est.SampleSize {
			t.Fatalf("stratum %d: inconsistent partial tally %+v", i, est)
		}
	}
	// Worker-join check: goroutine count must return to the pre-run
	// level (with slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, after)
	}
}

// TestEngineEarlyStop: the margin-based early stop must (a) actually
// fire on strata whose observed criticality is far from the pessimistic
// planning p, (b) never stop before the achieved margin meets the
// target, and (c) stay deterministic at a fixed worker count.
func TestEngineEarlyStop(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	cfg := lw.Config

	eng := NewEngine(WithWorkers(2), WithEarlyStop(0)) // target = plan's e
	res, err := eng.Execute(context.Background(), o, lw, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EarlyStopped) == 0 {
		t.Fatal("no stratum early-stopped; the oracle's low critical rates should beat the p=0.5 plan")
	}
	if res.Injections() >= lw.TotalInjections() {
		t.Error("early stop saved no injections")
	}
	stopped := make(map[int]bool, len(res.EarlyStopped))
	for _, i := range res.EarlyStopped {
		stopped[i] = true
	}
	for i, est := range res.Estimates {
		sub := lw.Subpops[i]
		if !stopped[i] {
			if est.SampleSize != sub.SampleSize {
				t.Errorf("stratum %d not stopped but n=%d of planned %d", i, est.SampleSize, sub.SampleSize)
			}
			continue
		}
		// Actual-n reported alongside planned-n.
		if est.SampleSize >= sub.SampleSize || est.SampleSize < earlyStopMinSample {
			t.Errorf("stratum %d: early-stop n=%d implausible (planned %d)", i, est.SampleSize, sub.SampleSize)
		}
		// Soundness: the achieved margin at the stop point meets the target.
		if m := cfg.ObservedMargin(est.PHat(), est.SampleSize, est.PopulationSize); m > cfg.ErrorMargin {
			t.Errorf("stratum %d stopped at margin %v > target %v", i, m, cfg.ErrorMargin)
		}
	}

	// Determinism: identical configuration ⇒ byte-identical result.
	again, err := NewEngine(WithWorkers(2), WithEarlyStop(0)).Execute(context.Background(), o, lw, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, res), resultBytes(t, again)) {
		t.Error("early-stopped campaign is not deterministic at fixed worker count")
	}

	// A looser explicit target must stop at or before the stricter one.
	loose, err := NewEngine(WithWorkers(2), WithEarlyStop(0.05)).Execute(context.Background(), o, lw, 9)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Injections() > res.Injections() {
		t.Errorf("target 0.05 tallied %d > target %v's %d", loose.Injections(), cfg.ErrorMargin, res.Injections())
	}
}

// TestEngineEarlyStopRejectsBadTarget: targets outside [0, 1) fail fast.
func TestEngineEarlyStopRejectsBadTarget(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	for _, target := range []float64{-0.1, 1, 2} {
		if _, err := NewEngine(WithEarlyStop(target)).Execute(context.Background(), o, lw, 1); err == nil {
			t.Errorf("early-stop target %v accepted", target)
		}
	}
}

// TestEngineDecodeValidationOption: WithDecodeValidation must enable the
// decode cross-check without touching process env, and the check may
// only verify, never alter the result.
func TestEngineDecodeValidationOption(t *testing.T) {
	if validateDecode {
		t.Skip("SFI_VALIDATE_DECODE set in environment")
	}
	o, _ := smallOracle(t)
	nw, _, _, da := allApproachPlans(t)
	for _, plan := range []*Plan{nw, da} {
		want := Run(o, plan, 2)
		got, err := NewEngine(WithWorkers(4), WithDecodeValidation(true)).
			Execute(context.Background(), o, plan, 2)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, plan.Approach.String()+"+option-validate", want, got)
	}
}

// TestEngineResumeRejectsMismatch: a checkpoint is bound to one exact
// (plan, seed); resuming anything else must fail loudly instead of
// silently producing statistics from mixed campaigns.
func TestEngineResumeRejectsMismatch(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, du, _ := allApproachPlans(t)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	opts := append(interruptAfter(cancel, lw.TotalInjections()/2),
		WithWorkers(2), WithCheckpoint(ckpt), WithCheckpointInterval(64))
	if _, err := NewEngine(opts...).Execute(ctx, o, lw, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	cancel()

	if _, err := NewEngine(WithCheckpoint(ckpt), WithResume()).
		Execute(context.Background(), o, lw, 8); err == nil {
		t.Error("resume with a different seed accepted")
	}
	if _, err := NewEngine(WithCheckpoint(ckpt), WithResume()).
		Execute(context.Background(), o, du, 7); err == nil {
		t.Error("resume with a different plan accepted")
	}
}

// TestEngineProgressEvents: the sink sees monotonically non-decreasing
// tallies, a final event, and totals consistent with the result.
func TestEngineProgressEvents(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	var events []Progress
	eng := NewEngine(WithWorkers(2), WithProgressInterval(256),
		WithProgress(func(p Progress) { events = append(events, p) }))
	res, err := eng.Execute(context.Background(), o, lw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d progress events for a %d-injection campaign", len(events), lw.TotalInjections())
	}
	var prev int64 = -1
	for _, p := range events {
		if p.Done < prev {
			t.Fatalf("progress went backwards: %d after %d", p.Done, prev)
		}
		prev = p.Done
		if p.Planned != lw.TotalInjections() {
			t.Fatalf("event planned=%d, want %d", p.Planned, lw.TotalInjections())
		}
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Error("no final progress event")
	}
	if last.Done != res.Injections() {
		t.Errorf("final event Done=%d, result tallied %d", last.Done, res.Injections())
	}
	if last.Critical != sumSuccesses(res) {
		t.Errorf("final event Critical=%d, result has %d", last.Critical, sumSuccesses(res))
	}
}

func sumSuccesses(r *Result) int64 {
	var total int64
	for _, e := range r.Estimates {
		total += e.Successes
	}
	return total
}

// TestEngineSerializePartialRoundTrip: partial and early-stopped results
// survive the JSON round trip with their new fields intact.
func TestEngineSerializePartialRoundTrip(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	res, err := NewEngine(WithWorkers(2), WithEarlyStop(0.05)).Execute(context.Background(), o, lw, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.EarlyStopped) != len(res.EarlyStopped) || back.Partial != res.Partial {
		t.Errorf("round trip lost engine fields: %+v vs %+v", back.EarlyStopped, res.EarlyStopped)
	}
	if back.Injections() != res.Injections() {
		t.Errorf("round trip changed tallies: %d vs %d", back.Injections(), res.Injections())
	}
}

// Guard the stats dependency the early stop builds on: planned sample
// sizes achieve the requested margin at the planning p, so a stratum can
// only stop early when the observed proportion is more extreme.
func TestEarlyStopNeverFiresAtPlanningP(t *testing.T) {
	cfg := stats.DefaultConfig()
	n := cfg.SampleSize(1_000_000)
	for k := int64(earlyStopMinSample); k < n; k += n / 17 {
		if cfg.ObservedMargin(cfg.P, k, 1_000_000) <= cfg.ErrorMargin {
			t.Fatalf("margin at planning p met target at n=%d < planned %d", k, n)
		}
	}
}
