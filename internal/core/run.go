package core

import (
	"context"
	"fmt"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// Evaluator classifies a single fault as Critical or Non-critical. It is
// implemented by the inference-based injectors (package inject) and by
// the full-scale simulated substrate (package oracle).
//
// Concurrency rule: Run never calls IsCritical concurrently, so any
// Evaluator works there. RunParallel shares the evaluator across
// workers — IsCritical must then be safe for concurrent use (the oracle
// and the activation injector are) — unless the evaluator also
// implements WorkerCloner, in which case each worker gets its own clone
// (the weight injector, which mutates live network weights, does this).
type Evaluator interface {
	// IsCritical runs one fault-injection experiment. The verdict must
	// be a pure function of the fault and the evaluator's golden state:
	// the campaign runners evaluate samples in arbitrary shard order.
	IsCritical(f faultmodel.Fault) bool
	// Space returns the fault universe the evaluator covers.
	Space() faultmodel.Space
}

// Result is the outcome of executing a Plan: one proportion estimate per
// stratum, plus (for network-wise plans) the per-layer slices of the
// single global sample that the paper warns are statistically unsound.
type Result struct {
	// Plan is the executed campaign specification.
	Plan *Plan
	// Estimates aligns with Plan.Subpops.
	Estimates []stats.ProportionEstimate
	// LayerSlices is only populated for network-wise plans: the
	// per-layer tallies of the global sample. Their sample sizes are
	// whatever the uniform draw happened to allocate to each layer —
	// tiny for small layers — which is exactly why the per-layer
	// margins blow up (Fig. 6, leftmost group).
	LayerSlices map[int]stats.ProportionEstimate
	// Partial is set when the campaign was cancelled before every
	// stratum completed: Estimates carry the tallies of each stratum's
	// evaluated prefix (SampleSize = actual draws evaluated, which may
	// be below the planned Plan.Subpops[i].SampleSize).
	Partial bool `json:",omitempty"`
	// EarlyStopped lists the strata (indices into Plan.Subpops, in plan
	// order) halted by the engine's margin-based early stop; their
	// actual sample sizes are in Estimates, the planned ones in the
	// Plan.
	EarlyStopped []int `json:",omitempty"`
	// Ranges records the per-stratum [From, To) draw windows a
	// shard-range execution (WithDrawRanges) covered; nil for a
	// full-campaign run. Estimates then tally only the draws inside each
	// window, and MergeRangeResults uses the windows to verify that a
	// set of partial results tiles the full sample in draw order.
	Ranges []DrawRange `json:",omitempty"`
	// Quarantined lists the draws a supervised campaign excluded after
	// exhausting their retry budget, sorted by (stratum, draw index) so
	// the list is deterministic across worker counts. Each quarantined
	// draw is already subtracted from its stratum's Estimates SampleSize
	// — the effective n — so Estimate.Margin and every downstream
	// consumer automatically report the inflated margin of the reduced
	// sample. Empty (omitted from JSON) on unsupervised or healthy runs.
	Quarantined []QuarantinedFault `json:",omitempty"`
}

// Run draws each stratum's sample without replacement and evaluates it
// serially. The draw is deterministic in seed, so replicated samples
// S0-S9 of Fig. 6 are Run calls with seeds 0..9, and RunParallel with
// the same seed returns a bit-identical Result at any worker count.
//
// Run is a thin compatibility wrapper over the campaign Engine at one
// worker; use NewEngine directly for cancellation, streaming progress,
// checkpoint/resume, or early stop.
func Run(ev Evaluator, plan *Plan, seed int64) *Result {
	res, err := NewEngine(WithWorkers(1)).Execute(context.Background(), ev, plan, seed)
	if err != nil {
		// Unreachable: with no cancellable context, checkpoint, or early
		// stop configured, Execute has no error paths.
		panic(fmt.Sprintf("core: Run: %v", err))
	}
	return res
}

// decodeFault maps a stratum-local index to a concrete fault.
func decodeFault(space faultmodel.Space, sub Subpopulation, j int64) faultmodel.Fault {
	switch {
	case sub.Layer < 0:
		return space.GlobalFault(j)
	case sub.Bit < 0:
		return space.LayerFault(sub.Layer, j)
	default:
		return space.BitLayerFault(sub.Layer, sub.Bit, j)
	}
}

// NetworkEstimate combines all strata into a single whole-network
// estimate (population-weighted, with the stratified margin).
func (r *Result) NetworkEstimate() stats.Stratified {
	return stats.Stratified{Parts: r.Estimates}
}

// LayerEstimate returns the estimate for one layer's critical-fault
// proportion:
//
//   - layer-wise plans: the layer's own stratum;
//   - data-unaware / data-aware plans: the stratified combination of the
//     layer's 32 per-bit strata;
//   - network-wise plans: the layer's slice of the global sample (the
//     statistically unsound construction the paper analyzes; a layer the
//     sample never hit returns a zero-information estimate).
func (r *Result) LayerEstimate(layer int) stats.Stratified {
	if r.Plan.Approach == NetworkWise {
		if est, ok := r.LayerSlices[layer]; ok {
			return stats.Stratified{Parts: []stats.ProportionEstimate{est}}
		}
		return stats.Stratified{Parts: []stats.ProportionEstimate{
			{PopulationSize: r.Plan.Space.LayerTotal(layer), PlannedP: r.Plan.Config.P},
		}}
	}
	var parts []stats.ProportionEstimate
	for i, sub := range r.Plan.Subpops {
		if sub.Layer == layer {
			parts = append(parts, r.Estimates[i])
		}
	}
	if len(parts) == 0 {
		panic(fmt.Sprintf("core: plan has no strata for layer %d", layer))
	}
	return stats.Stratified{Parts: parts}
}

// BitEstimate returns the estimate for one (layer, bit) subpopulation.
// Only bit-granular plans (data-unaware, data-aware) can answer it; the
// paper's central argument is that coarser campaigns cannot (the 4th
// Bernoulli assumption fails). It panics for coarser plans.
func (r *Result) BitEstimate(layer, bit int) stats.ProportionEstimate {
	for i, sub := range r.Plan.Subpops {
		if sub.Layer == layer && sub.Bit == bit {
			return r.Estimates[i]
		}
	}
	panic(fmt.Sprintf("core: plan %s has no (layer %d, bit %d) stratum — bit-level questions need bit-level sampling",
		r.Plan.Approach, layer, bit))
}

// Injections returns the total number of experiments performed.
func (r *Result) Injections() int64 {
	var total int64
	for _, e := range r.Estimates {
		total += e.SampleSize
	}
	return total
}
