package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// resultJSON is the stable on-disk schema for a campaign result. The
// plan is embedded so a saved result is self-describing.
type resultJSON struct {
	Version int     `json:"version"`
	Result  *Result `json:"result"`
}

// currentVersion is bumped whenever the schema changes incompatibly.
const currentVersion = 1

// WriteJSON serializes the result (including its plan) to w. Campaign
// results are expensive — a full-scale exhaustive enumeration or
// millions of inferences — so persisting them lets reports and rankings
// be recomputed without re-injection.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(resultJSON{Version: currentVersion, Result: r})
}

// ReadResultJSON deserializes a result previously written by WriteJSON.
func ReadResultJSON(r io.Reader) (*Result, error) {
	var doc resultJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if doc.Version != currentVersion {
		return nil, fmt.Errorf("core: unsupported result version %d (want %d)", doc.Version, currentVersion)
	}
	if doc.Result == nil || doc.Result.Plan == nil {
		return nil, fmt.Errorf("core: result document missing plan")
	}
	if got, want := len(doc.Result.Estimates), len(doc.Result.Plan.Subpops); got != want {
		return nil, fmt.Errorf("core: result has %d estimates for %d strata", got, want)
	}
	return doc.Result, nil
}
