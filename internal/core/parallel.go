package core

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// WorkerCloner is implemented by evaluators whose IsCritical is not safe
// for concurrent use but which can produce independent per-worker
// copies. RunParallel gives every worker beyond the first its own clone,
// which is how the inference-based inject.Injector — whose experiments
// mutate live network weights — runs one campaign on all cores.
// Evaluators that do not implement WorkerCloner are shared across
// workers and must have a concurrency-safe IsCritical (see Evaluator).
type WorkerCloner interface {
	Evaluator
	// CloneForWorker returns an evaluator over the same fault space
	// whose IsCritical may run concurrently with the receiver's and
	// with other clones'.
	CloneForWorker() Evaluator
}

// validateDecode enables defensive validation of every fault decoded in
// the shard-evaluation path (decodeFaultChecked instead of decodeFault).
// It is off by default — the decode arithmetic is pinned by tests — and
// can be switched on for production campaigns by setting the
// SFI_VALIDATE_DECODE environment variable to any non-empty value.
var validateDecode = os.Getenv("SFI_VALIDATE_DECODE") != ""

// shardOversubscription sets how many shards each worker receives on
// average. A few shards per worker smooth out unequal shard costs
// (SDC early exit makes critical faults much cheaper than benign ones)
// without measurable scheduling overhead.
const shardOversubscription = 4

// RunParallel executes a plan like Run, spreading the evaluation over up
// to workers goroutines (0 selects GOMAXPROCS).
//
// Determinism guarantee: for the same seed, the Result is bit-identical
// to Run's, regardless of worker count. Every stratum's sample is drawn
// up-front from the master generator in plan order (exactly as Run
// consumes it), the drawn sample is split into contiguous shards whose
// tallies are plain integer sums, and the per-shard tallies are merged
// in shard order after all workers finish — so neither the draw nor the
// tally depends on evaluation interleaving.
//
// Work is sharded *within* strata, not just across them: a
// single-stratum network-wise plan saturates all workers just like a
// 640-stratum data-aware plan.
//
// Concurrency contract: an evaluator implementing WorkerCloner (the
// inference-based inject.Injector) is cloned once per extra worker;
// any other evaluator (the oracle substrate, the activation injector)
// is shared and must be safe for concurrent IsCritical calls.
func RunParallel(ev Evaluator, plan *Plan, seed int64, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	space := ev.Space()
	samples := drawAll(plan, seed)
	shards := makeShards(plan, samples, workers)

	// Per-worker evaluators: worker 0 keeps the original; the rest get
	// clones when the evaluator requires isolation.
	evals := make([]Evaluator, workers)
	for w := range evals {
		evals[w] = ev
		if w > 0 {
			if c, ok := ev.(WorkerCloner); ok {
				evals[w] = c.CloneForWorker()
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev Evaluator) {
			defer wg.Done()
			for k := range jobs {
				shards[k].evaluate(ev, space, plan)
			}
		}(evals[w])
	}
	for k := range shards {
		jobs <- k
	}
	close(jobs)
	wg.Wait()

	return mergeShards(plan, shards)
}

// shard is one contiguous slice of one stratum's drawn sample, plus the
// tallies its evaluation produced.
type shard struct {
	stratum   int
	idx       []int64
	successes int64
	// perLayer collects the per-layer slices of a network-wise stratum's
	// global sample (nil for layer- or bit-granular strata).
	perLayer map[int]*stats.ProportionEstimate
}

// makeShards splits every stratum's sample into contiguous chunks of
// roughly total/(workers·shardOversubscription) draws. Small strata stay
// whole; a single large stratum fans out across all workers.
func makeShards(plan *Plan, samples [][]int64, workers int) []*shard {
	chunk := int(plan.TotalInjections() / int64(workers*shardOversubscription))
	if chunk < 1 {
		chunk = 1
	}
	var shards []*shard
	for i := range plan.Subpops {
		idx := samples[i]
		for start := 0; start < len(idx); start += chunk {
			end := start + chunk
			if end > len(idx) {
				end = len(idx)
			}
			shards = append(shards, &shard{stratum: i, idx: idx[start:end]})
		}
	}
	return shards
}

// evaluate runs the shard's experiments against one evaluator. Each
// shard is touched by exactly one worker, so no locking is needed.
func (s *shard) evaluate(ev Evaluator, space faultmodel.Space, plan *Plan) {
	sub := plan.Subpops[s.stratum]
	if sub.Layer < 0 {
		s.perLayer = make(map[int]*stats.ProportionEstimate)
	}
	for _, j := range s.idx {
		f := decodeShardFault(space, sub, j)
		critical := ev.IsCritical(f)
		if critical {
			s.successes++
		}
		if s.perLayer != nil {
			pl := s.perLayer[f.Layer]
			if pl == nil {
				pl = &stats.ProportionEstimate{
					PopulationSize: space.LayerTotal(f.Layer),
					PlannedP:       sub.P,
				}
				s.perLayer[f.Layer] = pl
			}
			pl.SampleSize++
			if critical {
				pl.Successes++
			}
		}
	}
}

// decodeShardFault maps a stratum-local index to a concrete fault,
// validating the decode when SFI_VALIDATE_DECODE is set.
func decodeShardFault(space faultmodel.Space, sub Subpopulation, j int64) faultmodel.Fault {
	if validateDecode {
		f, err := decodeFaultChecked(space, sub, j)
		if err != nil {
			panic(err)
		}
		return f
	}
	return decodeFault(space, sub, j)
}

// mergeShards folds the per-shard tallies into a Result in shard order.
// Every tally is an integer sum over disjoint slices of the serial
// iteration order, so the merged result is bit-identical to Run's.
func mergeShards(plan *Plan, shards []*shard) *Result {
	res := &Result{Plan: plan, Estimates: make([]stats.ProportionEstimate, len(plan.Subpops))}
	for i, sub := range plan.Subpops {
		res.Estimates[i] = stats.ProportionEstimate{
			SampleSize:     sub.SampleSize,
			PopulationSize: sub.Population,
			PlannedP:       sub.P,
		}
		if sub.Layer < 0 && res.LayerSlices == nil {
			res.LayerSlices = make(map[int]stats.ProportionEstimate)
		}
	}
	for _, s := range shards {
		res.Estimates[s.stratum].Successes += s.successes
		for l, pl := range s.perLayer {
			agg, ok := res.LayerSlices[l]
			if !ok {
				agg = stats.ProportionEstimate{
					PopulationSize: pl.PopulationSize,
					PlannedP:       pl.PlannedP,
				}
			}
			agg.SampleSize += pl.SampleSize
			agg.Successes += pl.Successes
			res.LayerSlices[l] = agg
		}
	}
	return res
}

// drawAll reproduces Run's sampling exactly: one master generator seeded
// with seed, consumed stratum by stratum in plan order.
func drawAll(plan *Plan, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, len(plan.Subpops))
	for i, sub := range plan.Subpops {
		out[i] = stats.SampleWithoutReplacement(rng, sub.Population, sub.SampleSize)
	}
	return out
}

// decodeFaultChecked is decodeFault with validation; the shard runner
// uses it when SFI_VALIDATE_DECODE is set.
func decodeFaultChecked(space faultmodel.Space, sub Subpopulation, j int64) (faultmodel.Fault, error) {
	f := decodeFault(space, sub, j)
	if err := space.Validate(f); err != nil {
		return faultmodel.Fault{}, fmt.Errorf("core: decoded invalid fault: %w", err)
	}
	return f, nil
}
