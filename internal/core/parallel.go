package core

import (
	"context"
	"fmt"
	"os"
)

// WorkerCloner is implemented by evaluators whose IsCritical is not safe
// for concurrent use but which can produce independent per-worker
// copies. The campaign Engine gives every worker beyond the first its
// own clone, which is how the inference-based inject.Injector — whose
// experiments mutate live network weights — runs one campaign on all
// cores. Evaluators that do not implement WorkerCloner are shared
// across workers and must have a concurrency-safe IsCritical (see
// Evaluator).
type WorkerCloner interface {
	Evaluator
	// CloneForWorker returns an evaluator over the same fault space
	// whose IsCritical may run concurrently with the receiver's and
	// with other clones'.
	CloneForWorker() Evaluator
}

// validateDecode is the process-wide default for the defensive
// validation of every fault decoded in the shard-evaluation path
// (decodeFaultChecked instead of decodeFault). It is off by default —
// the decode arithmetic is pinned by tests — and can be switched on for
// production campaigns by setting the SFI_VALIDATE_DECODE environment
// variable to any non-empty value, or per engine with
// WithDecodeValidation (which wins over the environment).
var validateDecode = os.Getenv("SFI_VALIDATE_DECODE") != ""

// RunParallel executes a plan like Run, spreading the evaluation over up
// to workers goroutines (0 selects GOMAXPROCS).
//
// Determinism guarantee: for the same seed, the Result is bit-identical
// to Run's, regardless of worker count — neither the draw (performed
// up-front in plan order) nor the tally (integer sums merged in draw
// order) depends on evaluation interleaving.
//
// Work is sharded *within* strata, not just across them: a
// single-stratum network-wise plan saturates all workers just like a
// 640-stratum data-aware plan.
//
// Concurrency contract: an evaluator implementing WorkerCloner (the
// inference-based inject.Injector) is cloned once per extra worker;
// any other evaluator (the oracle substrate, the activation injector)
// is shared and must be safe for concurrent IsCritical calls.
//
// RunParallel is a thin compatibility wrapper over the campaign Engine;
// use NewEngine directly for cancellation, streaming progress,
// checkpoint/resume, or early stop.
func RunParallel(ev Evaluator, plan *Plan, seed int64, workers int) *Result {
	res, err := NewEngine(WithWorkers(workers)).Execute(context.Background(), ev, plan, seed)
	if err != nil {
		// Unreachable: with no cancellable context, checkpoint, or early
		// stop configured, Execute has no error paths.
		panic(fmt.Sprintf("core: RunParallel: %v", err))
	}
	return res
}
