package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// RunParallel executes a plan like Run, evaluating strata concurrently
// on up to workers goroutines (0 selects GOMAXPROCS). The evaluator's
// IsCritical must be safe for concurrent use: the oracle substrate is;
// the inference-based injectors are NOT (they mutate live network
// weights), so use Run with those.
//
// The result is identical to Run with the same seed: every stratum's
// sample is drawn up-front from its own sub-generator, so the draw does
// not depend on evaluation interleaving.
func RunParallel(ev Evaluator, plan *Plan, seed int64, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	space := ev.Space()

	// Deterministic per-stratum draws: each stratum gets a generator
	// seeded from the master sequence in plan order, mirroring Run's
	// single-stream consumption (see drawAll).
	samples := drawAll(plan, seed)

	type job struct{ stratum int }
	jobs := make(chan job)
	res := &Result{Plan: plan, Estimates: make([]stats.ProportionEstimate, len(plan.Subpops))}

	// Network-wise layer slices need a merge step; collect per worker.
	sliceParts := make([]map[int]*stats.ProportionEstimate, len(plan.Subpops))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sub := plan.Subpops[j.stratum]
				var successes int64
				var perLayer map[int]*stats.ProportionEstimate
				if sub.Layer < 0 {
					perLayer = make(map[int]*stats.ProportionEstimate)
				}
				for _, idx := range samples[j.stratum] {
					f := decodeFault(space, sub, idx)
					critical := ev.IsCritical(f)
					if critical {
						successes++
					}
					if perLayer != nil {
						pl := perLayer[f.Layer]
						if pl == nil {
							pl = &stats.ProportionEstimate{
								PopulationSize: space.LayerTotal(f.Layer),
								PlannedP:       sub.P,
							}
							perLayer[f.Layer] = pl
						}
						pl.SampleSize++
						if critical {
							pl.Successes++
						}
					}
				}
				res.Estimates[j.stratum] = stats.ProportionEstimate{
					Successes:      successes,
					SampleSize:     sub.SampleSize,
					PopulationSize: sub.Population,
					PlannedP:       sub.P,
				}
				sliceParts[j.stratum] = perLayer
			}
		}()
	}
	for i := range plan.Subpops {
		jobs <- job{stratum: i}
	}
	close(jobs)
	wg.Wait()

	for _, perLayer := range sliceParts {
		if perLayer == nil {
			continue
		}
		if res.LayerSlices == nil {
			res.LayerSlices = make(map[int]stats.ProportionEstimate, len(perLayer))
		}
		for l, pl := range perLayer {
			res.LayerSlices[l] = *pl
		}
	}
	return res
}

// drawAll reproduces Run's sampling exactly: one master generator seeded
// with seed, consumed stratum by stratum in plan order.
func drawAll(plan *Plan, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, len(plan.Subpops))
	for i, sub := range plan.Subpops {
		out[i] = stats.SampleWithoutReplacement(rng, sub.Population, sub.SampleSize)
	}
	return out
}

// decodeFaultChecked is decodeFault with validation, used by tests.
func decodeFaultChecked(space faultmodel.Space, sub Subpopulation, j int64) (faultmodel.Fault, error) {
	f := decodeFault(space, sub, j)
	if err := space.Validate(f); err != nil {
		return faultmodel.Fault{}, fmt.Errorf("core: decoded invalid fault: %w", err)
	}
	return f, nil
}
