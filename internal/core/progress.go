package core

import (
	"time"

	"cnnsfi/internal/evalstats"
)

// Progress is one streaming status event of a running campaign. Events
// are emitted by the Engine from its dispatcher goroutine — never
// concurrently — every WithProgressInterval tallied injections and once
// more when the campaign ends (Final). All counts refer to *tallied*
// work: the contiguous per-stratum prefixes that have been merged into
// the running result, i.e. exactly what a checkpoint written at that
// instant would contain.
type Progress struct {
	// Done is the number of injections tallied so far, campaign-wide.
	Done int64
	// Planned is the campaign total (Plan.TotalInjections). Done stays
	// below Planned when strata are early-stopped or the run is
	// cancelled.
	Planned int64
	// Critical is the running critical-fault tally across all strata.
	Critical int64
	// Stratum indexes the stratum (Plan.Subpops) whose prefix advanced
	// most recently; -1 before any work is tallied.
	Stratum int
	// StratumDone / StratumPlanned are that stratum's tallied and
	// planned draw counts.
	StratumDone, StratumPlanned int64
	// Rate is injections per second, measured over work evaluated by
	// this Execute call (checkpoint-restored tallies are excluded).
	Rate float64
	// Elapsed is the wall-clock time since Execute started.
	Elapsed time.Duration
	// Final marks the last event of the run (emitted on completion,
	// early-stop exhaustion, and cancellation alike).
	Final bool
	// Eval breaks down how the evaluator resolved this campaign's
	// experiments, when the evaluator implements StatsReporter (zero
	// otherwise). Counts are deltas since Execute started, so work from
	// earlier campaigns or checkpoint-restored runs is excluded.
	// Non-final events may lag Done slightly (the counters advance on
	// worker goroutines as experiments run, while Done advances on
	// in-order merge); the Final event is exact.
	Eval EvalStats
}

// EvalStats is the evaluator experiment breakdown (masked skips, full
// evaluations, SDC early exits, arena bytes); see evalstats.EvalStats
// for field documentation. It is defined in the leaf package
// internal/evalstats so evaluator substrates can implement
// StatsReporter without importing the engine.
type EvalStats = evalstats.EvalStats

// StatsReporter is an optional Evaluator extension: evaluators that
// track EvalStats expose them here and the Engine surfaces them in
// Progress.Eval. Both the inference injector and the oracle implement
// it.
type StatsReporter = evalstats.Reporter

// ProgressSink consumes streaming Progress events. The Engine calls the
// sink synchronously from its dispatcher goroutine, so implementations
// need no locking but must return promptly — a slow sink stalls shard
// hand-off. A sink may cancel the campaign's context; the engine then
// winds down at the next shard boundary.
type ProgressSink func(Progress)
