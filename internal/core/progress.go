package core

import "time"

// Progress is one streaming status event of a running campaign. Events
// are emitted by the Engine from its dispatcher goroutine — never
// concurrently — every WithProgressInterval tallied injections and once
// more when the campaign ends (Final). All counts refer to *tallied*
// work: the contiguous per-stratum prefixes that have been merged into
// the running result, i.e. exactly what a checkpoint written at that
// instant would contain.
type Progress struct {
	// Done is the number of injections tallied so far, campaign-wide.
	Done int64
	// Planned is the campaign total (Plan.TotalInjections). Done stays
	// below Planned when strata are early-stopped or the run is
	// cancelled.
	Planned int64
	// Critical is the running critical-fault tally across all strata.
	Critical int64
	// Stratum indexes the stratum (Plan.Subpops) whose prefix advanced
	// most recently; -1 before any work is tallied.
	Stratum int
	// StratumDone / StratumPlanned are that stratum's tallied and
	// planned draw counts.
	StratumDone, StratumPlanned int64
	// Rate is injections per second, measured over work evaluated by
	// this Execute call (checkpoint-restored tallies are excluded).
	Rate float64
	// Elapsed is the wall-clock time since Execute started.
	Elapsed time.Duration
	// Final marks the last event of the run (emitted on completion,
	// early-stop exhaustion, and cancellation alike).
	Final bool
}

// ProgressSink consumes streaming Progress events. The Engine calls the
// sink synchronously from its dispatcher goroutine, so implementations
// need no locking but must return promptly — a slow sink stalls shard
// hand-off. A sink may cancel the campaign's context; the engine then
// winds down at the next shard boundary.
type ProgressSink func(Progress)
