package core

import (
	"sync"
	"time"

	"cnnsfi/internal/evalstats"
)

// Progress is one streaming status event of a running campaign. Events
// are emitted by the Engine from its dispatcher goroutine — never
// concurrently — every WithProgressInterval tallied injections and once
// more when the campaign ends (Final). All counts refer to *tallied*
// work: the contiguous per-stratum prefixes that have been merged into
// the running result, i.e. exactly what a checkpoint written at that
// instant would contain.
type Progress struct {
	// Done is the number of injections tallied so far, campaign-wide.
	Done int64
	// Planned is the campaign total (Plan.TotalInjections). Done stays
	// below Planned when strata are early-stopped or the run is
	// cancelled.
	Planned int64
	// Critical is the running critical-fault tally across all strata.
	Critical int64
	// Stratum indexes the stratum (Plan.Subpops) whose prefix advanced
	// most recently; -1 before any work is tallied.
	Stratum int
	// StratumDone / StratumPlanned are that stratum's tallied and
	// planned draw counts.
	StratumDone, StratumPlanned int64
	// Rate is injections per second, measured over work evaluated by
	// this Execute call (checkpoint-restored tallies are excluded).
	Rate float64
	// Elapsed is the wall-clock time since Execute started.
	Elapsed time.Duration
	// Final marks the last event of the run (emitted on completion,
	// early-stop exhaustion, and cancellation alike).
	Final bool
	// Retries counts failed experiment attempts that were re-run under
	// supervision; Quarantined counts draws excluded from the tally
	// after exhausting their retry budget. Done includes quarantined
	// draws — their position in the sample is consumed even though they
	// carry no verdict. Both stay zero on unsupervised campaigns.
	Retries     int64
	Quarantined int64
	// AbandonedLanes counts the watchdog-abandoned experiment lanes this
	// campaign has accumulated in its tallied prefix — each is one
	// goroutine a timed-out experiment left behind (see
	// WatchdogAbandonedLanes for the live process-wide gauge). Unlike
	// the gauge, this counter never decreases: it measures how much the
	// watchdog had to abandon, per campaign, so a coordinator can
	// surface per-member abandonment in its merged warnings. Zero on
	// unsupervised campaigns.
	AbandonedLanes int64
	// Eval breaks down how the evaluator resolved this campaign's
	// experiments, when the evaluator implements StatsReporter (zero
	// otherwise). The monotone counters (Skipped, Evaluated, EarlyExits)
	// are deltas since Execute started, so work from earlier campaigns
	// or checkpoint-restored runs is excluded — but Eval.ArenaBytes is a
	// level, not a delta: it reports the scratch storage currently
	// retained by the evaluator and its clones, which persists across
	// campaigns by design (EvalStats.Sub carries it through unchanged).
	// Non-final events may lag Done slightly (the counters advance on
	// worker goroutines as experiments run, while Done advances on
	// in-order merge); the Final event is exact.
	Eval EvalStats
}

// EvalStats is the evaluator experiment breakdown (masked skips, full
// evaluations, SDC early exits, arena bytes); see evalstats.EvalStats
// for field documentation. It is defined in the leaf package
// internal/evalstats so evaluator substrates can implement
// StatsReporter without importing the engine.
type EvalStats = evalstats.EvalStats

// StatsReporter is an optional Evaluator extension: evaluators that
// track EvalStats expose them here and the Engine surfaces them in
// Progress.Eval. Both the inference injector and the oracle implement
// it.
type StatsReporter = evalstats.Reporter

// ProgressSink consumes streaming Progress events. The Engine calls the
// sink synchronously from its dispatcher goroutine, so implementations
// need no locking but must return promptly — a slow sink stalls shard
// hand-off. A sink may cancel the campaign's context; the engine then
// winds down at the next shard boundary. Sinks that cannot guarantee
// promptness (network writers, UIs) should be wrapped with AsyncSink.
type ProgressSink func(Progress)

// AsyncSink decouples a slow ProgressSink from the engine's dispatcher:
// the returned sink enqueues events onto a buffered channel and a
// dedicated goroutine drains them into sink, so the dispatcher never
// blocks on the consumer. buf is the channel capacity (values < 1 are
// treated as 1).
//
// Drop policy: when the buffer is full, non-final events are silently
// dropped — progress events are cumulative snapshots, so a later event
// supersedes anything dropped before it. The Final event is never
// dropped: the enqueue blocks until buffer space frees up, which is
// bounded by the consumer draining at its own pace.
//
// The returned stop function closes the channel and blocks until every
// buffered event has been delivered; call it after Execute returns (the
// engine never emits after Execute, and enqueueing after stop would
// panic). stop is idempotent.
func AsyncSink(sink ProgressSink, buf int) (ProgressSink, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Progress, buf)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for p := range ch {
			sink(p)
		}
	}()
	wrapped := func(p Progress) {
		if p.Final {
			ch <- p // finals are never dropped; block until space frees
			return
		}
		select {
		case ch <- p:
		default: // buffer full: drop — a later snapshot supersedes this one
		}
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(ch)
			<-drained
		})
	}
	return wrapped, stop
}
