package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"cnnsfi/internal/stats"
)

// checkpointVersion is bumped whenever the on-disk schema changes
// incompatibly.
const checkpointVersion = 1

// checkpointStratum is one stratum's persisted tally: how many draws of
// its sample (a pure function of plan + seed) have been evaluated, and
// what they produced. Cursor always sits on a shard boundary of the
// worker count that wrote it, so resuming at the same worker count
// re-evaluates nothing and re-creates the exact shard layout.
type checkpointStratum struct {
	Cursor    int64                            `json:"cursor"`
	Successes int64                            `json:"successes"`
	Stopped   bool                             `json:"stopped,omitempty"`
	PerLayer  map[int]stats.ProportionEstimate `json:"per_layer,omitempty"`
}

// checkpointDoc is the stable on-disk schema of a campaign checkpoint.
// The fingerprint binds it to one exact plan (approach, config, space,
// strata) and the seed to one exact sample, so a checkpoint can never be
// silently resumed against a different campaign.
type checkpointDoc struct {
	Version     int                 `json:"version"`
	Seed        int64               `json:"seed"`
	Fingerprint uint64              `json:"plan_fingerprint"`
	Injections  int64               `json:"injections"`
	Strata      []checkpointStratum `json:"strata"`
}

// planFingerprint hashes everything that determines a campaign's draw
// and tally: the approach, the Eq. 1 configuration, the fault space,
// and every stratum's bounds.
func planFingerprint(plan *Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%v|%v|%d|%v|%d|",
		plan.Approach, plan.Config, plan.Space.LayerParams, plan.Space.Bits,
		plan.Space.Variants, len(plan.Subpops))
	for _, s := range plan.Subpops {
		fmt.Fprintf(h, "%d,%d,%d,%d,%g;", s.Layer, s.Bit, s.Population, s.SampleSize, s.P)
	}
	return h.Sum64()
}

// writeCheckpoint atomically persists the current per-stratum prefix
// tallies (write to a temp file, then rename).
func (x *execution) writeCheckpoint(path string) error {
	doc := checkpointDoc{
		Version:     checkpointVersion,
		Seed:        x.seed,
		Fingerprint: planFingerprint(x.plan),
		Injections:  x.merged,
		Strata:      make([]checkpointStratum, len(x.strata)),
	}
	for i, st := range x.strata {
		cs := checkpointStratum{Cursor: st.cursor, Successes: st.successes, Stopped: st.stopped}
		if len(st.perLayer) > 0 {
			cs.PerLayer = make(map[int]stats.ProportionEstimate, len(st.perLayer))
			for l, pl := range st.perLayer {
				cs.PerLayer[l] = *pl
			}
		}
		doc.Strata[i] = cs
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores per-stratum tallies from a checkpoint written
// for the same plan and seed. A missing file is not an error — the
// campaign simply starts fresh, which makes resume-or-start idempotent
// for callers.
func (x *execution) loadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: reading checkpoint: %w", err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("core: decoding checkpoint %s: %w", path, err)
	}
	if doc.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint %s has version %d (want %d)", path, doc.Version, checkpointVersion)
	}
	if doc.Seed != x.seed {
		return fmt.Errorf("core: checkpoint %s was written for seed %d, not %d — resuming would break bit-identity",
			path, doc.Seed, x.seed)
	}
	if got, want := doc.Fingerprint, planFingerprint(x.plan); got != want {
		return fmt.Errorf("core: checkpoint %s belongs to a different plan (fingerprint %x, want %x)",
			path, got, want)
	}
	if len(doc.Strata) != len(x.strata) {
		return fmt.Errorf("core: checkpoint %s has %d strata for a %d-stratum plan",
			path, len(doc.Strata), len(x.strata))
	}
	for i, cs := range doc.Strata {
		sub := x.plan.Subpops[i]
		if cs.Cursor < 0 || cs.Cursor > sub.SampleSize {
			return fmt.Errorf("core: checkpoint %s stratum %d cursor %d outside [0, %d]",
				path, i, cs.Cursor, sub.SampleSize)
		}
		st := x.strata[i]
		st.cursor = cs.Cursor
		st.successes = cs.Successes
		st.stopped = cs.Stopped
		if len(cs.PerLayer) > 0 && st.perLayer == nil {
			st.perLayer = make(map[int]*stats.ProportionEstimate, len(cs.PerLayer))
		}
		for l, pl := range cs.PerLayer {
			pl := pl
			st.perLayer[l] = &pl
		}
		x.merged += cs.Cursor
		x.critical += cs.Successes
	}
	x.restored = x.merged
	return nil
}
