package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"

	"cnnsfi/internal/stats"
)

// checkpointVersion is bumped whenever the on-disk schema changes
// incompatibly. Version 2 added the CRC, the writing worker count, and
// the supervision tallies (retries + quarantined faults).
const checkpointVersion = 2

// checkpointBackupSuffix names the rotated previous checkpoint:
// writeCheckpoint moves the current file to path+".bak" before
// committing the new one, so a write torn by a crash or a disk that
// corrupts the primary still leaves one complete older checkpoint to
// resume from.
const checkpointBackupSuffix = ".bak"

// Checkpoint mismatch and corruption sentinels. loadCheckpoint wraps
// each into its contextual error with %w, so callers dispatch with
// errors.Is to print actionable guidance (cmd/sfirun does exactly
// that). Corruption is the only class with automatic recovery — the
// engine falls back to the rotated backup; the mismatch classes mean
// the checkpoint belongs to a different campaign and no backup can fix
// that.
var (
	// ErrCheckpointCorrupt marks a checkpoint that cannot be trusted:
	// truncated or malformed JSON, a CRC mismatch, or out-of-range
	// tallies.
	ErrCheckpointCorrupt = errors.New("checkpoint corrupt")
	// ErrCheckpointVersion marks an on-disk schema version this binary
	// does not speak.
	ErrCheckpointVersion = errors.New("checkpoint version mismatch")
	// ErrCheckpointSeed marks a checkpoint written for a different
	// sampling seed — resuming would splice two different samples.
	ErrCheckpointSeed = errors.New("checkpoint seed mismatch")
	// ErrCheckpointPlan marks a checkpoint whose plan fingerprint (or
	// stratum count) does not match the campaign being resumed.
	ErrCheckpointPlan = errors.New("checkpoint plan mismatch")
	// ErrCheckpointWorkers marks a checkpoint written at a different
	// worker count: cursors sit on shard boundaries of the writing
	// count, so resuming at another count would re-split the sample
	// differently.
	ErrCheckpointWorkers = errors.New("checkpoint worker-count mismatch")
	// ErrCheckpointRange marks a checkpoint written for a different
	// WithDrawRanges vector: cursors are absolute draw positions inside
	// the writing run's windows, so resuming with other windows (or as a
	// full run) would mis-place every prefix.
	ErrCheckpointRange = errors.New("checkpoint draw-range mismatch")
)

// checkpointStratum is one stratum's persisted tally: how many draws of
// its sample (a pure function of plan + seed) have been evaluated, and
// what they produced. Cursor always sits on a shard boundary of the
// worker count that wrote it, so resuming at the same worker count
// re-evaluates nothing and re-creates the exact shard layout.
type checkpointStratum struct {
	Cursor    int64                            `json:"cursor"`
	Successes int64                            `json:"successes"`
	Stopped   bool                             `json:"stopped,omitempty"`
	PerLayer  map[int]stats.ProportionEstimate `json:"per_layer,omitempty"`
}

// checkpointDoc is the stable on-disk schema of a campaign checkpoint.
// The fingerprint binds it to one exact plan (approach, config, space,
// strata) and the seed to one exact sample, so a checkpoint can never be
// silently resumed against a different campaign.
//
// Checksum is the IEEE CRC-32 of the document marshalled with Checksum
// itself zeroed (json.Marshal is deterministic — sorted map keys,
// shortest-round-trip floats — so the re-marshal on load reproduces the
// exact bytes). Zero means "no checksum": the 1-in-2^32 honest zero and
// hand-written test documents both verify trivially.
type checkpointDoc struct {
	Checksum    uint32              `json:"crc32,omitempty"`
	Version     int                 `json:"version"`
	Seed        int64               `json:"seed"`
	Fingerprint uint64              `json:"plan_fingerprint"`
	Workers     int                 `json:"workers"`
	Injections  int64               `json:"injections"`
	Retries     int64               `json:"retries,omitempty"`
	Abandoned   int64               `json:"abandoned,omitempty"`
	Ranges      []DrawRange         `json:"draw_ranges,omitempty"`
	Quarantined []QuarantinedFault  `json:"quarantined,omitempty"`
	Strata      []checkpointStratum `json:"strata"`
}

// planFingerprint hashes everything that determines a campaign's draw
// and tally: the approach, the Eq. 1 configuration, the fault space,
// and every stratum's bounds.
func planFingerprint(plan *Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%v|%v|%d|%v|%d|",
		plan.Approach, plan.Config, plan.Space.LayerParams, plan.Space.Bits,
		plan.Space.Variants, len(plan.Subpops))
	for _, s := range plan.Subpops {
		fmt.Fprintf(h, "%d,%d,%d,%d,%g;", s.Layer, s.Bit, s.Population, s.SampleSize, s.P)
	}
	return h.Sum64()
}

// PlanFingerprint is the hash the checkpoint schema uses to bind a
// checkpoint to one exact plan. It is exported so tooling and tests can
// construct or inspect checkpoint documents that the engine will accept.
func PlanFingerprint(plan *Plan) uint64 { return planFingerprint(plan) }

// writeCheckpoint persists the current per-stratum prefix tallies
// crash-safely: marshal with an embedded CRC, write to a temp file,
// rotate any existing checkpoint to the .bak backup, then rename the
// temp file into place. At every instant at least one complete,
// CRC-verifiable checkpoint exists on disk.
func (x *execution) writeCheckpoint(path string) error {
	doc := checkpointDoc{
		Version:     checkpointVersion,
		Seed:        x.seed,
		Fingerprint: planFingerprint(x.plan),
		Workers:     x.workers,
		Injections:  x.merged,
		Retries:     x.retries,
		Abandoned:   x.abandoned,
		Ranges:      x.ranges,
		Quarantined: x.quarantined,
		Strata:      make([]checkpointStratum, len(x.strata)),
	}
	for i, st := range x.strata {
		cs := checkpointStratum{Cursor: st.cursor, Successes: st.successes, Stopped: st.stopped}
		if len(st.perLayer) > 0 {
			cs.PerLayer = make(map[int]stats.ProportionEstimate, len(st.perLayer))
			for l, pl := range st.perLayer {
				cs.PerLayer[l] = *pl
			}
		}
		doc.Strata[i] = cs
	}
	body, err := json.Marshal(doc) // Checksum zero: the bytes the CRC covers
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	doc.Checksum = crc32.ChecksumIEEE(body)
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+checkpointBackupSuffix); err != nil {
			return fmt.Errorf("core: rotating checkpoint backup: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores per-stratum tallies from a checkpoint written
// for the same plan, seed, and worker count. A missing file is not an
// error — the campaign simply starts fresh, which makes resume-or-start
// idempotent for callers. A corrupt (truncated, malformed, CRC-failing)
// primary falls back to the rotated .bak backup with a one-line
// warning; mismatch errors never fall back, because the backup was
// written by the same campaign and would fail identically.
func (x *execution) loadCheckpoint(path string) error {
	bak := path + checkpointBackupSuffix
	src := path
	doc, err := readCheckpointDoc(path)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		// No primary: a crash between writeCheckpoint's two renames
		// leaves only the rotated backup — resume from it rather than
		// silently restarting a multi-hour campaign from zero.
		doc, err = readCheckpointDoc(bak)
		if os.IsNotExist(err) {
			return nil // no checkpoint at all: fresh start
		}
		if err != nil {
			return err
		}
		src = bak
		x.warnf("checkpoint %s missing; resuming from backup %s", path, bak)
	case errors.Is(err, ErrCheckpointCorrupt):
		primaryErr := err
		doc, err = readCheckpointDoc(bak)
		if err != nil {
			return primaryErr // no usable backup: report the primary's corruption
		}
		src = bak
		x.warnf("checkpoint %s unreadable (%v); resuming from backup %s", path, primaryErr, bak)
	default:
		return err
	}
	return x.applyCheckpoint(src, doc)
}

// readCheckpointDoc reads and CRC-verifies one checkpoint file without
// touching any run state. It returns the raw os.IsNotExist error for a
// missing file so loadCheckpoint can distinguish "absent" from
// "unreadable".
func readCheckpointDoc(path string) (*checkpointDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w: %v", path, ErrCheckpointCorrupt, err)
	}
	if doc.Checksum != 0 {
		want := doc.Checksum
		doc.Checksum = 0
		body, err := json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint %s: re-encoding for CRC: %w", path, err)
		}
		if got := crc32.ChecksumIEEE(body); got != want {
			return nil, fmt.Errorf("core: checkpoint %s: %w: crc32 %08x, want %08x",
				path, ErrCheckpointCorrupt, got, want)
		}
	}
	return &doc, nil
}

// CheckpointInfo is the engine-independent summary of a checkpoint
// file: enough to report restored progress and to verify that a resume
// will be accepted (seed, fingerprint, workers), without constructing an
// Engine. The sfid service uses it to surface per-job recovery state.
type CheckpointInfo struct {
	// Version is the on-disk schema version.
	Version int
	// Seed is the sampling seed the checkpoint was written for.
	Seed int64
	// Fingerprint is the plan fingerprint (see PlanFingerprint).
	Fingerprint uint64
	// Workers is the worker count that wrote the checkpoint; resume
	// requires the same count.
	Workers int
	// Injections is the number of evaluated draws the checkpoint covers —
	// the prefix a resume restores without re-evaluating anything.
	Injections int64
	// Retries and Quarantined are the supervision tallies carried across
	// the restart.
	Retries     int64
	Quarantined int
	// Strata is the stratum count of the writing plan.
	Strata int
}

// ReadCheckpointInfo reads and CRC-verifies the checkpoint at path,
// following the engine's recovery ladder: a missing or corrupt primary
// falls back to the rotated ".bak" backup. The returned error wraps the
// same sentinels Execute does (ErrCheckpointCorrupt, ...); a missing
// checkpoint (no primary and no backup) returns an error satisfying
// os.IsNotExist.
func ReadCheckpointInfo(path string) (CheckpointInfo, error) {
	doc, err := readCheckpointDoc(path)
	if err != nil {
		if !os.IsNotExist(err) && !errors.Is(err, ErrCheckpointCorrupt) {
			return CheckpointInfo{}, err
		}
		bdoc, berr := readCheckpointDoc(path + checkpointBackupSuffix)
		if berr != nil {
			return CheckpointInfo{}, err // report the primary's failure
		}
		doc = bdoc
	}
	info := CheckpointInfo{
		Version:     doc.Version,
		Seed:        doc.Seed,
		Fingerprint: doc.Fingerprint,
		Workers:     doc.Workers,
		Injections:  doc.Injections,
		Retries:     doc.Retries,
		Quarantined: len(doc.Quarantined),
		Strata:      len(doc.Strata),
	}
	if doc.Version != checkpointVersion {
		return info, fmt.Errorf("core: checkpoint %s: %w: version %d, want %d",
			path, ErrCheckpointVersion, doc.Version, checkpointVersion)
	}
	return info, nil
}

// applyCheckpoint validates the document against the running campaign
// and only then folds it into the run state — a rejected checkpoint
// leaves the execution untouched.
func (x *execution) applyCheckpoint(src string, doc *checkpointDoc) error {
	if doc.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint %s: %w: version %d, want %d",
			src, ErrCheckpointVersion, doc.Version, checkpointVersion)
	}
	if doc.Seed != x.seed {
		return fmt.Errorf("core: checkpoint %s: %w: written for seed %d, not %d — resuming would break bit-identity",
			src, ErrCheckpointSeed, doc.Seed, x.seed)
	}
	if got, want := doc.Fingerprint, planFingerprint(x.plan); got != want {
		return fmt.Errorf("core: checkpoint %s: %w: fingerprint %016x, want %016x",
			src, ErrCheckpointPlan, got, want)
	}
	if doc.Workers != x.workers {
		return fmt.Errorf("core: checkpoint %s: %w: written at %d workers, resuming at %d — cursors sit on shard boundaries of the writing count",
			src, ErrCheckpointWorkers, doc.Workers, x.workers)
	}
	if len(doc.Strata) != len(x.strata) {
		return fmt.Errorf("core: checkpoint %s: %w: %d strata for a %d-stratum plan",
			src, ErrCheckpointPlan, len(doc.Strata), len(x.strata))
	}
	if !rangesEqual(doc.Ranges, x.ranges) {
		return fmt.Errorf("core: checkpoint %s: %w: written for draw ranges %v, resuming with %v",
			src, ErrCheckpointRange, doc.Ranges, x.ranges)
	}
	for i, cs := range doc.Strata {
		from, to := x.rangeBounds(i)
		if cs.Cursor < from || cs.Cursor > to {
			return fmt.Errorf("core: checkpoint %s: %w: stratum %d cursor %d outside [%d, %d]",
				src, ErrCheckpointCorrupt, i, cs.Cursor, from, to)
		}
	}
	for _, q := range doc.Quarantined {
		if q.Stratum < 0 || q.Stratum >= len(x.strata) {
			return fmt.Errorf("core: checkpoint %s: %w: quarantined fault in stratum %d of a %d-stratum plan",
				src, ErrCheckpointCorrupt, q.Stratum, len(x.strata))
		}
	}
	for i, cs := range doc.Strata {
		st := x.strata[i]
		st.cursor = cs.Cursor
		st.successes = cs.Successes
		st.stopped = cs.Stopped
		if len(cs.PerLayer) > 0 && st.perLayer == nil {
			st.perLayer = make(map[int]*stats.ProportionEstimate, len(cs.PerLayer))
		}
		for l, pl := range cs.PerLayer {
			pl := pl
			st.perLayer[l] = &pl
		}
		from, _ := x.rangeBounds(i)
		x.merged += cs.Cursor - from
		x.critical += cs.Successes
	}
	for _, q := range doc.Quarantined {
		x.strata[q.Stratum].quarantined++
	}
	x.quarantined = append(x.quarantined, doc.Quarantined...)
	x.retries = doc.Retries
	x.abandoned = doc.Abandoned
	x.restored = x.merged
	return nil
}
