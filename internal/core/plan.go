// Package core implements the paper's primary contribution: planning and
// executing Statistical Fault Injection (SFI) campaigns on CNNs at the
// four granularities of Section IV, and validating the estimates against
// exhaustive ground truth.
//
//   - Network-wise SFI (the baseline of Leveugle et al. [9]): Eq. 1
//     applied once to the whole fault population. Valid only for
//     whole-network questions; the paper shows its per-layer estimates
//     break the 4th Bernoulli assumption and exceed the target margin.
//   - Layer-wise SFI: Eq. 1 per layer.
//   - Data-unaware SFI (proposed): Eq. 1 per (bit, layer) subpopulation
//     with the pessimistic p = 0.5.
//   - Data-aware SFI (proposed): same granularity, but p(i) derived from
//     the golden weight distribution (package dataaware), shrinking the
//     campaign by an order of magnitude at equal validity.
//
// A Plan is the sample-size table (the paper's Tables I and II); a
// Result is the outcome of drawing and injecting those samples against
// an Evaluator (inference-based package inject, or the full-scale
// package oracle); a Comparison judges the result against exhaustive
// ground truth (Table III, Figs. 5-7).
package core

import (
	"fmt"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// Approach enumerates the four SFI strategies.
type Approach uint8

// SFI approaches, in the paper's order.
const (
	NetworkWise Approach = iota
	LayerWise
	DataUnaware
	DataAware
)

// String names the approach like the paper's table headers.
func (a Approach) String() string {
	switch a {
	case NetworkWise:
		return "network-wise"
	case LayerWise:
		return "layer-wise"
	case DataUnaware:
		return "data-unaware"
	case DataAware:
		return "data-aware"
	default:
		return "unknown"
	}
}

// Subpopulation is one stratum of a plan: a slice of the fault universe
// within which the per-trial success probability is assumed homogeneous
// (the 4th Bernoulli assumption), together with its Eq. 1 sample size.
type Subpopulation struct {
	// Layer is the weight-layer index, or -1 for the whole network.
	Layer int
	// Bit is the bit position, or -1 when the stratum spans all bits.
	Bit int
	// Population is the stratum size N (or N_l, or N_(i,l)).
	Population int64
	// P is the planning success probability used in Eq. 1.
	P float64
	// SampleSize is n from Eq. 1 for this stratum.
	SampleSize int64
}

// Plan is a complete SFI campaign specification: the strata and their
// sample sizes (the content of the paper's Tables I and II).
type Plan struct {
	// Approach is the granularity strategy that produced the plan.
	Approach Approach
	// Config carries e, confidence, and rounding conventions.
	Config stats.SampleSizeConfig
	// Space is the fault universe being sampled.
	Space faultmodel.Space
	// Subpops are the strata in (layer, bit) order.
	Subpops []Subpopulation
}

// PlanNetworkWise applies Eq. 1 once to the entire population
// (Leveugle et al. [9]; n = 16,625 for ResNet-20 at e=1%, t=2.58).
func PlanNetworkWise(space faultmodel.Space, cfg stats.SampleSizeConfig) *Plan {
	N := space.Total()
	return &Plan{
		Approach: NetworkWise,
		Config:   cfg,
		Space:    space,
		Subpops: []Subpopulation{{
			Layer: -1, Bit: -1, Population: N, P: cfg.P,
			SampleSize: cfg.SampleSize(N),
		}},
	}
}

// PlanLayerWise applies Eq. 1 to each layer's population.
func PlanLayerWise(space faultmodel.Space, cfg stats.SampleSizeConfig) *Plan {
	p := &Plan{Approach: LayerWise, Config: cfg, Space: space}
	for l := 0; l < space.NumLayers(); l++ {
		N := space.LayerTotal(l)
		p.Subpops = append(p.Subpops, Subpopulation{
			Layer: l, Bit: -1, Population: N, P: cfg.P,
			SampleSize: cfg.SampleSize(N),
		})
	}
	return p
}

// PlanDataUnaware applies Eq. 1 to every (bit, layer) subpopulation with
// the pessimistic p = 0.5 taken from cfg (Eq. 3).
func PlanDataUnaware(space faultmodel.Space, cfg stats.SampleSizeConfig) *Plan {
	p := &Plan{Approach: DataUnaware, Config: cfg, Space: space}
	for l := 0; l < space.NumLayers(); l++ {
		N := space.BitLayerTotal(l)
		n := cfg.SampleSize(N) // identical for every bit within the layer
		for bit := 0; bit < space.Bits; bit++ {
			p.Subpops = append(p.Subpops, Subpopulation{
				Layer: l, Bit: bit, Population: N, P: cfg.P, SampleSize: n,
			})
		}
	}
	return p
}

// PlanDataAware applies Eq. 1 to every (bit, layer) subpopulation with
// the per-bit success probabilities pPerBit derived from the golden
// weight distribution (Eq. 5, package dataaware). len(pPerBit) must
// equal space.Bits.
func PlanDataAware(space faultmodel.Space, cfg stats.SampleSizeConfig, pPerBit []float64) *Plan {
	if len(pPerBit) != space.Bits {
		panic(fmt.Sprintf("core: got %d per-bit probabilities for %d bits", len(pPerBit), space.Bits))
	}
	p := &Plan{Approach: DataAware, Config: cfg, Space: space}
	for l := 0; l < space.NumLayers(); l++ {
		N := space.BitLayerTotal(l)
		for bit := 0; bit < space.Bits; bit++ {
			bitCfg := cfg.WithP(pPerBit[bit])
			p.Subpops = append(p.Subpops, Subpopulation{
				Layer: l, Bit: bit, Population: N, P: bitCfg.P,
				SampleSize: bitCfg.SampleSize(N),
			})
		}
	}
	return p
}

// TotalInjections returns n_TOT, the campaign cost (Eq. 3's double sum).
func (p *Plan) TotalInjections() int64 {
	var total int64
	for _, s := range p.Subpops {
		total += s.SampleSize
	}
	return total
}

// LayerInjections returns the number of injections planned within layer
// l (a row of Table I). For a network-wise plan this is 0: the strata do
// not target individual layers.
func (p *Plan) LayerInjections(l int) int64 {
	var total int64
	for _, s := range p.Subpops {
		if s.Layer == l {
			total += s.SampleSize
		}
	}
	return total
}

// InjectedFraction returns TotalInjections divided by the population
// size — the "Injected Faults [%]" column of Table III (as a fraction).
func (p *Plan) InjectedFraction() float64 {
	return float64(p.TotalInjections()) / float64(p.Space.Total())
}

// PlanDataAwarePerLayer is the per-layer refinement of PlanDataAware:
// each (bit, layer) stratum gets its own probability pPerLayerBit[l][i],
// derived from that layer's weight distribution rather than the
// network-wide one. Layers with atypical weight scales (e.g. the first
// convolution) get criticalities matched to their own bit statistics.
// len(pPerLayerBit) must equal the layer count and each row must have
// space.Bits entries.
func PlanDataAwarePerLayer(space faultmodel.Space, cfg stats.SampleSizeConfig, pPerLayerBit [][]float64) *Plan {
	if len(pPerLayerBit) != space.NumLayers() {
		panic(fmt.Sprintf("core: got %d per-layer probability rows for %d layers",
			len(pPerLayerBit), space.NumLayers()))
	}
	p := &Plan{Approach: DataAware, Config: cfg, Space: space}
	for l := 0; l < space.NumLayers(); l++ {
		if len(pPerLayerBit[l]) != space.Bits {
			panic(fmt.Sprintf("core: layer %d has %d per-bit probabilities for %d bits",
				l, len(pPerLayerBit[l]), space.Bits))
		}
		N := space.BitLayerTotal(l)
		for bit := 0; bit < space.Bits; bit++ {
			bitCfg := cfg.WithP(pPerLayerBit[l][bit])
			p.Subpops = append(p.Subpops, Subpopulation{
				Layer: l, Bit: bit, Population: N, P: bitCfg.P,
				SampleSize: bitCfg.SampleSize(N),
			})
		}
	}
	return p
}
