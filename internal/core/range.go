package core

import (
	"fmt"
	"sort"

	"cnnsfi/internal/stats"
)

// This file is the engine's shard-range surface: executing only the
// [From, To) draw window of each stratum (WithDrawRanges) and folding
// such partial results back into the full-campaign Result
// (MergeRangeResults). Together they are the cut point federated
// campaigns are built on — a coordinator assigns contiguous per-stratum
// windows to member daemons, each member runs its window as a normal
// checkpointed job, and the merged Result is bit-identical to a
// single-node run of the same (plan, seed) by construction: the sample
// is always drawn in full (so the RNG stream never depends on the
// window), and tallies are pure sums over disjoint draw prefixes.

// DrawRange selects the contiguous [From, To) draw positions of one
// stratum's sample. From == To is a valid empty window.
type DrawRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Len returns the number of draws the range covers.
func (r DrawRange) Len() int64 { return r.To - r.From }

// WithDrawRanges restricts Execute to the [ranges[i].From,
// ranges[i].To) draw window of stratum i (one entry per plan stratum,
// in plan order). The full sample is still drawn exactly as a
// whole-campaign run would draw it — only evaluation is windowed — so
// draw j of stratum i denotes the same fault at every member of a
// federated campaign. Checkpoints written by a ranged run bind to the
// ranges (resuming with different ranges fails with
// ErrCheckpointRange), cursors are absolute draw positions, and the
// Result's Estimates tally the window only, with Result.Ranges
// recording the windows for MergeRangeResults.
//
// nil (the default) executes the full plan; an explicit empty window on
// every stratum is a valid no-op campaign.
func WithDrawRanges(ranges []DrawRange) Option {
	return func(e *Engine) { e.ranges = ranges }
}

// validateRanges checks a WithDrawRanges vector against the plan it
// will execute.
func validateRanges(ranges []DrawRange, plan *Plan) error {
	if ranges == nil {
		return nil
	}
	if len(ranges) != len(plan.Subpops) {
		return fmt.Errorf("core: engine: %d draw ranges for a %d-stratum plan", len(ranges), len(plan.Subpops))
	}
	for i, r := range ranges {
		if n := plan.Subpops[i].SampleSize; r.From < 0 || r.From > r.To || r.To > n {
			return fmt.Errorf("core: engine: stratum %d draw range [%d, %d) outside [0, %d]", i, r.From, r.To, n)
		}
	}
	return nil
}

// rangesEqual reports whether two WithDrawRanges vectors are the same
// campaign slice; nil (full run) only equals nil.
func rangesEqual(a, b []DrawRange) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rangeBounds returns the [from, to) draw window of stratum i — the
// full sample without WithDrawRanges.
func (x *execution) rangeBounds(i int) (from, to int64) {
	if x.ranges == nil {
		return 0, x.plan.Subpops[i].SampleSize
	}
	return x.ranges[i].From, x.ranges[i].To
}

// plannedInjections is the draw total this execution covers: the plan
// total, or the sum of the draw-window lengths under WithDrawRanges.
func (x *execution) plannedInjections() int64 {
	if x.ranges == nil {
		return x.plan.TotalInjections()
	}
	var n int64
	for _, r := range x.ranges {
		n += r.Len()
	}
	return n
}

// MergeRangeResults folds the partial Results of shard-range executions
// back into the full-campaign Result, strictly in draw order: for every
// stratum the parts' windows must tile [0, SampleSize) contiguously in
// the order given. Each part must be a complete (non-partial,
// non-early-stopped) run of the same plan; a part with nil Ranges is
// treated as covering every stratum in full (a whole single-node run).
//
// The merged Result is byte-identical (via WriteJSON) to a single-node
// Execute of the same (plan, seed): estimates and per-layer slices are
// pure sums over disjoint draw windows, and quarantined faults carry
// absolute draw positions, so concatenating and sorting them reproduces
// the single-node list.
func MergeRangeResults(plan *Plan, parts []*Result) (*Result, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: merge: nil plan")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: merge: no partial results")
	}
	want := planFingerprint(plan)
	cursors := make([]int64, len(plan.Subpops))
	merged := &Result{Plan: plan}
	merged.Estimates = make([]stats.ProportionEstimate, len(plan.Subpops))
	for i, sub := range plan.Subpops {
		merged.Estimates[i] = stats.ProportionEstimate{
			PopulationSize: sub.Population,
			PlannedP:       sub.P,
		}
	}
	for k, part := range parts {
		if part == nil || part.Plan == nil {
			return nil, fmt.Errorf("core: merge: part %d is nil or planless", k)
		}
		if got := planFingerprint(part.Plan); got != want {
			return nil, fmt.Errorf("core: merge: part %d plan fingerprint %016x, want %016x", k, got, want)
		}
		if part.Partial {
			return nil, fmt.Errorf("core: merge: part %d is a partial (interrupted) result", k)
		}
		if len(part.EarlyStopped) > 0 {
			return nil, fmt.Errorf("core: merge: part %d was early-stopped; member-local stops break the global sample", k)
		}
		if len(part.Estimates) != len(plan.Subpops) {
			return nil, fmt.Errorf("core: merge: part %d has %d estimates for a %d-stratum plan", k, len(part.Estimates), len(plan.Subpops))
		}
		ranges := part.Ranges
		if ranges == nil {
			ranges = make([]DrawRange, len(plan.Subpops))
			for i, sub := range plan.Subpops {
				ranges[i] = DrawRange{From: 0, To: sub.SampleSize}
			}
		}
		if len(ranges) != len(plan.Subpops) {
			return nil, fmt.Errorf("core: merge: part %d covers %d strata of a %d-stratum plan", k, len(ranges), len(plan.Subpops))
		}
		quarantinedPer := make([]int64, len(plan.Subpops))
		for _, q := range part.Quarantined {
			if q.Stratum < 0 || q.Stratum >= len(plan.Subpops) {
				return nil, fmt.Errorf("core: merge: part %d quarantined a fault in stratum %d of a %d-stratum plan", k, q.Stratum, len(plan.Subpops))
			}
			quarantinedPer[q.Stratum]++
		}
		for i, r := range ranges {
			if r.From != cursors[i] {
				return nil, fmt.Errorf("core: merge: stratum %d: part %d starts at draw %d, but only [0, %d) is merged — parts must arrive in draw order with no gaps",
					i, k, r.From, cursors[i])
			}
			if r.To > plan.Subpops[i].SampleSize {
				return nil, fmt.Errorf("core: merge: stratum %d: part %d ends at draw %d beyond the planned %d", i, k, r.To, plan.Subpops[i].SampleSize)
			}
			est := part.Estimates[i]
			if est.SampleSize+quarantinedPer[i] != r.Len() {
				return nil, fmt.Errorf("core: merge: stratum %d: part %d tallied %d draws (+%d quarantined) for a %d-draw window",
					i, k, est.SampleSize, quarantinedPer[i], r.Len())
			}
			cursors[i] = r.To
			merged.Estimates[i].Successes += est.Successes
			merged.Estimates[i].SampleSize += est.SampleSize
		}
		for l, pl := range part.LayerSlices {
			if merged.LayerSlices == nil {
				merged.LayerSlices = make(map[int]stats.ProportionEstimate)
			}
			agg, ok := merged.LayerSlices[l]
			if !ok {
				agg = stats.ProportionEstimate{
					PopulationSize: pl.PopulationSize,
					PlannedP:       pl.PlannedP,
				}
			}
			agg.SampleSize += pl.SampleSize
			agg.Successes += pl.Successes
			merged.LayerSlices[l] = agg
		}
		merged.Quarantined = append(merged.Quarantined, part.Quarantined...)
	}
	for i, c := range cursors {
		if c != plan.Subpops[i].SampleSize {
			return nil, fmt.Errorf("core: merge: stratum %d: parts cover only [0, %d) of %d planned draws", i, c, plan.Subpops[i].SampleSize)
		}
	}
	if len(merged.Quarantined) > 0 {
		sort.Slice(merged.Quarantined, func(i, j int) bool {
			if merged.Quarantined[i].Stratum != merged.Quarantined[j].Stratum {
				return merged.Quarantined[i].Stratum < merged.Quarantined[j].Stratum
			}
			return merged.Quarantined[i].Index < merged.Quarantined[j].Index
		})
	} else {
		merged.Quarantined = nil
	}
	return merged, nil
}

// SplitPlan cuts every stratum of a plan into n contiguous draw windows
// whose sizes differ by at most one draw, returning one
// WithDrawRanges vector per part. Executing each part and merging with
// MergeRangeResults reproduces the full campaign bit-identically. n
// must be >= 1; parts may receive empty windows on strata smaller than
// n.
func SplitPlan(plan *Plan, n int) ([][]DrawRange, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: split: nil plan")
	}
	if n < 1 {
		return nil, fmt.Errorf("core: split: %d parts", n)
	}
	parts := make([][]DrawRange, n)
	for k := range parts {
		parts[k] = make([]DrawRange, len(plan.Subpops))
	}
	for i, sub := range plan.Subpops {
		total := sub.SampleSize
		for k := 0; k < n; k++ {
			from := total * int64(k) / int64(n)
			to := total * int64(k+1) / int64(n)
			parts[k][i] = DrawRange{From: from, To: to}
		}
	}
	return parts, nil
}
