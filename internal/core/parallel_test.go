package core

import (
	"testing"

	"cnnsfi/internal/stats"
)

// TestRunParallelMatchesRun: identical seeds must produce bit-identical
// results regardless of worker count — parallel execution must not
// change the statistics.
func TestRunParallelMatchesRun(t *testing.T) {
	o, _ := smallOracle(t)
	for _, plan := range []*Plan{
		PlanNetworkWise(o.Space(), stats.DefaultConfig()),
		PlanLayerWise(o.Space(), stats.DefaultConfig()),
		PlanDataUnaware(o.Space(), stats.DefaultConfig()),
	} {
		serial := Run(o, plan, 5)
		for _, workers := range []int{0, 1, 4} {
			parallel := RunParallel(o, plan, 5, workers)
			if len(parallel.Estimates) != len(serial.Estimates) {
				t.Fatalf("%s: estimate count mismatch", plan.Approach)
			}
			for i := range serial.Estimates {
				if parallel.Estimates[i] != serial.Estimates[i] {
					t.Fatalf("%s workers=%d stratum %d: %+v != %+v",
						plan.Approach, workers, i, parallel.Estimates[i], serial.Estimates[i])
				}
			}
			if plan.Approach == NetworkWise {
				for l, est := range serial.LayerSlices {
					if parallel.LayerSlices[l] != est {
						t.Fatalf("layer slice %d mismatch", l)
					}
				}
			}
		}
	}
}

func TestRunParallelRace(t *testing.T) {
	// Exercised under `go test -race` in CI-style runs; here it at
	// least verifies no panics and correct totals with many workers.
	o, _ := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := RunParallel(o, plan, 0, 8)
	if res.Injections() != plan.TotalInjections() {
		t.Errorf("injections = %d, want %d", res.Injections(), plan.TotalInjections())
	}
}

func TestDecodeFaultChecked(t *testing.T) {
	o, _ := smallOracle(t)
	space := o.Space()
	sub := Subpopulation{Layer: 0, Bit: 30, Population: space.BitLayerTotal(0)}
	f, err := decodeFaultChecked(space, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Layer != 0 || f.Bit != 30 {
		t.Errorf("decoded %v", f)
	}
}
