package core

import (
	"runtime"
	"testing"

	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/models"
	"cnnsfi/internal/stats"
)

// allApproachPlans builds one plan per sampling approach over the same
// fault space, so determinism tests cover every stratification shape:
// one stratum (network-wise), per-layer strata, and per-(layer,bit)
// strata with both uniform and data-aware planned probabilities.
func allApproachPlans(t testing.TB) (*Plan, *Plan, *Plan, *Plan) {
	t.Helper()
	o, _ := smallOracle(t)
	cfg := stats.DefaultConfig()
	p := dataaware.AnalyzeFP32(models.SmallCNN(1).AllWeights()).P
	return PlanNetworkWise(o.Space(), cfg),
		PlanLayerWise(o.Space(), cfg),
		PlanDataUnaware(o.Space(), cfg),
		PlanDataAware(o.Space(), cfg, p)
}

// requireSameResult fails unless a and b are bit-identical: same
// estimates in the same order and the same per-layer slices (compared
// in both directions so an extra key on either side is caught).
func requireSameResult(t *testing.T, label string, serial, parallel *Result) {
	t.Helper()
	if len(parallel.Estimates) != len(serial.Estimates) {
		t.Fatalf("%s: %d estimates, want %d", label, len(parallel.Estimates), len(serial.Estimates))
	}
	for i := range serial.Estimates {
		if parallel.Estimates[i] != serial.Estimates[i] {
			t.Fatalf("%s stratum %d: %+v != %+v",
				label, i, parallel.Estimates[i], serial.Estimates[i])
		}
	}
	if len(parallel.LayerSlices) != len(serial.LayerSlices) {
		t.Fatalf("%s: %d layer slices, want %d",
			label, len(parallel.LayerSlices), len(serial.LayerSlices))
	}
	for l, est := range serial.LayerSlices {
		got, ok := parallel.LayerSlices[l]
		if !ok || got != est {
			t.Fatalf("%s layer slice %d: %+v != %+v", label, l, got, est)
		}
	}
}

// TestRunParallelMatchesRun: identical seeds must produce bit-identical
// results regardless of worker count — parallel execution must not
// change the statistics. Covers all four sampling approaches,
// including the network-wise single stratum whose LayerSlices are
// re-derived from shard-merged per-layer tallies.
func TestRunParallelMatchesRun(t *testing.T) {
	o, _ := smallOracle(t)
	nw, lw, du, da := allApproachPlans(t)
	for _, plan := range []*Plan{nw, lw, du, da} {
		serial := Run(o, plan, 5)
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
			parallel := RunParallel(o, plan, 5, workers)
			requireSameResult(t, string(plan.Approach), serial, parallel)
		}
	}
}

// TestRunParallelValidateDecode runs the shard path with the
// SFI_VALIDATE_DECODE cross-check enabled: every decoded fault is
// round-tripped through decodeFaultChecked, and the result must still
// match the serial runner (the check may only verify, never alter).
func TestRunParallelValidateDecode(t *testing.T) {
	old := validateDecode
	validateDecode = true
	defer func() { validateDecode = old }()

	o, _ := smallOracle(t)
	nw, _, _, da := allApproachPlans(t)
	for _, plan := range []*Plan{nw, da} {
		requireSameResult(t, string(plan.Approach)+"+validate",
			Run(o, plan, 2), RunParallel(o, plan, 2, 4))
	}
}

func TestRunParallelRace(t *testing.T) {
	// Exercised under `go test -race` in CI-style runs; here it at
	// least verifies no panics and correct totals with many workers.
	o, _ := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := RunParallel(o, plan, 0, 8)
	if res.Injections() != plan.TotalInjections() {
		t.Errorf("injections = %d, want %d", res.Injections(), plan.TotalInjections())
	}
}

// TestMakeShards checks the shard partition: contiguous, in order,
// covering every drawn index exactly once, and never more than
// workers×shardOversubscription non-empty chunks per stratum than
// needed.
func TestMakeShards(t *testing.T) {
	_, lw, _, _ := allApproachPlans(t)
	samples := drawAll(lw, 7)
	shards := makeShards(lw, samples, 4, nil)

	next := make([]int, len(samples)) // cursor per stratum
	for _, sh := range shards {
		if len(sh.idx) == 0 {
			t.Fatal("empty shard emitted")
		}
		for _, v := range sh.idx {
			want := samples[sh.stratum][next[sh.stratum]]
			if v != want {
				t.Fatalf("stratum %d: shard order diverges from draw order", sh.stratum)
			}
			next[sh.stratum]++
		}
	}
	for s := range samples {
		if next[s] != len(samples[s]) {
			t.Errorf("stratum %d: %d of %d drawn indices sharded", s, next[s], len(samples[s]))
		}
	}
}

func TestDecodeFaultChecked(t *testing.T) {
	o, _ := smallOracle(t)
	space := o.Space()
	sub := Subpopulation{Layer: 0, Bit: 30, Population: space.BitLayerTotal(0)}
	f, err := decodeFaultChecked(space, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Layer != 0 || f.Bit != 30 {
		t.Errorf("decoded %v", f)
	}
}
