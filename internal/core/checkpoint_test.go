package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/oracle"
)

// interruptWithCheckpoints cancels a checkpointed campaign halfway
// through and requires that both checkpoint generations (primary and
// rotated .bak) were left behind for the recovery tests to chew on.
func interruptWithCheckpoints(t *testing.T, o *oracle.Oracle, plan *Plan, seed int64, workers int, ckpt string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	opts := append(interruptAfter(cancel, plan.TotalInjections()/2),
		WithWorkers(workers), WithCheckpoint(ckpt), WithCheckpointInterval(64))
	if _, err := NewEngine(opts...).Execute(ctx, o, plan, seed); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	cancel()
	for _, p := range []string{ckpt, ckpt + checkpointBackupSuffix} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("interrupted campaign left no %s: %v", p, err)
		}
	}
}

// resumeOpts is the matching resume configuration (same worker count —
// cursors sit on shard boundaries of the writing count).
func resumeOpts(ckpt string, workers int, warn func(string)) []Option {
	return []Option{WithWorkers(workers), WithCheckpoint(ckpt), WithResume(), WithWarnings(warn)}
}

// TestCheckpointRecoveryFromBackup is the crash-safety acceptance
// criterion: a primary checkpoint destroyed in three different ways
// (truncated mid-file, silently bit-flipped, deleted) must resume from
// the rotated .bak with a one-line warning, reproduce the uninterrupted
// campaign bit-identically, and re-evaluate no draw already tallied in
// the backup.
func TestCheckpointRecoveryFromBackup(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed, workers = 7, 2
	want := resultBytes(t, Run(o, lw, seed))

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit_flipped", func(t *testing.T, path string) {
			// Change one tally digit: still valid JSON, so only the CRC
			// can notice.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			i := bytes.Index(data, []byte(`"injections":`)) + len(`"injections":`)
			data[i] = '0' + ('9' - data[i])
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing_primary", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
			interruptWithCheckpoints(t, o, lw, seed, workers, ckpt)

			// The backup is one checkpoint generation behind the primary;
			// its tally is the floor the resumed run must not re-evaluate.
			bak, err := readCheckpointDoc(ckpt + checkpointBackupSuffix)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, ckpt)

			var warnings []string
			before := o.EvalStats().Experiments()
			res, err := NewEngine(resumeOpts(ckpt, workers, func(msg string) { warnings = append(warnings, msg) })...).
				Execute(context.Background(), o, lw, seed)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := resultBytes(t, res); !bytes.Equal(got, want) {
				t.Error("backup-recovered campaign differs from the uninterrupted run")
			}
			if len(warnings) != 1 || !strings.Contains(warnings[0], checkpointBackupSuffix) {
				t.Errorf("warnings = %q, want one line pointing at the %s backup", warnings, checkpointBackupSuffix)
			}
			if delta := o.EvalStats().Experiments() - before; delta != lw.TotalInjections()-bak.Injections {
				t.Errorf("resume ran %d experiments, want planned %d minus the backup's %d tallied",
					delta, lw.TotalInjections(), bak.Injections)
			}
			// Completion must clear both generations.
			for _, p := range []string{ckpt, ckpt + checkpointBackupSuffix} {
				if _, err := os.Stat(p); !os.IsNotExist(err) {
					t.Errorf("%s survived campaign completion", p)
				}
			}
		})
	}
}

// TestCheckpointCorruptBothGenerations: with the backup gone too, the
// corruption must surface as an ErrCheckpointCorrupt resume failure, not
// a silent fresh start that re-runs half the campaign.
func TestCheckpointCorruptBothGenerations(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	interruptWithCheckpoints(t, o, lw, 7, 2, ckpt)
	for _, p := range []string{ckpt, ckpt + checkpointBackupSuffix} {
		if err := os.WriteFile(p, []byte(`{"version":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := NewEngine(resumeOpts(ckpt, 2, nil)...).Execute(context.Background(), o, lw, 7)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestCheckpointMismatchSentinels: every mismatch class carries its
// errors.Is-able sentinel, and none of them falls back to the backup —
// the backup belongs to the same campaign and would fail identically.
func TestCheckpointMismatchSentinels(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, du, _ := allApproachPlans(t)
	const seed, workers = 7, 2

	cases := []struct {
		name     string
		tamper   func(t *testing.T, ckpt string)
		plan     *Plan
		seed     int64
		workers  int
		sentinel error
	}{
		{"seed", nil, lw, seed + 1, workers, ErrCheckpointSeed},
		{"plan", nil, du, seed, workers, ErrCheckpointPlan},
		{"workers", nil, lw, seed, workers + 1, ErrCheckpointWorkers},
		{"version", func(t *testing.T, ckpt string) {
			rewriteCheckpointDoc(t, ckpt, func(doc *checkpointDoc) { doc.Version = 99 })
		}, lw, seed, workers, ErrCheckpointVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
			interruptWithCheckpoints(t, o, lw, seed, workers, ckpt)
			if tc.tamper != nil {
				tc.tamper(t, ckpt)
			}
			var warnings []string
			_, err := NewEngine(resumeOpts(ckpt, tc.workers, func(msg string) { warnings = append(warnings, msg) })...).
				Execute(context.Background(), o, tc.plan, tc.seed)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
			if len(warnings) != 0 {
				t.Errorf("mismatch fell back to the backup: %q", warnings)
			}
		})
	}
}

// rewriteCheckpointDoc edits one field of an on-disk checkpoint and
// clears the CRC — a zero checksum is the documented legacy escape
// hatch, so the tampered document still parses cleanly and exercises the
// validation under test rather than the CRC.
func rewriteCheckpointDoc(t *testing.T, path string, edit func(*checkpointDoc)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	edit(&doc)
	doc.Checksum = 0
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointLegacyZeroChecksumAccepted pins the compatibility
// contract: a document without a CRC (checksum zero) loads as long as
// its contents validate.
func TestCheckpointLegacyZeroChecksumAccepted(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed, workers = 7, 2
	want := resultBytes(t, Run(o, lw, seed))

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	interruptWithCheckpoints(t, o, lw, seed, workers, ckpt)
	rewriteCheckpointDoc(t, ckpt, func(*checkpointDoc) {})

	res, err := NewEngine(resumeOpts(ckpt, workers, nil)...).Execute(context.Background(), o, lw, seed)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := resultBytes(t, res); !bytes.Equal(got, want) {
		t.Error("legacy checkpoint resume differs from the uninterrupted run")
	}
}

// TestCheckpointQuarantineRoundTrip: an interrupted supervised campaign
// persists its quarantine records and retry tally; the resumed run
// carries them into the final Result instead of resurrecting the
// quarantined draws.
func TestCheckpointQuarantineRoundTrip(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed, workers, retries = 11, 2, 1

	picks := map[int][]int64{0: {3, 101}, 2: {42}}
	faults := victimDraws(t, lw, o.Space(), seed, picks)
	victims := make(map[faultmodel.Fault]chaosMode)
	for f := range faults {
		victims[f] = chaosPanic
	}
	newEv := func() Evaluator { return newChaosEvaluator(o, victims, false) }

	// Uninterrupted supervised baseline.
	base, err := NewEngine(WithWorkers(workers), WithMaxRetries(retries)).
		Execute(context.Background(), newEv(), lw, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, base)

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	opts := append(interruptAfter(cancel, lw.TotalInjections()/2),
		WithWorkers(workers), WithMaxRetries(retries),
		WithCheckpoint(ckpt), WithCheckpointInterval(64))
	if _, err := NewEngine(opts...).Execute(ctx, newEv(), lw, seed); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	cancel()

	doc, err := readCheckpointDoc(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quarantined) == 0 {
		t.Fatal("interrupted supervised campaign checkpointed no quarantine records; move the victim picks earlier")
	}

	res, err := NewEngine(WithWorkers(workers), WithMaxRetries(retries),
		WithCheckpoint(ckpt), WithResume()).
		Execute(context.Background(), newEv(), lw, seed)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := resultBytes(t, res); !bytes.Equal(got, want) {
		t.Error("resumed supervised campaign differs from the uninterrupted supervised run")
	}
	if len(res.Quarantined) != len(faults) {
		t.Errorf("resumed run reports %d quarantined, want %d", len(res.Quarantined), len(faults))
	}
}
