package core

import (
	"math"
	"testing"

	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/stats"
)

var resnet20Params = []int{
	432,
	2304, 2304, 2304, 2304, 2304, 2304,
	4608,
	9216, 9216, 9216, 9216, 9216,
	18432,
	36864, 36864, 36864, 36864, 36864,
	640,
}

func resnetSpace() faultmodel.Space {
	return faultmodel.NewStuckAt(resnet20Params, 32)
}

// TestPlanNetworkWiseMatchesTableI: the network-wise column of Table I.
func TestPlanNetworkWiseMatchesTableI(t *testing.T) {
	p := PlanNetworkWise(resnetSpace(), stats.DefaultConfig())
	// Our population differs from the paper's by the layer-11 typo
	// (17,173,504 vs 17,174,144); the sample size is insensitive at this
	// scale and still rounds to 16,625.
	if got := p.TotalInjections(); got != 16625 {
		t.Errorf("network-wise n = %d, want 16,625", got)
	}
	if len(p.Subpops) != 1 || p.Subpops[0].Layer != -1 || p.Subpops[0].Bit != -1 {
		t.Error("network-wise plan should have exactly one global stratum")
	}
}

// TestPlanLayerWiseMatchesTableI pins every row of the layer-wise column.
func TestPlanLayerWiseMatchesTableI(t *testing.T) {
	p := PlanLayerWise(resnetSpace(), stats.DefaultConfig())
	want := []int64{10389, 14954, 14954, 14954, 14954, 14954, 14954,
		15752, 16184, 16184, 16184, 16184, 16184, 16410,
		16524, 16524, 16524, 16524, 16524, 11834}
	for l, w := range want {
		if got := p.LayerInjections(l); got != w {
			t.Errorf("layer %d: n = %d, want %d", l, got, w)
		}
	}
	// Paper total is 307,650 with its L11 typo; the standard architecture
	// gives 307,649 (L11's population is 589,824 not 590,464 → n=16,184
	// not 16,185).
	if got := p.TotalInjections(); got != 307649 {
		t.Errorf("layer-wise total = %d, want 307,649", got)
	}
}

// TestPlanDataUnawareMatchesTableI pins every row of the data-unaware
// column (n per bit × 32 bits).
func TestPlanDataUnawareMatchesTableI(t *testing.T) {
	p := PlanDataUnaware(resnetSpace(), stats.DefaultConfig())
	want := []int64{26272, 115488, 115488, 115488, 115488, 115488, 115488,
		189792, 279872, 279872, 279872, 279872, 279872, 366912,
		434464, 434464, 434464, 434464, 434464, 38048}
	for l, w := range want {
		if got := p.LayerInjections(l); got != w {
			t.Errorf("layer %d: n = %d, want %d", l, got, w)
		}
	}
	// Paper total: 4,885,760 (again modulo the L11 typo: its 280,000 row
	// should be 279,872, giving 4,885,632).
	if got := p.TotalInjections(); got != 4885632 {
		t.Errorf("data-unaware total = %d, want 4,885,632", got)
	}
	if len(p.Subpops) != 20*32 {
		t.Errorf("strata = %d, want 640", len(p.Subpops))
	}
}

// TestPlanDataAwareIsCheapest: with p(i) derived from a realistic weight
// distribution, the data-aware campaign must cost a small fraction of
// the data-unaware one at the same granularity, and less than the
// layer-wise one (the paper reports 207,837 vs 4,885,760 vs 307,650 for
// ResNet-20 — i.e. ~1.2% of the population).
func TestPlanDataAwareIsCheapest(t *testing.T) {
	net := models.ResNet20(1)
	analysis := dataaware.AnalyzeFP32(net.AllWeights())
	space := resnetSpace()
	cfg := stats.DefaultConfig()

	aware := PlanDataAware(space, cfg, analysis.P)
	unaware := PlanDataUnaware(space, cfg)
	layer := PlanLayerWise(space, cfg)

	na, nu, nl := aware.TotalInjections(), unaware.TotalInjections(), layer.TotalInjections()
	if na >= nu/4 {
		t.Errorf("data-aware %d not well below data-unaware %d", na, nu)
	}
	if na >= nl*2 {
		t.Errorf("data-aware %d not comparable to layer-wise %d", na, nl)
	}
	frac := aware.InjectedFraction()
	if frac <= 0.001 || frac >= 0.1 {
		t.Errorf("injected fraction = %v, want same order as the paper's 1.21%%", frac)
	}
}

func TestPlanDataAwarePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched pPerBit did not panic")
		}
	}()
	PlanDataAware(resnetSpace(), stats.DefaultConfig(), []float64{0.5})
}

func TestApproachString(t *testing.T) {
	names := map[Approach]string{
		NetworkWise: "network-wise", LayerWise: "layer-wise",
		DataUnaware: "data-unaware", DataAware: "data-aware",
		Approach(9): "unknown",
	}
	for a, want := range names {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q", a, got)
		}
	}
}

// smallOracle builds the SmallCNN oracle evaluator plus its exhaustive
// per-layer ground truth.
func smallOracle(t testing.TB) (*oracle.Oracle, []float64) {
	t.Helper()
	o := oracle.New(models.SmallCNN(1), oracle.DefaultConfig(3))
	truth := make([]float64, o.Space().NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}
	return o, truth
}

func TestRunIsDeterministicInSeed(t *testing.T) {
	o, _ := smallOracle(t)
	plan := PlanLayerWise(o.Space(), stats.DefaultConfig())
	a := Run(o, plan, 42)
	b := Run(o, plan, 42)
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatal("same seed gave different results")
		}
	}
	c := Run(o, plan, 43)
	same := true
	for i := range a.Estimates {
		if a.Estimates[i] != c.Estimates[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical results")
	}
}

// TestLayerWiseEstimatesCoverExhaustive is the heart of the paper's
// validation: layer-wise SFI estimates must cover the exhaustive value
// within their margin for (essentially) every layer.
func TestLayerWiseEstimatesCoverExhaustive(t *testing.T) {
	o, truth := smallOracle(t)
	plan := PlanLayerWise(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 0)
	cmp := Compare(res, truth)
	if cmp.CoveredLayers < len(truth)-1 {
		t.Errorf("layer-wise covered %d/%d layers", cmp.CoveredLayers, len(truth))
	}
	if cmp.AvgMargin > plan.Config.ErrorMargin {
		t.Errorf("avg margin %v exceeds requested %v", cmp.AvgMargin, plan.Config.ErrorMargin)
	}
}

func TestDataUnawareEstimatesCoverExhaustive(t *testing.T) {
	o, truth := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 0)
	cmp := Compare(res, truth)
	if cmp.CoveredLayers < len(truth)-1 {
		t.Errorf("data-unaware covered %d/%d layers", cmp.CoveredLayers, len(truth))
	}
}

func TestDataAwareEstimatesCoverExhaustive(t *testing.T) {
	net := models.SmallCNN(1)
	o := oracle.New(net, oracle.DefaultConfig(3))
	truth := make([]float64, o.Space().NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}
	analysis := dataaware.AnalyzeFP32(net.AllWeights())
	plan := PlanDataAware(o.Space(), stats.DefaultConfig(), analysis.P)
	res := Run(o, plan, 0)
	cmp := Compare(res, truth)
	if cmp.CoveredLayers < len(truth)-1 {
		t.Errorf("data-aware covered %d/%d layers", cmp.CoveredLayers, len(truth))
	}
	// And it must be the cheap one.
	unaware := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	if plan.TotalInjections() >= unaware.TotalInjections() {
		t.Error("data-aware not cheaper than data-unaware")
	}
}

// TestNetworkWisePerLayerMarginsBlowUp reproduces the paper's core
// warning: slicing a network-wise sample per layer yields margins far
// above the requested 1% (Table III reports an average of 1.57% on
// ResNet-20). The effect needs the paper's regime — a sample that is
// tiny relative to the population, spread across many layers — so this
// test runs at ResNet-20 scale against the oracle substrate.
func TestNetworkWisePerLayerMarginsBlowUp(t *testing.T) {
	o := oracle.New(models.ResNet20(1), oracle.DefaultConfig(3))
	truth := make([]float64, o.Space().NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}
	cfg := stats.DefaultConfig()
	net := Compare(Run(o, PlanNetworkWise(o.Space(), cfg), 0), truth)
	layer := Compare(Run(o, PlanLayerWise(o.Space(), cfg), 0), truth)
	if net.AvgMargin <= cfg.ErrorMargin {
		t.Errorf("network-wise avg per-layer margin %v unexpectedly within the 1%% budget", net.AvgMargin)
	}
	if net.AvgMargin <= layer.AvgMargin {
		t.Errorf("network-wise margin %v should exceed layer-wise %v", net.AvgMargin, layer.AvgMargin)
	}
	if layer.AvgMargin > cfg.ErrorMargin {
		t.Errorf("layer-wise avg margin %v exceeds the 1%% budget", layer.AvgMargin)
	}
}

// TestNetworkWiseGlobalEstimateIsValid: the black-box question the
// network-wise SFI *can* answer — the whole-network critical rate —
// must be within margin.
func TestNetworkWiseGlobalEstimateIsValid(t *testing.T) {
	o, truth := smallOracle(t)
	cfg := stats.DefaultConfig()
	cmp := Compare(Run(o, PlanNetworkWise(o.Space(), cfg), 0), truth)
	est := cmp.NetworkEstimate
	if !est.Covers(cfg, cmp.NetworkExhaustive) {
		t.Errorf("network estimate %v ± %v does not cover exhaustive %v",
			est.PHat(), est.Margin(cfg), cmp.NetworkExhaustive)
	}
}

func TestBitEstimateRequiresBitGranularity(t *testing.T) {
	o, _ := smallOracle(t)
	cfg := stats.DefaultConfig()

	res := Run(o, PlanDataUnaware(o.Space(), cfg), 0)
	est := res.BitEstimate(0, 30)
	if est.SampleSize == 0 {
		t.Error("bit estimate has no sample")
	}

	coarse := Run(o, PlanLayerWise(o.Space(), cfg), 0)
	defer func() {
		if recover() == nil {
			t.Error("BitEstimate on a layer-wise plan did not panic")
		}
	}()
	coarse.BitEstimate(0, 30)
}

// TestBitLevelEstimatesMatchExhaustive: the proposed methods' raison
// d'être — per-bit vulnerability estimates must track the exhaustive
// per-bit rates.
func TestBitLevelEstimatesMatchExhaustive(t *testing.T) {
	o, _ := smallOracle(t)
	cfg := stats.DefaultConfig()
	res := Run(o, PlanDataUnaware(o.Space(), cfg), 0)
	for _, bit := range []int{0, 10, 22, 27, 30, 31} {
		crit, total := o.ExhaustiveBitLayerCount(2, bit)
		truth := float64(crit) / float64(total)
		est := res.BitEstimate(2, bit)
		if !est.Covers(cfg, truth) {
			t.Errorf("bit %d: estimate %v ± %v misses exhaustive %v",
				bit, est.PHat(), est.Margin(cfg), truth)
		}
	}
}

func TestReplicatedEstimates(t *testing.T) {
	o, truth := smallOracle(t)
	cfg := stats.DefaultConfig()
	plan := PlanLayerWise(o.Space(), cfg)
	reps := ReplicatedEstimates(o, plan, 0, 10)
	if len(reps) != 10 {
		t.Fatalf("replicas = %d", len(reps))
	}
	covered := 0
	for _, est := range reps {
		if est.Covers(cfg, truth[0]) {
			covered++
		}
	}
	// 99% confidence: expect ≥ 9/10 replicas to cover.
	if covered < 9 {
		t.Errorf("only %d/10 replicas covered the exhaustive value", covered)
	}
}

func TestResultInjectionsMatchesPlan(t *testing.T) {
	o, _ := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 1)
	if res.Injections() != plan.TotalInjections() {
		t.Errorf("result injections %d != plan %d", res.Injections(), plan.TotalInjections())
	}
}

func TestCompareInjectedFraction(t *testing.T) {
	o, truth := smallOracle(t)
	plan := PlanNetworkWise(o.Space(), stats.DefaultConfig())
	cmp := Compare(Run(o, plan, 0), truth)
	want := float64(plan.TotalInjections()) / float64(o.Space().Total())
	if math.Abs(cmp.InjectedFraction-want) > 1e-12 {
		t.Errorf("injected fraction = %v, want %v", cmp.InjectedFraction, want)
	}
}

func BenchmarkRunLayerWiseOracle(b *testing.B) {
	o, _ := smallOracle(b)
	plan := PlanLayerWise(o.Space(), stats.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(o, plan, int64(i))
	}
}

func TestPlanDataAwarePerLayer(t *testing.T) {
	net := models.SmallCNN(1)
	space := faultmodel.NewStuckAt(net.LayerParamCounts(), 32)
	cfg := stats.DefaultConfig()

	var layerWeights [][]float32
	for _, wl := range net.WeightLayers() {
		layerWeights = append(layerWeights, wl.WeightData())
	}
	perLayer := dataaware.AnalyzePerLayer(layerWeights, fp.FP32)
	plan := PlanDataAwarePerLayer(space, cfg, perLayer.P())

	if len(plan.Subpops) != space.NumLayers()*32 {
		t.Fatalf("strata = %d", len(plan.Subpops))
	}
	if plan.TotalInjections() <= 0 || plan.TotalInjections() >= PlanDataUnaware(space, cfg).TotalInjections() {
		t.Errorf("per-layer data-aware total %d implausible", plan.TotalInjections())
	}

	// It must validate like any data-aware plan against the oracle.
	o := oracle.New(net, oracle.DefaultConfig(3))
	truth := make([]float64, space.NumLayers())
	for l := range truth {
		truth[l] = o.ExhaustiveLayerRate(l)
	}
	cmp := Compare(Run(o, plan, 0), truth)
	if cmp.CoveredLayers < space.NumLayers()-1 {
		t.Errorf("per-layer data-aware covered %d/%d", cmp.CoveredLayers, space.NumLayers())
	}
}

func TestPlanDataAwarePerLayerPanics(t *testing.T) {
	net := models.SmallCNN(1)
	space := faultmodel.NewStuckAt(net.LayerParamCounts(), 32)
	cfg := stats.DefaultConfig()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong layer count did not panic")
			}
		}()
		PlanDataAwarePerLayer(space, cfg, make([][]float64, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong bit count did not panic")
			}
		}()
		rows := make([][]float64, space.NumLayers())
		for i := range rows {
			rows[i] = make([]float64, 8)
		}
		PlanDataAwarePerLayer(space, cfg, rows)
	}()
}
