package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// This file is the engine's supervision layer: panic isolation, a
// per-experiment watchdog, bounded retries on freshly cloned
// evaluators, and deterministic quarantine of faults that keep failing.
//
// Supervision exists because one bad experiment must not invalidate a
// multi-hour campaign: a panicking decode or evaluator kills the whole
// process today, and a hung inference stalls its worker forever. With
// supervision enabled, both become a typed ExperimentError, the fault
// is re-run up to the retry budget on a fresh evaluator clone (the
// WorkerCloner seam), and a fault that exhausts its budget is
// quarantined *by fault identity* — excluded from the tally with the
// stratum's effective sample size reduced accordingly — so the Result
// stays bit-identical across worker counts and the statistics report
// exactly how much power was lost (stats.ObservedMargin over the
// reduced n).
//
// Supervision disabled (the default) costs one nil check per shard:
// the classic shard.evaluate hot path is untouched.

// WithExperimentTimeout bounds each supervised experiment's wall time.
// An experiment that exceeds d is abandoned (its goroutine is left to
// finish into a discarded buffer — IsCritical is synchronous and cannot
// be killed), counted as a failed attempt, and re-run per WithMaxRetries
// on a freshly cloned evaluator. Setting a timeout enables supervision;
// d = 0 (the default) means no deadline.
func WithExperimentTimeout(d time.Duration) Option {
	return func(e *Engine) { e.expTimeout = d }
}

// WithMaxRetries sets how many times a failing experiment (panic or
// timeout) is re-run — on a fresh evaluator clone when the evaluator
// implements WorkerCloner — before the fault is quarantined. Calling it
// with n >= 0 enables supervision (panic isolation); n = 0 quarantines
// on the first failure. The default (supervision off) lets panics
// propagate exactly as the classic runners do.
func WithMaxRetries(n int) Option {
	return func(e *Engine) { e.maxRetries = n }
}

// WithWarnings installs a sink for the engine's rare one-line
// operational warnings (today: checkpoint recovery fallbacks and
// quarantine notices). Without a sink, warnings go to os.Stderr.
func WithWarnings(sink func(msg string)) Option {
	return func(e *Engine) { e.warn = sink }
}

// supervised reports whether any supervision option is active.
func (e *Engine) supervised() bool { return e.expTimeout > 0 || e.maxRetries >= 0 }

// ExperimentError is one supervised experiment failure: a recovered
// panic or a watchdog timeout, carrying the fault identity (stratum +
// draw index + rendered fault, when the decode itself survived) and the
// recovered panic value with its stack. Quarantine records and trace
// events carry its Error() rendering.
type ExperimentError struct {
	// Stratum / Index identify the fault by its position in the plan's
	// drawn sample — the identity quarantine is keyed on.
	Stratum int
	Index   int64
	// Fault is the rendered fault (faultmodel.Fault.String()), or ""
	// when the decode itself panicked before producing one.
	Fault string
	// Attempt is the 1-based attempt number that failed.
	Attempt int
	// Timeout marks a watchdog expiry; otherwise Panic holds the
	// recovered value and Stack the goroutine stack at recovery.
	Timeout bool
	Panic   any
	Stack   []byte
}

// Error renders the failure as one line (no stack).
func (e *ExperimentError) Error() string {
	id := e.Fault
	if id == "" {
		id = "<undecoded>"
	}
	if e.Timeout {
		return fmt.Sprintf("experiment %s (stratum %d, draw %d) exceeded the experiment timeout on attempt %d",
			id, e.Stratum, e.Index, e.Attempt)
	}
	return fmt.Sprintf("experiment %s (stratum %d, draw %d) panicked on attempt %d: %v",
		id, e.Stratum, e.Index, e.Attempt, e.Panic)
}

// QuarantinedFault is one fault excluded from a campaign's tallies
// after exhausting its retry budget. The set of quarantined faults is a
// function of fault identity (every fault occupies exactly one draw
// position, evaluated exactly once plus retries), so it is bit-identical
// across worker counts; Result.Quarantined is sorted by (Stratum,
// Index).
type QuarantinedFault struct {
	// Stratum indexes Plan.Subpops; Index is the fault's draw position
	// within that stratum's sample.
	Stratum int   `json:"stratum"`
	Index   int64 `json:"index"`
	// Fault is the rendered fault identity ("" when the decode itself
	// failed).
	Fault string `json:"fault,omitempty"`
	// Attempts counts evaluation attempts (1 + retries).
	Attempts int `json:"attempts"`
	// Err is the last failure's ExperimentError rendering.
	Err string `json:"err"`
}

// retryRecord is one supervised experiment that produced a verdict only
// after failed attempts; it rides back on the shard for trace emission.
type retryRecord struct {
	index    int64 // draw position within the stratum
	fault    string
	failures int // failed attempts before the verdict
	err      string
}

// supervisor is the engine-wide supervision state shared by all
// workers: the configuration plus the pristine evaluator retry clones
// are cut from. The pristine clone is made before any evaluation
// starts and never evaluated on, so clones cut from it mid-campaign
// are guaranteed uncorrupted even if a worker's own evaluator panicked
// halfway through a weight mutation.
type supervisor struct {
	timeout time.Duration
	retries int

	mu       sync.Mutex
	pristine WorkerCloner // nil when the evaluator is shared (not cloneable)
}

// newSupervisor builds the supervision state for one Execute call.
func newSupervisor(e *Engine, ev Evaluator) *supervisor {
	s := &supervisor{timeout: e.expTimeout, retries: max(e.maxRetries, 0)}
	if c, ok := ev.(WorkerCloner); ok {
		if p, ok := c.CloneForWorker().(WorkerCloner); ok {
			s.pristine = p
		}
	}
	return s
}

// fresh returns an uncorrupted evaluator to retry on: a clone cut from
// the pristine copy when the evaluator supports cloning, the current
// evaluator otherwise (shared evaluators are concurrency-safe and hold
// no per-experiment state by contract).
func (s *supervisor) fresh(cur Evaluator) Evaluator {
	if s.pristine == nil {
		return cur
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pristine.CloneForWorker()
}

// verdict is the outcome of one supervised experiment attempt.
type verdict struct {
	fault    faultmodel.Fault
	decoded  bool
	critical bool
	panicked bool
	panicVal any
	stack    []byte
	timedOut bool
}

// failed reports whether the attempt produced no verdict.
func (v verdict) failed() bool { return v.panicked || v.timedOut }

// runIsolated executes one experiment attempt inside a recover
// boundary, converting a panic (in the decode or the evaluator) into a
// verdict instead of killing the worker.
func runIsolated(fn func() verdict) (v verdict) {
	defer func() {
		if r := recover(); r != nil {
			v = verdict{panicked: true, panicVal: r, stack: debug.Stack()}
		}
	}()
	return fn()
}

// abandonedLanes counts watchdog-abandoned lanes whose goroutine has
// not yet exited — each is one goroutine still pinned by a hung (or
// slow) experiment. The count rises when a timeout abandons a lane and
// falls when the abandoned lane's experiment finally returns and its
// goroutine exits; a lane that never returns keeps the count raised
// permanently, which is exactly the goroutine leak the gauge makes
// visible. Lanes released cleanly (worker shutdown, post-failure
// refresh) are never counted: their goroutines exit immediately.
var abandonedLanes atomic.Int64

// WatchdogAbandonedLanes returns the number of watchdog-abandoned lane
// goroutines currently alive, process-wide. Exported as the
// sfi_watchdog_abandoned_lanes gauge by cmd/sfirun's metrics endpoint;
// a value that stays above zero after campaigns finish means hung
// experiments are holding goroutines (and one evaluator clone each)
// forever.
func WatchdogAbandonedLanes() int64 { return abandonedLanes.Load() }

// supLane is a helper goroutine experiments run on when a watchdog
// timeout is configured, so a hung IsCritical can be abandoned without
// stalling the worker. out is buffered: an abandoned lane's final send
// lands in the buffer and the goroutine exits when it sees in closed.
type supLane struct {
	in  chan func() verdict
	out chan verdict
	// abandoned is set (before in is closed, so the lane goroutine
	// observes it after its range loop ends) only by a watchdog-timeout
	// abandonment; it tells the exiting goroutine to decrement
	// abandonedLanes.
	abandoned atomic.Bool
}

func startLane() *supLane {
	l := &supLane{in: make(chan func() verdict), out: make(chan verdict, 1)}
	go func() {
		for fn := range l.in {
			l.out <- runIsolated(fn)
		}
		if l.abandoned.Load() {
			abandonedLanes.Add(-1)
		}
	}()
	return l
}

// abandon releases the lane: the goroutine exits now if idle, or after
// its in-flight experiment returns (a truly hung call leaks exactly one
// goroutine, which is why retries run on a fresh evaluator).
func (l *supLane) abandon() { close(l.in) }

// abandonTimedOut is abandon for the watchdog-timeout path: the lane is
// counted in the abandoned-lanes gauge until its goroutine exits. The
// flag and increment precede close(in) so the goroutine's post-loop
// load is ordered after them (channel close is the synchronising edge).
func (l *supLane) abandonTimedOut() {
	l.abandoned.Store(true)
	abandonedLanes.Add(1)
	close(l.in)
}

// supWorker is one worker's supervision state: its current evaluator
// (replaced after any failure) and its watchdog lane.
type supWorker struct {
	sup  *supervisor
	ev   Evaluator
	lane *supLane
}

// close releases the worker's lane on shutdown.
func (w *supWorker) close() {
	if w.lane != nil {
		w.lane.abandon()
		w.lane = nil
	}
}

// refresh discards the worker's possibly-corrupted evaluator (and the
// lane still referencing it) and swaps in a fresh clone.
func (w *supWorker) refresh() {
	w.close()
	w.ev = w.sup.fresh(w.ev)
}

// attempt runs one experiment attempt, inline (recover only) without a
// timeout, or on the lane under the watchdog with one.
func (w *supWorker) attempt(fn func(Evaluator) verdict) verdict {
	ev := w.ev
	job := func() verdict { return fn(ev) }
	if w.sup.timeout <= 0 {
		return runIsolated(job)
	}
	if w.lane == nil {
		w.lane = startLane()
	}
	w.lane.in <- job
	timer := time.NewTimer(w.sup.timeout)
	defer timer.Stop()
	select {
	case v := <-w.lane.out:
		return v
	case <-timer.C:
		w.lane.abandonTimedOut()
		w.lane = nil
		return verdict{timedOut: true}
	}
}

// evaluateShard is shard.evaluate with per-experiment supervision:
// decode + IsCritical run inside a recover boundary (and under the
// watchdog when configured); a failed experiment is retried up to the
// budget on a fresh evaluator, and quarantined past it. Tally order and
// content are identical to the classic path for every experiment that
// produces a verdict.
func (w *supWorker) evaluateShard(s *shard, space faultmodel.Space, plan *Plan, validate bool) {
	sub := plan.Subpops[s.stratum]
	if sub.Layer < 0 {
		s.perLayer = make(map[int]*stats.ProportionEstimate)
	}
	for off, j := range s.idx {
		j := j
		experiment := func(ev Evaluator) verdict {
			f := decodeShardFault(space, sub, j, validate)
			return verdict{fault: f, decoded: true, critical: ev.IsCritical(f)}
		}
		v := w.attempt(experiment)
		if v.timedOut {
			s.abandoned++
		}
		failures := 0
		var lastErr *ExperimentError
		for v.failed() && failures <= w.sup.retries {
			failures++
			lastErr = w.describeFailure(v, s, space, sub, j, off, failures)
			if failures > w.sup.retries {
				break
			}
			w.refresh() // assume the evaluator is poisoned; retry on a fresh clone
			v = w.attempt(experiment)
			if v.timedOut {
				s.abandoned++
			}
		}
		if v.failed() {
			w.refresh()
			s.quarantined = append(s.quarantined, QuarantinedFault{
				Stratum:  s.stratum,
				Index:    s.start + int64(off),
				Fault:    lastErr.Fault,
				Attempts: failures,
				Err:      lastErr.Error(),
			})
			continue
		}
		if failures > 0 {
			s.retried = append(s.retried, retryRecord{
				index:    s.start + int64(off),
				fault:    v.fault.String(),
				failures: failures,
				err:      lastErr.Error(),
			})
			s.retries += int64(failures)
		}
		if v.critical {
			s.successes++
		}
		if s.perLayer != nil {
			pl := s.perLayer[v.fault.Layer]
			if pl == nil {
				pl = &stats.ProportionEstimate{
					PopulationSize: space.LayerTotal(v.fault.Layer),
					PlannedP:       sub.P,
				}
				s.perLayer[v.fault.Layer] = pl
			}
			pl.SampleSize++
			if v.critical {
				pl.Successes++
			}
		}
	}
}

// describeFailure builds the typed error for one failed attempt. The
// fault identity is re-decoded defensively when the failing attempt did
// not carry it (a timeout, or a panic inside the decode itself).
func (w *supWorker) describeFailure(v verdict, s *shard, space faultmodel.Space, sub Subpopulation, j int64, off, attempt int) *ExperimentError {
	e := &ExperimentError{
		Stratum: s.stratum,
		Index:   s.start + int64(off),
		Attempt: attempt,
		Timeout: v.timedOut,
		Panic:   v.panicVal,
		Stack:   v.stack,
	}
	if v.decoded {
		e.Fault = v.fault.String()
	} else if f, ok := safeDecode(space, sub, j, validateFromPanic(v)); ok {
		e.Fault = f.String()
	}
	return e
}

// validateFromPanic: the defensive re-decode never validates — it only
// exists to attach an identity label, and a validating decode might be
// the very thing that panicked.
func validateFromPanic(verdict) bool { return false }

// safeDecode decodes a fault under its own recover boundary, for
// failure labelling only.
func safeDecode(space faultmodel.Space, sub Subpopulation, j int64, validate bool) (f faultmodel.Fault, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return decodeShardFault(space, sub, j, validate), true
}
