package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// rangedResult executes the plan's [From, To) windows and fails the test
// on error.
func rangedResult(t *testing.T, plan *Plan, seed int64, workers int, ranges []DrawRange, extra ...Option) *Result {
	t.Helper()
	o, _ := smallOracle(t)
	opts := append([]Option{WithWorkers(workers), WithDrawRanges(ranges)}, extra...)
	res, err := NewEngine(opts...).Execute(context.Background(), o, plan, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fullWindows builds the WithDrawRanges vector covering every stratum in
// full — semantically the whole campaign, expressed as a range run.
func fullWindows(plan *Plan) []DrawRange {
	ranges := make([]DrawRange, len(plan.Subpops))
	for i, sub := range plan.Subpops {
		ranges[i] = DrawRange{From: 0, To: sub.SampleSize}
	}
	return ranges
}

// TestDrawRangeValidation: malformed WithDrawRanges vectors must be
// rejected before any evaluation.
func TestDrawRangeValidation(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	n := lw.Subpops[0].SampleSize
	bad := map[string][]DrawRange{
		"wrong stratum count": {{From: 0, To: 1}},
		"negative from":       append([]DrawRange{{From: -1, To: 1}}, fullWindows(lw)[1:]...),
		"from beyond to":      append([]DrawRange{{From: 2, To: 1}}, fullWindows(lw)[1:]...),
		"to beyond sample":    append([]DrawRange{{From: 0, To: n + 1}}, fullWindows(lw)[1:]...),
	}
	for label, ranges := range bad {
		eng := NewEngine(WithWorkers(1), WithDrawRanges(ranges))
		if _, err := eng.Execute(context.Background(), o, lw, 3); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

// TestDrawRangeEmptyWindows: an all-empty range vector is a valid no-op
// campaign — zero draws tallied, nothing partial, nothing stopped.
func TestDrawRangeEmptyWindows(t *testing.T) {
	_, lw, _, _ := allApproachPlans(t)
	empty := make([]DrawRange, len(lw.Subpops))
	for i := range empty {
		empty[i] = DrawRange{From: lw.Subpops[i].SampleSize / 2, To: lw.Subpops[i].SampleSize / 2}
	}
	res := rangedResult(t, lw, 3, 2, empty)
	if res.Partial || len(res.EarlyStopped) != 0 {
		t.Fatal("empty-window run marked partial/early-stopped")
	}
	if got := res.Injections(); got != 0 {
		t.Fatalf("empty windows tallied %d draws", got)
	}
	for i, est := range res.Estimates {
		if est.SampleSize != 0 || est.Successes != 0 {
			t.Fatalf("stratum %d: non-zero tally %+v from an empty window", i, est)
		}
	}
}

// TestDrawRangeFullWindowMatchesFullRun: a range run covering every
// stratum in full must tally exactly what the unranged run tallies — the
// only difference in the Result is the recorded Ranges vector.
func TestDrawRangeFullWindowMatchesFullRun(t *testing.T) {
	o, _ := smallOracle(t)
	for _, plan := range func() []*Plan { nw, lw, du, da := allApproachPlans(t); return []*Plan{nw, lw, du, da} }() {
		full, err := NewEngine(WithWorkers(4)).Execute(context.Background(), o, plan, 5)
		if err != nil {
			t.Fatal(err)
		}
		ranged := rangedResult(t, plan, 5, 4, fullWindows(plan))
		if ranged.Ranges == nil {
			t.Fatalf("%s: ranged run did not record its windows", plan.Approach)
		}
		ranged.Ranges = nil // the windows are the one legitimate difference
		if !bytes.Equal(resultBytes(t, full), resultBytes(t, ranged)) {
			t.Fatalf("%s: full-window range run diverges from the full run", plan.Approach)
		}
	}
}

// TestDrawRangeSplitMergeBitIdentity is the federation anchor at the
// engine level: SplitPlan into 1/2/3 parts, execute each window as its
// own campaign (at 1 and 4 workers), and MergeRangeResults must
// reproduce the single-node Result byte-for-byte.
func TestDrawRangeSplitMergeBitIdentity(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, da := allApproachPlans(t)
	for _, plan := range []*Plan{lw, da} {
		want, err := NewEngine(WithWorkers(1)).Execute(context.Background(), o, plan, 11)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := resultBytes(t, want)
		for _, members := range []int{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				parts, err := SplitPlan(plan, members)
				if err != nil {
					t.Fatal(err)
				}
				results := make([]*Result, members)
				for k, ranges := range parts {
					results[k] = rangedResult(t, plan, 11, workers, ranges)
				}
				merged, err := MergeRangeResults(plan, results)
				if err != nil {
					t.Fatalf("%s members=%d workers=%d: merge: %v", plan.Approach, members, workers, err)
				}
				if !bytes.Equal(wantBytes, resultBytes(t, merged)) {
					t.Fatalf("%s members=%d workers=%d: merged result diverges from single-node run",
						plan.Approach, members, workers)
				}
			}
		}
	}
}

// TestDrawRangeCheckpointResume: a ranged campaign killed mid-window and
// resumed from its checkpoint must yield a Result byte-identical to the
// uninterrupted ranged run — a member daemon restart costs zero
// correctness.
func TestDrawRangeCheckpointResume(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	parts, err := SplitPlan(lw, 2)
	if err != nil {
		t.Fatal(err)
	}
	ranges := parts[1] // the second half: every window starts mid-stratum
	want := rangedResult(t, lw, 7, 2, ranges)

	ckpt := filepath.Join(t.TempDir(), "range.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := append([]Option{
		WithWorkers(2), WithDrawRanges(ranges),
		WithCheckpoint(ckpt), WithCheckpointInterval(64),
	}, interruptAfter(cancel, 128)...)
	partial, err := NewEngine(opts...).Execute(ctx, o, lw, 7)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if !partial.Partial {
		t.Fatal("interrupted ranged run not marked partial")
	}

	// The checkpoint binds to its windows: resuming with different
	// windows — or as a full run — must fail with ErrCheckpointRange.
	// (Checked before the legitimate resume, which removes the file.)
	for label, eng := range map[string]*Engine{
		"other windows": NewEngine(WithWorkers(2), WithDrawRanges(parts[0]), WithCheckpoint(ckpt), WithResume()),
		"full run":      NewEngine(WithWorkers(2), WithCheckpoint(ckpt), WithResume()),
	} {
		if _, err := eng.Execute(context.Background(), o, lw, 7); !errors.Is(err, ErrCheckpointRange) {
			t.Errorf("%s resume of a ranged checkpoint: err = %v, want ErrCheckpointRange", label, err)
		}
	}

	resumed, err := NewEngine(WithWorkers(2), WithDrawRanges(ranges), WithCheckpoint(ckpt), WithResume()).
		Execute(context.Background(), o, lw, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, want), resultBytes(t, resumed)) {
		t.Fatal("resumed ranged run diverges from the uninterrupted ranged run")
	}
}

// TestDrawRangeEarlyStopBoundary: a window wide enough for the
// margin-based early stop to fire inside it must stop there — and stay
// deterministic at a fixed worker count, the same contract the full
// campaign's early stop carries.
func TestDrawRangeEarlyStopBoundary(t *testing.T) {
	_, lw, _, _ := allApproachPlans(t)
	ranges := fullWindows(lw)
	res := rangedResult(t, lw, 9, 4, ranges, WithEarlyStop(0))
	if len(res.EarlyStopped) == 0 {
		t.Fatal("no stratum early-stopped inside its window")
	}
	for _, i := range res.EarlyStopped {
		if n := res.Estimates[i].SampleSize; n >= ranges[i].Len() || n < earlyStopMinSample {
			t.Errorf("stratum %d: stop at n=%d implausible for a %d-draw window", i, n, ranges[i].Len())
		}
	}
	again := rangedResult(t, lw, 9, 4, ranges, WithEarlyStop(0))
	if !bytes.Equal(resultBytes(t, res), resultBytes(t, again)) {
		t.Fatal("ranged early stop not deterministic at a fixed worker count")
	}

	// A narrow window ending before the stop could mature (fewer than
	// earlyStopMinSample effective draws) must complete without stopping.
	narrow := make([]DrawRange, len(lw.Subpops))
	for i := range narrow {
		to := int64(earlyStopMinSample - 1)
		if max := lw.Subpops[i].SampleSize; to > max {
			to = max
		}
		narrow[i] = DrawRange{From: 0, To: to}
	}
	small := rangedResult(t, lw, 9, 2, narrow, WithEarlyStop(0))
	if len(small.EarlyStopped) != 0 {
		t.Fatalf("strata %v early-stopped below the minimum effective sample", small.EarlyStopped)
	}
	for i, est := range small.Estimates {
		if est.SampleSize != narrow[i].Len() {
			t.Errorf("stratum %d: tallied %d of a %d-draw window", i, est.SampleSize, narrow[i].Len())
		}
	}
}

// TestMergeRangeResultsErrors: the merge must reject anything that is
// not an in-order gap-free tiling of complete parts of the same plan.
func TestMergeRangeResultsErrors(t *testing.T) {
	_, lw, du, _ := allApproachPlans(t)
	parts, err := SplitPlan(lw, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := rangedResult(t, lw, 13, 1, parts[0])
	second := rangedResult(t, lw, 13, 1, parts[1])

	cases := map[string]struct {
		plan  *Plan
		parts []*Result
	}{
		"no parts":        {lw, nil},
		"out of order":    {lw, []*Result{second, first}},
		"gap":             {lw, []*Result{second}},
		"double-tally":    {lw, []*Result{first, first, second}},
		"short coverage":  {lw, []*Result{first}},
		"wrong plan":      {du, []*Result{first, second}},
		"partial part":    {lw, []*Result{first, {Plan: lw, Partial: true}}},
		"early-stop part": {lw, []*Result{first, {Plan: lw, EarlyStopped: []int{0}}}},
	}
	for label, tc := range cases {
		if _, err := MergeRangeResults(tc.plan, tc.parts); err == nil {
			t.Errorf("%s: merged", label)
		}
	}

	// Sanity: the well-formed tiling still merges.
	if _, err := MergeRangeResults(lw, []*Result{first, second}); err != nil {
		t.Fatalf("well-formed tiling rejected: %v", err)
	}
}

// TestSplitPlanWindows: SplitPlan must tile every stratum contiguously
// with window sizes differing by at most one draw, including n larger
// than a stratum's sample (empty windows).
func TestSplitPlanWindows(t *testing.T) {
	_, lw, _, _ := allApproachPlans(t)
	if _, err := SplitPlan(lw, 0); err == nil {
		t.Error("SplitPlan accepted n=0")
	}
	if _, err := SplitPlan(nil, 2); err == nil {
		t.Error("SplitPlan accepted a nil plan")
	}
	for _, n := range []int{1, 2, 3, 7, 10000} {
		parts, err := SplitPlan(lw, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: %d parts", n, len(parts))
		}
		for i, sub := range lw.Subpops {
			var cursor int64
			minLen, maxLen := sub.SampleSize, int64(0)
			for k := range parts {
				r := parts[k][i]
				if r.From != cursor {
					t.Fatalf("n=%d stratum %d part %d: window starts at %d, cursor %d", n, i, k, r.From, cursor)
				}
				cursor = r.To
				if l := r.Len(); l < minLen {
					minLen = l
				} else if l > maxLen {
					maxLen = l
				}
			}
			if cursor != sub.SampleSize {
				t.Fatalf("n=%d stratum %d: windows cover [0, %d) of %d", n, i, cursor, sub.SampleSize)
			}
			if maxLen-minLen > 1 && minLen != sub.SampleSize {
				t.Fatalf("n=%d stratum %d: window sizes spread [%d, %d]", n, i, minLen, maxLen)
			}
		}
	}
}
