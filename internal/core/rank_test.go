package core

import (
	"bytes"
	"testing"

	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/stats"
)

func TestRankLayersAgainstExhaustive(t *testing.T) {
	o, truth := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 0)

	ranks := res.RankLayers()
	if len(ranks) != o.Space().NumLayers() {
		t.Fatalf("ranked %d layers", len(ranks))
	}
	// Ordering is descending by estimate.
	for i := 1; i < len(ranks); i++ {
		if ranks[i-1].Estimate.PHat() < ranks[i].Estimate.PHat() {
			t.Fatal("ranking not descending")
		}
	}
	// The estimated most-critical layer must be the true one, given the
	// tight data-unaware margins.
	bestTrue := 0
	for l, r := range truth {
		if r > truth[bestTrue] {
			bestTrue = l
		}
	}
	if got := res.MostCriticalLayer(); got != bestTrue {
		t.Errorf("most critical layer = %d, exhaustive says %d (truth %v)", got, bestTrue, truth)
	}
}

func TestRankBitsIdentifiesExponentMSB(t *testing.T) {
	o, _ := smallOracle(t)
	plan := PlanDataUnaware(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 0)
	ranks := res.RankBits()
	if len(ranks) != 32 {
		t.Fatalf("ranked %d bits", len(ranks))
	}
	if got := res.MostCriticalBit(); got != 30 {
		t.Errorf("most critical bit = %d, want 30 (exponent MSB)", got)
	}
	// Mantissa LSB must rank at the very bottom region.
	for i, r := range ranks {
		if r.Bit == 0 && i < 20 {
			t.Errorf("mantissa LSB ranked %d, want near the bottom", i)
		}
	}
}

func TestRankBitsPanicsOnCoarsePlans(t *testing.T) {
	o, _ := smallOracle(t)
	res := Run(o, PlanLayerWise(o.Space(), stats.DefaultConfig()), 0)
	defer func() {
		if recover() == nil {
			t.Error("RankBits on a layer-wise plan did not panic")
		}
	}()
	res.RankBits()
}

func TestTopSeparated(t *testing.T) {
	c := stats.DefaultConfig()
	mk := func(successes, n, pop int64) stats.Stratified {
		return stats.Stratified{Parts: []stats.ProportionEstimate{
			{Successes: successes, SampleSize: n, PopulationSize: pop, PlannedP: 0.5},
		}}
	}
	far := []LayerRank{
		{Layer: 0, Estimate: mk(500, 1000, 100000)},
		{Layer: 1, Estimate: mk(100, 1000, 100000)},
	}
	if !TopSeparated(far, c) {
		t.Error("clearly separated ranking reported unseparated")
	}
	close := []LayerRank{
		{Layer: 0, Estimate: mk(101, 1000, 100000)},
		{Layer: 1, Estimate: mk(100, 1000, 100000)},
	}
	if TopSeparated(close, c) {
		t.Error("overlapping ranking reported separated")
	}
	if !TopSeparated(far[:1], c) {
		t.Error("singleton ranking should be trivially separated")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	o, _ := smallOracle(t)
	plan := PlanLayerWise(o.Space(), stats.DefaultConfig())
	res := Run(o, plan, 7)

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Plan.Approach != plan.Approach || len(back.Estimates) != len(res.Estimates) {
		t.Fatal("round trip lost structure")
	}
	for i := range res.Estimates {
		if back.Estimates[i] != res.Estimates[i] {
			t.Fatalf("estimate %d changed: %+v vs %+v", i, back.Estimates[i], res.Estimates[i])
		}
	}
	// Derived quantities must match after reload.
	if back.LayerEstimate(2).PHat() != res.LayerEstimate(2).PHat() {
		t.Error("layer estimate differs after reload")
	}
	if back.Injections() != res.Injections() {
		t.Error("injections differ after reload")
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadResultJSON(bytes.NewBufferString(`{"version":99,"result":null}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadResultJSON(bytes.NewBufferString(`{"version":1,"result":null}`)); err == nil {
		t.Error("missing result accepted")
	}
	if _, err := ReadResultJSON(bytes.NewBufferString(
		`{"version":1,"result":{"Plan":{"Approach":1,"Subpops":[{}]},"Estimates":[]}}`)); err == nil {
		t.Error("estimate/strata mismatch accepted")
	}
}

func TestNetworkWiseRankingIsUnreliable(t *testing.T) {
	// The paper's warning, quantified: network-wise per-layer slices can
	// misrank layers. With the stratified margins the ranking is at
	// least flagged as unseparated.
	o := oracle.New(models.ResNet20(1), oracle.DefaultConfig(3))
	cfg := stats.DefaultConfig()
	res := Run(o, PlanNetworkWise(o.Space(), cfg), 0)
	ranks := res.RankLayers()
	if TopSeparated(ranks, cfg) {
		t.Error("network-wise ranking claims statistical separation; margins should forbid that")
	}
}
