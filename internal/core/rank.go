package core

import (
	"sort"

	"cnnsfi/internal/stats"
)

// LayerRank is one entry of a per-layer vulnerability ranking.
type LayerRank struct {
	// Layer is the weight-layer index.
	Layer int
	// Estimate is the layer's critical-fault proportion estimate.
	Estimate stats.Stratified
}

// BitRank is one entry of a per-bit vulnerability ranking, aggregated
// across all layers at fixed bit position.
type BitRank struct {
	// Bit is the bit position (0 = LSB).
	Bit int
	// Estimate is the bit's critical-fault proportion estimate across
	// all layers.
	Estimate stats.Stratified
}

// RankLayers returns the layers sorted by estimated critical-fault
// proportion, most vulnerable first. This is the question the paper's
// introduction motivates ("the most critical layer") — answerable by any
// stratified plan, and by a network-wise plan only in the unsound
// sliced sense its Section II-A warns about.
func (r *Result) RankLayers() []LayerRank {
	n := r.Plan.Space.NumLayers()
	out := make([]LayerRank, n)
	for l := 0; l < n; l++ {
		out[l] = LayerRank{Layer: l, Estimate: r.LayerEstimate(l)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Estimate.PHat() > out[j].Estimate.PHat()
	})
	return out
}

// MostCriticalLayer returns the index of the layer with the highest
// estimated critical-fault proportion.
func (r *Result) MostCriticalLayer() int { return r.RankLayers()[0].Layer }

// RankBits aggregates the (bit, layer) strata by bit position and
// returns the bits sorted most-vulnerable first ("the most critical bit
// in the CNN weights"). It panics for plans without bit granularity —
// the paper's core argument is that those campaigns cannot answer this
// question.
func (r *Result) RankBits() []BitRank {
	if r.Plan.Approach != DataUnaware && r.Plan.Approach != DataAware {
		panic("core: per-bit ranking requires a bit-granular plan (data-unaware or data-aware)")
	}
	byBit := make(map[int][]stats.ProportionEstimate)
	for i, sub := range r.Plan.Subpops {
		byBit[sub.Bit] = append(byBit[sub.Bit], r.Estimates[i])
	}
	out := make([]BitRank, 0, len(byBit))
	for bit, parts := range byBit {
		out = append(out, BitRank{Bit: bit, Estimate: stats.Stratified{Parts: parts}})
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Estimate.PHat(), out[j].Estimate.PHat()
		if pi != pj {
			return pi > pj
		}
		return out[i].Bit > out[j].Bit
	})
	return out
}

// MostCriticalBit returns the bit position with the highest estimated
// critical-fault proportion across all layers.
func (r *Result) MostCriticalBit() int { return r.RankBits()[0].Bit }

// TopSeparated reports whether the top-ranked entry of a layer ranking
// is statistically separated from the runner-up at the configuration's
// confidence: the intervals of rank 0 and rank 1 do not overlap. When
// false, the campaign cannot certify which layer is the most critical —
// a caveat rankings derived from sampled campaigns must carry.
func TopSeparated(ranks []LayerRank, c stats.SampleSizeConfig) bool {
	if len(ranks) < 2 {
		return true
	}
	lo0 := ranks[0].Estimate.PHat() - ranks[0].Estimate.Margin(c)
	hi1 := ranks[1].Estimate.PHat() + ranks[1].Estimate.Margin(c)
	return lo0 > hi1
}
