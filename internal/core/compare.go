package core

import "cnnsfi/internal/stats"

// LayerComparison judges one layer's statistical estimate against the
// exhaustive ground truth — one group of bars in Figs. 5-7.
type LayerComparison struct {
	// Layer is the weight-layer index.
	Layer int
	// Exhaustive is the true critical-fault proportion of the layer.
	Exhaustive float64
	// Estimate is the campaign's estimate for the layer.
	Estimate stats.Stratified
	// Margin is the half-width of the estimate's confidence interval
	// (the thin black error bars of the figures).
	Margin float64
	// Covered reports whether the exhaustive value falls inside
	// Estimate.PHat() ± Margin — the paper's validity criterion.
	Covered bool
}

// Comparison aggregates a campaign's per-layer validity — one row of
// Table III.
type Comparison struct {
	// Approach identifies the SFI strategy.
	Approach Approach
	// Injections is the campaign cost n_TOT.
	Injections int64
	// InjectedFraction is Injections over the population size.
	InjectedFraction float64
	// AvgMargin is the error margin averaged over all layers (the
	// "Avg Error Margin [%]" column; the paper's acceptability bar is
	// e = 1%).
	AvgMargin float64
	// MaxMargin is the worst per-layer margin.
	MaxMargin float64
	// CoveredLayers counts layers whose exhaustive value the estimate
	// covers.
	CoveredLayers int
	// Layers holds the per-layer detail.
	Layers []LayerComparison
	// NetworkEstimate is the whole-network estimate.
	NetworkEstimate stats.Stratified
	// NetworkExhaustive is the whole-network ground truth.
	NetworkExhaustive float64
}

// Compare evaluates a campaign result against per-layer exhaustive
// critical rates (index-aligned with the space's layers).
func Compare(res *Result, exhaustiveByLayer []float64) *Comparison {
	plan := res.Plan
	space := plan.Space
	c := &Comparison{
		Approach:         plan.Approach,
		Injections:       res.Injections(),
		InjectedFraction: float64(res.Injections()) / float64(space.Total()),
		NetworkEstimate:  res.NetworkEstimate(),
	}

	var weighted float64
	for l := 0; l < space.NumLayers(); l++ {
		weighted += exhaustiveByLayer[l] * float64(space.LayerTotal(l))
	}
	c.NetworkExhaustive = weighted / float64(space.Total())

	var sumMargin float64
	for l := 0; l < space.NumLayers(); l++ {
		est := res.LayerEstimate(l)
		margin := est.Margin(plan.Config)
		truth := exhaustiveByLayer[l]
		covered := est.Covers(plan.Config, truth)
		if covered {
			c.CoveredLayers++
		}
		if margin > c.MaxMargin {
			c.MaxMargin = margin
		}
		sumMargin += margin
		c.Layers = append(c.Layers, LayerComparison{
			Layer: l, Exhaustive: truth, Estimate: est,
			Margin: margin, Covered: covered,
		})
	}
	c.AvgMargin = sumMargin / float64(space.NumLayers())
	return c
}

// ReplicatedEstimates runs the plan nReplicas times with seeds
// 0..nReplicas-1 and returns each replica's estimate for the given layer
// — the S0-S9 samples of the paper's Fig. 6.
func ReplicatedEstimates(ev Evaluator, plan *Plan, layer, nReplicas int) []stats.Stratified {
	out := make([]stats.Stratified, nReplicas)
	for s := 0; s < nReplicas; s++ {
		res := Run(ev, plan, int64(s))
		out[s] = res.LayerEstimate(layer)
	}
	return out
}
