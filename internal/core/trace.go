package core

import (
	"time"
)

// TraceKind discriminates the structured engine events emitted through
// a TraceSink (WithTrace). The kinds mirror the lifecycle of one
// Execute call: a campaign starts, strata start as their first shard is
// dispatched, evaluated shards complete on workers, strata end when
// their prefix is fully merged (or an early stop cuts them short),
// checkpoints are written, and the campaign ends exactly once.
type TraceKind uint8

// Engine trace event kinds, in lifecycle order.
const (
	// TraceCampaignStart opens a campaign: seed, plan fingerprint,
	// worker count, planned injections, and the checkpoint-restored
	// prefix (Restored > 0 on resume).
	TraceCampaignStart TraceKind = iota
	// TraceStratumStart marks a stratum's first shard hand-off.
	TraceStratumStart
	// TraceShardDone records one evaluated shard: which worker ran it,
	// how many injections it held, and its evaluation wall time. This is
	// the worker-assignment record — shard→worker mapping is scheduling-
	// dependent and deliberately outside the determinism guarantee.
	TraceShardDone
	// TraceExperimentRetry records one experiment that failed (panic or
	// watchdog timeout) and then succeeded on a retry: the fault
	// identity, how many attempts failed first, and the last failure.
	// Emitted at merge time, in draw order within each stratum.
	TraceExperimentRetry
	// TraceExperimentQuarantined records one experiment excluded from
	// the tally after exhausting its retry budget. The stratum's
	// effective sample size shrinks by one and its achieved margin is
	// recomputed over the reduced n.
	TraceExperimentQuarantined
	// TraceStratumEnd marks a stratum's tally becoming final for this
	// run: every shard merged in draw order, or an early stop.
	TraceStratumEnd
	// TraceEarlyStop records an early-stop firing: the stratum, its
	// tallied sample size, and the achieved margin that crossed the
	// target.
	TraceEarlyStop
	// TraceCheckpoint records a successful checkpoint write.
	TraceCheckpoint
	// TraceCampaignEnd closes the campaign with the final tallies; it is
	// emitted on completion, early-stop exhaustion, and cancellation
	// alike (Partial distinguishes the latter).
	TraceCampaignEnd
)

// String names the trace kind (the JSONL schema uses these names).
func (k TraceKind) String() string {
	switch k {
	case TraceCampaignStart:
		return "campaign_start"
	case TraceStratumStart:
		return "stratum_start"
	case TraceShardDone:
		return "shard_done"
	case TraceExperimentRetry:
		return "experiment_retry"
	case TraceExperimentQuarantined:
		return "experiment_quarantined"
	case TraceStratumEnd:
		return "stratum_end"
	case TraceEarlyStop:
		return "early_stop"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceCampaignEnd:
		return "campaign_end"
	default:
		return "unknown"
	}
}

// TraceEvent is one structured engine event. It is a flat union: every
// kind fills the identity fields (Kind, Time, Elapsed) plus the field
// groups documented per kind below; unrelated fields are zero (index
// fields use -1 as their "not set" value so index 0 stays unambiguous).
//
//	TraceCampaignStart  Seed, Fingerprint, Workers, Planned, Restored, Strata
//	TraceStratumStart   Stratum, Layer, Bit, StratumPlanned, Done (restored prefix)
//	TraceShardDone      Stratum, Shard, Worker, Injections (shard size), Dur
//	TraceExperimentRetry        Stratum, Draw, Fault, Attempts (failed), Err
//	TraceExperimentQuarantined  Stratum, Draw, Fault, Attempts, Err
//	TraceStratumEnd     Stratum, Layer, Bit, StratumPlanned, Done, Critical,
//	                    Dur (stratum wall time), Eval (campaign-wide snapshot)
//	TraceEarlyStop      Stratum, Done (tallied effective n), Critical, Margin
//	TraceCheckpoint     Path, Done, Critical
//	TraceCampaignEnd    Done, Critical, Planned, Rate, Partial, EarlyStopped,
//	                    Retries, Quarantined, Eval
type TraceEvent struct {
	// Kind discriminates the event.
	Kind TraceKind
	// Time is the wall-clock instant the event was emitted.
	Time time.Time
	// Elapsed is the time since Execute started.
	Elapsed time.Duration

	// Seed and Fingerprint bind the trace to one exact campaign: the
	// sampling seed and the plan fingerprint (the same value the
	// checkpoint schema uses to reject mismatched resumes).
	Seed        int64
	Fingerprint uint64
	// Workers is the resolved evaluation worker count.
	Workers int
	// Planned is Plan.TotalInjections; Restored is the injection prefix
	// loaded from a checkpoint (0 on a fresh run); Strata is the number
	// of subpopulations.
	Planned  int64
	Restored int64
	Strata   int

	// Stratum indexes Plan.Subpops (-1 for campaign-level events);
	// Layer/Bit are that stratum's identity and StratumPlanned its
	// planned sample size.
	Stratum        int
	Layer          int
	Bit            int
	StratumPlanned int64

	// Shard is the run-local shard index and Worker the worker slot
	// that evaluated it (-1 for non-shard events).
	Shard  int
	Worker int

	// Done/Critical are tallied injections and criticals — stratum-local
	// for stratum events, campaign-wide for checkpoint/campaign events.
	// For TraceShardDone, Injections is the shard's draw count.
	Done       int64
	Critical   int64
	Injections int64

	// Dur is the shard evaluation wall time (TraceShardDone) or the
	// stratum wall time from first dispatch to final merge
	// (TraceStratumEnd).
	Dur time.Duration

	// Draw is the failing experiment's index within its stratum's drawn
	// sample (experiment_retry / experiment_quarantined); Fault its
	// rendered identity ("" when the failure preceded decoding);
	// Attempts the failed-attempt count and Err the last failure,
	// rendered.
	Draw     int64
	Fault    string
	Attempts int
	Err      string

	// Retries / Quarantined are the campaign-wide supervision tallies
	// (TraceCampaignEnd).
	Retries     int64
	Quarantined int64

	// Margin is the achieved margin that fired an early stop.
	Margin float64
	// Rate is injections per second over this Execute call.
	Rate float64
	// Partial marks a cancelled campaign's end event.
	Partial bool
	// EarlyStopped counts early-stopped strata at campaign end.
	EarlyStopped int
	// Path is the checkpoint file path.
	Path string

	// Eval is the evaluator's campaign-delta experiment breakdown at
	// emission time (zero when the evaluator is not a StatsReporter).
	// Mid-campaign snapshots may lag the merge counters slightly, like
	// Progress.Eval; the TraceCampaignEnd snapshot is exact.
	Eval EvalStats
}

// TraceSink consumes structured engine events. Like ProgressSink it is
// called synchronously from the dispatcher goroutine — never
// concurrently — so implementations need no locking but must return
// promptly: buffer asynchronously and drop rather than block (the
// internal/telemetry Tracer does exactly that, counting drops). A
// TraceSink must never influence the campaign: trace events are
// observability only, and the Result stays bit-identical with or
// without one installed.
type TraceSink func(TraceEvent)

// WithTrace installs a structured trace sink; see TraceEvent for the
// event vocabulary. Tracing is independent of WithProgress — progress
// events summarize merged totals on an injection interval, trace events
// record the engine's structural decisions (shard scheduling, stratum
// boundaries, early stops, checkpoints).
func WithTrace(sink TraceSink) Option { return func(e *Engine) { e.trace = sink } }

// traceState is the per-Execute bookkeeping behind trace emission,
// allocated only when a sink is installed so untraced campaigns pay a
// single nil check per emission site.
type traceState struct {
	started []bool
	ended   []bool
	t0      []time.Time
}

// emitTrace stamps and delivers one event; id fields default to "not
// set" and are overridden by the caller through mutate.
func (x *execution) emitTrace(kind TraceKind, mutate func(*TraceEvent)) {
	if x.trace == nil {
		return
	}
	ev := TraceEvent{
		Kind:    kind,
		Time:    time.Now(),
		Elapsed: time.Since(x.start),
		Stratum: -1,
		Layer:   -1,
		Bit:     -1,
		Shard:   -1,
		Worker:  -1,
	}
	if mutate != nil {
		mutate(&ev)
	}
	x.trace(ev)
}

// evalSnapshot returns the campaign-delta EvalStats (zero without a
// reporting evaluator).
func (x *execution) evalSnapshot() EvalStats {
	if x.reporter == nil {
		return EvalStats{}
	}
	return x.reporter.EvalStats().Sub(x.statsBase)
}

// traceStratumStart emits the stratum's begin event on its first shard
// hand-off.
func (x *execution) traceStratumStart(i int) {
	if x.trace == nil || x.tstate.started[i] {
		return
	}
	x.tstate.started[i] = true
	x.tstate.t0[i] = time.Now()
	sub := x.plan.Subpops[i]
	x.emitTrace(TraceStratumStart, func(ev *TraceEvent) {
		ev.Stratum = i
		ev.Layer = sub.Layer
		ev.Bit = sub.Bit
		ev.StratumPlanned = sub.SampleSize
		ev.Done = x.strata[i].cursor
	})
}

// traceStratumEnd emits the stratum's end event once its tally is final
// for this run (all shards merged, or stopped early).
func (x *execution) traceStratumEnd(i int) {
	if x.trace == nil || !x.tstate.started[i] || x.tstate.ended[i] {
		return
	}
	st := x.strata[i]
	if !st.stopped && x.pos[i] < len(x.order[i]) {
		return
	}
	x.tstate.ended[i] = true
	sub := x.plan.Subpops[i]
	x.emitTrace(TraceStratumEnd, func(ev *TraceEvent) {
		ev.Stratum = i
		ev.Layer = sub.Layer
		ev.Bit = sub.Bit
		ev.StratumPlanned = sub.SampleSize
		ev.Done = st.cursor
		ev.Critical = st.successes
		ev.Dur = time.Since(x.tstate.t0[i])
		ev.Eval = x.evalSnapshot()
	})
}
