package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/stats"
)

// Engine is the unified campaign executor: one pipeline
// (draw → decode → evaluate → tally) behind a functional-options
// configuration, with the operational affordances long campaigns need —
// cooperative cancellation through context.Context, streaming progress
// events, checkpoint/resume, and margin-based early stop. Run and
// RunParallel are thin compatibility wrappers over it.
//
// Determinism guarantee (the anchor every feature preserves): every
// stratum's sample is drawn up-front from one seeded generator in plan
// order, the drawn samples are split into contiguous shards, and
// per-shard tallies are merged strictly in draw order — so a completed
// campaign's Result is a pure function of (plan, seed), bit-identical
// across worker counts and across interrupt/resume cycles.
//
// An Engine is immutable after NewEngine and safe to reuse across
// Execute calls (each call keeps its own run state), but two concurrent
// Execute calls sharing one checkpoint path would race on the file.
type Engine struct {
	workers         int
	progress        ProgressSink
	progressEvery   int64
	checkpointPath  string
	checkpointEvery int64
	resume          bool
	earlyStop       bool
	earlyStopTarget float64
	validate        bool
	grouped         bool
	ranges          []DrawRange
	trace           TraceSink

	// Supervision (see supervise.go): expTimeout > 0 or maxRetries >= 0
	// enables per-experiment panic isolation, the watchdog, bounded
	// retries, and quarantine. maxRetries < 0 (the default) leaves the
	// classic unsupervised hot path untouched.
	expTimeout time.Duration
	maxRetries int
	warn       func(msg string)
}

// Option configures an Engine (functional options).
type Option func(*Engine)

// WithWorkers sets the evaluation worker count. 0 (the default) selects
// GOMAXPROCS; 1 evaluates serially in draw order, exactly like the
// classic Run.
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithProgress installs a streaming progress sink (see ProgressSink).
func WithProgress(sink ProgressSink) Option { return func(e *Engine) { e.progress = sink } }

// WithProgressInterval sets how many tallied injections elapse between
// progress events (default 10,000). Values < 1 are treated as 1.
func WithProgressInterval(n int64) Option { return func(e *Engine) { e.progressEvery = n } }

// WithCheckpoint enables periodic campaign checkpoints at path: the
// per-stratum cursor + tallies + seed are serialized so an interrupted
// campaign can resume (WithResume) and produce a Result bit-identical
// to an uninterrupted run at the same seed. A checkpoint is also
// written when the context is cancelled, and the file is removed when
// the campaign completes.
func WithCheckpoint(path string) Option { return func(e *Engine) { e.checkpointPath = path } }

// WithCheckpointInterval sets how many tallied injections elapse
// between periodic checkpoint writes (default 100,000). Values < 1 are
// treated as 1.
func WithCheckpointInterval(n int64) Option { return func(e *Engine) { e.checkpointEvery = n } }

// WithResume makes Execute load the WithCheckpoint file (when it
// exists) before starting, skipping the already-tallied prefix of every
// stratum. Execute fails if the checkpoint belongs to a different plan
// or seed; a missing file starts a fresh campaign.
func WithResume() Option { return func(e *Engine) { e.resume = true } }

// WithEarlyStop enables margin-based early stopping: a stratum halts as
// soon as its achieved margin — the Eq. 3 inversion evaluated at the
// observed proportion (stats.ObservedMargin) — reaches target, with the
// actual sample size reported in the Result's Estimates alongside the
// planned one in Plan.Subpops. target 0 uses the plan's requested
// ErrorMargin. At least earlyStopMinSample draws are always evaluated
// per stratum so the normal approximation behind Eq. 3 is defensible.
//
// The stop rule is a pure function of each stratum's tallied prefix at
// fixed shard boundaries, so early-stopped results stay deterministic
// for a given (plan, seed, worker count).
func WithEarlyStop(target float64) Option {
	return func(e *Engine) { e.earlyStop = true; e.earlyStopTarget = target }
}

// WithDecodeValidation switches the defensive fault-decode cross-check
// on or off explicitly, overriding the SFI_VALIDATE_DECODE environment
// gate (which remains the process-wide default fallback).
func WithDecodeValidation(on bool) Option { return func(e *Engine) { e.validate = on } }

// WithGroupedEvaluation makes each worker evaluate its shard's draws
// grouped by fault location — ordered by (layer, param, bit, model) —
// so consecutive experiments share the same graph invalidation point
// and weight word, which keeps the evaluator's suffix path and caches
// hot (most effective on the inference substrate, where a fault's layer
// decides how much of the network is re-executed). Tallies are still
// merged strictly in draw order, and every experiment restores its
// fault before the next begins, so verdicts are independent of
// evaluation order: Result stays a pure function of (plan, seed),
// bit-identical with grouping on or off.
//
// Off by default: grouping decodes and sorts a shard up front, which is
// pure overhead for O(ns)-verdict evaluators like the oracle.
// Supervised campaigns (WithExperimentTimeout / WithMaxRetries) ignore
// the flag — the supervision lane processes draws in order.
func WithGroupedEvaluation(on bool) Option { return func(e *Engine) { e.grouped = on } }

// earlyStopMinSample is the minimum evaluated sample size before the
// early-stop rule may fire: below ~30 draws the normal approximation
// underlying the Eq. 3 margin is not meaningful (a stratum whose first
// few draws happen to be benign would otherwise stop instantly at an
// observed margin of zero).
const earlyStopMinSample = 30

// NewEngine builds an engine; defaults are GOMAXPROCS workers, no
// progress sink, no checkpointing, no early stop, and decode validation
// taken from the SFI_VALIDATE_DECODE environment variable.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		progressEvery:   10_000,
		checkpointEvery: 100_000,
		validate:        validateDecode,
		maxRetries:      -1, // supervision off
	}
	for _, o := range opts {
		o(e)
	}
	if e.progressEvery < 1 {
		e.progressEvery = 1
	}
	if e.checkpointEvery < 1 {
		e.checkpointEvery = 1
	}
	return e
}

// stratumState is one stratum's running tally: the contiguous prefix of
// its drawn sample that has been evaluated and merged (cursor draws,
// successes criticals), plus the per-layer slices for global strata and
// the early-stop flag.
type stratumState struct {
	cursor    int64
	successes int64
	perLayer  map[int]*stats.ProportionEstimate
	stopped   bool
	// quarantined counts draws within cursor that were excluded from
	// the tally by supervision; the stratum's effective sample size is
	// cursor - quarantined.
	quarantined int64
}

// execution is the per-Execute run state (the Engine itself stays
// immutable and reusable).
type execution struct {
	engine  *Engine
	plan    *Plan
	space   faultmodel.Space
	seed    int64
	start   time.Time
	workers int

	strata []*stratumState
	shards []*shard
	order  [][]int // per stratum: indices into shards, in draw order
	pos    []int   // per stratum: next order entry awaiting merge
	done   []bool  // per shard: evaluated

	// ranges is the WithDrawRanges vector (nil for a full run); cursors
	// and shard offsets stay absolute draw positions either way, so a
	// ranged stratum's cursor starts at ranges[i].From.
	ranges []DrawRange

	merged      int64 // merged injections, campaign-wide (incl. restored + quarantined)
	restored    int64 // merged injections loaded from the checkpoint
	critical    int64 // tallied criticals, campaign-wide
	abandoned   int64 // watchdog-abandoned lanes accumulated by merged shards
	lastStratum int   // stratum whose prefix advanced most recently

	// Supervision bookkeeping (nil/zero when supervision is off): the
	// shared supervisor, every quarantined fault in merge order (sorted
	// into Result.Quarantined at assemble), and the retry tally.
	sup         *supervisor
	quarantined []QuarantinedFault
	retries     int64

	sinceProgress   int64
	sinceCheckpoint int64

	// reporter/statsBase surface the evaluator's EvalStats in Progress:
	// the baseline snapshot taken when Execute started is subtracted so
	// events report this campaign's work only.
	reporter  StatsReporter
	statsBase EvalStats

	// trace/tstate drive structured event emission (WithTrace); both
	// stay nil/zero when no sink is installed.
	trace  TraceSink
	tstate traceState
}

// Execute runs the plan against the evaluator. It returns a complete
// Result and nil error on success; on context cancellation it returns
// the partial Result tallied so far (Result.Partial set) together with
// ctx.Err(), after writing a final checkpoint when one is configured.
// All worker goroutines are joined before Execute returns, whatever the
// outcome.
//
// The evaluator contract matches the classic runners: evaluators
// implementing WorkerCloner get one clone per worker beyond the first;
// any other evaluator is shared and must be safe for concurrent
// IsCritical calls (irrelevant at one worker).
func (e *Engine) Execute(ctx context.Context, ev Evaluator, plan *Plan, seed int64) (*Result, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: engine: nil plan")
	}
	if e.earlyStop {
		if err := plan.Config.Validate(); err != nil {
			return nil, fmt.Errorf("core: engine: early stop needs a valid plan config: %w", err)
		}
		if e.earlyStopTarget < 0 || e.earlyStopTarget >= 1 {
			return nil, fmt.Errorf("core: engine: early-stop target %v outside [0, 1)", e.earlyStopTarget)
		}
	}
	if e.expTimeout < 0 {
		return nil, fmt.Errorf("core: engine: negative experiment timeout %v", e.expTimeout)
	}
	if err := validateRanges(e.ranges, plan); err != nil {
		return nil, err
	}
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	x := &execution{
		engine:      e,
		plan:        plan,
		space:       ev.Space(),
		seed:        seed,
		start:       time.Now(),
		workers:     workers,
		strata:      make([]*stratumState, len(plan.Subpops)),
		ranges:      e.ranges,
		lastStratum: -1,
	}
	if e.supervised() {
		x.sup = newSupervisor(e, ev)
	}
	if r, ok := ev.(StatsReporter); ok {
		x.reporter = r
		x.statsBase = r.EvalStats()
	}
	for i, sub := range plan.Subpops {
		st := &stratumState{}
		if sub.Layer < 0 {
			st.perLayer = make(map[int]*stats.ProportionEstimate)
		}
		// Ranged runs tally the [from, to) window only: the cursor is an
		// absolute draw position and starts at the window's left edge.
		st.cursor, _ = x.rangeBounds(i)
		x.strata[i] = st
	}
	if e.checkpointPath != "" && e.resume {
		if err := x.loadCheckpoint(e.checkpointPath); err != nil {
			return nil, err
		}
	}

	// The determinism anchor: every stratum's sample drawn up-front in
	// plan order, then sharded exactly like a fresh run so resumed
	// campaigns see the same boundaries (cursors always sit on shard
	// boundaries of the worker count that wrote the checkpoint).
	samples := drawAll(plan, seed)
	for _, s := range makeShards(plan, samples, workers, x.ranges) {
		st := x.strata[s.stratum]
		end := s.start + int64(len(s.idx))
		if st.stopped || end <= st.cursor {
			continue // fully covered by the checkpoint
		}
		if s.start < st.cursor { // partially covered: trim the tallied head
			s.idx = s.idx[st.cursor-s.start:]
			s.start = st.cursor
		}
		x.shards = append(x.shards, s)
	}
	x.order = make([][]int, len(plan.Subpops))
	for k, s := range x.shards {
		x.order[s.stratum] = append(x.order[s.stratum], k)
	}
	x.pos = make([]int, len(plan.Subpops))
	x.done = make([]bool, len(x.shards))
	if e.trace != nil {
		x.trace = e.trace
		x.tstate = traceState{
			started: make([]bool, len(plan.Subpops)),
			ended:   make([]bool, len(plan.Subpops)),
			t0:      make([]time.Time, len(plan.Subpops)),
		}
		x.emitTrace(TraceCampaignStart, func(ev *TraceEvent) {
			ev.Seed = seed
			ev.Fingerprint = planFingerprint(plan)
			ev.Workers = workers
			ev.Planned = x.plannedInjections()
			ev.Restored = x.restored
			ev.Strata = len(plan.Subpops)
		})
	}

	// Per-worker evaluators: worker 0 keeps the original; the rest get
	// clones when the evaluator requires isolation.
	evals := make([]Evaluator, workers)
	for w := range evals {
		evals[w] = ev
		if w > 0 {
			if c, ok := ev.(WorkerCloner); ok {
				evals[w] = c.CloneForWorker()
			}
		}
	}

	type completion struct {
		shard     int
		evaluated bool
		worker    int
		dur       time.Duration // shard evaluation wall time
	}
	jobs := make(chan int)
	results := make(chan completion, len(x.shards)) // workers never block
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, ev Evaluator) {
			defer wg.Done()
			// Supervision enabled is the one branch per shard; disabled
			// campaigns stay on the classic evaluate hot path.
			var sw *supWorker
			if x.sup != nil {
				sw = &supWorker{sup: x.sup, ev: ev}
				defer sw.close()
			}
			for k := range jobs {
				// Cooperative cancellation, checked at shard boundaries:
				// a cancelled worker reports the shard back unevaluated.
				if ctx.Err() != nil {
					results <- completion{shard: k, worker: w}
					continue
				}
				t0 := time.Now()
				if sw != nil {
					sw.evaluateShard(x.shards[k], x.space, plan, e.validate)
				} else {
					x.shards[k].evaluate(ev, x.space, plan, e.validate, e.grouped)
				}
				results <- completion{shard: k, evaluated: true, worker: w, dur: time.Since(t0)}
			}
		}(w, evals[w])
	}

	// Dispatch loop: one goroutine owns all bookkeeping (prefix merge,
	// early stop, checkpoints, progress), so none of it needs locks.
	var runErr error
	aborted := false
	ctxDone := ctx.Done()
	next, inFlight := 0, 0
	skipStopped := func() {
		for next < len(x.shards) && x.strata[x.shards[next].stratum].stopped {
			next++
		}
	}
	skipStopped()
	for inFlight > 0 || (!aborted && next < len(x.shards)) {
		var jobCh chan int
		if !aborted && next < len(x.shards) {
			jobCh = jobs
		}
		select {
		case jobCh <- next:
			x.traceStratumStart(x.shards[next].stratum)
			next++
			inFlight++
			skipStopped()
		case c := <-results:
			inFlight--
			if c.evaluated {
				if x.trace != nil {
					s := x.shards[c.shard]
					x.emitTrace(TraceShardDone, func(ev *TraceEvent) {
						ev.Stratum = s.stratum
						ev.Shard = c.shard
						ev.Worker = c.worker
						ev.Injections = int64(len(s.idx))
						ev.Dur = c.dur
					})
				}
				x.handleCompletion(c.shard)
				skipStopped()
				if !aborted {
					if err := x.housekeeping(); err != nil {
						runErr = err
						aborted = true
					}
				}
			}
		case <-ctxDone:
			aborted = true
			ctxDone = nil
		}
	}
	close(jobs)
	wg.Wait()

	res := x.assemble(aborted)
	if aborted {
		if e.checkpointPath != "" && runErr == nil {
			if runErr = x.writeCheckpoint(e.checkpointPath); runErr == nil {
				x.traceCheckpoint(e.checkpointPath)
			}
		}
		x.emitProgress(true)
		x.traceCampaignEnd(res)
		if runErr == nil {
			runErr = ctx.Err()
		}
		return res, runErr
	}
	if e.checkpointPath != "" {
		// Campaign complete: drop stale state, including the rotated
		// backup (see writeCheckpoint).
		os.Remove(e.checkpointPath)
		os.Remove(e.checkpointPath + checkpointBackupSuffix)
	}
	x.emitProgress(true)
	x.traceCampaignEnd(res)
	return res, nil
}

// traceCampaignEnd closes the trace with the final tallies; the Eval
// snapshot here is exact (all workers joined).
func (x *execution) traceCampaignEnd(res *Result) {
	x.emitTrace(TraceCampaignEnd, func(ev *TraceEvent) {
		ev.Done = x.merged
		ev.Critical = x.critical
		ev.Planned = x.plannedInjections()
		ev.Partial = res.Partial
		ev.EarlyStopped = len(res.EarlyStopped)
		ev.Retries = x.retries
		ev.Quarantined = int64(len(x.quarantined))
		ev.Eval = x.evalSnapshot()
		if secs := ev.Elapsed.Seconds(); secs > 0 {
			ev.Rate = float64(x.merged-x.restored) / secs
		}
	})
}

// handleCompletion records an evaluated shard and merges the stratum's
// contiguous completed prefix, in draw order, checking the early-stop
// rule at every merged boundary. Tallies of shards evaluated beyond an
// early-stop cut are discarded — the reported actual-n is always a
// deterministic prefix.
func (x *execution) handleCompletion(k int) {
	x.done[k] = true
	i := x.shards[k].stratum
	st := x.strata[i]
	for !st.stopped && x.pos[i] < len(x.order[i]) && x.done[x.order[i][x.pos[i]]] {
		x.mergeShard(x.shards[x.order[i][x.pos[i]]])
		x.pos[i]++
		x.checkEarlyStop(i)
	}
	x.traceStratumEnd(i)
}

// mergeShard folds one evaluated shard into its stratum's prefix tally.
// Quarantined draws advance the cursor (their positions are consumed)
// but never the success or per-layer tallies; retry/quarantine trace
// events are emitted here, in draw order, from the dispatcher.
func (x *execution) mergeShard(s *shard) {
	st := x.strata[s.stratum]
	st.cursor += int64(len(s.idx))
	st.successes += s.successes
	if s.retries > 0 {
		x.retries += s.retries
		for i := range s.retried {
			r := &s.retried[i]
			x.emitTrace(TraceExperimentRetry, func(ev *TraceEvent) {
				ev.Stratum = s.stratum
				ev.Draw = r.index
				ev.Fault = r.fault
				ev.Attempts = r.failures
				ev.Err = r.err
			})
		}
	}
	if len(s.quarantined) > 0 {
		st.quarantined += int64(len(s.quarantined))
		x.quarantined = append(x.quarantined, s.quarantined...)
		for i := range s.quarantined {
			q := &s.quarantined[i]
			x.warnf("quarantined after %d attempt(s): %s", q.Attempts, q.Err)
			x.emitTrace(TraceExperimentQuarantined, func(ev *TraceEvent) {
				ev.Stratum = q.Stratum
				ev.Draw = q.Index
				ev.Fault = q.Fault
				ev.Attempts = q.Attempts
				ev.Err = q.Err
			})
		}
	}
	for l, pl := range s.perLayer {
		agg := st.perLayer[l]
		if agg == nil {
			agg = &stats.ProportionEstimate{
				PopulationSize: pl.PopulationSize,
				PlannedP:       pl.PlannedP,
			}
			st.perLayer[l] = agg
		}
		agg.SampleSize += pl.SampleSize
		agg.Successes += pl.Successes
	}
	n := int64(len(s.idx))
	x.merged += n
	x.critical += s.successes
	x.abandoned += s.abandoned
	x.sinceProgress += n
	x.sinceCheckpoint += n
	x.lastStratum = s.stratum
}

// checkEarlyStop halts stratum i once the margin achieved by its tallied
// prefix (Eq. 3 inverted at the observed proportion) reaches the target.
func (x *execution) checkEarlyStop(i int) {
	e := x.engine
	if !e.earlyStop {
		return
	}
	st := x.strata[i]
	sub := x.plan.Subpops[i]
	from, to := x.rangeBounds(i)
	// eff is the effective sample size: quarantined draws carry no
	// verdict, so both the stop rule and the reported margin run over
	// the reduced n. A ranged run stops on its window-local prefix (the
	// stop rule stays a pure function of the window's tallied prefix at
	// fixed shard boundaries, so it is deterministic per range).
	eff := st.cursor - from - st.quarantined
	if st.stopped || eff < earlyStopMinSample || st.cursor >= to {
		return
	}
	target := e.earlyStopTarget
	if target == 0 {
		target = x.plan.Config.ErrorMargin
	}
	pHat := float64(st.successes) / float64(eff)
	if m := x.plan.Config.ObservedMargin(pHat, eff, sub.Population); m <= target {
		st.stopped = true
		x.emitTrace(TraceEarlyStop, func(ev *TraceEvent) {
			ev.Stratum = i
			ev.Done = eff
			ev.Critical = st.successes
			ev.Margin = m
		})
	}
}

// housekeeping emits due progress events and writes due checkpoints.
func (x *execution) housekeeping() error {
	e := x.engine
	if e.progress != nil && x.sinceProgress >= e.progressEvery {
		x.sinceProgress = 0
		x.emitProgress(false)
	}
	if e.checkpointPath != "" && x.sinceCheckpoint >= e.checkpointEvery {
		x.sinceCheckpoint = 0
		if err := x.writeCheckpoint(e.checkpointPath); err != nil {
			return err
		}
		x.traceCheckpoint(e.checkpointPath)
	}
	return nil
}

// traceCheckpoint records a successful checkpoint write.
func (x *execution) traceCheckpoint(path string) {
	x.emitTrace(TraceCheckpoint, func(ev *TraceEvent) {
		ev.Path = path
		ev.Done = x.merged
		ev.Critical = x.critical
	})
}

// emitProgress sends one event to the sink, if any.
func (x *execution) emitProgress(final bool) {
	if x.engine.progress == nil {
		return
	}
	p := Progress{
		Done:           x.merged,
		Planned:        x.plannedInjections(),
		Critical:       x.critical,
		Stratum:        x.lastStratum,
		Elapsed:        time.Since(x.start),
		Final:          final,
		Retries:        x.retries,
		Quarantined:    int64(len(x.quarantined)),
		AbandonedLanes: x.abandoned,
	}
	if x.lastStratum >= 0 {
		p.StratumDone = x.strata[x.lastStratum].cursor
		p.StratumPlanned = x.plan.Subpops[x.lastStratum].SampleSize
	}
	if secs := p.Elapsed.Seconds(); secs > 0 {
		p.Rate = float64(x.merged-x.restored) / secs
	}
	if x.reporter != nil {
		p.Eval = x.reporter.EvalStats().Sub(x.statsBase)
	}
	x.engine.progress(p)
}

// assemble builds the Result from the per-stratum prefix tallies. For a
// completed campaign every cursor equals its planned sample size, so the
// Result is field-for-field what the classic Run produces.
func (x *execution) assemble(aborted bool) *Result {
	res := &Result{Plan: x.plan, Partial: aborted, Ranges: x.ranges}
	for i, sub := range x.plan.Subpops {
		st := x.strata[i]
		from, _ := x.rangeBounds(i)
		// SampleSize is the effective n (quarantined draws excluded), so
		// every downstream margin — Estimate.Margin, Compare, sfireport —
		// is automatically the stats.ObservedMargin over the reduced n.
		// Ranged runs report the window-local n (cursor is absolute).
		res.Estimates = append(res.Estimates, stats.ProportionEstimate{
			Successes:      st.successes,
			SampleSize:     st.cursor - from - st.quarantined,
			PopulationSize: sub.Population,
			PlannedP:       sub.P,
		})
		if st.stopped {
			res.EarlyStopped = append(res.EarlyStopped, i)
		}
		if sub.Layer < 0 {
			if res.LayerSlices == nil {
				res.LayerSlices = make(map[int]stats.ProportionEstimate)
			}
			for l, pl := range st.perLayer {
				agg, ok := res.LayerSlices[l]
				if !ok {
					agg = stats.ProportionEstimate{
						PopulationSize: pl.PopulationSize,
						PlannedP:       pl.PlannedP,
					}
				}
				agg.SampleSize += pl.SampleSize
				agg.Successes += pl.Successes
				res.LayerSlices[l] = agg
			}
		}
	}
	if len(x.quarantined) > 0 {
		// Merge order across strata is scheduling-dependent; the sorted
		// copy makes Result.Quarantined a pure function of (plan, seed)
		// whenever failures are, regardless of worker count.
		q := make([]QuarantinedFault, len(x.quarantined))
		copy(q, x.quarantined)
		sort.Slice(q, func(i, j int) bool {
			if q[i].Stratum != q[j].Stratum {
				return q[i].Stratum < q[j].Stratum
			}
			return q[i].Index < q[j].Index
		})
		res.Quarantined = q
	}
	return res
}

// warnf delivers a one-line operational warning through the WithWarnings
// sink, or to stderr without one. Warnings are rare (checkpoint
// recovery, quarantine) — never per-experiment hot-path events.
func (x *execution) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if x.engine.warn != nil {
		x.engine.warn(msg)
		return
	}
	fmt.Fprintf(os.Stderr, "core: %s\n", msg)
}

// shardOversubscription sets how many shards each worker receives on
// average. A few shards per worker smooth out unequal shard costs
// (SDC early exit makes critical faults much cheaper than benign ones)
// without measurable scheduling overhead; shard boundaries are also the
// granularity of cancellation, checkpointing, and early stop.
const shardOversubscription = 4

// shard is one contiguous slice of one stratum's drawn sample, plus the
// tallies its evaluation produced.
type shard struct {
	stratum   int
	start     int64 // offset of idx[0] within the stratum's drawn sample
	idx       []int64
	successes int64
	// perLayer collects the per-layer slices of a network-wise stratum's
	// global sample (nil for layer- or bit-granular strata).
	perLayer map[int]*stats.ProportionEstimate
	// Supervision outcomes (supervised campaigns only): faults excluded
	// after exhausting retries, experiments that needed retries, the
	// total failed-attempt count, and the number of watchdog-abandoned
	// lanes this shard's evaluation left behind. Folded in by mergeShard.
	quarantined []QuarantinedFault
	retried     []retryRecord
	retries     int64
	abandoned   int64
}

// makeShards splits every stratum's sample into contiguous chunks of
// roughly total/(workers·shardOversubscription) draws. Small strata stay
// whole; a single large stratum fans out across all workers. A non-nil
// ranges vector (WithDrawRanges) restricts each stratum to its [From,
// To) draw window — shard offsets stay absolute draw positions, and the
// chunk size is derived from the windowed total so a ranged run
// oversubscribes its workers exactly like a full run of the same size.
func makeShards(plan *Plan, samples [][]int64, workers int, ranges []DrawRange) []*shard {
	bounds := func(i int) (int64, int64) {
		if ranges == nil {
			return 0, plan.Subpops[i].SampleSize
		}
		return ranges[i].From, ranges[i].To
	}
	var total int64
	for i := range plan.Subpops {
		from, to := bounds(i)
		total += to - from
	}
	chunk := int(total / int64(workers*shardOversubscription))
	if chunk < 1 {
		chunk = 1
	}
	var shards []*shard
	for i := range plan.Subpops {
		from, to := bounds(i)
		idx := samples[i][from:to]
		for start := 0; start < len(idx); start += chunk {
			end := start + chunk
			if end > len(idx) {
				end = len(idx)
			}
			shards = append(shards, &shard{stratum: i, start: from + int64(start), idx: idx[start:end]})
		}
	}
	return shards
}

// evaluate runs the shard's experiments against one evaluator. Each
// shard is touched by exactly one worker, so no locking is needed.
func (s *shard) evaluate(ev Evaluator, space faultmodel.Space, plan *Plan, validate, grouped bool) {
	sub := plan.Subpops[s.stratum]
	if sub.Layer < 0 {
		s.perLayer = make(map[int]*stats.ProportionEstimate)
	}
	if grouped && len(s.idx) > 1 {
		s.evaluateGrouped(ev, space, sub, validate)
		return
	}
	for _, j := range s.idx {
		f := decodeShardFault(space, sub, j, validate)
		s.tally(space, sub, f, ev.IsCritical(f))
	}
}

// evaluateGrouped is the WithGroupedEvaluation shard path: decode every
// draw up front, evaluate in (layer, param, bit, model) order — draw
// order within a group — and tally the verdicts strictly in draw order.
// Evaluation order cannot change a verdict (every experiment restores
// its fault before returning), so the shard's tallies are bit-identical
// to the ungrouped path's.
func (s *shard) evaluateGrouped(ev Evaluator, space faultmodel.Space, sub Subpopulation, validate bool) {
	faults := make([]faultmodel.Fault, len(s.idx))
	for i, j := range s.idx {
		faults[i] = decodeShardFault(space, sub, j, validate)
	}
	perm := make([]int, len(faults))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		fa, fb := faults[perm[a]], faults[perm[b]]
		if fa.Layer != fb.Layer {
			return fa.Layer < fb.Layer
		}
		if fa.Param != fb.Param {
			return fa.Param < fb.Param
		}
		if fa.Bit != fb.Bit {
			return fa.Bit < fb.Bit
		}
		if fa.Model != fb.Model {
			return fa.Model < fb.Model
		}
		return perm[a] < perm[b] // keep draw order within a group
	})
	verdicts := make([]bool, len(faults))
	for _, i := range perm {
		verdicts[i] = ev.IsCritical(faults[i])
	}
	for i, f := range faults {
		s.tally(space, sub, f, verdicts[i])
	}
}

// tally folds one verdict into the shard's counters (draw-order calls
// only — the per-layer slices accumulate in the order faults appear in
// s.idx).
func (s *shard) tally(space faultmodel.Space, sub Subpopulation, f faultmodel.Fault, critical bool) {
	if critical {
		s.successes++
	}
	if s.perLayer != nil {
		pl := s.perLayer[f.Layer]
		if pl == nil {
			pl = &stats.ProportionEstimate{
				PopulationSize: space.LayerTotal(f.Layer),
				PlannedP:       sub.P,
			}
			s.perLayer[f.Layer] = pl
		}
		pl.SampleSize++
		if critical {
			pl.Successes++
		}
	}
}

// decodeShardFault maps a stratum-local index to a concrete fault,
// validating the decode when requested (WithDecodeValidation, or the
// SFI_VALIDATE_DECODE environment fallback).
func decodeShardFault(space faultmodel.Space, sub Subpopulation, j int64, validate bool) faultmodel.Fault {
	if validate {
		f, err := decodeFaultChecked(space, sub, j)
		if err != nil {
			panic(err)
		}
		return f
	}
	return decodeFault(space, sub, j)
}

// drawAll reproduces the classic serial sampling exactly: one master
// generator seeded with seed, consumed stratum by stratum in plan order.
func drawAll(plan *Plan, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, len(plan.Subpops))
	for i, sub := range plan.Subpops {
		out[i] = stats.SampleWithoutReplacement(rng, sub.Population, sub.SampleSize)
	}
	return out
}

// decodeFaultChecked is decodeFault with validation; the shard runner
// uses it when decode validation is enabled.
func decodeFaultChecked(space faultmodel.Space, sub Subpopulation, j int64) (faultmodel.Fault, error) {
	f := decodeFault(space, sub, j)
	if err := space.Validate(f); err != nil {
		return faultmodel.Fault{}, fmt.Errorf("core: decoded invalid fault: %w", err)
	}
	return f, nil
}
