package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cnnsfi/internal/faultmodel"
)

// chaosMode selects how a victim fault misbehaves.
type chaosMode int

const (
	chaosPanic chaosMode = iota
	chaosHang
)

// chaosEvaluator wraps a healthy evaluator and injects failures for a
// fixed victim-fault set: a panic or a hang (longer than any watchdog
// deadline used in the tests). With once set, each victim fails exactly
// one time campaign-wide — the failure bookkeeping is shared across
// clones — so a retried experiment succeeds; without it, victims fail
// persistently and must end up quarantined.
type chaosEvaluator struct {
	inner   Evaluator
	victims map[faultmodel.Fault]chaosMode
	once    bool
	hang    time.Duration
	seen    *sync.Map     // fault -> already failed (shared across clones)
	clones  *atomic.Int64 // CloneForWorker calls (shared across clones)
}

func newChaosEvaluator(inner Evaluator, victims map[faultmodel.Fault]chaosMode, once bool) *chaosEvaluator {
	return &chaosEvaluator{
		inner:   inner,
		victims: victims,
		once:    once,
		hang:    time.Second,
		seen:    &sync.Map{},
		clones:  &atomic.Int64{},
	}
}

func (c *chaosEvaluator) Space() faultmodel.Space { return c.inner.Space() }

func (c *chaosEvaluator) IsCritical(f faultmodel.Fault) bool {
	if mode, ok := c.victims[f]; ok {
		fail := true
		if c.once {
			_, dup := c.seen.LoadOrStore(f, true)
			fail = !dup
		}
		if fail {
			switch mode {
			case chaosHang:
				// Outlive the watchdog, then fall through to a normal
				// verdict that lands in the abandoned lane's buffer.
				time.Sleep(c.hang)
			default:
				panic(fmt.Sprintf("chaos: injected panic for %s", f))
			}
		}
	}
	return c.inner.IsCritical(f)
}

// cloneableChaos adds the WorkerCloner seam: clones share the inner
// evaluator (the oracle is concurrency-safe) and the failure
// bookkeeping, so retry clones see the same chaos schedule.
type cloneableChaos struct{ chaosEvaluator }

func (c *cloneableChaos) CloneForWorker() Evaluator {
	c.clones.Add(1)
	cp := *c
	return &cp
}

// victimDraws decodes the faults at fixed (stratum, draw-offset)
// positions of the plan's seeded sample — victim identity is therefore
// a pure function of (plan, seed), like everything else in a campaign.
func victimDraws(t *testing.T, plan *Plan, space faultmodel.Space, seed int64, picks map[int][]int64) map[faultmodel.Fault]int64 {
	t.Helper()
	samples := drawAll(plan, seed)
	out := make(map[faultmodel.Fault]int64)
	for stratum, offs := range picks {
		if stratum >= len(plan.Subpops) {
			t.Fatalf("pick stratum %d outside plan (%d strata)", stratum, len(plan.Subpops))
		}
		sub := plan.Subpops[stratum]
		for _, off := range offs {
			if off >= int64(len(samples[stratum])) {
				t.Fatalf("pick draw %d outside stratum %d sample (%d draws)", off, stratum, len(samples[stratum]))
			}
			out[decodeFault(space, sub, samples[stratum][off])] = off
		}
	}
	return out
}

// TestSupervisedChaosBitIdentity is the headline acceptance criterion:
// an evaluator that panics or hangs once on a seeded subset of
// experiments, run under supervision, must produce a Result
// bit-identical to the unsupervised run on a healthy evaluator — at one
// worker and at four, with and without the WorkerCloner seam.
func TestSupervisedChaosBitIdentity(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed = 11
	want := resultBytes(t, Run(o, lw, seed))

	faults := victimDraws(t, lw, o.Space(), seed, map[int][]int64{
		0: {3, 101},
		1: {0, 57},
	})
	victims := make(map[faultmodel.Fault]chaosMode)
	i := 0
	for f := range faults {
		mode := chaosPanic
		if i%2 == 1 {
			mode = chaosHang // exercise the watchdog on half the victims
		}
		victims[f] = mode
		i++
	}

	for _, cloneable := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("cloneable=%v/workers=%d", cloneable, workers)
			chaos := newChaosEvaluator(o, victims, true)
			var ev Evaluator = chaos
			if cloneable {
				ev = &cloneableChaos{*chaos}
			}
			var finals []Progress
			var retryEvents, quarantineEvents int
			eng := NewEngine(
				WithWorkers(workers),
				WithMaxRetries(2),
				WithExperimentTimeout(100*time.Millisecond),
				WithProgress(func(p Progress) {
					if p.Final {
						finals = append(finals, p)
					}
				}),
				WithTrace(func(ev TraceEvent) {
					switch ev.Kind {
					case TraceExperimentRetry:
						retryEvents++
					case TraceExperimentQuarantined:
						quarantineEvents++
					}
				}),
			)
			res, err := eng.Execute(context.Background(), ev, lw, seed)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := resultBytes(t, res); !bytes.Equal(got, want) {
				t.Errorf("%s: supervised chaotic result differs from healthy unsupervised run:\n got %s\nwant %s",
					name, got, want)
			}
			if len(res.Quarantined) != 0 || quarantineEvents != 0 {
				t.Errorf("%s: transient failures were quarantined: %v", name, res.Quarantined)
			}
			// A loaded scheduler can time out an innocent experiment; its
			// retry recomputes the same verdict, so the Result is still
			// bit-identical — only the retry count has a lower bound.
			if retryEvents < len(victims) {
				t.Errorf("%s: %d experiment_retry events, want >= %d", name, retryEvents, len(victims))
			}
			if len(finals) != 1 || finals[0].Retries < int64(len(victims)) || finals[0].Quarantined != 0 {
				t.Errorf("%s: final progress %+v, want Retries>=%d Quarantined=0", name, finals, len(victims))
			}
			if finals[0].Done != lw.TotalInjections() {
				t.Errorf("%s: final Done = %d, want %d", name, finals[0].Done, lw.TotalInjections())
			}
			if cloneable {
				if n := chaos.clones.Load(); n == 0 {
					t.Errorf("%s: supervised retries never cloned the evaluator", name)
				}
			}
		}
	}
}

// TestSupervisedPersistentFailureQuarantines: victims that fail every
// attempt are quarantined deterministically (bit-identical Result across
// worker counts), excluded from the tally with the stratum margin
// recomputed over the reduced n, and the campaign ends cleanly.
func TestSupervisedPersistentFailureQuarantines(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed, retries = 11, 2
	healthy := Run(o, lw, seed)

	picks := map[int][]int64{0: {3, 101}, 2: {42}}
	faults := victimDraws(t, lw, o.Space(), seed, picks)
	victims := make(map[faultmodel.Fault]chaosMode)
	for f := range faults {
		victims[f] = chaosPanic
	}

	var prev []byte
	for _, workers := range []int{1, 4} {
		var warnings []string
		var finals []Progress
		eng := NewEngine(
			WithWorkers(workers),
			WithMaxRetries(retries),
			WithWarnings(func(msg string) { warnings = append(warnings, msg) }),
			WithProgress(func(p Progress) {
				if p.Final {
					finals = append(finals, p)
				}
			}),
		)
		res, err := eng.Execute(context.Background(), newChaosEvaluator(o, victims, false), lw, seed)
		if err != nil {
			t.Fatalf("workers=%d: persistent failures must not fail the campaign: %v", workers, err)
		}
		if res.Partial {
			t.Fatalf("workers=%d: clean end marked partial", workers)
		}

		got := resultBytes(t, res)
		if prev != nil && !bytes.Equal(got, prev) {
			t.Errorf("workers=%d: quarantined result differs from workers=1 run", workers)
		}
		prev = got

		if len(res.Quarantined) != len(faults) {
			t.Fatalf("workers=%d: %d quarantined, want %d: %v", workers, len(res.Quarantined), len(faults), res.Quarantined)
		}
		perStratum := map[int]int64{}
		for i, q := range res.Quarantined {
			perStratum[q.Stratum]++
			if q.Attempts != retries+1 {
				t.Errorf("quarantine %d: %d attempts, want %d", i, q.Attempts, retries+1)
			}
			if q.Fault == "" || !strings.Contains(q.Err, "panicked") {
				t.Errorf("quarantine %d lost its identity: %+v", i, q)
			}
			if i > 0 {
				p := res.Quarantined[i-1]
				if q.Stratum < p.Stratum || (q.Stratum == p.Stratum && q.Index <= p.Index) {
					t.Errorf("Result.Quarantined not sorted: %+v before %+v", p, q)
				}
			}
		}
		for stratum, offs := range picks {
			if perStratum[stratum] != int64(len(offs)) {
				t.Errorf("stratum %d: %d quarantined, want %d", stratum, perStratum[stratum], len(offs))
			}
		}

		cfg := lw.Config
		for i, est := range res.Estimates {
			k := perStratum[i]
			if est.SampleSize != lw.Subpops[i].SampleSize-k {
				t.Errorf("stratum %d: effective n %d, want %d-%d", i, est.SampleSize, lw.Subpops[i].SampleSize, k)
			}
			if k == 0 {
				if est != healthy.Estimates[i] {
					t.Errorf("untouched stratum %d diverged from the healthy run", i)
				}
				continue
			}
			// The reported margin must be the inflated one of the reduced
			// sample: strictly above the same tally spread back over the
			// planned n.
			full := est
			full.SampleSize += k
			if est.Margin(cfg) <= full.Margin(cfg) {
				t.Errorf("stratum %d: margin %v over n=%d not inflated vs %v over planned n=%d",
					i, est.Margin(cfg), est.SampleSize, full.Margin(cfg), full.SampleSize)
			}
		}

		if len(finals) != 1 || finals[0].Quarantined != int64(len(faults)) {
			t.Errorf("workers=%d: final progress %+v, want Quarantined=%d", workers, finals, len(faults))
		}
		// Done counts consumed draw positions, including quarantined ones.
		if finals[0].Done != lw.TotalInjections() {
			t.Errorf("workers=%d: final Done = %d, want %d", workers, finals[0].Done, lw.TotalInjections())
		}
		if res.Injections() != lw.TotalInjections()-int64(len(faults)) {
			t.Errorf("workers=%d: Injections() = %d, want planned minus quarantined %d",
				workers, res.Injections(), lw.TotalInjections()-int64(len(faults)))
		}
		if len(warnings) != len(faults) {
			t.Errorf("workers=%d: %d quarantine warnings, want %d: %q", workers, len(warnings), len(faults), warnings)
		}
	}
}

// TestSupervisedZeroRetriesQuarantinesFirstFailure: WithMaxRetries(0)
// gives pure panic isolation — no retry, straight to quarantine — and
// still never crashes the campaign.
func TestSupervisedZeroRetriesQuarantinesFirstFailure(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	const seed = 5
	faults := victimDraws(t, lw, o.Space(), seed, map[int][]int64{1: {7}})
	victims := make(map[faultmodel.Fault]chaosMode)
	for f := range faults {
		victims[f] = chaosPanic
	}
	var warned int
	res, err := NewEngine(WithWorkers(2), WithMaxRetries(0), WithWarnings(func(string) { warned++ })).
		Execute(context.Background(), newChaosEvaluator(o, victims, false), lw, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Attempts != 1 {
		t.Fatalf("quarantined = %+v, want one single-attempt record", res.Quarantined)
	}
	if warned != 1 {
		t.Errorf("warnings = %d, want 1", warned)
	}
}

// TestEngineRejectsNegativeExperimentTimeout pins the input validation.
func TestEngineRejectsNegativeExperimentTimeout(t *testing.T) {
	o, _ := smallOracle(t)
	_, lw, _, _ := allApproachPlans(t)
	_, err := NewEngine(WithExperimentTimeout(-time.Second)).Execute(context.Background(), o, lw, 1)
	if err == nil || !strings.Contains(err.Error(), "experiment timeout") {
		t.Fatalf("err = %v, want negative-timeout rejection", err)
	}
}

// TestWatchdogAbandonedLanesGauge pins the abandoned-lane accounting
// that makes the PR 5 goroutine leak observable: a timed-out experiment
// raises WatchdogAbandonedLanes by one for as long as its lane
// goroutine is pinned by the hung call, and the gauge falls back once
// the call finally returns and the goroutine exits. Cleanly released
// lanes (worker shutdown) must never move the gauge. Assertions are
// deltas against a base snapshot — the counter is process-wide.
func TestWatchdogAbandonedLanesGauge(t *testing.T) {
	base := WatchdogAbandonedLanes()
	sup := &supervisor{timeout: 20 * time.Millisecond}

	// A clean lifecycle first: fast experiment, then worker shutdown.
	w := &supWorker{sup: sup}
	if v := w.attempt(func(Evaluator) verdict { return verdict{decoded: true} }); v.failed() {
		t.Fatalf("fast experiment failed: %+v", v)
	}
	w.close()
	if got := WatchdogAbandonedLanes() - base; got != 0 {
		t.Fatalf("gauge delta = %d after a clean lane release, want 0", got)
	}

	// Now a hung experiment: the watchdog abandons the lane and the
	// gauge must show the pinned goroutine until the hang is released.
	release := make(chan struct{})
	w = &supWorker{sup: sup}
	v := w.attempt(func(Evaluator) verdict {
		<-release
		return verdict{decoded: true}
	})
	if !v.timedOut {
		t.Fatalf("verdict = %+v, want a watchdog timeout", v)
	}
	if got := WatchdogAbandonedLanes() - base; got < 1 {
		t.Fatalf("gauge delta = %d while an abandoned experiment hangs, want >= 1", got)
	}

	close(release) // the hung call returns; the abandoned goroutine exits
	deadline := time.Now().Add(5 * time.Second)
	for WatchdogAbandonedLanes()-base != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gauge delta still %d after the hang was released", WatchdogAbandonedLanes()-base)
		}
		time.Sleep(time.Millisecond)
	}
}
