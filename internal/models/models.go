// Package models builds the CNN topologies evaluated by the paper —
// ResNet-20 and MobileNetV2, in their CIFAR-10 variants — plus a small
// CNN used for inference-based exhaustive-vs-statistical validation.
//
// Parameter-count fidelity (weights of convolutional and fully-connected
// layers, the paper's fault population):
//
//   - ResNet-20: 20 weight layers, 268,336 parameters. The paper's
//     Table I lists 268,346 because its layer 11 reads 9,226 instead of
//     the architecturally standard 9,216 (a presumed typo; no standard
//     sub-module accounts for +10). All other rows match exactly.
//   - MobileNetV2 (CIFAR config: expansion/width settings
//     (1,16,1),(6,24,2),(6,32,3),(6,64,4),(6,96,3),(6,160,3),(6,320,1),
//     stem 3→32, head 320→1280→10, residual joins only where
//     stride == 1 and in == out): 54 weight layers and 2,203,584
//     parameters — both figures match Table II exactly.
//
// Since the authors' trained checkpoints are not redistributable, the
// package generates deterministic "pretrained-like" weights: per-layer
// He-scaled Gaussians for convolutions and fully-connected layers, and
// realistic batch-normalization statistics. The data-aware methodology
// only consumes the weight value distribution (bit frequencies and
// bit-flip distances), which this initialization reproduces; see
// DESIGN.md for the substitution argument.
package models

import (
	"fmt"
	"math"
	"math/rand"

	"cnnsfi/internal/nn"
)

// ResNet20 builds the CIFAR-10 ResNet-20 with option-A (parameter-free)
// shortcuts and synthetic pretrained-like weights seeded by seed.
func ResNet20(seed int64) *nn.Network { return ResNetN(3, seed) }

// ResNet32 builds the CIFAR-10 ResNet-32 (n = 5).
func ResNet32(seed int64) *nn.Network { return ResNetN(5, seed) }

// ResNet44 builds the CIFAR-10 ResNet-44 (n = 7).
func ResNet44(seed int64) *nn.Network { return ResNetN(7, seed) }

// ResNet56 builds the CIFAR-10 ResNet-56 (n = 9).
func ResNet56(seed int64) *nn.Network { return ResNetN(9, seed) }

// ResNetN builds the CIFAR ResNet family of He et al.: three stages of
// blocksPerStage basic blocks with 16/32/64 channels, for a total of
// 6·blocksPerStage + 2 weight layers (n = 3 → ResNet-20, the paper's
// case study; n = 5 → ResNet-32; n = 9 → ResNet-56 — the "different
// architectures" direction of the paper's conclusions).
func ResNetN(blocksPerStage int, seed int64) *nn.Network {
	if blocksPerStage < 1 {
		panic(fmt.Sprintf("models: blocksPerStage must be ≥ 1, got %d", blocksPerStage))
	}
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork(fmt.Sprintf("resnet%d", 6*blocksPerStage+2))

	conv := 0
	addConvBN := func(inC, outC, stride int, from int) int {
		c := nn.NewConv2D(fmt.Sprintf("conv%d", conv), inC, outC, 3, stride, 1, 1)
		conv++
		heInit(rng, c.W, inC*9)
		id := n.Add(c, from)
		bn := nn.NewBatchNorm2D(c.Label+"_bn", outC)
		bnInit(rng, bn)
		return n.Add(bn, id)
	}

	// Stem.
	last := addConvBN(3, 16, 1, nn.InputID)
	last = n.Add(&nn.ReLU{Label: "stem_relu"}, last)

	// Three stages of blocksPerStage basic blocks each.
	channels := []int{16, 32, 64}
	inC := 16
	for stage, outC := range channels {
		for block := 0; block < blocksPerStage; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			blockIn := last
			h := addConvBN(inC, outC, stride, blockIn)
			h = n.Add(&nn.ReLU{Label: fmt.Sprintf("s%db%d_relu1", stage, block)}, h)
			h = addConvBN(outC, outC, 1, h)

			short := blockIn
			if stride != 1 || inC != outC {
				short = n.Add(&nn.ShortcutA{
					Label:  fmt.Sprintf("s%db%d_shortcut", stage, block),
					Stride: stride, OutC: outC,
				}, blockIn)
			}
			h = n.Add(&nn.Add{Label: fmt.Sprintf("s%db%d_add", stage, block)}, h, short)
			last = n.Add(&nn.ReLU{Label: fmt.Sprintf("s%db%d_relu2", stage, block)}, h)
			inC = outC
		}
	}

	last = n.Add(&nn.GlobalAvgPool{Label: "gap"}, last)
	fc := nn.NewLinear("fc", 64, 10)
	linearInit(rng, fc)
	n.Add(fc, last)
	return n
}

// mobileNetV2Group describes one inverted-residual group of the CIFAR
// MobileNetV2: expansion factor t, output channels, block count, and the
// stride of the group's first block.
type mobileNetV2Group struct {
	expansion, outC, blocks, stride int
}

// mobileNetV2Config is the CIFAR-10 configuration whose weight-layer
// count (54) and parameter count (2,203,584) match the paper's Table II
// exactly.
var mobileNetV2Config = []mobileNetV2Group{
	{1, 16, 1, 1},
	{6, 24, 2, 1}, // stride 1 on CIFAR (ImageNet uses 2)
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// MobileNetV2 builds the CIFAR-10 MobileNetV2 with synthetic
// pretrained-like weights seeded by seed.
func MobileNetV2(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("mobilenetv2")

	conv := 0
	addConv := func(label string, inC, outC, k, stride, pad, groups, from int) int {
		c := nn.NewConv2D(label, inC, outC, k, stride, pad, groups)
		conv++
		heInit(rng, c.W, (inC/groups)*k*k)
		id := n.Add(c, from)
		bn := nn.NewBatchNorm2D(label+"_bn", outC)
		bnInit(rng, bn)
		return n.Add(bn, id)
	}

	// Stem: 3→32, stride 1 on CIFAR.
	last := addConv("stem", 3, 32, 3, 1, 1, 1, nn.InputID)
	last = n.Add(&nn.ReLU6{Label: "stem_relu"}, last)

	inC := 32
	for gi, g := range mobileNetV2Config {
		for b := 0; b < g.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = g.stride
			}
			blockIn := last
			planes := g.expansion * inC
			tag := fmt.Sprintf("g%db%d", gi, b)

			// Expansion (1×1), depthwise (3×3), projection (1×1).
			h := addConv(tag+"_expand", inC, planes, 1, 1, 0, 1, blockIn)
			h = n.Add(&nn.ReLU6{Label: tag + "_relu1"}, h)
			h = addConv(tag+"_dw", planes, planes, 3, stride, 1, planes, h)
			h = n.Add(&nn.ReLU6{Label: tag + "_relu2"}, h)
			h = addConv(tag+"_project", planes, g.outC, 1, 1, 0, 1, h)

			// Residual join only when shapes already agree (this keeps
			// the weight-layer count at 54 and the parameter count at
			// 2,203,584, matching Table II).
			if stride == 1 && inC == g.outC {
				h = n.Add(&nn.Add{Label: tag + "_add"}, h, blockIn)
			}
			last = h
			inC = g.outC
		}
	}

	// Head: 1×1 to 1280, global pool, classifier.
	last = addConv("head", inC, 1280, 1, 1, 0, 1, last)
	last = n.Add(&nn.ReLU6{Label: "head_relu"}, last)
	last = n.Add(&nn.GlobalAvgPool{Label: "gap"}, last)
	fc := nn.NewLinear("fc", 1280, 10)
	linearInit(rng, fc)
	n.Add(fc, last)
	return n
}

// SmallCNN builds a deliberately small network (3 convolutions + 1
// fully-connected layer, 4 weight layers) on which *inference-based*
// exhaustive fault injection is feasible on a single CPU core. It is the
// real-forward-pass counterpart of the full-scale oracle campaigns: the
// statistical machinery is identical, only the substrate changes.
//
// With inC=3 and 16×16 inputs the weight-layer parameter counts are
// 108, 288, 1,152 and 160 (total 1,708; fault population
// 1,708 × 32 × 2 = 109,312 permanent faults — small enough that the
// entire exhaustive campaign runs in minutes on one CPU core).
func SmallCNN(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("smallcnn")

	addConvBN := func(label string, inC, outC, stride, from int) int {
		c := nn.NewConv2D(label, inC, outC, 3, stride, 1, 1)
		heInit(rng, c.W, inC*9)
		id := n.Add(c, from)
		bn := nn.NewBatchNorm2D(label+"_bn", outC)
		bnInit(rng, bn)
		return n.Add(bn, id)
	}

	last := addConvBN("conv0", 3, 4, 1, nn.InputID)
	last = n.Add(&nn.ReLU{Label: "relu0"}, last)
	last = n.Add(&nn.MaxPool2D{Label: "pool0", Kernel: 2, Stride: 2}, last)
	last = addConvBN("conv1", 4, 8, 1, last)
	last = n.Add(&nn.ReLU{Label: "relu1"}, last)
	last = n.Add(&nn.MaxPool2D{Label: "pool1", Kernel: 2, Stride: 2}, last)
	last = addConvBN("conv2", 8, 16, 1, last)
	last = n.Add(&nn.ReLU{Label: "relu2"}, last)
	last = n.Add(&nn.GlobalAvgPool{Label: "gap"}, last)
	fc := nn.NewLinear("fc", 16, 10)
	linearInit(rng, fc)
	n.Add(fc, last)
	return n
}

// Build constructs a registered model by name ("resnet20",
// "mobilenetv2", or "smallcnn"). It returns an error for unknown names.
func Build(name string, seed int64) (*nn.Network, error) {
	switch name {
	case "resnet20":
		return ResNet20(seed), nil
	case "resnet32":
		return ResNet32(seed), nil
	case "resnet44":
		return ResNet44(seed), nil
	case "resnet56":
		return ResNet56(seed), nil
	case "mobilenetv2":
		return MobileNetV2(seed), nil
	case "smallcnn":
		return SmallCNN(seed), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q (want resnet20/32/44/56, mobilenetv2, or smallcnn)", name)
	}
}

// Names lists the registered model names.
func Names() []string {
	return []string{"resnet20", "resnet32", "resnet44", "resnet56", "mobilenetv2", "smallcnn"}
}

// heInit fills w with N(0, sqrt(2/fanIn)) samples — the He initialization
// whose scale matches the empirical magnitude of trained conv weights.
func heInit(rng *rand.Rand, w []float32, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = float32(rng.NormFloat64() * std)
	}
}

// linearInit fills a fully-connected layer with N(0, sqrt(1/in)).
func linearInit(rng *rand.Rand, l *nn.Linear) {
	std := math.Sqrt(1 / float64(l.In))
	for i := range l.W {
		l.W[i] = float32(rng.NormFloat64() * std)
	}
}

// bnInit draws realistic trained batch-normalization statistics:
// γ ≈ N(1, 0.15), β ≈ N(0, 0.1), running mean ≈ N(0, 0.2), running
// variance ≈ |N(0.5, 0.2)| + 0.05.
func bnInit(rng *rand.Rand, bn *nn.BatchNorm2D) {
	for i := 0; i < bn.C; i++ {
		bn.Gamma[i] = float32(1 + rng.NormFloat64()*0.15)
		bn.Beta[i] = float32(rng.NormFloat64() * 0.1)
		bn.Mean[i] = float32(rng.NormFloat64() * 0.2)
		v := 0.5 + rng.NormFloat64()*0.2
		if v < 0 {
			v = -v
		}
		bn.Var[i] = float32(v + 0.05)
	}
	bn.Refold()
}
