package models

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cnnsfi/internal/nn"
)

// Checkpoint format: a small binary container for a network's injectable
// weights (batch-normalization statistics are regenerable from the model
// seed and are not part of the fault population, so they are not saved).
//
//	magic "CNNW" | version u32 | layer count u32
//	per layer: weight count u32 | weights []f32 (little endian)
//	crc32 (IEEE) of everything before it
const (
	checkpointMagic   = "CNNW"
	checkpointVersion = 1
)

// SaveWeights writes the network's injectable weights to w.
func SaveWeights(net *nn.Network, w io.Writer) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	layers := net.WeightLayers()
	if err := binary.Write(out, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(len(layers))); err != nil {
		return err
	}
	for _, l := range layers {
		data := l.WeightData()
		if err := binary.Write(out, binary.LittleEndian, uint32(len(data))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := out.Write(buf); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadWeights restores weights saved by SaveWeights into a network with
// the identical topology (layer count and per-layer sizes must match).
func LoadWeights(net *nn.Network, r io.Reader) error {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(in, magic); err != nil {
		return fmt.Errorf("models: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("models: bad checkpoint magic %q", magic)
	}
	var version, layerCount uint32
	if err := binary.Read(in, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("models: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(in, binary.LittleEndian, &layerCount); err != nil {
		return err
	}
	layers := net.WeightLayers()
	if int(layerCount) != len(layers) {
		return fmt.Errorf("models: checkpoint has %d layers, network has %d", layerCount, len(layers))
	}
	for li, l := range layers {
		var n uint32
		if err := binary.Read(in, binary.LittleEndian, &n); err != nil {
			return err
		}
		data := l.WeightData()
		if int(n) != len(data) {
			return fmt.Errorf("models: layer %d has %d weights in checkpoint, %d in network", li, n, len(data))
		}
		buf := make([]byte, 4*len(data))
		if _, err := io.ReadFull(in, buf); err != nil {
			return fmt.Errorf("models: reading layer %d weights: %w", li, err)
		}
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("models: reading checksum: %w", err)
	}
	if got != want {
		return fmt.Errorf("models: checkpoint checksum mismatch (corrupted file?)")
	}
	return nil
}
