package models

import (
	"testing"

	"cnnsfi/internal/nn"
	"cnnsfi/internal/stats"
	"cnnsfi/internal/tensor"
)

// TestResNet20MatchesTableI pins the per-layer parameter counts to the
// paper's Table I (with the documented layer-11 typo: the paper lists
// 9,226 where the standard architecture has 9,216).
func TestResNet20MatchesTableI(t *testing.T) {
	n := ResNet20(1)
	want := []int{
		432,
		2304, 2304, 2304, 2304, 2304, 2304,
		4608,
		9216, 9216, 9216, 9216, 9216, // paper's L11 reads 9,226 (typo)
		18432,
		36864, 36864, 36864, 36864, 36864,
		640,
	}
	got := n.LayerParamCounts()
	if len(got) != 20 {
		t.Fatalf("ResNet-20 has %d weight layers, want 20", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("layer %d: %d params, want %d", i, got[i], want[i])
		}
	}
	if total := n.TotalWeights(); total != 268336 {
		t.Errorf("total params = %d, want 268,336 (paper lists 268,346 incl. typo)", total)
	}
}

// TestMobileNetV2MatchesTableII pins the aggregate figures to Table II:
// 54 weight layers and 2,203,584 parameters (hence an exhaustive
// permanent-fault population of 141,029,376).
func TestMobileNetV2MatchesTableII(t *testing.T) {
	n := MobileNetV2(1)
	if got := n.NumWeightLayers(); got != 54 {
		t.Fatalf("MobileNetV2 has %d weight layers, want 54", got)
	}
	if got := n.TotalWeights(); got != 2203584 {
		t.Fatalf("MobileNetV2 has %d params, want 2,203,584", got)
	}
	if pop := int64(n.TotalWeights()) * 32 * 2; pop != 141029376 {
		t.Errorf("fault population = %d, want 141,029,376", pop)
	}
}

func TestResNet20ForwardShape(t *testing.T) {
	n := ResNet20(1)
	x := tensor.New(3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%17)*0.05 - 0.4
	}
	out := n.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("output length = %d, want 10", out.Len())
	}
	for _, v := range out.Data {
		if v != v {
			t.Fatal("forward produced NaN")
		}
	}
}

func TestSmallCNNForwardShape(t *testing.T) {
	n := SmallCNN(1)
	x := tensor.New(3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(i%13)*0.1 - 0.6
	}
	out := n.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("output length = %d, want 10", out.Len())
	}
}

func TestSmallCNNParamCounts(t *testing.T) {
	n := SmallCNN(1)
	want := []int{108, 288, 1152, 160}
	got := n.LayerParamCounts()
	if len(got) != len(want) {
		t.Fatalf("weight layers = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("layer %d: %d params, want %d", i, got[i], want[i])
		}
	}
}

func TestMobileNetV2ForwardShape(t *testing.T) {
	if testing.Short() {
		t.Skip("MobileNetV2 forward is slow on one core")
	}
	n := MobileNetV2(1)
	x := tensor.New(3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%11)*0.08 - 0.4
	}
	out := n.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("output length = %d, want 10", out.Len())
	}
	for _, v := range out.Data {
		if v != v {
			t.Fatal("forward produced NaN")
		}
	}
}

func TestBuildRegistry(t *testing.T) {
	for _, name := range Names() {
		if _, err := Build(name, 1); err != nil {
			t.Errorf("Build(%q) failed: %v", name, err)
		}
	}
	if _, err := Build("vgg16", 1); err == nil {
		t.Error("unknown model should error")
	}
}

func TestWeightsAreDeterministic(t *testing.T) {
	a := ResNet20(7)
	b := ResNet20(7)
	wa, wb := a.AllWeights(), b.AllWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c := ResNet20(8)
	wc := c.AllWeights()
	same := true
	for i := range wa {
		if wa[i] != wc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

// TestWeightDistributionIsTrainedLike checks the properties the
// data-aware analysis depends on: near-zero mean, small per-layer spread,
// and |w| < 1 for essentially all weights (which drives the exponent-bit
// frequency pattern of Fig. 3).
func TestWeightDistributionIsTrainedLike(t *testing.T) {
	n := ResNet20(1)
	w := n.AllWeights()
	mean := stats.MeanFloat32(w)
	if mean > 0.01 || mean < -0.01 {
		t.Errorf("weight mean = %v, want ≈ 0", mean)
	}
	std := stats.StdDevFloat32(w)
	if std < 0.005 || std > 0.3 {
		t.Errorf("weight std = %v, implausible for a trained CNN", std)
	}
	big := 0
	for _, v := range w {
		if v >= 1 || v <= -1 {
			big++
		}
	}
	if frac := float64(big) / float64(len(w)); frac > 0.001 {
		t.Errorf("%.4f%% of weights have |w| ≥ 1, want ≈ 0", frac*100)
	}
}

func BenchmarkResNet20Forward(b *testing.B) {
	n := ResNet20(1)
	x := tensor.New(3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

func BenchmarkSmallCNNForward(b *testing.B) {
	n := SmallCNN(1)
	x := tensor.New(3, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

// TestResNetFamilyLayerCounts checks the 6n+2 weight-layer rule and the
// conv/fc parameter counts of the CIFAR ResNet family (bias-free convs,
// option-A shortcuts, 640-weight classifier).
func TestResNetFamilyLayerCounts(t *testing.T) {
	tests := []struct {
		name   string
		build  func(int64) *nn.Network
		layers int
		params int
	}{
		{"resnet20", ResNet20, 20, 268336},
		{"resnet32", ResNet32, 32, 461872},
		{"resnet44", ResNet44, 44, 655408},
		{"resnet56", ResNet56, 56, 848944},
	}
	for _, tt := range tests {
		net := tt.build(1)
		if got := net.NumWeightLayers(); got != tt.layers {
			t.Errorf("%s: %d weight layers, want %d", tt.name, got, tt.layers)
		}
		if got := net.TotalWeights(); got != tt.params {
			t.Errorf("%s: %d params, want %d", tt.name, got, tt.params)
		}
		if net.NetName != tt.name {
			t.Errorf("name = %q, want %q", net.NetName, tt.name)
		}
	}
	// Each family member adds 6 weight layers per extra block.
	if ResNetN(4, 1).NumWeightLayers() != 26 {
		t.Error("ResNetN(4) should have 26 weight layers")
	}
}

func TestResNetNPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ResNetN(0) did not panic")
		}
	}()
	ResNetN(0, 1)
}

func TestResNet32ForwardShape(t *testing.T) {
	n := ResNet32(1)
	x := tensor.New(3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%19)*0.04 - 0.3
	}
	if out := n.Forward(x); out.Len() != 10 {
		t.Fatalf("output length = %d", out.Len())
	}
}
