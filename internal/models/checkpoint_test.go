package models

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	src := SmallCNN(1)
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}

	dst := SmallCNN(99) // different weights, same topology
	before := dst.AllWeights()
	want := src.AllWeights()
	same := true
	for i := range before {
		if before[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("test setup broken: nets already identical")
	}

	if err := LoadWeights(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := dst.AllWeights()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weight %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRejectsTopologyMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWeights(SmallCNN(1), &buf); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(ResNet20(1), &buf); err == nil {
		t.Error("mismatched topology accepted")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWeights(SmallCNN(1), &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0xff
	if err := LoadWeights(SmallCNN(2), bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted checkpoint accepted")
	}

	// Truncated stream.
	if err := LoadWeights(SmallCNN(2), bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated checkpoint accepted")
	}

	// Wrong magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if err := LoadWeights(SmallCNN(2), bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCheckpointPreservesPredictions(t *testing.T) {
	src := SmallCNN(1)
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := SmallCNN(1) // same seed: same BN stats, weights to be replaced
	if err := LoadWeights(dst, &buf); err != nil {
		t.Fatal(err)
	}
	// Same weights + same BN statistics → identical behaviour.
	wa, wb := src.AllWeights(), dst.AllWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("weights differ after reload")
		}
	}
}
