package service

import (
	"errors"
	"fmt"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/dataset"
	"cnnsfi/internal/inject"
	"cnnsfi/internal/models"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/stats"
	"cnnsfi/internal/telemetry"
)

// ErrInvalidSpec wraps every spec-validation failure, so the HTTP layer
// can map the whole class to 400 with errors.Is.
var ErrInvalidSpec = errors.New("invalid campaign spec")

// CampaignSpec is the submitted description of one campaign — the JSON
// body of POST /api/v1/campaigns and the persisted identity of a job.
// It carries exactly the knobs sfirun exposes per campaign, so a spec
// run through sfid produces a Result bit-identical to the equivalent
// sfirun invocation: the plan is a pure function of (model, model_seed,
// substrate, oracle_seed/images, approach, margin, confidence), the
// sample of (plan, run_seed), and the tally of (sample, workers).
type CampaignSpec struct {
	// Name is an optional display label; it defaults to "model/approach".
	Name string `json:"name,omitempty"`
	// Model picks the weight generator: resnet20, mobilenetv2, smallcnn.
	Model string `json:"model"`
	// Substrate picks the evaluator: "oracle" (default) or "inference"
	// (smallcnn only).
	Substrate string `json:"substrate,omitempty"`
	// Approach is one of network-wise, layer-wise, data-unaware,
	// data-aware.
	Approach string `json:"approach"`
	// Margin is the requested error margin e in (0,1); default 0.01.
	Margin float64 `json:"margin,omitempty"`
	// Confidence is the confidence level in (0,1); default 0.99.
	Confidence float64 `json:"confidence,omitempty"`
	// ModelSeed generates the weights (default 1); OracleSeed labels the
	// ground truth (default 3); RunSeed draws the sample (default 0).
	ModelSeed  int64 `json:"model_seed,omitempty"`
	OracleSeed int64 `json:"oracle_seed,omitempty"`
	RunSeed    int64 `json:"run_seed,omitempty"`
	// Images sizes the inference substrate's evaluation set (default 8).
	Images int `json:"images,omitempty"`
	// Batch sets how many images each faulted forward pass evaluates at
	// once on the inference substrate (0 or 1 = unbatched, the default).
	// Batching changes wall time only — verdicts, and therefore the
	// Result, are bit-identical at every batch size.
	Batch int `json:"batch,omitempty"`
	// Workers is the campaign's fixed worker count (default 1). It is
	// part of the job's identity — checkpoints bind to it — and the job
	// holds this many tokens of the service's shared pool while running.
	Workers int `json:"workers,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities run
	// FIFO. Default 0.
	Priority int `json:"priority,omitempty"`
	// EarlyStop, when set, stops each stratum at this achieved margin
	// (0 = the requested margin). Omit to disable.
	EarlyStop *float64 `json:"early_stop,omitempty"`
	// ExperimentTimeoutMS arms the per-experiment watchdog (0 = off).
	ExperimentTimeoutMS int64 `json:"experiment_timeout_ms,omitempty"`
	// MaxRetries bounds retries per failing experiment before
	// quarantine. Omit to disable campaign supervision.
	MaxRetries *int `json:"max_retries,omitempty"`
	// Federated submits the campaign to the member fleet instead of the
	// local pool: a coordinator splits the plan into contiguous
	// per-stratum draw windows, runs one ranged job per live member, and
	// merges the partial Results in draw order — byte-identical to a
	// single-node run of the same (plan, seed). Requires a coordinator
	// (Config.Coordinator); Workers then sizes each member job, and the
	// federated job itself holds no local worker tokens.
	Federated bool `json:"federated,omitempty"`
	// Ranges restricts the campaign to the [from, to) draw window of
	// each stratum (one entry per plan stratum, in plan order). This is
	// how a coordinator ships one member's share of a federated plan; it
	// composes with checkpoints and resume like any other job. Mutually
	// exclusive with Federated and EarlyStop.
	Ranges []core.DrawRange `json:"ranges,omitempty"`
	// FederatedJob / FederatedPart / FederatedMember correlate a ranged
	// member job back to the coordinator job it is one part of: the
	// coordinator stamps them when it ships a part, and the member daemon
	// opens the part's trace with a part_meta prologue carrying them, so
	// every line of the coordinator's merged trace can name its origin.
	// Only valid alongside Ranges. FederatedPart is a pointer so part 0
	// survives the omitempty encoding.
	FederatedJob    string `json:"federated_job,omitempty"`
	FederatedPart   *int   `json:"federated_part,omitempty"`
	FederatedMember string `json:"federated_member,omitempty"`
}

var approaches = map[string]bool{
	"network-wise": true, "layer-wise": true, "data-unaware": true, "data-aware": true,
}

// normalize fills defaults in place; the normalized spec is what gets
// persisted and reported back, so a job's identity is explicit on disk.
func (spec *CampaignSpec) normalize() {
	if spec.Substrate == "" {
		spec.Substrate = "oracle"
	}
	if spec.Margin == 0 {
		spec.Margin = 0.01
	}
	if spec.Confidence == 0 {
		spec.Confidence = 0.99
	}
	if spec.ModelSeed == 0 {
		spec.ModelSeed = 1
	}
	if spec.OracleSeed == 0 {
		spec.OracleSeed = 3
	}
	if spec.Images == 0 {
		spec.Images = 8
	}
	if spec.Workers <= 0 {
		spec.Workers = 1
	}
	if spec.Name == "" {
		spec.Name = spec.Model + "/" + spec.Approach
	}
}

// validate rejects a normalized spec with one actionable message; every
// failure wraps ErrInvalidSpec.
func (spec *CampaignSpec) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
	}
	known := false
	for _, n := range models.Names() {
		known = known || n == spec.Model
	}
	if !known {
		return bad("unknown model %q; available: %v", spec.Model, models.Names())
	}
	switch spec.Substrate {
	case "oracle":
	case "inference":
		if spec.Model != "smallcnn" {
			return bad("inference substrate is only feasible for model smallcnn")
		}
	default:
		return bad("unknown substrate %q; available: oracle, inference", spec.Substrate)
	}
	if !approaches[spec.Approach] {
		return bad("unknown approach %q; available: network-wise, layer-wise, data-unaware, data-aware", spec.Approach)
	}
	if spec.Margin <= 0 || spec.Margin >= 1 {
		return bad("margin must be inside (0,1) (got %v)", spec.Margin)
	}
	if spec.Confidence <= 0 || spec.Confidence >= 1 {
		return bad("confidence must be inside (0,1) (got %v)", spec.Confidence)
	}
	if spec.Images <= 0 {
		return bad("images must be > 0 (got %d)", spec.Images)
	}
	if spec.Batch < 0 {
		return bad("batch must be >= 0 (got %d); 0 disables batching", spec.Batch)
	}
	if spec.Batch > 1 && spec.Substrate != "inference" {
		return bad("batch needs the inference substrate; the oracle runs no forward passes to batch")
	}
	if spec.EarlyStop != nil && (*spec.EarlyStop < 0 || *spec.EarlyStop >= 1) {
		return bad("early_stop must be inside [0,1) (got %v); omit it to disable", *spec.EarlyStop)
	}
	if spec.ExperimentTimeoutMS < 0 {
		return bad("experiment_timeout_ms must be >= 0 (got %d)", spec.ExperimentTimeoutMS)
	}
	if spec.MaxRetries != nil && *spec.MaxRetries < 0 {
		return bad("max_retries must be >= 0 (got %d); omit it to disable supervision", *spec.MaxRetries)
	}
	if spec.Federated && len(spec.Ranges) > 0 {
		return bad("federated and ranges are mutually exclusive; the coordinator assigns each member's ranges")
	}
	if spec.Federated && spec.EarlyStop != nil {
		return bad("federated campaigns cannot early-stop: a member-local stop would break the global sample")
	}
	if spec.EarlyStop != nil && len(spec.Ranges) > 0 {
		return bad("ranges and early_stop are mutually exclusive; a window-local stop would break the federated merge")
	}
	for i, r := range spec.Ranges {
		if r.From < 0 || r.From > r.To {
			return bad("ranges[%d] = [%d, %d) is not a valid draw window", i, r.From, r.To)
		}
	}
	if (spec.FederatedJob != "" || spec.FederatedPart != nil || spec.FederatedMember != "") && len(spec.Ranges) == 0 {
		return bad("federated_job/federated_part/federated_member only label a ranged part job; set ranges or omit them")
	}
	if spec.FederatedPart != nil && *spec.FederatedPart < 0 {
		return bad("federated_part must be >= 0 (got %d)", *spec.FederatedPart)
	}
	return nil
}

// EvaluatorBuilder constructs the evaluator a job runs against. The
// default builder mirrors sfirun's substrate selection; tests swap in
// instrumented evaluators through Config.BuildEvaluator.
type EvaluatorBuilder func(spec CampaignSpec, net *nn.Network) (core.Evaluator, error)

// DefaultEvaluator builds the substrate exactly as sfirun does: the
// full-scale oracle, or real forward-pass injection for smallcnn.
func DefaultEvaluator(spec CampaignSpec, net *nn.Network) (core.Evaluator, error) {
	switch spec.Substrate {
	case "oracle":
		return oracle.New(net, oracle.DefaultConfig(spec.OracleSeed)), nil
	case "inference":
		ds := dataset.Synthetic(dataset.Config{N: spec.Images, Seed: 1, Size: 16})
		inj := inject.New(net, ds)
		inj.SetBatchSize(spec.Batch) // worker clones inherit the size
		return inj, nil
	}
	return nil, fmt.Errorf("service: unknown substrate %q", spec.Substrate)
}

// buildCampaign materializes a spec into the (evaluator, plan) pair the
// engine runs. Plan construction matches sfirun line for line, which is
// what makes the bit-identity guarantee hold.
func buildCampaign(spec CampaignSpec, build EvaluatorBuilder) (core.Evaluator, *core.Plan, error) {
	net, err := models.Build(spec.Model, spec.ModelSeed)
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	ev, err := build(spec, net)
	if err != nil {
		return nil, nil, err
	}
	space := ev.Space()
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = spec.Margin
	cfg.Confidence = spec.Confidence
	var plan *core.Plan
	switch spec.Approach {
	case "network-wise":
		plan = core.PlanNetworkWise(space, cfg)
	case "layer-wise":
		plan = core.PlanLayerWise(space, cfg)
	case "data-unaware":
		plan = core.PlanDataUnaware(space, cfg)
	case "data-aware":
		plan = core.PlanDataAware(space, cfg, dataaware.AnalyzeFP32(net.AllWeights()).P)
	default:
		return nil, nil, fmt.Errorf("service: unknown approach %q", spec.Approach)
	}
	return ev, plan, nil
}

// plannedOf is the injection total a spec's run will cover: the full
// plan, or the sum of its draw windows for a ranged (member) job.
func plannedOf(spec CampaignSpec, plan *core.Plan) int64 {
	if len(spec.Ranges) == 0 {
		return plan.TotalInjections()
	}
	var n int64
	for _, r := range spec.Ranges {
		n += r.Len()
	}
	return n
}

// engineOptions assembles the per-job engine configuration from the
// spec and the service-level knobs. Only observational options differ
// from a plain sfirun invocation; everything that affects the Result
// (workers, plan, seed) comes from the spec alone. tr, when non-nil, is
// the job's on-disk tracer; its sinks are composed in front of the SSE
// sinks and label events with the spec name (the trace identity sfirun
// would use), while SSE frames stay labeled by job ID.
func (s *Service) engineOptions(j *job, tr *telemetry.Tracer) []core.Option {
	spec := j.spec
	progress := s.progressSink(j)
	trace := s.traceSink(j)
	if tr != nil {
		tp, ts := tr.Progress(spec.Name), tr.Sink(spec.Name)
		sseProgress, sseTrace := progress, trace
		progress = func(p core.Progress) { tp(p); sseProgress(p) }
		trace = func(ev core.TraceEvent) { ts(ev); sseTrace(ev) }
	}
	opts := []core.Option{
		core.WithWorkers(spec.Workers),
		core.WithCheckpoint(s.checkpointPath(j.id)),
		core.WithResume(), // resume-or-start is idempotent: a missing file starts fresh
		core.WithWarnings(func(msg string) { s.warnf("job %s: %s", j.id, msg) }),
		core.WithProgress(progress),
		core.WithTrace(trace),
	}
	if s.cfg.CheckpointEvery > 0 {
		opts = append(opts, core.WithCheckpointInterval(s.cfg.CheckpointEvery))
	}
	if s.cfg.ProgressEvery > 0 {
		opts = append(opts, core.WithProgressInterval(s.cfg.ProgressEvery))
	}
	if spec.EarlyStop != nil {
		opts = append(opts, core.WithEarlyStop(*spec.EarlyStop))
	}
	if spec.ExperimentTimeoutMS > 0 {
		opts = append(opts, core.WithExperimentTimeout(time.Duration(spec.ExperimentTimeoutMS)*time.Millisecond))
	}
	if spec.MaxRetries != nil {
		opts = append(opts, core.WithMaxRetries(*spec.MaxRetries))
	}
	if len(spec.Ranges) > 0 {
		opts = append(opts, core.WithDrawRanges(spec.Ranges))
	}
	if spec.Batch > 1 {
		// Mirror sfirun: batched inference jobs also group each shard's
		// schedule by fault identity (Result stays bit-identical; the
		// supervised path ignores the flag).
		opts = append(opts, core.WithGroupedEvaluation(true))
	}
	return opts
}
