package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataaware"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/models"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/service"
	"cnnsfi/internal/stats"
	"cnnsfi/internal/telemetry"
)

// fullSpec returns a completely explicit smallcnn spec so the service
// path and the direct-engine path agree without relying on defaults.
func fullSpec(approach string, margin float64) service.CampaignSpec {
	return service.CampaignSpec{
		Model:      "smallcnn",
		Substrate:  "oracle",
		Approach:   approach,
		Margin:     margin,
		Confidence: 0.99,
		ModelSeed:  1,
		OracleSeed: 3,
		RunSeed:    0,
		Images:     8,
		Workers:    1,
	}
}

// directResult runs the spec's campaign straight through core.Engine —
// the sfirun path — and returns the Result document bytes.
func directResult(t *testing.T, spec service.CampaignSpec) []byte {
	t.Helper()
	net, err := models.Build(spec.Model, spec.ModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	ev := oracle.New(net, oracle.DefaultConfig(spec.OracleSeed))
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = spec.Margin
	cfg.Confidence = spec.Confidence
	var plan *core.Plan
	switch spec.Approach {
	case "network-wise":
		plan = core.PlanNetworkWise(ev.Space(), cfg)
	case "data-aware":
		plan = core.PlanDataAware(ev.Space(), cfg, dataaware.AnalyzeFP32(net.AllWeights()).P)
	default:
		t.Fatalf("directResult: unhandled approach %q", spec.Approach)
	}
	res, err := core.NewEngine(core.WithWorkers(spec.Workers)).Execute(context.Background(), ev, plan, spec.RunSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func isTerminal(st service.JobState) bool {
	return st == service.StateCompleted || st == service.StateFailed || st == service.StateCanceled
}

// waitState polls until the job reaches want, failing fast if it lands
// in a different terminal state.
func waitState(t *testing.T, svc *service.Service, id string, want service.JobState) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if isTerminal(st.State) {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s in time", id, want)
	return service.JobStatus{}
}

func mustShutdown(t *testing.T, svc *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServiceBitIdentity is the tentpole anchor: a campaign submitted
// over the sfid HTTP API must yield Result bytes identical to the same
// (plan, seed, workers) run directly through the engine (the sfirun
// path).
func TestServiceBitIdentity(t *testing.T) {
	svc, err := service.New(service.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	spec := fullSpec("data-aware", 0.05)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	waitState(t, svc, st.ID, service.StateCompleted)

	resp, err = http.Get(srv.URL + "/api/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200 (body %s)", resp.StatusCode, got)
	}
	want := directResult(t, spec)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("service Result differs from direct engine Result\n--- service ---\n%s--- direct ---\n%s", got, want)
	}
}

// gatedEvaluator wraps the oracle, blocking every evaluation until the
// shared gate closes — so tests can hold a job "running" while they
// arrange the queue — and counting evaluated draws.
type gatedEvaluator struct {
	inner core.Evaluator
	gate  <-chan struct{}
	count *atomic.Int64
}

func (g *gatedEvaluator) IsCritical(f faultmodel.Fault) bool {
	if g.gate != nil {
		<-g.gate
	}
	if g.count != nil {
		g.count.Add(1)
	}
	return g.inner.IsCritical(f)
}

func (g *gatedEvaluator) Space() faultmodel.Space { return g.inner.Space() }

// gatedBuilder records job start order and gates evaluations.
func gatedBuilder(starts chan<- string, gate <-chan struct{}, count *atomic.Int64) service.EvaluatorBuilder {
	return func(spec service.CampaignSpec, net *nn.Network) (core.Evaluator, error) {
		if starts != nil {
			starts <- spec.Name
		}
		return &gatedEvaluator{inner: oracle.New(net, oracle.DefaultConfig(spec.OracleSeed)), gate: gate, count: count}, nil
	}
}

func namedSpec(name string, priority int) service.CampaignSpec {
	spec := fullSpec("network-wise", 0.2)
	spec.Name = name
	spec.Priority = priority
	return spec
}

// TestSchedulerFairnessAndPriority pins the admission order: strict
// FIFO within a priority class, higher priorities first, one running
// job at a time with a single worker token.
func TestSchedulerFairnessAndPriority(t *testing.T) {
	starts := make(chan string, 8)
	gate := make(chan struct{})
	svc, err := service.New(service.Config{
		Dir:            t.TempDir(),
		TotalWorkers:   1,
		BuildEvaluator: gatedBuilder(starts, gate, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)

	for _, spec := range []service.CampaignSpec{
		namedSpec("first", 0), // starts immediately, blocks on the gate
		namedSpec("low-a", 0), // queued
		namedSpec("low-b", 0), // queued behind low-a
		namedSpec("high", 5),  // jumps both low-priority jobs
	} {
		if _, err := svc.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	close(gate) // release: jobs now run one at a time, in admission order
	var order []string
	for len(order) < 4 {
		select {
		case name := <-starts:
			order = append(order, name)
		case <-time.After(30 * time.Second):
			t.Fatalf("only %v started", order)
		}
	}
	want := []string{"first", "high", "low-a", "low-b"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("start order = %v, want %v", order, want)
	}
}

// TestBackpressure pins the 429/503 semantics: a full pending queue
// rejects submissions with 429; a draining service answers 503 on both
// submit and healthz.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	svc, err := service.New(service.Config{
		Dir:            t.TempDir(),
		TotalWorkers:   1,
		MaxQueue:       1,
		BuildEvaluator: gatedBuilder(nil, gate, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	submit := func(name string) (*http.Response, service.JobStatus) {
		body, _ := json.Marshal(namedSpec(name, 0))
		resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return resp, st
	}
	if resp, _ := submit("running"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	if resp, st := submit("queued"); resp.StatusCode != http.StatusAccepted || st.QueuePosition != 1 {
		t.Fatalf("second submit = %d (queue %d), want 202 at position 1", resp.StatusCode, st.QueuePosition)
	}
	if resp, _ := submit("rejected"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit = %d, want 429", resp.StatusCode)
	}

	close(gate)
	mustShutdown(t, svc)
	if resp, _ := submit("draining"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestCancel covers both cancellation paths (pending and running) and
// the 404/409 error semantics around them.
func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	svc, err := service.New(service.Config{
		Dir:          t.TempDir(),
		TotalWorkers: 1,
		// Small shard size so the canceled engine notices promptly after
		// the gate opens instead of finishing the whole stratum first.
		CheckpointEvery: 16,
		ProgressEvery:   16,
		BuildEvaluator:  gatedBuilder(nil, gate, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	running, err := svc.Submit(namedSpec("running", 0))
	if err != nil {
		t.Fatal(err)
	}
	pending, err := svc.Submit(namedSpec("pending", 0))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, running.ID, service.StateRunning)

	del := func(id string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/campaigns/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}
	if resp, body := del(pending.ID); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"canceled"`) {
		t.Fatalf("cancel pending = %d %s", resp.StatusCode, body)
	}
	if resp, _ := del(running.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running = %d, want 200", resp.StatusCode)
	}
	close(gate) // let the canceled engine reach its shard boundary
	st := waitState(t, svc, running.ID, service.StateCanceled)
	if st.Error == "" {
		t.Error("canceled job should carry an error note")
	}
	// Terminal jobs: cancel conflicts, result conflicts, unknown 404s.
	if resp, _ := del(running.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel = %d, want 409", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/api/v1/campaigns/" + running.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job = %d, want 409", resp.StatusCode)
	}
	if resp, _ := del("nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", resp.StatusCode)
	}
}

// slowBuilder wraps the oracle with a fixed per-evaluation delay and a
// shared evaluation counter — slow enough to interrupt mid-campaign,
// fast enough to finish promptly once resumed.
func slowBuilder(delay time.Duration, count *atomic.Int64) service.EvaluatorBuilder {
	return func(spec service.CampaignSpec, net *nn.Network) (core.Evaluator, error) {
		return &slowEvaluator{inner: oracle.New(net, oracle.DefaultConfig(spec.OracleSeed)), delay: delay, count: count}, nil
	}
}

type slowEvaluator struct {
	inner core.Evaluator
	delay time.Duration
	count *atomic.Int64
}

func (s *slowEvaluator) IsCritical(f faultmodel.Fault) bool {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.count.Add(1)
	return s.inner.IsCritical(f)
}

func (s *slowEvaluator) Space() faultmodel.Space { return s.inner.Space() }

// TestShutdownResumesMultiJobWithZeroReEvaluation is the graceful-
// shutdown acceptance test: a drain with N campaigns in flight
// checkpoints all of them, and a second service over the same state
// directory resumes each one re-evaluating exactly planned−restored
// draws — zero draws twice — while still producing Results bit-
// identical to an uninterrupted direct engine run.
func TestShutdownResumesMultiJobWithZeroReEvaluation(t *testing.T) {
	dir := t.TempDir()
	const jobs = 3
	var firstEvals atomic.Int64
	svc, err := service.New(service.Config{
		Dir:             dir,
		TotalWorkers:    jobs,
		CheckpointEvery: 64,
		ProgressEvery:   64,
		BuildEvaluator:  slowBuilder(100*time.Microsecond, &firstEvals),
	})
	if err != nil {
		t.Fatal(err)
	}

	spec := fullSpec("network-wise", 0.02) // ~4k draws: long enough to interrupt
	ids := make([]string, jobs)
	for i := range ids {
		s := spec
		s.Name = fmt.Sprintf("job-%d", i)
		st, err := svc.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	// Let every campaign clear at least one checkpoint interval, then
	// drain mid-flight.
	for _, id := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, err := svc.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Done >= 64 {
				break
			}
			if isTerminal(st.State) || time.Now().After(deadline) {
				t.Fatalf("job %s state %s done %d before drain", id, st.State, st.Done)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	mustShutdown(t, svc)

	// Every interrupted job must be checkpointed and re-queued on disk.
	restored := make(map[string]int64, jobs)
	for _, id := range ids {
		info, err := core.ReadCheckpointInfo(dir + "/" + id + ".ckpt")
		if err != nil {
			t.Fatalf("job %s: no checkpoint after drain: %v", id, err)
		}
		if info.Injections == 0 {
			t.Fatalf("job %s: empty checkpoint", id)
		}
		restored[id] = info.Injections
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StatePending {
			t.Fatalf("job %s state after drain = %s, want pending", id, st.State)
		}
	}

	// Second daemon generation: no artificial delay, fresh counter.
	var secondEvals atomic.Int64
	svc2, err := service.New(service.Config{
		Dir:             dir,
		TotalWorkers:    jobs,
		CheckpointEvery: 64,
		ProgressEvery:   64,
		BuildEvaluator:  slowBuilder(0, &secondEvals),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc2)

	var wantSecond int64
	for _, id := range ids {
		st := waitState(t, svc2, id, service.StateCompleted)
		if st.Restored != restored[id] {
			t.Errorf("job %s restored %d draws, checkpoint held %d", id, st.Restored, restored[id])
		}
		wantSecond += st.Planned - restored[id]
	}
	if got := secondEvals.Load(); got != wantSecond {
		t.Errorf("second generation evaluated %d draws, want %d (zero re-evaluation of the %d checkpointed)",
			got, wantSecond, firstEvals.Load())
	}

	// And the interrupted-resumed Results still match the sfirun path.
	want := directResult(t, spec)
	for _, id := range ids {
		got, err := svc2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %s: resumed Result differs from uninterrupted direct run", id)
		}
	}
}

// TestRecoverTerminalJobs pins restart behavior for settled jobs: a new
// service over an old state dir serves their statuses and results
// without re-running anything.
func TestRecoverTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.New(service.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	spec := fullSpec("network-wise", 0.2)
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc, st.ID, service.StateCompleted)
	want, err := svc.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	mustShutdown(t, svc)

	var evals atomic.Int64
	svc2, err := service.New(service.Config{Dir: dir, BuildEvaluator: slowBuilder(0, &evals)})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc2)
	st2, err := svc2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateCompleted || st2.Done != final.Done {
		t.Errorf("recovered job = %s done %d, want completed done %d", st2.State, st2.Done, final.Done)
	}
	got, err := svc2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("recovered result differs")
	}
	if evals.Load() != 0 {
		t.Errorf("recovery re-evaluated %d draws of a completed job", evals.Load())
	}
	// A fresh submission continues the ID sequence instead of colliding.
	st3, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st.ID {
		t.Errorf("recovered service reused job ID %s", st3.ID)
	}
}

// TestEventStream exercises the SSE endpoint end to end: the snapshot
// frame, progress events mid-run, and the terminal job_state frame.
func TestEventStream(t *testing.T) {
	var evals atomic.Int64
	svc, err := service.New(service.Config{
		Dir:           t.TempDir(),
		ProgressEvery: 16,
		// Slow the campaign down so the subscription reliably lands while
		// it is still emitting progress.
		BuildEvaluator: slowBuilder(200*time.Microsecond, &evals),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	st, err := svc.Submit(fullSpec("network-wise", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var sawSnapshot, sawProgress, sawTerminal bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		payload, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var kind struct {
			Kind  string           `json:"kind"`
			State service.JobState `json:"state"`
		}
		if err := json.Unmarshal([]byte(payload), &kind); err != nil {
			t.Fatalf("bad event %q: %v", payload, err)
		}
		switch kind.Kind {
		case service.KindJobState:
			if !sawSnapshot {
				sawSnapshot = true
				break
			}
			if kind.State == service.StateCompleted {
				sawTerminal = true
			}
		case telemetry.KindProgress:
			if _, err := telemetry.ParseEvent([]byte(payload)); err != nil {
				t.Fatalf("progress event does not parse: %v", err)
			}
			sawProgress = true
		}
		if sawTerminal {
			break
		}
	}
	if !sawSnapshot || !sawProgress || !sawTerminal {
		t.Errorf("stream saw snapshot=%v progress=%v terminal=%v, want all", sawSnapshot, sawProgress, sawTerminal)
	}
	// Subscribing to the finished job still ends cleanly with its state.
	resp2, err := http.Get(srv.URL + "/api/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(buf.String(), `"completed"`) {
		t.Errorf("late subscription got %q, want a completed job_state frame", buf.String())
	}
}

// TestSubmitValidation pins the 400 class: malformed JSON, unknown
// fields, and semantically invalid specs.
func TestSubmitValidation(t *testing.T) {
	svc, err := service.New(service.Config{Dir: t.TempDir(), TotalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"model": `},
		{"unknown_field", `{"model":"smallcnn","approach":"data-aware","bogus":1}`},
		{"bad_model", `{"model":"nosuch","approach":"data-aware"}`},
		{"bad_approach", `{"model":"smallcnn","approach":"nosuch"}`},
		{"bad_margin", `{"model":"smallcnn","approach":"data-aware","margin":2}`},
		{"inference_resnet", `{"model":"resnet20","approach":"data-aware","substrate":"inference"}`},
		{"too_wide", `{"model":"smallcnn","approach":"data-aware","workers":99}`},
		{"negative_batch", `{"model":"smallcnn","approach":"data-aware","substrate":"inference","batch":-1}`},
		{"batch_on_oracle", `{"model":"smallcnn","approach":"data-aware","batch":8}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, buf.String())
			}
			if !strings.Contains(buf.String(), `"error"`) {
				t.Errorf("error body missing envelope: %s", buf.String())
			}
		})
	}
	if resp, err := http.Get(srv.URL + "/api/v1/campaigns/nosuch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
		}
	}
}

// TestMetricsCarryCampaignLabels asserts the /metrics endpoint exposes
// per-campaign labeled series alongside the service-level gauges.
func TestMetricsCarryCampaignLabels(t *testing.T) {
	svc, err := service.New(service.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	srv := httptest.NewServer(service.NewMux(svc))
	defer srv.Close()

	st, err := svc.Submit(fullSpec("network-wise", 0.2))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc, st.ID, service.StateCompleted)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`sfid_campaign_done_injections{campaign=%q} %d`, st.ID, final.Done),
		fmt.Sprintf(`sfid_campaign_critical{campaign=%q}`, st.ID),
		`sfid_jobs{state="completed"} 1`,
		`sfid_submitted_total 1`,
		`sfid_workers_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}
