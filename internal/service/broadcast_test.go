package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBroadcastSlowSubscriber pins the drop-not-block contract: a
// subscriber that never reads costs the campaign nothing. The publisher
// must complete unblocked, interior frames beyond the buffer are
// dropped and counted, and the terminal frame still lands — it is the
// last thing the subscriber reads.
func TestBroadcastSlowSubscriber(t *testing.T) {
	b := newBroadcaster()
	ch, cancel := b.subscribeSince(0)
	defer cancel()

	const extra = 100
	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 0; i < subBuffer+extra; i++ {
			b.publishJSON(map[string]int{"i": i})
		}
		b.close(map[string]string{"kind": "job_state", "state": "completed"})
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}

	if got := b.drops(); got < extra {
		t.Errorf("drops() = %d, want >= %d (interior frames beyond the buffer must be counted)", got, extra)
	}

	var last frame
	n := 0
	for f := range ch {
		last = f
		n++
	}
	if n == 0 {
		t.Fatal("subscriber channel closed without delivering any frame")
	}
	if n > subBuffer+1 {
		// +1: the channel reserves one slot for a replay's resync marker.
		t.Errorf("subscriber received %d frames, more than its %d-slot buffer", n, subBuffer+1)
	}
	if !strings.Contains(string(last.line), "completed") {
		t.Errorf("last delivered frame = %s, want the terminal job_state frame", last.line)
	}
}

// TestBroadcastReplay covers the Last-Event-ID path: a subscriber that
// detaches and resumes with its last seen sequence number receives
// exactly the frames published while it was away, in order.
func TestBroadcastReplay(t *testing.T) {
	b := newBroadcaster()
	ch, cancel := b.subscribeSince(0)
	for i := 0; i < 5; i++ {
		b.publishJSON(map[string]int{"i": i})
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		f := <-ch
		if f.seq != lastSeq+1 {
			t.Fatalf("frame %d has seq %d, want %d (contiguous)", i, f.seq, lastSeq+1)
		}
		lastSeq = f.seq
	}
	cancel() // connection drops

	for i := 5; i < 8; i++ {
		b.publishJSON(map[string]int{"i": i})
	}

	ch2, cancel2 := b.subscribeSince(lastSeq)
	defer cancel2()
	for want := lastSeq + 1; want <= lastSeq+3; want++ {
		select {
		case f := <-ch2:
			if f.seq != want {
				t.Fatalf("replayed frame has seq %d, want %d", f.seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("replay did not deliver the missed frames")
		}
	}

	b.close(map[string]string{"state": "completed"})
	select {
	case f, open := <-ch2:
		if !open {
			t.Fatal("channel closed before the terminal frame")
		}
		if !strings.Contains(string(f.line), "completed") {
			t.Errorf("post-replay frame = %s, want the terminal frame", f.line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("terminal frame never arrived after replay")
	}
}

// TestBroadcastLateSubscriber pins closed-broadcaster behavior: a fresh
// subscriber still gets the final frame; a resuming subscriber gets the
// retained tail. Both channels arrive already closed.
func TestBroadcastLateSubscriber(t *testing.T) {
	b := newBroadcaster()
	for i := 0; i < 3; i++ {
		b.publishJSON(map[string]int{"i": i})
	}
	b.close(map[string]string{"state": "completed"})

	ch, cancel := b.subscribeSince(0)
	defer cancel()
	f, open := <-ch
	if !open || !strings.Contains(string(f.line), "completed") {
		t.Errorf("fresh late subscriber got (%s, open=%v), want the final frame", f.line, open)
	}
	if _, open := <-ch; open {
		t.Error("late subscriber channel should be closed after the final frame")
	}

	ch2, cancel2 := b.subscribeSince(1) // missed frames 2, 3, and the final 4
	defer cancel2()
	var seqs []uint64
	for f := range ch2 {
		seqs = append(seqs, f.seq)
	}
	if len(seqs) != 3 || seqs[0] != 2 || seqs[2] != 4 {
		t.Errorf("resuming late subscriber replayed seqs %v, want [2 3 4]", seqs)
	}
}

// TestBroadcastConcurrency hammers publish, subscribe, detach, and
// close from many goroutines under the race detector. The assertion is
// structural: no deadlock (timeout-guarded) and every surviving
// subscriber's channel ends closed with the terminal frame last.
func TestBroadcastConcurrency(t *testing.T) {
	b := newBroadcaster()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.publishJSON(map[string]int{"p": p, "i": i})
			}
		}(p)
	}

	results := make(chan []byte, 16)
	for sub := 0; sub < 8; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			ch, cancel := b.subscribeSince(0)
			if sub%2 == 0 {
				defer cancel()
			}
			var last []byte
			for f := range ch {
				last = f.line
				if sub%4 == 1 && len(last) > 0 && f.seq%97 == 0 {
					cancel() // detach mid-stream; channel closes
				}
			}
			results <- last
		}(sub)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	b.close(map[string]string{"kind": "job_state", "state": "completed"})

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("broadcaster deadlocked under concurrent publish/subscribe/close")
	}
	close(results)
	for last := range results {
		// Subscribers that detached themselves may end anywhere; the
		// ones that stayed attached must end on the terminal frame.
		if last != nil && !strings.Contains(string(last), "\"p\"") && !strings.Contains(string(last), "completed") {
			t.Errorf("unexpected last frame: %s", last)
		}
	}
}

// TestBroadcastEvictionGapResync pins the replay-gap contract: when a
// reconnecting subscriber's Last-Event-ID predates the replay ring
// (the frames between its cursor and the ring's tail were evicted),
// the replay opens with an explicit resync marker naming the evicted
// frame count — never a silent gap. The marker carries seq 0 so the
// client's Last-Event-ID cursor is not advanced past frames it never
// saw.
func TestBroadcastEvictionGapResync(t *testing.T) {
	b := newBroadcaster()
	const published = ringSize + 10
	for i := 0; i < published; i++ {
		b.publishJSON(map[string]int{"i": i})
	}
	// The ring now retains seqs published-ringSize+1 .. published; a
	// cursor at 1 predates it by (published-ringSize+1) - 1 - 1 frames.
	ch, cancel := b.subscribeSince(1)
	defer cancel()

	oldest := uint64(published - ringSize + 1)
	wantMissed := oldest - 1 - 1
	select {
	case f := <-ch:
		if f.seq != 0 {
			t.Fatalf("first replayed frame has seq %d, want the seq-0 resync marker", f.seq)
		}
		line := string(f.line)
		if !strings.Contains(line, `"kind":"resync"`) {
			t.Fatalf("first replayed frame = %s, want a resync event", line)
		}
		if want := `"missed_frames":` + fmt.Sprint(wantMissed); !strings.Contains(line, want) {
			t.Errorf("resync frame = %s, want %s", line, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no frame replayed for an eviction-gap resume")
	}
	// The retained frames follow, contiguous from the ring's tail.
	for want := oldest; want < oldest+3; want++ {
		select {
		case f := <-ch:
			if f.seq != want {
				t.Fatalf("replayed frame has seq %d, want %d", f.seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ring replay did not follow the resync marker")
		}
	}
}

// TestBroadcastContiguousReplayHasNoResync is the negative: a resume
// whose cursor is still inside (or adjacent to) the ring must not see
// a marker — the replay alone restores continuity.
func TestBroadcastContiguousReplayHasNoResync(t *testing.T) {
	b := newBroadcaster()
	for i := 0; i < 5; i++ {
		b.publishJSON(map[string]int{"i": i})
	}
	ch, cancel := b.subscribeSince(2)
	defer cancel()
	select {
	case f := <-ch:
		if f.seq != 3 || strings.Contains(string(f.line), "resync") {
			t.Fatalf("first replayed frame = (seq %d, %s), want plain frame 3", f.seq, f.line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("contiguous replay delivered nothing")
	}
}

// TestBroadcastEvictionGapResyncAfterClose covers the same gap on an
// already-closed broadcaster — the terminal-state replay a late
// resumer gets must also disclose the eviction before the retained
// tail and the final frame.
func TestBroadcastEvictionGapResyncAfterClose(t *testing.T) {
	b := newBroadcaster()
	const published = ringSize + 10
	for i := 0; i < published; i++ {
		b.publishJSON(map[string]int{"i": i})
	}
	b.close(map[string]string{"state": "completed"})

	ch, cancel := b.subscribeSince(1)
	defer cancel()
	var frames []frame
	for f := range ch {
		frames = append(frames, f)
	}
	if len(frames) != ringSize+1 {
		t.Fatalf("late resumer got %d frames, want %d (marker + ring)", len(frames), ringSize+1)
	}
	if frames[0].seq != 0 || !strings.Contains(string(frames[0].line), `"kind":"resync"`) {
		t.Errorf("first frame = (seq %d, %s), want the resync marker", frames[0].seq, frames[0].line)
	}
	if last := frames[len(frames)-1]; !strings.Contains(string(last.line), "completed") {
		t.Errorf("last frame = %s, want the terminal frame", last.line)
	}
}
