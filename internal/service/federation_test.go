package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/service"
)

// fedNode is one in-process daemon (Service plus HTTP front) playing a
// member or coordinator role in a federation test.
type fedNode struct {
	dir string
	svc *service.Service
	srv *httptest.Server
}

func startNode(t *testing.T, cfg service.Config) *fedNode {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fedNode{dir: cfg.Dir, svc: svc, srv: httptest.NewServer(service.NewMux(svc))}
}

func (n *fedNode) stop(t *testing.T) {
	t.Helper()
	n.srv.Close()
	mustShutdown(t, n.svc)
}

// memberConfig is a member daemon's configuration: small progress
// cadence so tests can observe mid-campaign state promptly.
func memberConfig(workers int, build service.EvaluatorBuilder) service.Config {
	return service.Config{
		TotalWorkers:    workers,
		CheckpointEvery: 64,
		ProgressEvery:   16,
		BuildEvaluator:  build,
	}
}

// coordConfig is a coordinator's configuration with a fast poll cycle.
// Straggler speculation is disabled: at a 10ms poll an interrupted
// member looks like a straggler within ~100ms, which would race the
// death/reassignment paths these tests pin (chaos_test.go exercises
// speculation explicitly).
func coordConfig(dir string, memberTimeout time.Duration) service.Config {
	return service.Config{
		Dir:            dir,
		Coordinator:    true,
		MemberTimeout:  memberTimeout,
		FederationPoll: 10 * time.Millisecond,
		StragglerRatio: -1,
	}
}

// TestMemberRegistry pins the coordinator-side membership semantics:
// stable IDs, idempotent registration keyed on URL, heartbeat recovery
// signals, sorted listing, and liveness decay past the member timeout.
func TestMemberRegistry(t *testing.T) {
	coord, err := service.New(coordConfig(t.TempDir(), 150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)

	a, err := coord.RegisterMember("http://a.example:1", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := coord.RegisterMember("http://b.example:1", "")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID == "" {
		t.Fatalf("member IDs not distinct: %q vs %q", a.ID, b.ID)
	}
	if !a.Alive || !b.Alive {
		t.Errorf("fresh registrations should be alive: %+v %+v", a, b)
	}
	// Idempotent on URL: identity survives, the name refreshes.
	a2, err := coord.RegisterMember("http://a.example:1", "renamed")
	if err != nil {
		t.Fatal(err)
	}
	if a2.ID != a.ID || a2.Name != "renamed" {
		t.Errorf("re-registration = %+v, want id %s name renamed", a2, a.ID)
	}
	if _, err := coord.MemberHeartbeat(a.ID); err != nil {
		t.Errorf("heartbeat of known member: %v", err)
	}
	if _, err := coord.MemberHeartbeat("m9999"); !errors.Is(err, service.ErrUnknownMember) {
		t.Errorf("heartbeat of unknown member = %v, want ErrUnknownMember", err)
	}
	if _, err := coord.RegisterMember("", "noname"); !errors.Is(err, service.ErrInvalidSpec) {
		t.Errorf("registration without url = %v, want ErrInvalidSpec", err)
	}
	ms, err := coord.Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID >= ms[1].ID {
		t.Errorf("Members() = %+v, want 2 entries sorted by ID", ms)
	}
	// Without heartbeats liveness decays, and dead members stay listed.
	time.Sleep(250 * time.Millisecond)
	ms, err = coord.Members()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Alive {
			t.Errorf("member %s still alive past the member timeout", m.ID)
		}
	}
}

// TestFederationEndpointsRequireCoordinator pins the 409 class: a plain
// daemon serves the member routes but refuses to play the role, and a
// federated submit without a coordinator is a 400.
func TestFederationEndpointsRequireCoordinator(t *testing.T) {
	plain := startNode(t, service.Config{})
	defer plain.stop(t)

	do := func(method, path, body string) int {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, plain.srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do(http.MethodPost, "/api/v1/members", `{"url":"http://x"}`); code != http.StatusConflict {
		t.Errorf("register on non-coordinator = %d, want 409", code)
	}
	if code := do(http.MethodGet, "/api/v1/members", ""); code != http.StatusConflict {
		t.Errorf("list on non-coordinator = %d, want 409", code)
	}
	if code := do(http.MethodPost, "/api/v1/members/m0001/heartbeat", ""); code != http.StatusConflict {
		t.Errorf("heartbeat on non-coordinator = %d, want 409", code)
	}
	if code := do(http.MethodPost, "/api/v1/campaigns",
		`{"model":"smallcnn","approach":"network-wise","federated":true}`); code != http.StatusBadRequest {
		t.Errorf("federated submit on non-coordinator = %d, want 400", code)
	}
}

// TestMemberEndpointsHTTP covers the coordinator-side member routes over
// HTTP: registration bodies, the member listing envelope, and the 404
// heartbeat signal.
func TestMemberEndpointsHTTP(t *testing.T) {
	coord := startNode(t, coordConfig("", time.Hour))
	defer coord.stop(t)

	resp, err := http.Post(coord.srv.URL+"/api/v1/members", "application/json",
		strings.NewReader(`{"url":"http://m.example:1","name":"one"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.MemberStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.ID == "" || !st.Alive {
		t.Fatalf("register = %d %+v, want 200 with a live member", resp.StatusCode, st)
	}
	for name, body := range map[string]string{
		"missing_url":   `{"name":"x"}`,
		"unknown_field": `{"url":"http://y","bogus":1}`,
	} {
		resp, err := http.Post(coord.srv.URL+"/api/v1/members", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s registration = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err = http.Get(coord.srv.URL + "/api/v1/members")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Members []service.MemberStatus `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Members) != 1 || list.Members[0].ID != st.ID {
		t.Errorf("member list = %+v, want exactly %s", list.Members, st.ID)
	}
	beat := func(id string) int {
		resp, err := http.Post(coord.srv.URL+"/api/v1/members/"+id+"/heartbeat", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := beat(st.ID); code != http.StatusOK {
		t.Errorf("heartbeat = %d, want 200", code)
	}
	if code := beat("m9999"); code != http.StatusNotFound {
		t.Errorf("unknown heartbeat = %d, want 404 (the re-register signal)", code)
	}
}

// TestFederatedSpecValidation pins the mutual exclusions around
// federated and ranged specs.
func TestFederatedSpecValidation(t *testing.T) {
	coord, err := service.New(coordConfig(t.TempDir(), time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)

	stop := 0.0
	cases := map[string]func(*service.CampaignSpec){
		"federated_with_ranges": func(s *service.CampaignSpec) {
			s.Federated = true
			s.Ranges = []core.DrawRange{{From: 0, To: 1}}
		},
		"federated_with_early_stop": func(s *service.CampaignSpec) {
			s.Federated = true
			s.EarlyStop = &stop
		},
		"ranges_with_early_stop": func(s *service.CampaignSpec) {
			s.Ranges = []core.DrawRange{{From: 0, To: 1}}
			s.EarlyStop = &stop
		},
		"inverted_range": func(s *service.CampaignSpec) {
			s.Ranges = []core.DrawRange{{From: 5, To: 1}}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			spec := fullSpec("network-wise", 0.2)
			mutate(&spec)
			if _, err := coord.Submit(spec); !errors.Is(err, service.ErrInvalidSpec) {
				t.Errorf("Submit = %v, want ErrInvalidSpec", err)
			}
		})
	}
}

// TestFederatedBitIdentity is the federation tentpole anchor: the
// merged Result of a federated campaign must be byte-identical to the
// direct single-node engine run of the same (plan, seed) — at every
// fleet size and member worker count, with the durable merge state
// cleaned up afterwards.
func TestFederatedBitIdentity(t *testing.T) {
	spec := fullSpec("data-aware", 0.05)
	want := directResult(t, spec)
	for _, members := range []int{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("members_%d_workers_%d", members, workers), func(t *testing.T) {
				dir := t.TempDir()
				coord, err := service.New(coordConfig(dir, time.Hour))
				if err != nil {
					t.Fatal(err)
				}
				defer mustShutdown(t, coord)
				for i := 0; i < members; i++ {
					m := startNode(t, memberConfig(4, nil))
					defer m.stop(t)
					if _, err := coord.RegisterMember(m.srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
						t.Fatal(err)
					}
				}
				s := spec
				s.Workers = workers
				s.Federated = true
				st, err := coord.Submit(s)
				if err != nil {
					t.Fatal(err)
				}
				final := waitState(t, coord, st.ID, service.StateCompleted)
				if final.Done != final.Planned || final.Planned == 0 {
					t.Errorf("done %d of planned %d, want a complete nonzero tally", final.Done, final.Planned)
				}
				got, err := coord.Result(st.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("federated Result differs from the direct single-node run\n--- federated ---\n%s--- direct ---\n%s", got, want)
				}
				if _, err := os.Stat(filepath.Join(dir, st.ID+".fed.json")); !os.IsNotExist(err) {
					t.Errorf("merge state %s.fed.json survived completion", st.ID)
				}
			})
		}
	}
}

// waitAliveMembers blocks until the coordinator sees n live members.
func waitAliveMembers(t *testing.T, coord *service.Service, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		ms, err := coord.Members()
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, m := range ms {
			if m.Alive {
				alive++
			}
		}
		if alive == n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("never saw %d live members", n)
}

// pickVictim waits until every member holds a part job and at least one
// shows evaluation progress, then returns a busy member's index — the
// one the chaos test kills mid-campaign.
func pickVictim(t *testing.T, nodes []*fedNode) int {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		assigned, busy := 0, -1
		for i, n := range nodes {
			jobs := n.svc.List()
			if len(jobs) > 0 {
				assigned++
			}
			for _, j := range jobs {
				if j.Done > 0 {
					busy = i
				}
			}
		}
		if assigned == len(nodes) && busy >= 0 {
			return busy
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no member reached a running part in time")
	return -1
}

// TestFederatedMemberDeathReassignsRanges is the chaos satellite: kill
// one member mid-campaign (heartbeats stop, connections refused — the
// SIGKILL shape) and the coordinator must reassign its draw windows to
// a survivor, record the event in the job's warnings, and still merge a
// Result byte-identical to the single-node run — which is exactly the
// "zero double-tallied draws, unchanged critical_pct" guarantee.
func TestFederatedMemberDeathReassignsRanges(t *testing.T) {
	spec := fullSpec("network-wise", 0.02) // ~4k draws: room to interrupt
	want := directResult(t, spec)

	coordDir := t.TempDir()
	coord, err := service.New(coordConfig(coordDir, 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)
	coordSrv := httptest.NewServer(service.NewMux(coord))
	defer coordSrv.Close()

	var evals atomic.Int64
	nodes := make([]*fedNode, 2)
	cancels := make([]context.CancelFunc, 2)
	for i := range nodes {
		nodes[i] = startNode(t, memberConfig(1, slowBuilder(200*time.Microsecond, &evals)))
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		go service.Join(ctx, coordSrv.URL, nodes[i].srv.URL, fmt.Sprintf("node-%d", i), 50*time.Millisecond, nil)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	waitAliveMembers(t, coord, 2)

	s := spec
	s.Federated = true
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, nodes)
	cancels[victim]()         // heartbeats stop
	nodes[victim].srv.Close() // connections refused from here on
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	_ = nodes[victim].svc.Shutdown(sdCtx)
	sdCancel()

	final := waitState(t, coord, st.ID, service.StateCompleted)
	if !strings.Contains(strings.Join(final.Warnings, "\n"), "reassigning") {
		t.Errorf("warnings %q record no range reassignment", final.Warnings)
	}
	if final.Done != final.Planned {
		t.Errorf("done %d of planned %d after reassignment", final.Done, final.Planned)
	}
	got, err := coord.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Result after member death differs from the single-node run (double-tally or lost draws)")
	}
	survivor := nodes[1-victim]
	survivor.stop(t)
}

// waitPartsAssigned blocks until the durable federation document at
// path records member jobs for all parts.
func waitPartsAssigned(t *testing.T, path string, parts int) {
	t.Helper()
	type fedState struct {
		Parts []struct {
			MemberJob string `json:"member_job"`
		} `json:"parts"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil {
			var fs fedState
			if json.Unmarshal(data, &fs) == nil && len(fs.Parts) == parts {
				all := true
				for _, p := range fs.Parts {
					if p.MemberJob == "" {
						all = false
					}
				}
				if all {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("federation state %s never assigned %d parts", path, parts)
}

// TestFederatedCoordinatorRestartResumesWithZeroReEvaluation pins the
// durable-merge-state guarantee: a coordinator restart mid-campaign
// re-attaches to the member jobs (which kept running, untouched) and
// completes the merge without a single draw being evaluated twice —
// and without the members ever re-registering, since polling goes by
// the URLs stored in the federation document.
func TestFederatedCoordinatorRestartResumesWithZeroReEvaluation(t *testing.T) {
	spec := fullSpec("network-wise", 0.02)
	want := directResult(t, spec)
	coordDir := t.TempDir()

	var memberEvals atomic.Int64
	nodes := make([]*fedNode, 2)
	for i := range nodes {
		nodes[i] = startNode(t, memberConfig(1, slowBuilder(500*time.Microsecond, &memberEvals)))
		defer nodes[i].stop(t)
	}

	coord1, err := service.New(coordConfig(coordDir, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if _, err := coord1.RegisterMember(n.srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := spec
	s.Federated = true
	st, err := coord1.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	waitPartsAssigned(t, filepath.Join(coordDir, st.ID+".fed.json"), 2)
	mustShutdown(t, coord1) // the federated job re-pends; member jobs keep running

	var coordEvals atomic.Int64
	cfg2 := coordConfig(coordDir, time.Hour)
	cfg2.BuildEvaluator = slowBuilder(0, &coordEvals)
	coord2, err := service.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord2)

	final := waitState(t, coord2, st.ID, service.StateCompleted)
	got, err := coord2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Result after coordinator restart differs from the single-node run")
	}
	if n := coordEvals.Load(); n != 0 {
		t.Errorf("restarted coordinator evaluated %d draws itself, want 0", n)
	}
	if n := memberEvals.Load(); n != final.Planned {
		t.Errorf("fleet evaluated %d draws, want exactly %d (zero re-evaluation across the restart)", n, final.Planned)
	}
	if joined := strings.Join(final.Warnings, "\n"); strings.Contains(joined, "reassigning") {
		t.Errorf("restart triggered a spurious reassignment: %q", joined)
	}
}

// hangOnceEvaluator blocks exactly one IsCritical call until release is
// closed — the watchdog abandons that lane; every other evaluation goes
// straight to the wrapped oracle.
type hangOnceEvaluator struct {
	inner   core.Evaluator
	hung    atomic.Bool
	release chan struct{}
}

func (h *hangOnceEvaluator) IsCritical(f faultmodel.Fault) bool {
	if h.hung.CompareAndSwap(false, true) {
		<-h.release
	}
	return h.inner.IsCritical(f)
}

func (h *hangOnceEvaluator) Space() faultmodel.Space { return h.inner.Space() }

func hangOnceBuilder(release chan struct{}) service.EvaluatorBuilder {
	return func(spec service.CampaignSpec, net *nn.Network) (core.Evaluator, error) {
		return &hangOnceEvaluator{inner: oracle.New(net, oracle.DefaultConfig(spec.OracleSeed)), release: release}, nil
	}
}

// TestFederatedAbandonedLanesSurfaceInWarnings pins the observability
// satellite: a member whose watchdog abandons a hung experiment reports
// the lane count on its terminal status, and the coordinator folds it
// into the federated job's abandoned_lanes tally and warnings.
func TestFederatedAbandonedLanesSurfaceInWarnings(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // un-park the abandoned lane so its goroutine exits

	coord, err := service.New(coordConfig(t.TempDir(), time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)
	m := startNode(t, memberConfig(1, hangOnceBuilder(release)))
	defer m.stop(t)
	if _, err := coord.RegisterMember(m.srv.URL, "hangs-once"); err != nil {
		t.Fatal(err)
	}

	s := fullSpec("network-wise", 0.2)
	s.Federated = true
	s.ExperimentTimeoutMS = 100
	zero := 0
	s.MaxRetries = &zero // quarantine on first failure; exactly one abandoned lane
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, coord, st.ID, service.StateCompleted)
	if final.AbandonedLanes != 1 {
		t.Errorf("abandoned_lanes = %d, want 1", final.AbandonedLanes)
	}
	if !strings.Contains(strings.Join(final.Warnings, "\n"), "watchdog-abandoned") {
		t.Errorf("warnings %q do not surface the member's abandoned lane", final.Warnings)
	}
}
