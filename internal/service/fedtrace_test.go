package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cnnsfi/internal/service"
	"cnnsfi/internal/telemetry"
)

// strippedReport replays trace bytes through the summarizer with
// timing stripped — the deterministic view both the golden tests and
// the merged-trace identity below compare on.
func strippedReport(t *testing.T, trace []byte) string {
	t.Helper()
	events, err := telemetry.ReadTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var buf bytes.Buffer
	telemetry.Summarize(events).WriteReport(&buf, true)
	return buf.String()
}

// singleNodeTrace runs the spec on a plain (non-federated) service and
// returns the recorded trace bytes. build selects the evaluator (nil =
// the default substrate); a federated comparison must run both sides on
// the same evaluator, since eval statistics are part of the stripped
// report.
func singleNodeTrace(t *testing.T, spec service.CampaignSpec, build service.EvaluatorBuilder) []byte {
	t.Helper()
	svc, err := service.New(service.Config{Dir: t.TempDir(), TotalWorkers: 8, BuildEvaluator: build})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, st.ID, service.StateCompleted)
	data, err := svc.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkMergedTraceShape asserts the structural contract of a merged
// federated trace: one part_meta prologue per part whose draw windows
// tile each stratum exactly ([0, planned) with no gaps or overlaps —
// the "no duplicated or missing draws" guarantee), and every spliced
// interior event stamped with its part and member.
func checkMergedTraceShape(t *testing.T, trace []byte, parts int) {
	t.Helper()
	events, err := telemetry.ReadTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("reading merged trace: %v", err)
	}
	planned := map[int]int64{} // stratum → sample size
	for _, ev := range events {
		if ev.Kind == "stratum_start" {
			planned[ev.Stratum] = ev.StratumPlanned
		}
	}
	if len(planned) == 0 {
		t.Fatal("merged trace has no stratum_start events")
	}

	var metas []telemetry.Event
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.KindPartMeta:
			metas = append(metas, ev)
		case "shard_done", "experiment_retry", "experiment_quarantined":
			if ev.FederatedJob == "" || ev.Part == nil || ev.Member == "" {
				t.Errorf("spliced %s event lacks correlation fields: %+v", ev.Kind, ev)
			}
		}
	}
	if len(metas) != parts {
		t.Fatalf("merged trace has %d part_meta prologues, want %d", len(metas), parts)
	}
	for s, n := range planned {
		var next int64
		for k, pm := range metas {
			if pm.Part == nil || *pm.Part != k {
				t.Fatalf("part_meta %d carries part index %v, want %d", k, pm.Part, k)
			}
			if s >= len(pm.Ranges) {
				t.Fatalf("part %d declares %d ranges, no window for stratum %d", k, len(pm.Ranges), s)
			}
			r := pm.Ranges[s]
			if r.From != next {
				t.Errorf("stratum %d part %d window starts at %d, want %d (gap or overlap)", s, k, r.From, next)
			}
			next = r.To
		}
		if next != n {
			t.Errorf("stratum %d windows end at %d, want the full sample size %d", s, next, n)
		}
	}
}

// TestFederatedTraceIdentity is the observability tentpole anchor: the
// coordinator's merged trace, stripped of timing, must be byte-
// identical to a single-node run's stripped trace of the same (plan,
// seed) — at 2 and 3 members, and with the single node running a
// different worker count than the member jobs.
func TestFederatedTraceIdentity(t *testing.T) {
	spec := fullSpec("data-aware", 0.05)
	spec.Workers = 2 // differs from the federated member jobs' 1
	want := strippedReport(t, singleNodeTrace(t, spec, nil))

	for _, members := range []int{2, 3} {
		t.Run(fmt.Sprintf("members_%d", members), func(t *testing.T) {
			coord, err := service.New(coordConfig(t.TempDir(), time.Hour))
			if err != nil {
				t.Fatal(err)
			}
			defer mustShutdown(t, coord)
			for i := 0; i < members; i++ {
				m := startNode(t, memberConfig(4, nil))
				defer m.stop(t)
				if _, err := coord.RegisterMember(m.srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			s := spec
			s.Workers = 1
			s.Federated = true
			st, err := coord.Submit(s)
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, coord, st.ID, service.StateCompleted)
			got, err := coord.Trace(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if stripped := strippedReport(t, got); stripped != want {
				t.Errorf("merged stripped trace differs from the single-node run\n--- merged ---\n%s--- single-node ---\n%s", stripped, want)
			}
			checkMergedTraceShape(t, got, members)
		})
	}
}

// TestFederatedTraceSurvivesMemberDeath is the chaos half of the trace
// contract: killing a member mid-part loses that member's local trace,
// but the reassigned windows re-run on a survivor — so the merged trace
// still tiles every stratum exactly and strips to the single-node
// report, with no duplicated or missing draw accounting.
func TestFederatedTraceSurvivesMemberDeath(t *testing.T) {
	spec := fullSpec("network-wise", 0.02) // ~4k draws: room to interrupt
	var baselineEvals atomic.Int64
	want := strippedReport(t, singleNodeTrace(t, spec, slowBuilder(0, &baselineEvals)))

	coord, err := service.New(coordConfig(t.TempDir(), 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)
	coordSrv := httptest.NewServer(service.NewMux(coord))
	defer coordSrv.Close()

	var evals atomic.Int64
	nodes := make([]*fedNode, 2)
	cancels := make([]context.CancelFunc, 2)
	for i := range nodes {
		nodes[i] = startNode(t, memberConfig(1, slowBuilder(200*time.Microsecond, &evals)))
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		go service.Join(ctx, coordSrv.URL, nodes[i].srv.URL, fmt.Sprintf("node-%d", i), 50*time.Millisecond, nil)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	waitAliveMembers(t, coord, 2)

	s := spec
	s.Federated = true
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, nodes)
	cancels[victim]()
	nodes[victim].srv.Close()
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	_ = nodes[victim].svc.Shutdown(sdCtx)
	sdCancel()

	final := waitState(t, coord, st.ID, service.StateCompleted)
	got, err := coord.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stripped := strippedReport(t, got); stripped != want {
		t.Errorf("merged stripped trace after member death differs from the single-node run\n--- merged ---\n%s--- single-node ---\n%s", stripped, want)
	}
	// The reassignment may have grown the part list; derive the expected
	// prologue count from the trace itself and validate the tiling.
	parts := strings.Count(string(got), `"kind":"part_meta"`)
	if parts < 2 {
		t.Fatalf("merged trace has %d part_meta prologues, want at least the original 2", parts)
	}
	checkMergedTraceShape(t, got, parts)
	if final.Done != final.Planned {
		t.Errorf("done %d of planned %d after reassignment", final.Done, final.Planned)
	}
	survivor := nodes[1-victim]
	survivor.stop(t)
}

// TestFederatedSSEAccounting subscribes to a federated job's event
// stream over real HTTP and checks the progress arithmetic: the last
// aggregate frame accounts for exactly the plan's total draws, and the
// last per-part frames (labelled federated_job/part/member) sum to the
// same total.
func TestFederatedSSEAccounting(t *testing.T) {
	coord, err := service.New(coordConfig(t.TempDir(), time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)
	coordSrv := httptest.NewServer(service.NewMux(coord))
	defer coordSrv.Close()
	for i := 0; i < 2; i++ {
		m := startNode(t, memberConfig(4, nil))
		defer m.stop(t)
		if _, err := coord.RegisterMember(m.srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	spec := fullSpec("data-aware", 0.05)
	spec.Federated = true
	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		coordSrv.URL+"/api/v1/campaigns/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var aggregate *telemetry.Event
	partFinal := map[int]telemetry.Event{}
	lastEventID := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if seq, ok := strings.CutPrefix(line, "id: "); ok {
			lastEventID = seq
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var kind struct {
			Kind  string           `json:"kind"`
			State service.JobState `json:"state"`
		}
		if json.Unmarshal([]byte(payload), &kind) != nil {
			continue
		}
		if kind.Kind == service.KindJobState {
			if kind.State == service.StateCompleted {
				break
			}
			continue
		}
		if kind.Kind != telemetry.KindProgress {
			continue
		}
		ev, err := telemetry.ParseEvent([]byte(payload))
		if err != nil {
			t.Fatalf("unparseable SSE progress frame %q: %v", payload, err)
		}
		if ev.Part != nil {
			if ev.FederatedJob != st.ID || ev.Member == "" {
				t.Errorf("per-part frame lacks correlation fields: %s", payload)
			}
			partFinal[*ev.Part] = ev
		} else {
			e := ev
			aggregate = &e
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	if lastEventID == "" {
		t.Error("stream carried no id: lines (Last-Event-ID resume impossible)")
	}

	final := waitState(t, coord, st.ID, service.StateCompleted)
	if aggregate == nil {
		t.Fatal("stream delivered no aggregate progress frame")
	}
	if !aggregate.Final || aggregate.Done != final.Planned || aggregate.Planned != final.Planned {
		t.Errorf("last aggregate frame done=%d planned=%d final=%v, want done=planned=%d final=true",
			aggregate.Done, aggregate.Planned, aggregate.Final, final.Planned)
	}
	if len(partFinal) != 2 {
		t.Fatalf("saw per-part frames for %d parts, want 2", len(partFinal))
	}
	var sumDone, sumPlanned int64
	for k, ev := range partFinal {
		if !ev.Final {
			t.Errorf("part %d's last frame is not final", k)
		}
		sumDone += ev.Done
		sumPlanned += ev.Planned
	}
	if sumDone != final.Planned || sumPlanned != final.Planned {
		t.Errorf("per-part frames sum to done=%d planned=%d, want both == %d",
			sumDone, sumPlanned, final.Planned)
	}
}

// TestTraceEndpointLifecycle pins the serving rules: 409 while the job
// is live, the recorded prefix once terminal, 404 for unknown jobs.
func TestTraceEndpointLifecycle(t *testing.T) {
	svc, err := service.New(service.Config{Dir: t.TempDir(), TotalWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)
	if _, err := svc.Trace("nosuch"); err == nil {
		t.Error("Trace of unknown job should fail")
	}
	st, err := svc.Submit(fullSpec("network-wise", 0.2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, st.ID, service.StateCompleted)
	data, err := svc.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].Kind != "campaign_end" {
		t.Errorf("completed job's trace has %d events, want a campaign_end-terminated trace", len(events))
	}
	// The trace is labelled with the campaign name, same as sfirun's.
	if got := events[0].Campaign; got != st.Name {
		t.Errorf("trace campaign label = %q, want the campaign name %q", got, st.Name)
	}
}
