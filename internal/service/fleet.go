package service

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cnnsfi/internal/telemetry"
)

// This file is the coordinator's fleet observability: a background loop
// scrapes every registered member's /metrics endpoint, re-exports the
// interesting series under member-labelled names plus fleet roll-ups,
// and feeds the GET /api/v1/fleet view that sfictl fleet/top render.
// Scraping is strictly read-only and failure-tolerant — a member that
// cannot be scraped shows up as sfid_member_up 0 with a bumped error
// counter, never as a coordinator fault.

// FleetPart is one running (or just-fetched) draw window of a federated
// job, as seen in the fleet view.
type FleetPart struct {
	// Job is the coordinator's federated job ID; Part the window index.
	Job  string `json:"job"`
	Part int    `json:"part"`
	// Member is the display label of the member running the window;
	// MemberURL / MemberJob locate the member job itself. Empty while
	// the window is unassigned.
	Member    string `json:"member,omitempty"`
	MemberURL string `json:"member_url,omitempty"`
	MemberJob string `json:"member_job,omitempty"`
	// Done / Planned / Critical are the window's freshest tallies;
	// Rate its last reported throughput in injections per second.
	Done     int64   `json:"done_injections"`
	Planned  int64   `json:"planned_injections"`
	Critical int64   `json:"critical"`
	Rate     float64 `json:"rate,omitempty"`
	// Fetched marks a window whose Result is already merged-ready.
	Fetched bool `json:"fetched,omitempty"`
	// Speculative marks a window with a straggler re-execution copy in
	// flight on a second member (the first copy to finish is merged).
	Speculative bool `json:"speculative,omitempty"`
}

// FleetMember is one registered member joined with its latest scrape.
type FleetMember struct {
	// Member is the registry entry (identity, URL, heartbeat times).
	Member MemberStatus `json:"member"`
	// HeartbeatAgeSeconds is the time since the member's last heartbeat.
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	// Up reports whether the latest /metrics scrape succeeded.
	Up bool `json:"up"`
	// QueueLength is the member's pending-queue length at the last
	// scrape; Rate sums its running campaigns' throughput.
	QueueLength int64   `json:"queue_length"`
	Rate        float64 `json:"rate"`
	// ScrapeErrors counts failed scrapes of this member.
	ScrapeErrors int64 `json:"scrape_errors,omitempty"`
	// Parts are the federated draw windows currently assigned to this
	// member across all running federated jobs.
	Parts []FleetPart `json:"parts,omitempty"`
}

// FleetStatus is the JSON body of GET /api/v1/fleet.
type FleetStatus struct {
	// Members lists every registered member, sorted by ID.
	Members []FleetMember `json:"members"`
	// FleetInjectionsTotal is the monotone sum of injections evaluated
	// across all members since this coordinator started scraping.
	FleetInjectionsTotal int64 `json:"fleet_injections_total"`
	// FleetRate sums the members' current campaign throughput.
	FleetRate float64 `json:"fleet_rate"`
}

// fleetState is the scrape-side bookkeeping, under its own lock so
// metric collection never contends with the scheduler.
type fleetState struct {
	mu      sync.Mutex
	scrapes map[string]*memberScrape // keyed by member ID
	// injTotal accumulates per-(member, campaign) done-injection deltas
	// into one monotone fleet-wide counter.
	injTotal float64
}

// memberScrape is the latest scrape of one member. rates is replaced
// wholesale on every scrape (never mutated in place), so a snapshot may
// safely hold the map reference outside the lock.
type memberScrape struct {
	up         bool
	queueLen   float64
	rates      map[string]float64 // member-local campaign → inj/s
	scrapeErrs int64
	lastDone   map[string]float64 // member-local campaign → done high-water
}

func newFleetState() *fleetState {
	return &fleetState{scrapes: map[string]*memberScrape{}}
}

// memberLocked returns the member's scrape record, creating it on first
// sight. Caller holds fleetState.mu.
func (f *fleetState) memberLocked(id string) *memberScrape {
	st := f.scrapes[id]
	if st == nil {
		st = &memberScrape{lastDone: map[string]float64{}}
		f.scrapes[id] = st
	}
	return st
}

// scrapeLoop polls the fleet's member /metrics endpoints until the
// service shuts down (coordinator only).
func (s *Service) scrapeLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ScrapeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.scrapeFleet(s.ctx)
		}
	}
}

// scrapeFleet runs one scrape cycle over every registered member.
func (s *Service) scrapeFleet(ctx context.Context) {
	members, err := s.Members()
	if err != nil {
		return
	}
	for _, m := range members {
		s.scrapeMember(ctx, m)
	}
}

// scrapeMember polls one member's /metrics and folds the result into
// the fleet state. Members outside the heartbeat timeout are marked
// down without being polled (their daemon may be gone entirely).
func (s *Service) scrapeMember(ctx context.Context, m MemberStatus) {
	if !m.Alive {
		s.fleet.mu.Lock()
		s.fleet.memberLocked(m.ID).up = false
		s.fleet.mu.Unlock()
		return
	}
	body, err := s.fed.fetchMetrics(ctx, m.URL)
	s.fleet.mu.Lock()
	defer s.fleet.mu.Unlock()
	st := s.fleet.memberLocked(m.ID)
	if err != nil {
		st.up = false
		st.scrapeErrs++
		return
	}
	st.up = true
	st.queueLen = 0
	rates := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		name, labels, v, ok := parseMetricLine(line)
		if !ok {
			continue
		}
		switch name {
		case "sfid_queue_length":
			st.queueLen = v
		case "sfid_campaign_rate":
			if c := labels["campaign"]; c != "" && v > 0 {
				rates[c] = v
			}
		case "sfid_campaign_done_injections":
			c := labels["campaign"]
			if c == "" {
				continue
			}
			// Per-(member, campaign) high-water delta keeps the fleet
			// counter monotone across our own restarts of the loop and a
			// member's campaign churn; a value below the high-water means
			// the member reset, so the fresh count is all new work.
			old := st.lastDone[c]
			if v >= old {
				s.fleet.injTotal += v - old
			} else {
				s.fleet.injTotal += v
			}
			st.lastDone[c] = v
		}
	}
	st.rates = rates
}

// parseMetricLine parses one Prometheus text-exposition sample into
// (name, labels, value). Comments, blanks, and malformed lines return
// ok=false — the scraper tolerates any foreign input without panicking.
func parseMetricLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", nil, 0, false
	}
	series := strings.TrimSpace(line[:sp])
	name = series
	br := strings.IndexByte(series, '{')
	if br < 0 {
		return name, nil, v, true
	}
	if !strings.HasSuffix(series, "}") {
		return "", nil, 0, false
	}
	name = series[:br]
	labels = map[string]string{}
	body := series[br+1 : len(series)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return "", nil, 0, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		end := -1
		for p := 0; p < len(rest); p++ {
			c := rest[p]
			if c == '\\' && p+1 < len(rest) {
				switch rest[p+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[p+1])
				}
				p++
				continue
			}
			if c == '"' {
				end = p
				break
			}
			val.WriteByte(c)
		}
		if end < 0 {
			return "", nil, 0, false
		}
		labels[key] = val.String()
		body = strings.TrimPrefix(rest[end+1:], ",")
	}
	return name, labels, v, true
}

// memberSample pairs one registry entry with a consistent copy of its
// scrape state.
type memberSample struct {
	m  MemberStatus
	sc memberScrape
}

// fleetSamples snapshots every member with its scrape state, sorted by
// member ID (the Members() order).
func (s *Service) fleetSamples() []memberSample {
	members, err := s.Members()
	if err != nil {
		return nil
	}
	s.fleet.mu.Lock()
	defer s.fleet.mu.Unlock()
	out := make([]memberSample, 0, len(members))
	for _, m := range members {
		var sc memberScrape
		if st := s.fleet.scrapes[m.ID]; st != nil {
			sc = *st
		}
		out = append(out, memberSample{m: m, sc: sc})
	}
	return out
}

// rateSum sums one member's running-campaign rates.
func (sc *memberScrape) rateSum() float64 {
	var sum float64
	for _, r := range sc.rates {
		sum += r
	}
	return sum
}

// Fleet assembles the live fleet view: every member with heartbeat age,
// scrape health, queue length, throughput, and the federated draw
// windows currently assigned to it.
func (s *Service) Fleet() (FleetStatus, error) {
	if !s.cfg.Coordinator {
		return FleetStatus{}, ErrNotCoordinator
	}
	samples := s.fleetSamples()
	s.mu.Lock()
	partsByURL := map[string][]FleetPart{}
	for _, j := range s.order {
		if j.state != StateRunning || !j.spec.Federated {
			continue
		}
		for _, p := range j.fedParts {
			if p.MemberURL != "" && !p.Fetched {
				partsByURL[p.MemberURL] = append(partsByURL[p.MemberURL], p)
			}
		}
	}
	s.mu.Unlock()
	s.fleet.mu.Lock()
	injTotal := int64(s.fleet.injTotal)
	s.fleet.mu.Unlock()

	fs := FleetStatus{Members: make([]FleetMember, 0, len(samples)), FleetInjectionsTotal: injTotal}
	for _, smp := range samples {
		rate := smp.sc.rateSum()
		fs.FleetRate += rate
		fs.Members = append(fs.Members, FleetMember{
			Member:              smp.m,
			HeartbeatAgeSeconds: time.Since(smp.m.LastSeen).Seconds(),
			Up:                  smp.sc.up,
			QueueLength:         int64(smp.sc.queueLen),
			Rate:                rate,
			ScrapeErrors:        smp.sc.scrapeErrs,
			Parts:               partsByURL[smp.m.URL],
		})
	}
	return fs, nil
}

// registerFleetMetrics publishes the member-labelled scrape families
// and the fleet roll-ups (coordinator only). Series come and go with
// the registry, so every family is a dynamic-label vec.
func (s *Service) registerFleetMetrics() {
	memberLabels := func(smp memberSample) []telemetry.Label {
		return []telemetry.Label{
			{Name: "member", Value: smp.m.ID},
			{Name: "name", Value: smp.m.Name},
		}
	}
	s.reg.GaugeVecFunc("sfid_member_up", "1 when the member's latest /metrics scrape succeeded (coordinator only).",
		func() []telemetry.LabeledValue {
			var out []telemetry.LabeledValue
			for _, smp := range s.fleetSamples() {
				v := 0.0
				if smp.sc.up {
					v = 1
				}
				out = append(out, telemetry.LabeledValue{Labels: memberLabels(smp), Value: v})
			}
			return out
		})
	s.reg.GaugeVecFunc("sfid_member_heartbeat_age_seconds", "Seconds since the member's last heartbeat.",
		func() []telemetry.LabeledValue {
			var out []telemetry.LabeledValue
			for _, smp := range s.fleetSamples() {
				out = append(out, telemetry.LabeledValue{Labels: memberLabels(smp),
					Value: time.Since(smp.m.LastSeen).Seconds()})
			}
			return out
		})
	s.reg.GaugeVecFunc("sfid_member_queue_length", "The member's pending-queue length at the last scrape.",
		func() []telemetry.LabeledValue {
			var out []telemetry.LabeledValue
			for _, smp := range s.fleetSamples() {
				out = append(out, telemetry.LabeledValue{Labels: memberLabels(smp), Value: smp.sc.queueLen})
			}
			return out
		})
	s.reg.GaugeVecFunc("sfid_member_campaign_rate", "Per member-campaign throughput in injections per second, as scraped.",
		func() []telemetry.LabeledValue {
			var out []telemetry.LabeledValue
			for _, smp := range s.fleetSamples() {
				jobs := make([]string, 0, len(smp.sc.rates))
				for job := range smp.sc.rates {
					jobs = append(jobs, job)
				}
				sort.Strings(jobs)
				for _, job := range jobs {
					out = append(out, telemetry.LabeledValue{
						Labels: []telemetry.Label{{Name: "member", Value: smp.m.ID}, {Name: "job", Value: job}},
						Value:  smp.sc.rates[job],
					})
				}
			}
			return out
		})
	s.reg.CounterVecFunc("sfid_member_scrape_errors_total", "Failed /metrics scrapes per member.",
		func() []telemetry.LabeledValue {
			var out []telemetry.LabeledValue
			for _, smp := range s.fleetSamples() {
				out = append(out, telemetry.LabeledValue{
					Labels: []telemetry.Label{{Name: "member", Value: smp.m.ID}},
					Value:  float64(smp.sc.scrapeErrs),
				})
			}
			return out
		})
	s.reg.CounterFunc("sfid_fleet_injections_total", "Injections evaluated across all members since this coordinator started scraping.",
		func() int64 {
			s.fleet.mu.Lock()
			defer s.fleet.mu.Unlock()
			return int64(s.fleet.injTotal)
		})
	s.reg.GaugeFunc("sfid_fleet_rate", "Summed member campaign throughput in injections per second.",
		func() float64 {
			var sum float64
			for _, smp := range s.fleetSamples() {
				sum += smp.sc.rateSum()
			}
			return sum
		})
	s.reg.GaugeVecFunc("sfid_member_breaker_state", "Per-member circuit breaker state: 0 closed, 1 half-open, 2 open.",
		func() []telemetry.LabeledValue {
			states := s.fed.group.States()
			urls := make([]string, 0, len(states))
			for url := range states {
				urls = append(urls, url)
			}
			sort.Strings(urls)
			out := make([]telemetry.LabeledValue, 0, len(urls))
			for _, url := range urls {
				out = append(out, telemetry.LabeledValue{
					Labels: []telemetry.Label{{Name: "member", Value: url}},
					Value:  float64(states[url]),
				})
			}
			return out
		})
}
