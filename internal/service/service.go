// Package service schedules many fault-injection campaigns inside one
// long-running process — the multi-tenant layer the sfid daemon exposes
// over HTTP. It composes exclusively out of seams the lower layers
// already provide: campaigns execute through core.Engine unchanged (so
// every Result is bit-identical to a direct sfirun invocation at the
// same plan, seed, and worker count), checkpoint v2 files are the
// durable job state (a restarted service resumes every in-flight job
// from disk with zero re-evaluated draws), TraceSink/ProgressSink
// events become the SSE payload, and the telemetry Registry carries
// per-campaign labeled series.
//
// Scheduling model: one shared pool of worker tokens (Config.
// TotalWorkers). A job needs its fixed spec.Workers tokens to start and
// holds them until its Execute returns. The pending queue orders by
// (priority desc, submission order asc) and admits strictly from the
// head — no backfill — so a large job is never starved by a stream of
// later small ones; fairness is chosen over utilization. Backpressure
// is explicit: a full queue rejects submissions (HTTP 429), a draining
// service rejects everything (HTTP 503).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/telemetry"
)

// Submission and lookup sentinels; the HTTP layer maps each to one
// status code (ErrQueueFull → 429, ErrDraining → 503, ErrUnknownJob →
// 404, ErrJobNotDone and ErrJobDone → 409).
var (
	ErrQueueFull  = errors.New("pending queue full")
	ErrDraining   = errors.New("service draining")
	ErrUnknownJob = errors.New("unknown job")
	ErrJobNotDone = errors.New("job has not completed")
	ErrJobDone    = errors.New("job already finished")
)

// JobState is one node of the job lifecycle state machine:
//
//	pending → running → completed
//	                  → failed
//	pending|running   → canceled
//
// A daemon restart maps running back to pending (the checkpoint carries
// the progress); terminal states are final.
type JobState string

const (
	StatePending   JobState = "pending"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// terminal reports whether st is final.
func (st JobState) terminal() bool {
	return st == StateCompleted || st == StateFailed || st == StateCanceled
}

// Config parameterises a Service. The zero value of every field selects
// a sensible default; only Dir is required.
type Config struct {
	// Dir is the state directory: job records, engine checkpoints, and
	// result documents all live here (see docs/OPERATIONS.md for the
	// layout). Created if missing.
	Dir string
	// TotalWorkers sizes the shared worker-token pool (default
	// GOMAXPROCS). A spec requesting more workers than this is rejected
	// at submission, since it could never start.
	TotalWorkers int
	// MaxQueue caps the pending queue (default 64); submissions beyond
	// it fail with ErrQueueFull.
	MaxQueue int
	// CheckpointEvery / ProgressEvery override the engine's per-job
	// checkpoint and progress cadence (injections; 0 keeps the engine
	// defaults).
	CheckpointEvery int64
	ProgressEvery   int64
	// Registry receives service and per-campaign metrics; nil creates a
	// private registry (reachable via Registry()).
	Registry *telemetry.Registry
	// BuildEvaluator constructs each job's evaluator (default
	// DefaultEvaluator); tests substitute instrumented evaluators here.
	BuildEvaluator EvaluatorBuilder
	// Warnf, when set, receives one-line diagnostics (engine warnings,
	// persistence failures).
	Warnf func(format string, args ...any)
	// Coordinator enables federation: member sfid instances may register
	// (POST /api/v1/members + heartbeats) and federated submissions are
	// accepted, split across the live members, and merged. Off by
	// default; a non-coordinator rejects the member endpoints and
	// federated specs.
	Coordinator bool
	// MemberTimeout is how long a member may go without a heartbeat
	// before the coordinator declares it dead and reassigns its draw
	// ranges (default 10s).
	MemberTimeout time.Duration
	// FederationPoll is the coordinator's member-job polling cadence
	// (default 500ms).
	FederationPoll time.Duration
	// ScrapeInterval is the coordinator's member /metrics scrape cadence
	// for the federated metric families (default 2s).
	ScrapeInterval time.Duration
	// MemberRPCTimeout bounds each member RPC attempt (default 5s).
	// Document fetches — results and traces can be large — get six
	// attempts' worth. Retries layer on top, so one slow attempt never
	// consumes the whole poll cycle.
	MemberRPCTimeout time.Duration
	// BreakerThreshold / BreakerOpenFor shape the per-member circuit
	// breaker: consecutive retryable failures before tripping (default
	// 5) and how long a tripped breaker refuses before admitting a
	// half-open probe (default 5s).
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// StragglerRatio and StragglerCycles arm speculative re-execution:
	// a federated part whose progress rate stays below StragglerRatio ×
	// the fleet median (default 0.25) for StragglerCycles consecutive
	// poll cycles (default 8) is speculatively re-dispatched to a spare
	// member; the first finished copy merges and the loser is canceled.
	// StragglerRatio < 0 disables speculation.
	StragglerRatio  float64
	StragglerCycles int
	// DegradedAfter is how long a federated draw window may sit
	// unplaceable (no alive member with a non-tripped breaker) before
	// the coordinator runs it locally as an ordinary checkpointed job
	// (default 15s). Negative disables degraded mode.
	DegradedAfter time.Duration
	// Transport, when set, replaces the default HTTP transport for every
	// fleet RPC — the seam the chaos tests and the sfid -chaos flag
	// inject faults through. Resilience wraps this transport; the engine
	// hot path never sees it.
	Transport http.RoundTripper
}

// job is the in-memory state of one campaign. Mutable fields are
// guarded by Service.mu except the live progress snapshot, which the
// engine's dispatcher goroutine updates under its own lock.
type job struct {
	id   string
	seq  int64
	spec CampaignSpec

	state       JobState
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	errMsg      string
	planned     int64
	done        int64 // final tally (terminal or recovered jobs)
	critical    int64
	restored    int64 // checkpoint prefix restored at the last start
	abandoned   int64 // watchdog-abandoned lanes (local run or summed members)
	warnings    []string
	userCancel  bool
	cancel      context.CancelFunc

	pmu     sync.Mutex
	prog    core.Progress
	hasProg bool

	// fedParts is the latest per-part progress snapshot of a running
	// federated job, refreshed by each fedStep for the fleet view.
	fedParts []FleetPart

	b *broadcaster
}

// Service is the campaign scheduler. All exported methods are safe for
// concurrent use.
type Service struct {
	cfg Config
	reg *telemetry.Registry

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	drained chan struct{} // closed when Shutdown's wait completes

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // every job, submission order
	queue     []*job // pending jobs, (priority desc, seq asc)
	free      int
	nextSeq   int64
	draining  bool
	members   map[string]*member // registered fleet (coordinator only)
	memberSeq int64

	submitted      *telemetry.Counter
	rejected       *telemetry.Counter
	retries        *telemetry.Counter
	specParts      *telemetry.Counter
	stateWriteErrs *telemetry.Counter

	// fed is the resilient RPC client every fleet call goes through
	// (per-attempt deadlines, retry budget, per-member breakers).
	fed *memberClient

	// fleet is the coordinator's member-scrape state (nil otherwise); it
	// has its own lock so scrapes never contend with the scheduler.
	fleet *fleetState
}

// New opens (or creates) the state directory, recovers every persisted
// job — terminal jobs become queryable, interrupted and queued ones
// re-enter the pending queue and resume from their checkpoints — and
// starts scheduling.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if cfg.TotalWorkers <= 0 {
		cfg.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.BuildEvaluator == nil {
		cfg.BuildEvaluator = DefaultEvaluator
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.MemberTimeout <= 0 {
		cfg.MemberTimeout = 10 * time.Second
	}
	if cfg.FederationPoll <= 0 {
		cfg.FederationPoll = 500 * time.Millisecond
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 2 * time.Second
	}
	if cfg.MemberRPCTimeout <= 0 {
		cfg.MemberRPCTimeout = 5 * time.Second
	}
	if cfg.StragglerRatio == 0 {
		cfg.StragglerRatio = 0.25
	}
	if cfg.StragglerCycles <= 0 {
		cfg.StragglerCycles = 8
	}
	if cfg.DegradedAfter == 0 {
		cfg.DegradedAfter = 15 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Registry,
		ctx:     ctx,
		cancel:  cancel,
		drained: make(chan struct{}),
		jobs:    make(map[string]*job),
		members: make(map[string]*member),
		free:    cfg.TotalWorkers,
		nextSeq: 1,
	}
	s.registerServiceMetrics()
	s.fed = newMemberClient(cfg.Transport, cfg.MemberRPCTimeout,
		cfg.BreakerThreshold, cfg.BreakerOpenFor,
		func(int, error) { s.retries.Inc() })
	if cfg.Coordinator {
		s.fleet = newFleetState()
		s.loadMembers()
		s.registerFleetMetrics()
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.mu.Lock()
	s.dispatch()
	s.mu.Unlock()
	if cfg.Coordinator {
		s.wg.Add(1)
		go s.scrapeLoop()
	}
	return s, nil
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

func (s *Service) warnf(format string, args ...any) {
	if s.cfg.Warnf != nil {
		s.cfg.Warnf(format, args...)
	}
}

// Submit validates, persists, and enqueues one campaign. The returned
// status reflects the job's state after an immediate dispatch attempt
// (it may already be running).
func (s *Service) Submit(spec CampaignSpec) (JobStatus, error) {
	spec.normalize()
	if err := spec.validate(); err != nil {
		return JobStatus{}, err
	}
	if spec.Federated && !s.cfg.Coordinator {
		return JobStatus{}, fmt.Errorf("%w: federated submit requires a coordinator (start sfid with -coordinator)",
			ErrInvalidSpec)
	}
	// A federated job holds no local tokens — Workers sizes each member
	// job, so the member pools are the binding constraint, not ours.
	if !spec.Federated && spec.Workers > s.cfg.TotalWorkers {
		return JobStatus{}, fmt.Errorf("%w: workers %d exceeds the service pool of %d",
			ErrInvalidSpec, spec.Workers, s.cfg.TotalWorkers)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.rejected.Inc()
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %d jobs pending (cap %d)", ErrQueueFull, len(s.queue), s.cfg.MaxQueue)
	}
	j := &job{
		id:          fmt.Sprintf("j%06d", s.nextSeq),
		seq:         s.nextSeq,
		spec:        spec,
		state:       StatePending,
		submittedAt: time.Now().UTC(),
		b:           newBroadcaster(),
	}
	s.nextSeq++
	if err := s.persistLocked(j); err != nil {
		s.mu.Unlock()
		return JobStatus{}, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.enqueueLocked(j)
	s.registerJobMetrics(j)
	s.submitted.Inc()
	s.dispatch()
	st := s.statusLocked(j)
	s.mu.Unlock()
	return st, nil
}

// enqueueLocked inserts j into the pending queue keeping (priority
// desc, seq asc) order.
func (s *Service) enqueueLocked(j *job) {
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.spec.Priority != j.spec.Priority {
			return q.spec.Priority < j.spec.Priority
		}
		return q.seq > j.seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
}

// tokenCost is how many shared worker tokens j holds while running: its
// fixed worker count, or zero for a federated job (the evaluation
// happens on the members' pools; the coordinator only polls and merges).
func (j *job) tokenCost() int {
	if j.spec.Federated {
		return 0
	}
	return j.spec.Workers
}

// dispatch starts queued jobs while the head job fits in the free
// token budget. Caller holds s.mu. Head-only admission keeps FIFO
// fairness: a queued wide job blocks later jobs of equal or lower
// priority rather than being overtaken forever.
func (s *Service) dispatch() {
	for !s.draining && len(s.queue) > 0 && s.queue[0].tokenCost() <= s.free {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.free -= j.tokenCost()
		j.state = StateRunning
		j.startedAt = time.Now().UTC()
		if err := s.persistLocked(j); err != nil {
			s.warnf("job %s: %v", j.id, err)
		}
		jctx, cancel := context.WithCancel(s.ctx)
		j.cancel = cancel
		s.wg.Add(1)
		go s.runJob(jctx, j)
	}
}

// runJob executes one campaign end to end: restore-aware start, engine
// run, result persistence, and the terminal (or re-pending) state
// transition that frees the job's worker tokens.
func (s *Service) runJob(ctx context.Context, j *job) {
	defer s.wg.Done()
	if j.spec.Federated {
		s.runFederated(ctx, j)
		return
	}
	if info, err := core.ReadCheckpointInfo(s.checkpointPath(j.id)); err == nil {
		s.mu.Lock()
		j.restored = info.Injections
		s.mu.Unlock()
	}
	ev, plan, err := buildCampaign(j.spec, s.cfg.BuildEvaluator)
	if err != nil {
		s.finish(j, StateFailed, err.Error(), 0, 0)
		return
	}
	s.mu.Lock()
	j.planned = plannedOf(j.spec, plan)
	if err := s.persistLocked(j); err != nil {
		s.warnf("job %s: %v", j.id, err)
	}
	s.mu.Unlock()

	tr, closeTrace := s.openTrace(j)
	res, err := core.NewEngine(s.engineOptions(j, tr)...).Execute(ctx, ev, plan, j.spec.RunSeed)
	// Close the trace before the terminal state transition so the trace
	// endpoint serves a complete file as soon as the job reads terminal.
	closeTrace()
	switch {
	case err == nil:
		if werr := s.writeResult(j.id, res); werr != nil {
			s.finish(j, StateFailed, werr.Error(), res.Injections(), criticalOf(res))
			return
		}
		s.finish(j, StateCompleted, "", res.Injections(), criticalOf(res))
	case res != nil && res.Partial && s.isUserCancel(j):
		// An individually canceled job will never resume; drop its
		// checkpoint so the state dir only holds live recovery data.
		os.Remove(s.checkpointPath(j.id))
		os.Remove(s.checkpointPath(j.id) + ".bak")
		s.finish(j, StateCanceled, "canceled", res.Injections(), criticalOf(res))
	case res != nil && res.Partial:
		// Service shutdown: the engine already wrote its final
		// checkpoint. Re-persist as pending so the next daemon run
		// requeues and resumes this job.
		s.repending(j, res.Injections(), criticalOf(res))
	default:
		s.finish(j, StateFailed, err.Error(), 0, 0)
	}
}

// criticalOf sums the critical tallies of a (possibly partial) result.
func criticalOf(res *core.Result) int64 {
	var n int64
	for _, est := range res.Estimates {
		n += est.Successes
	}
	return n
}

// isUserCancel reports whether Cancel marked this job (written and read
// under the service lock).
func (s *Service) isUserCancel(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.userCancel
}

// repending parks an interrupted job back in the pending state on disk
// (without requeueing in memory — the service is shutting down), so the
// next daemon run requeues and resumes it.
func (s *Service) repending(j *job, done, critical int64) {
	s.mu.Lock()
	j.state = StatePending
	j.startedAt = time.Time{}
	j.done = done
	j.critical = critical
	j.cancel = nil
	s.free += j.tokenCost()
	if perr := s.persistLocked(j); perr != nil {
		s.warnf("job %s: %v", j.id, perr)
	}
	s.mu.Unlock()
	j.b.close(s.stateEvent(j))
}

// finish moves j to a terminal state, frees its tokens, persists, and
// closes the job's event stream with a final state event. The job's
// abandoned-lane tally is captured from the final progress snapshot so
// a coordinator can read it off the member's terminal status.
func (s *Service) finish(j *job, st JobState, errMsg string, done, critical int64) {
	j.pmu.Lock()
	abandoned := j.prog.AbandonedLanes
	j.pmu.Unlock()
	s.mu.Lock()
	j.state = st
	j.errMsg = errMsg
	j.finishedAt = time.Now().UTC()
	j.done = done
	j.critical = critical
	if abandoned > j.abandoned {
		j.abandoned = abandoned
	}
	j.cancel = nil
	s.free += j.tokenCost()
	if err := s.persistLocked(j); err != nil {
		s.warnf("job %s: %v", j.id, err)
	}
	s.dispatch()
	s.mu.Unlock()
	j.b.close(s.stateEvent(j))
}

// Get returns one job's status.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// List returns every job in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, j := range s.order {
		out[i] = s.statusLocked(j)
	}
	return out
}

// Cancel stops one job: a pending job leaves the queue immediately, a
// running one has its context canceled (the engine stops at the next
// shard boundary). Canceling a finished job fails with ErrJobDone.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StatePending:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		j.errMsg = "canceled"
		j.finishedAt = time.Now().UTC()
		if err := s.persistLocked(j); err != nil {
			s.warnf("job %s: %v", j.id, err)
		}
		st := s.statusLocked(j)
		s.mu.Unlock()
		j.b.close(s.stateEvent(j))
		return st, nil
	case StateRunning:
		j.userCancel = true
		cancel := j.cancel
		st := s.statusLocked(j)
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st, nil
	default:
		st := s.statusLocked(j)
		s.mu.Unlock()
		return st, fmt.Errorf("%w: %s is %s", ErrJobDone, id, st.State)
	}
}

// Result returns the completed job's Result document — the exact bytes
// core.Result.WriteJSON produced, so they are directly comparable to an
// sfirun artifact.
func (s *Service) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobState
	if ok {
		st = j.state
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if st != StateCompleted {
		return nil, fmt.Errorf("%w: %s is %s", ErrJobNotDone, id, st)
	}
	data, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, fmt.Errorf("service: reading result: %w", err)
	}
	return data, nil
}

// Trace returns a terminal job's JSONL trace bytes. While the job is
// pending or running the trace file is still being appended to, so the
// call answers ErrJobNotDone; failed and canceled jobs serve whatever
// prefix was recorded (useful for post-mortems). For a completed
// federated job this is the merged global trace spliced from the member
// part traces.
func (s *Service) Trace(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobState
	if ok {
		st = j.state
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if !st.terminal() {
		return nil, fmt.Errorf("%w: %s is %s (the trace is complete only once the job is terminal)", ErrJobNotDone, id, st)
	}
	data, err := os.ReadFile(s.tracePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s recorded no trace", ErrUnknownJob, id)
		}
		return nil, fmt.Errorf("service: reading trace: %w", err)
	}
	return data, nil
}

// Subscribe attaches to a job's live event stream. The returned channel
// yields sequenced marshaled telemetry/job-state event lines and closes
// when the job reaches a terminal state (or the service shuts down);
// cancel detaches early. since > 0 resumes after that sequence number
// (an SSE client's Last-Event-ID), replaying the retained newer frames;
// 0 subscribes fresh.
func (s *Service) Subscribe(id string, since uint64) (<-chan frame, func(), error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	ch, cancel := j.b.subscribeSince(since)
	return ch, cancel, nil
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the service: new submissions are rejected, every
// running campaign is canceled (each writes a final checkpoint at its
// next shard boundary), and Shutdown waits for them to settle or ctx to
// expire. Pending and interrupted jobs stay on disk as pending; a new
// Service over the same directory resumes them.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		s.cancel() // cancels every job context
		go func() {
			s.wg.Wait()
			close(s.drained)
		}()
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// progressSink captures live progress for status queries and metrics,
// and republishes each event to SSE subscribers. It runs on the
// engine's dispatcher goroutine, so it only snapshots and enqueues.
func (s *Service) progressSink(j *job) core.ProgressSink {
	return func(p core.Progress) {
		j.pmu.Lock()
		j.prog = p
		j.hasProg = true
		j.pmu.Unlock()
		j.b.publishJSON(telemetry.FromProgress(j.id, p))
	}
}

// traceSink republishes engine trace events to SSE subscribers.
func (s *Service) traceSink(j *job) core.TraceSink {
	return func(ev core.TraceEvent) {
		j.b.publishJSON(telemetry.FromTrace(j.id, ev))
	}
}

// traceBuffer sizes each job tracer's event queue; events arrive at
// shard cadence, so this absorbs any realistic disk stall.
const traceBuffer = 1024

// openTrace starts the job's on-disk JSONL trace, replacing any earlier
// attempt's file (a resumed run restarts the trace; its campaign_start
// Restored field records the checkpointed prefix). A federated part job
// opens with the part_meta correlation prologue, written synchronously
// so it precedes every engine event. Trace failures degrade to a
// warning — observability must never fail a campaign — so the returned
// tracer may be nil; close is always safe to call.
func (s *Service) openTrace(j *job) (tr *telemetry.Tracer, close func()) {
	f, err := os.Create(s.tracePath(j.id))
	if err != nil {
		s.warnf("job %s: trace: %v", j.id, err)
		return nil, func() {}
	}
	if j.spec.FederatedJob != "" && j.spec.FederatedPart != nil {
		pm := telemetry.PartMeta(j.spec.Name, j.spec.FederatedJob, *j.spec.FederatedPart,
			j.spec.FederatedMember, j.spec.Ranges)
		if data, err := json.Marshal(pm); err == nil {
			if _, err := f.Write(append(data, '\n')); err != nil {
				s.warnf("job %s: trace: %v", j.id, err)
			}
		}
	}
	tr = telemetry.NewTracer(f, traceBuffer)
	return tr, func() {
		if err := tr.Close(); err != nil {
			s.warnf("job %s: trace: %v", j.id, err)
		}
		if err := f.Close(); err != nil {
			s.warnf("job %s: trace: %v", j.id, err)
		}
	}
}

func (s *Service) registerServiceMetrics() {
	s.submitted = s.reg.Counter("sfid_submitted_total", "Campaigns accepted for scheduling.")
	s.rejected = s.reg.Counter("sfid_rejected_total", "Submissions rejected by queue backpressure.")
	s.retries = s.reg.Counter("sfid_retries_total", "Fleet RPC retries scheduled by the resilience layer.")
	s.specParts = s.reg.Counter("sfid_speculative_parts_total", "Speculative duplicate dispatches of straggling federated draw windows.")
	s.stateWriteErrs = s.reg.Counter("sfid_state_write_errors_total", "Durable-state atomic write failures (job records, member registry, federation documents, results).")
	s.reg.GaugeFunc("sfid_workers_total", "Size of the shared worker-token pool.",
		func() float64 { return float64(s.cfg.TotalWorkers) })
	s.reg.GaugeFunc("sfid_workers_free", "Worker tokens currently unclaimed.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.free) })
	s.reg.GaugeFunc("sfid_queue_length", "Jobs waiting in the pending queue.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.queue)) })
	s.reg.GaugeFunc("sfid_members_alive", "Registered member daemons within the heartbeat timeout (coordinator only).",
		func() float64 { return float64(len(s.aliveMembers())) })
	s.reg.CounterFunc("sfid_sse_dropped_total", "Interior SSE frames dropped to slow subscribers, summed across jobs.",
		func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var n int64
			for _, j := range s.order {
				n += j.b.drops()
			}
			return n
		})
	for _, st := range []JobState{StatePending, StateRunning, StateCompleted, StateFailed, StateCanceled} {
		st := st
		s.reg.LabeledGaugeFunc("sfid_jobs", "Jobs by lifecycle state.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				n := 0
				for _, j := range s.order {
					if j.state == st {
						n++
					}
				}
				return float64(n)
			}, telemetry.Label{Name: "state", Value: string(st)})
	}
}

// registerJobMetrics adds the job's labeled per-campaign series. Jobs
// are never unregistered: a campaign's final tallies stay scrapeable
// for the daemon's lifetime, which is what dashboards want.
func (s *Service) registerJobMetrics(j *job) {
	label := telemetry.Label{Name: "campaign", Value: j.id}
	s.reg.LabeledGaugeFunc("sfid_campaign_done_injections", "Injections tallied by the campaign.",
		func() float64 { done, _, _ := s.tallies(j); return float64(done) }, label)
	s.reg.LabeledGaugeFunc("sfid_campaign_critical", "Critical faults observed by the campaign.",
		func() float64 { _, crit, _ := s.tallies(j); return float64(crit) }, label)
	s.reg.LabeledGaugeFunc("sfid_campaign_rate", "Campaign throughput in injections per second.",
		func() float64 { _, _, rate := s.tallies(j); return rate }, label)
}

// tallies returns the freshest (done, critical, rate) for a job: the
// live progress snapshot while running, the persisted final tallies
// otherwise.
func (s *Service) tallies(j *job) (done, critical int64, rate float64) {
	s.mu.Lock()
	running := j.state == StateRunning
	done, critical = j.done, j.critical
	s.mu.Unlock()
	if running {
		j.pmu.Lock()
		if j.hasProg {
			done, critical, rate = j.prog.Done, j.prog.Critical, j.prog.Rate
		}
		j.pmu.Unlock()
	}
	return done, critical, rate
}
