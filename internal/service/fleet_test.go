package service_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnnsfi/internal/service"
)

// TestFleetViewAndMetrics is the metrics-federation anchor: a
// coordinator scraping two live members rolls their per-campaign
// tallies up into sfid_fleet_injections_total (converging on exactly
// the planned draw count — the high-water fold neither double-counts
// nor loses work), re-exports per-member health on its own /metrics,
// serves the same view over /api/v1/fleet, and marks a killed member
// down with a bumped scrape-error counter. Non-coordinators refuse the
// fleet view outright.
func TestFleetViewAndMetrics(t *testing.T) {
	dir := t.TempDir()
	cfg := coordConfig(dir, time.Hour)
	cfg.ScrapeInterval = 20 * time.Millisecond
	coord, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)
	coordSrv := httptest.NewServer(service.NewMux(coord))
	defer coordSrv.Close()

	nodes := make([]*fedNode, 2)
	for i := range nodes {
		nodes[i] = startNode(t, memberConfig(4, nil))
		if _, err := coord.RegisterMember(nodes[i].srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	defer nodes[0].stop(t) // nodes[1] is killed mid-test below

	s := fullSpec("data-aware", 0.05)
	s.Workers = 1
	s.Federated = true
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, coord, st.ID, service.StateCompleted)
	if final.Planned == 0 || final.Done != final.Planned {
		t.Fatalf("campaign finished %d/%d, want a complete nonzero tally", final.Done, final.Planned)
	}

	// Members keep their final part tallies scrapeable after completion,
	// so the fleet counter must converge on exactly the planned total —
	// overshoot means double-counting, undershoot means lost deltas.
	var fs service.FleetStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		fs, err = coord.Fleet()
		if err != nil {
			t.Fatal(err)
		}
		if fs.FleetInjectionsTotal == final.Planned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet injections total = %d, want %d", fs.FleetInjectionsTotal, final.Planned)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(fs.Members) != 2 {
		t.Fatalf("fleet view has %d members, want 2", len(fs.Members))
	}
	for _, m := range fs.Members {
		if !m.Up || m.ScrapeErrors != 0 {
			t.Errorf("member %s: up=%v scrapeErrors=%d, want a healthy scrape", m.Member.ID, m.Up, m.ScrapeErrors)
		}
	}

	// The coordinator's own exposition re-exports member health and the
	// fleet roll-up under stable series names.
	body := httpGetBody(t, coordSrv.URL+"/metrics")
	for _, want := range []string{
		`sfid_member_up{member="m0001",name="node-0"} 1`,
		`sfid_member_up{member="m0002",name="node-1"} 1`,
		fmt.Sprintf("sfid_fleet_injections_total %d", final.Planned),
		"sfid_member_heartbeat_age_seconds{",
		"sfid_member_queue_length{",
		"sfid_member_scrape_errors_total{",
		"sfid_fleet_rate ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	// The HTTP fleet view serves the same status.
	var httpFS service.FleetStatus
	if err := json.Unmarshal([]byte(httpGetBody(t, coordSrv.URL+"/api/v1/fleet")), &httpFS); err != nil {
		t.Fatal(err)
	}
	if len(httpFS.Members) != 2 || httpFS.FleetInjectionsTotal != final.Planned {
		t.Errorf("GET /api/v1/fleet = %d members, %d injections; want 2 members, %d injections",
			len(httpFS.Members), httpFS.FleetInjectionsTotal, final.Planned)
	}

	// Kill a member: it stays within the heartbeat timeout (an hour), so
	// the scraper keeps polling it, fails, and marks it down without
	// disturbing the accumulated total.
	nodes[1].stop(t)
	deadline = time.Now().Add(30 * time.Second)
	for {
		fs, err = coord.Fleet()
		if err != nil {
			t.Fatal(err)
		}
		var down *service.FleetMember
		for i := range fs.Members {
			if fs.Members[i].Member.Name == "node-1" {
				down = &fs.Members[i]
			}
		}
		if down == nil {
			t.Fatal("killed member vanished from the fleet view")
		}
		if !down.Up && down.ScrapeErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed member never went down: %+v", *down)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fs.FleetInjectionsTotal != final.Planned {
		t.Errorf("fleet injections total drifted to %d after member death, want %d",
			fs.FleetInjectionsTotal, final.Planned)
	}
	if body := httpGetBody(t, coordSrv.URL+"/metrics"); !strings.Contains(body,
		`sfid_member_up{member="m0002",name="node-1"} 0`) {
		t.Error("coordinator /metrics does not report the killed member down")
	}

	// Members have no fleet to report.
	if _, err := nodes[0].svc.Fleet(); !errors.Is(err, service.ErrNotCoordinator) {
		t.Errorf("member Fleet() = %v, want ErrNotCoordinator", err)
	}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}
