package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseMetricLine pins the scraper's tolerance: well-formed samples
// parse exactly, everything else — comments, blanks, junk, truncated
// label blocks — is rejected with ok=false, never a panic.
func TestParseMetricLine(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		labels map[string]string
		value  float64
		ok     bool
	}{
		{line: "sfid_queue_length 3", name: "sfid_queue_length", value: 3, ok: true},
		{line: "  sfid_workers_free 8  ", name: "sfid_workers_free", value: 8, ok: true},
		{line: "sfid_fleet_rate 123.5", name: "sfid_fleet_rate", value: 123.5, ok: true},
		{line: `sfid_campaign_rate{campaign="j000001"} 250`, name: "sfid_campaign_rate",
			labels: map[string]string{"campaign": "j000001"}, value: 250, ok: true},
		{line: `m{a="x",b="y"} 1`, name: "m", labels: map[string]string{"a": "x", "b": "y"}, value: 1, ok: true},
		{line: `m{a="with \"quotes\" and \\ and \n"} 2`, name: "m",
			labels: map[string]string{"a": "with \"quotes\" and \\ and \n"}, value: 2, ok: true},
		{line: `m{empty=""} 0`, name: "m", labels: map[string]string{"empty": ""}, value: 0, ok: true},
		{line: "", ok: false},
		{line: "   ", ok: false},
		{line: "# HELP sfid_queue_length pending campaigns", ok: false},
		{line: "# TYPE sfid_queue_length gauge", ok: false},
		{line: "just_a_name", ok: false},
		{line: "name not_a_number", ok: false},
		{line: `m{a="unterminated 1`, ok: false},
		{line: `m{a=unquoted} 1`, ok: false},
		{line: `m{a="x" 1`, ok: false},
	}
	for _, tc := range cases {
		name, labels, v, ok := parseMetricLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseMetricLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != tc.name || v != tc.value || !reflect.DeepEqual(labels, tc.labels) {
			t.Errorf("parseMetricLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				tc.line, name, labels, v, tc.name, tc.labels, tc.value)
		}
	}
}

// TestScrapeMemberHighWater drives scrapeMember against a scripted
// member endpoint and pins the fold: queue and rates track the latest
// scrape, the fleet injections counter accumulates per-campaign
// high-water deltas (a tally below the high-water means the member
// restarted, so the fresh count is all new work), and a scrape failure
// marks the member down with a bumped error counter — the coordinator
// itself never errors.
func TestScrapeMemberHighWater(t *testing.T) {
	var body atomic.Value
	body.Store("")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body.Load().(string))
	}))
	defer srv.Close()

	// A quiet scrape loop (hour-long interval) so only the explicit
	// scrapeMember calls below touch the fleet state.
	s, err := New(Config{Dir: t.TempDir(), Coordinator: true,
		MemberTimeout: time.Hour, ScrapeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	m, err := s.RegisterMember(srv.URL, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap := func() memberScrape {
		s.fleet.mu.Lock()
		defer s.fleet.mu.Unlock()
		return *s.fleet.memberLocked(m.ID)
	}
	total := func() float64 {
		s.fleet.mu.Lock()
		defer s.fleet.mu.Unlock()
		return s.fleet.injTotal
	}

	body.Store("# HELP sfid_queue_length pending\n" +
		"sfid_queue_length 2\n" +
		`sfid_campaign_rate{campaign="j000001"} 100` + "\n" +
		`sfid_campaign_done_injections{campaign="j000001"} 150` + "\n")
	s.scrapeMember(ctx, m)
	st := snap()
	if !st.up || st.queueLen != 2 || st.rates["j000001"] != 100 {
		t.Errorf("first scrape = %+v, want up with queue 2 and rate 100", st)
	}
	if got := total(); got != 150 {
		t.Errorf("injTotal after first scrape = %v, want 150", got)
	}

	// Progress: only the delta lands.
	body.Store(`sfid_campaign_done_injections{campaign="j000001"} 400` + "\n")
	s.scrapeMember(ctx, m)
	if got := total(); got != 400 {
		t.Errorf("injTotal after progress = %v, want 400", got)
	}
	// Unchanged tally adds nothing; the stale rate is gone from the view.
	s.scrapeMember(ctx, m)
	if got := total(); got != 400 {
		t.Errorf("injTotal after no-op scrape = %v, want 400", got)
	}
	if st := snap(); len(st.rates) != 0 {
		t.Errorf("rates after a scrape without rate samples = %v, want empty", st.rates)
	}

	// Member restart: the tally fell below the high-water, so the fresh
	// count is new work and the total stays monotone.
	body.Store(`sfid_campaign_done_injections{campaign="j000001"} 30` + "\n")
	s.scrapeMember(ctx, m)
	if got := total(); got != 430 {
		t.Errorf("injTotal after member reset = %v, want 430", got)
	}

	// Scrape failure: down + counted, total untouched.
	srv.Close()
	s.scrapeMember(ctx, m)
	st = snap()
	if st.up || st.scrapeErrs != 1 {
		t.Errorf("after failed scrape up=%v errs=%d, want down with 1 error", st.up, st.scrapeErrs)
	}
	if got := total(); got != 430 {
		t.Errorf("injTotal after failed scrape = %v, want 430 (unchanged)", got)
	}

	// A member outside the heartbeat timeout is marked down without
	// being polled at all.
	dead := m
	dead.Alive = false
	s.scrapeMember(ctx, dead)
	if st := snap(); st.up {
		t.Error("dead member still marked up")
	}
}
