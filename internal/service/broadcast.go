package service

import (
	"encoding/json"
	"sync"
)

// broadcaster fans one job's event stream out to any number of
// subscribers (SSE connections). Publishing is non-blocking: it runs on
// the engine's dispatcher goroutine, so a slow subscriber loses
// interior events rather than stalling the campaign. Terminal state is
// still delivered reliably — close hands every subscriber one final
// event line before closing its channel, and the HTTP layer re-reads
// the job status after the stream ends.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
	final  []byte // the closing event, replayed to late subscribers
}

// subBuffer sizes each subscriber channel. Events arrive at shard
// cadence, so a few hundred absorbs any realistic scrape stall.
const subBuffer = 256

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan []byte]struct{})}
}

// subscribe returns a channel of marshaled event lines and a detach
// function. On an already-closed broadcaster the channel arrives
// holding the final event and immediately closed.
func (b *broadcaster) subscribe() (chan []byte, func()) {
	ch := make(chan []byte, subBuffer)
	b.mu.Lock()
	if b.closed {
		if b.final != nil {
			ch <- b.final
		}
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// publishJSON marshals v once and offers it to every subscriber,
// dropping per-subscriber on a full buffer. Marshaling is skipped
// entirely when nobody is listening.
func (b *broadcaster) publishJSON(v any) {
	b.mu.Lock()
	if b.closed || len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		b.mu.Unlock()
		return
	}
	for ch := range b.subs {
		select {
		case ch <- line:
		default:
		}
	}
	b.mu.Unlock()
}

// close delivers the final event (best effort per subscriber; the
// buffered channel makes loss only possible after 256 unread events)
// and closes every subscriber channel. Idempotent.
func (b *broadcaster) close(final any) {
	line, _ := json.Marshal(final)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.final = line
	for ch := range b.subs {
		if line != nil {
			select {
			case ch <- line:
			default:
			}
		}
		close(ch)
	}
	b.subs = nil
	b.mu.Unlock()
}
