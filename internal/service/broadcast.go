package service

import (
	"encoding/json"
	"sync"
)

// frame is one published event line stamped with the broadcaster's
// monotone sequence number. The sequence is what SSE clients echo back
// as Last-Event-ID, letting a reconnect resume from the replay ring
// instead of silently skipping whatever was published while the
// connection was down.
type frame struct {
	seq  uint64
	line []byte
}

// broadcaster fans one job's event stream out to any number of
// subscribers (SSE connections). Publishing is non-blocking: it runs on
// the engine's dispatcher goroutine, so a slow subscriber loses
// interior events — counted in dropped — rather than stalling the
// campaign. Terminal state is still delivered reliably: close evicts a
// buffered interior frame if a subscriber is full, so the final event
// always lands, and late subscribers get it replayed.
type broadcaster struct {
	mu      sync.Mutex
	subs    map[chan frame]struct{}
	closed  bool
	final   *frame // the closing event, replayed to late subscribers
	seq     uint64 // last assigned sequence number
	ring    []frame
	dropped int64 // interior frames lost to slow subscribers
}

// subBuffer sizes each subscriber channel. Events arrive at shard
// cadence, so a few hundred absorbs any realistic scrape stall.
const subBuffer = 256

// ringSize bounds the replay window. Matching subBuffer means a replay
// always fits a fresh subscriber channel without dropping.
const ringSize = subBuffer

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan frame]struct{})}
}

// pushRingLocked appends f to the replay ring, evicting the oldest
// frame once the window is full.
func (b *broadcaster) pushRingLocked(f frame) {
	if len(b.ring) == ringSize {
		copy(b.ring, b.ring[1:])
		b.ring[len(b.ring)-1] = f
		return
	}
	b.ring = append(b.ring, f)
}

// ResyncEvent is the SSE frame injected when a reconnecting client's
// Last-Event-ID predates the replay ring: the window between the
// client's cursor and the ring's oldest retained frame was evicted, so
// replay alone cannot restore continuity. Kind is always "resync"; a
// consumer keeping derived tallies should re-fetch the job status
// instead of trusting its stale cursor. Missed counts the evicted
// frames.
type ResyncEvent struct {
	Kind   string `json:"kind"`
	Missed uint64 `json:"missed_frames"`
}

// KindResync is the Kind value of ResyncEvent.
const KindResync = "resync"

// replayLocked queues every retained frame newer than since onto ch,
// prefixed with an explicit resync marker when the gap between since
// and the ring's tail was evicted — a gap must never be silent. The
// marker carries seq 0 so the client's Last-Event-ID cursor is not
// advanced past frames it never saw. The ring plus marker never
// exceeds ch's buffer, so the sends cannot block.
func (b *broadcaster) replayLocked(ch chan frame, since uint64) {
	if len(b.ring) > 0 && b.ring[0].seq > since+1 {
		ev := ResyncEvent{Kind: KindResync, Missed: b.ring[0].seq - since - 1}
		if line, err := json.Marshal(ev); err == nil {
			ch <- frame{seq: 0, line: line}
		}
	}
	for _, f := range b.ring {
		if f.seq > since {
			ch <- f
		}
	}
}

// subscribeSince returns a channel of sequenced event frames and a
// detach function. since > 0 resumes after that sequence number,
// replaying retained newer frames first (a reconnecting client's
// Last-Event-ID); since == 0 is a fresh subscription with no replay.
// On an already-closed broadcaster the channel arrives pre-loaded — the
// replay for resumers, the final frame for fresh subscribers — and
// immediately closed.
func (b *broadcaster) subscribeSince(since uint64) (chan frame, func()) {
	// One extra slot beyond the ring: a replay may be prefixed by the
	// eviction-gap resync marker.
	ch := make(chan frame, subBuffer+1)
	b.mu.Lock()
	if b.closed {
		if since > 0 {
			b.replayLocked(ch, since)
		} else if b.final != nil {
			ch <- *b.final
		}
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	if since > 0 {
		b.replayLocked(ch, since)
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// publishJSON marshals v once, retains it for replay, and offers it to
// every subscriber, dropping per-subscriber (counted) on a full buffer.
func (b *broadcaster) publishJSON(v any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	b.seq++
	f := frame{seq: b.seq, line: line}
	b.pushRingLocked(f)
	for ch := range b.subs {
		select {
		case ch <- f:
		default:
			b.dropped++
		}
	}
}

// drops returns how many interior frames were lost to slow subscribers.
func (b *broadcaster) drops() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// close delivers the final event and closes every subscriber channel.
// Unlike interior publishes, delivery is guaranteed: a full subscriber
// has its oldest buffered frame evicted (counted as dropped) to make
// room — publishes are serialized under mu, so the freed slot cannot be
// stolen. Idempotent.
func (b *broadcaster) close(final any) {
	line, _ := json.Marshal(final)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	if line != nil {
		b.seq++
		f := frame{seq: b.seq, line: line}
		b.final = &f
		b.pushRingLocked(f)
		for ch := range b.subs {
			select {
			case ch <- f:
			default:
				select {
				case <-ch:
					b.dropped++
				default:
				}
				select {
				case ch <- f:
				default:
				}
			}
		}
	}
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
	b.mu.Unlock()
}
