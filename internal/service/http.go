package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Route documents one HTTP endpoint. Routes is the single source of
// truth: NewMux registers handlers by iterating it (an endpoint without
// a handler panics at construction), and a test asserts every entry
// appears in docs/API.md — so the implemented and documented surfaces
// cannot drift apart.
type Route struct {
	Method  string
	Pattern string
	Summary string
}

// Routes returns the full endpoint table of an sfid server.
func Routes() []Route {
	return []Route{
		{"GET", "/healthz", "Liveness and drain state"},
		{"POST", "/api/v1/campaigns", "Submit a campaign"},
		{"GET", "/api/v1/campaigns", "List all campaigns"},
		{"GET", "/api/v1/campaigns/{id}", "Fetch one campaign's status"},
		{"DELETE", "/api/v1/campaigns/{id}", "Cancel a campaign"},
		{"GET", "/api/v1/campaigns/{id}/result", "Fetch a completed campaign's Result document"},
		{"GET", "/api/v1/campaigns/{id}/trace", "Fetch a terminal campaign's JSONL trace"},
		{"GET", "/api/v1/campaigns/{id}/events", "Stream campaign events (SSE)"},
		{"POST", "/api/v1/members", "Register (or refresh) a member daemon"},
		{"GET", "/api/v1/members", "List registered members"},
		{"POST", "/api/v1/members/{id}/heartbeat", "Refresh a member's liveness"},
		{"GET", "/api/v1/fleet", "Live fleet view: members, health, and running parts"},
		{"GET", "/metrics", "Prometheus metrics with per-campaign labels"},
		{"GET", "/debug/pprof/", "Go profiling endpoints"},
	}
}

// NewMux builds the sfid HTTP handler over s, mounting exactly the
// endpoints Routes declares (plus the pprof sub-handlers under the
// documented /debug/pprof/ subtree).
func NewMux(s *Service) *http.ServeMux {
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":                        s.handleHealthz,
		"POST /api/v1/campaigns":              s.handleSubmit,
		"GET /api/v1/campaigns":               s.handleList,
		"GET /api/v1/campaigns/{id}":          s.handleGet,
		"DELETE /api/v1/campaigns/{id}":       s.handleCancel,
		"GET /api/v1/campaigns/{id}/result":   s.handleResult,
		"GET /api/v1/campaigns/{id}/trace":    s.handleTrace,
		"GET /api/v1/campaigns/{id}/events":   s.handleEvents,
		"POST /api/v1/members":                s.handleMemberRegister,
		"GET /api/v1/members":                 s.handleMemberList,
		"POST /api/v1/members/{id}/heartbeat": s.handleMemberHeartbeat,
		"GET /api/v1/fleet":                   s.handleFleet,
		"GET /metrics":                        s.reg.Handler().ServeHTTP,
		"GET /debug/pprof/":                   pprof.Index,
	}
	mux := http.NewServeMux()
	for _, rt := range Routes() {
		key := rt.Method + " " + rt.Pattern
		h, ok := handlers[key]
		if !ok {
			panic("service: route without handler: " + key)
		}
		mux.HandleFunc(key, h)
	}
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the JSON error envelope of every non-2xx API response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v) // past the header this is a client write failure
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitCode maps a Submit error to its HTTP status.
func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding campaign spec: %v", err)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, submitCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"campaigns": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrJobDone):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	data, err := s.Result(r.PathValue("id"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data) // the exact WriteJSON bytes, byte-identical to sfirun
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrJobNotDone):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := s.Trace(r.PathValue("id"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write(data)
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrJobNotDone):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleFleet(w http.ResponseWriter, _ *http.Request) {
	fs, err := s.Fleet()
	if err != nil {
		writeError(w, memberCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// memberCode maps a federation-registry error to its HTTP status: a
// non-coordinator answers 409 (the daemon exists but does not play that
// role), an unknown member 404 (the signal for the member's Join loop
// to re-register after a coordinator restart).
func memberCode(err error) int {
	switch {
	case errors.Is(err, ErrNotCoordinator):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownMember):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Service) handleMemberRegister(w http.ResponseWriter, r *http.Request) {
	var reg memberRegistration
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, "decoding member registration: %v", err)
		return
	}
	st, err := s.RegisterMember(reg.URL, reg.Name)
	if err != nil {
		writeError(w, memberCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleMemberList(w http.ResponseWriter, _ *http.Request) {
	members, err := s.Members()
	if err != nil {
		writeError(w, memberCode(err), "%v", err)
		return
	}
	if members == nil {
		members = []MemberStatus{}
	}
	writeJSON(w, http.StatusOK, map[string][]MemberStatus{"members": members})
}

func (s *Service) handleMemberHeartbeat(w http.ResponseWriter, r *http.Request) {
	st, err := s.MemberHeartbeat(r.PathValue("id"))
	if err != nil {
		writeError(w, memberCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's events as Server-Sent Events: one
// `id: <seq>` + `data: <json>` frame per event, where the payload is
// either a telemetry.Event (progress and trace kinds) or a
// JobStateEvent (lifecycle transitions). The stream opens with a
// job_state snapshot (no id — it is synthesized, not part of the
// sequence), closes with the terminal job_state event, and ends when
// the job finishes, the client disconnects, or the service drains. A
// reconnecting client sends the standard Last-Event-ID header with the
// last id it saw; frames newer than it are replayed from the retained
// window, so a dropped connection resumes without losing recent events.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var since uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			since = n
		}
	}
	ch, cancel, err := s.Subscribe(id, since)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(f frame) bool {
		if f.seq > 0 {
			if _, err := fmt.Fprintf(w, "id: %d\n", f.seq); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", f.line); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	snapshot, _ := json.Marshal(JobStateEvent{
		Kind: KindJobState, ID: st.ID, Name: st.Name, State: st.State,
		Error: st.Error, Planned: st.Planned, Done: st.Done, Critical: st.Critical,
	})
	if !send(frame{line: snapshot}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case f, open := <-ch:
			if !open {
				return
			}
			if !send(f) {
				return
			}
		}
	}
}
