package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cnnsfi/internal/core"
)

// State directory layout — one triplet per job, keyed by job ID:
//
//	<dir>/<id>.job.json     job record (spec + lifecycle state)
//	<dir>/<id>.ckpt[.bak]   engine checkpoint v2 (while interrupted)
//	<dir>/<id>.result.json  final Result document (once completed)
//	<dir>/<id>.trace.jsonl  JSONL campaign trace (rebuilt on each start)
//
// The job record is the scheduler's durable state; the checkpoint is
// the engine's. Between the two, a killed daemon loses at most the
// injections evaluated since the last checkpoint interval — and
// re-evaluates none of the checkpointed prefix on restart.
//
// A coordinator additionally keeps <dir>/members.json (the durable
// member registry) and, per federated job, <id>.fed.json plus the
// fetched <id>.partK.result.json / <id>.partK.trace.jsonl part
// documents; the part traces are spliced into <id>.trace.jsonl when the
// merge completes.

func (s *Service) jobPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".job.json")
}
func (s *Service) checkpointPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".ckpt")
}
func (s *Service) resultPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".result.json")
}
func (s *Service) tracePath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".trace.jsonl")
}

// atomicWrite commits data to path via the tmp + rename idiom every
// durable-state file uses. Failures (ENOSPC, permissions, a vanished
// state dir) bump sfid_state_write_errors_total so a quietly read-only
// daemon is visible on dashboards, not just in its log.
func (s *Service) atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	err := os.WriteFile(tmp, data, 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil && s.stateWriteErrs != nil {
		s.stateWriteErrs.Inc()
	}
	return err
}

// jobRecord is the on-disk schema of one job. Timestamps are UTC;
// tallies are the last persisted values (live progress is not flushed
// per event — the checkpoint holds the authoritative cursor).
type jobRecord struct {
	ID          string       `json:"id"`
	Seq         int64        `json:"seq"`
	Spec        CampaignSpec `json:"spec"`
	State       JobState     `json:"state"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   time.Time    `json:"started_at"`
	FinishedAt  time.Time    `json:"finished_at"`
	Error       string       `json:"error,omitempty"`
	Planned     int64        `json:"planned_injections,omitempty"`
	Done        int64        `json:"done_injections,omitempty"`
	Critical    int64        `json:"critical,omitempty"`
	Abandoned   int64        `json:"abandoned_lanes,omitempty"`
	Warnings    []string     `json:"warnings,omitempty"`
}

// persistLocked writes j's record atomically (tmp + rename). Caller
// holds s.mu.
func (s *Service) persistLocked(j *job) error {
	rec := jobRecord{
		ID:          j.id,
		Seq:         j.seq,
		Spec:        j.spec,
		State:       j.state,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		Error:       j.errMsg,
		Planned:     j.planned,
		Done:        j.done,
		Critical:    j.critical,
		Abandoned:   j.abandoned,
		Warnings:    j.warnings,
	}
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding job %s: %w", j.id, err)
	}
	if err := s.atomicWrite(s.jobPath(j.id), append(data, '\n')); err != nil {
		// Surface the failure on the job itself (deduplicated against an
		// identical immediately-preceding notice): the warning rides in
		// memory and reaches disk with the next successful persist.
		msg := fmt.Sprintf("state write failed: %v", err)
		if n := len(j.warnings); n == 0 || j.warnings[n-1] != msg {
			j.warnings = append(j.warnings, msg)
		}
		return fmt.Errorf("service: writing job %s: %w", j.id, err)
	}
	return nil
}

// recover loads every persisted job from the state directory. Terminal
// jobs become queryable as-is; pending and interrupted-while-running
// jobs re-enter the queue (their checkpoints make the restart
// re-evaluate nothing). Unreadable records are skipped with a warning —
// one corrupt file must not take the whole fleet down.
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("service: scanning state dir: %w", err)
	}
	var recovered []*job
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.Dir, name))
		if err != nil {
			s.warnf("recover: %v", err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			s.warnf("recover: %s: %v", name, err)
			continue
		}
		if rec.ID == "" || rec.ID+".job.json" != name {
			s.warnf("recover: %s: record id %q does not match filename", name, rec.ID)
			continue
		}
		j := &job{
			id:          rec.ID,
			seq:         rec.Seq,
			spec:        rec.Spec,
			state:       rec.State,
			submittedAt: rec.SubmittedAt,
			startedAt:   rec.StartedAt,
			finishedAt:  rec.FinishedAt,
			errMsg:      rec.Error,
			planned:     rec.Planned,
			done:        rec.Done,
			critical:    rec.Critical,
			abandoned:   rec.Abandoned,
			warnings:    rec.Warnings,
			b:           newBroadcaster(),
		}
		if j.state == StateRunning {
			// The previous daemon died (or drained) mid-campaign: requeue.
			j.state = StatePending
			j.startedAt = time.Time{}
		}
		if j.state == StatePending {
			if info, err := core.ReadCheckpointInfo(s.checkpointPath(j.id)); err == nil {
				j.restored = info.Injections
				j.done = info.Injections
			}
		}
		recovered = append(recovered, j)
	}
	sort.Slice(recovered, func(i, k int) bool { return recovered[i].seq < recovered[k].seq })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range recovered {
		if j.seq >= s.nextSeq {
			s.nextSeq = j.seq + 1
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.registerJobMetrics(j)
		if j.state == StatePending {
			s.enqueueLocked(j)
			if err := s.persistLocked(j); err != nil {
				s.warnf("recover: %v", err)
			}
		} else {
			j.b.close(s.stateEventLocked(j))
		}
	}
	return nil
}

// writeResult persists the final Result document atomically, in the
// exact WriteJSON byte form sfirun produces.
func (s *Service) writeResult(id string, res *core.Result) error {
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return fmt.Errorf("service: writing result: %w", err)
	}
	if err := s.atomicWrite(s.resultPath(id), buf.Bytes()); err != nil {
		return fmt.Errorf("service: committing result: %w", err)
	}
	return nil
}

// JobStatus is the externally visible snapshot of one job — the JSON
// body of the status endpoints and of sfictl status/list output.
type JobStatus struct {
	ID    string       `json:"id"`
	Name  string       `json:"name"`
	State JobState     `json:"state"`
	Spec  CampaignSpec `json:"spec"`
	// QueuePosition is the 1-based place in the pending queue; 0 once
	// the job has left it.
	QueuePosition int `json:"queue_position,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt are UTC; the zero time
	// ("0001-01-01T00:00:00Z") means "not yet".
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Error is the failure (or cancellation) reason for terminal states.
	Error string `json:"error,omitempty"`
	// Planned is the plan's total injection count (0 until the job first
	// starts); Done/Critical are the freshest tallies; Restored is the
	// checkpointed prefix the latest start resumed without re-evaluating.
	Planned  int64   `json:"planned_injections,omitempty"`
	Done     int64   `json:"done_injections"`
	Critical int64   `json:"critical"`
	Rate     float64 `json:"rate,omitempty"`
	Restored int64   `json:"restored_injections,omitempty"`
	// AbandonedLanes counts the watchdog-abandoned experiment lanes the
	// job accumulated (summed across members for a federated job).
	AbandonedLanes int64 `json:"abandoned_lanes,omitempty"`
	// Warnings are the job's operational notices — today, a federated
	// coordinator's range reassignments and per-member abandoned-lane
	// reports.
	Warnings []string `json:"warnings,omitempty"`
}

// statusLocked snapshots j. Caller holds s.mu.
func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		State:       j.state,
		Spec:        j.spec,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		Error:       j.errMsg,
		Planned:     j.planned,
		Done:        j.done,
		Critical:    j.critical,
		Restored:    j.restored,
	}
	st.AbandonedLanes = j.abandoned
	st.Warnings = append([]string(nil), j.warnings...)
	if j.state == StatePending {
		for i, q := range s.queue {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
	}
	if j.state == StateRunning {
		j.pmu.Lock()
		if j.hasProg {
			st.Done = j.prog.Done
			st.Critical = j.prog.Critical
			st.Rate = j.prog.Rate
			if j.prog.AbandonedLanes > st.AbandonedLanes {
				st.AbandonedLanes = j.prog.AbandonedLanes
			}
		}
		j.pmu.Unlock()
	}
	return st
}

// JobStateEvent is the service-level SSE event marking a lifecycle
// transition; engine progress and trace events use the telemetry.Event
// schema. Kind is always "job_state".
type JobStateEvent struct {
	Kind     string   `json:"kind"`
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Planned  int64    `json:"planned_injections,omitempty"`
	Done     int64    `json:"done_injections"`
	Critical int64    `json:"critical"`
}

// KindJobState is the Kind value of JobStateEvent.
const KindJobState = "job_state"

func (s *Service) stateEvent(j *job) JobStateEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateEventLocked(j)
}

func (s *Service) stateEventLocked(j *job) JobStateEvent {
	return JobStateEvent{
		Kind:     KindJobState,
		ID:       j.id,
		Name:     j.spec.Name,
		State:    j.state,
		Error:    j.errMsg,
		Planned:  j.planned,
		Done:     j.done,
		Critical: j.critical,
	}
}
