package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cnnsfi/internal/resilience"
)

// This file is the resilient RPC seam between fleet peers: every
// coordinator→member call (dispatch, poll, cancel, result/trace fetch,
// metrics scrape) and every member→coordinator call (register,
// heartbeat) goes through one memberClient, which layers per-attempt
// deadlines, retries with exponential backoff + full jitter under a
// shared budget, and a per-peer three-state circuit breaker over a
// plain http.Client. The engine hot path never touches any of this —
// resilience wraps RPCs only.

// fatalMemberError marks a member response that retrying cannot fix
// (spec rejected, job unknown, job failed); transport errors and
// server-side 5xx/429 stay retryable.
type fatalMemberError struct{ msg string }

func (e *fatalMemberError) Error() string { return e.msg }

// memberClient is the fleet-facing HTTP client. Control RPCs get one
// rpcTimeout per attempt; document fetches (results and traces can be
// large) get six.
type memberClient struct {
	http       *http.Client
	rpcTimeout time.Duration
	group      *resilience.Group
}

// newMemberClient assembles the client: transport (nil for the
// default; tests and the -chaos flag inject fault layers here),
// per-attempt timeout, breaker shape, and an optional retry observer.
func newMemberClient(transport http.RoundTripper, rpcTimeout time.Duration,
	breakerThreshold int, breakerOpenFor time.Duration, onRetry func(attempt int, err error)) *memberClient {
	if rpcTimeout <= 0 {
		rpcTimeout = 5 * time.Second
	}
	if breakerThreshold <= 0 {
		breakerThreshold = 5
	}
	if breakerOpenFor <= 0 {
		breakerOpenFor = 5 * time.Second
	}
	return &memberClient{
		// No client-level Timeout: each attempt carries its own context
		// deadline, so a long trace fetch and a short heartbeat stop
		// sharing one bound.
		http:       &http.Client{Transport: transport},
		rpcTimeout: rpcTimeout,
		group: &resilience.Group{
			Policy: resilience.Policy{
				MaxAttempts: 4,
				BaseDelay:   25 * time.Millisecond,
				MaxDelay:    500 * time.Millisecond,
				// The budget caps fleet-wide retry amplification during an
				// outage: ~4 extra requests per second sustained, bursting
				// to 20, shared across every peer of this client.
				Budget:  resilience.NewBudget(20, 4),
				OnRetry: onRetry,
			},
			NewBreaker: func() *resilience.Breaker {
				return resilience.NewBreaker(breakerThreshold, breakerOpenFor)
			},
		},
	}
}

// available is the read-only placement check: whether a call to base
// would be admitted by its breaker right now.
func (c *memberClient) available(base string) bool {
	return c.group.Breaker(base).Available()
}

// api performs one JSON RPC against the peer at base, decoding the
// response into out (when non-nil), with retries and breaker
// accounting. Structured non-2xx responses (other than 5xx/429) come
// back as *fatalMemberError wrapped permanent; a refusing breaker
// surfaces as resilience.ErrOpen (transient — the breaker re-probes).
func (c *memberClient) api(ctx context.Context, base, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return resilience.Permanent(err)
		}
		payload = data
	}
	return c.group.Do(ctx, base, func(ctx context.Context) error {
		actx, cancel := context.WithTimeout(ctx, c.rpcTimeout)
		defer cancel()
		return c.call(actx, method, base+path, payload, out)
	})
}

// fetchDoc downloads one member job document (result or trace)
// verbatim, under the long per-attempt deadline. Non-200 status other
// than 5xx/429 is fatal — once the member job is terminal the document
// either exists completely or not at all.
func (c *memberClient) fetchDoc(ctx context.Context, base, jobID, doc string) ([]byte, error) {
	var out []byte
	err := c.group.Do(ctx, base, func(ctx context.Context) error {
		actx, cancel := context.WithTimeout(ctx, 6*c.rpcTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(actx, http.MethodGet,
			base+"/api/v1/campaigns/"+jobID+"/"+doc, nil)
		if err != nil {
			return resilience.Permanent(err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err // torn body: retry gets the full document
		}
		if retryableStatus(resp.StatusCode) {
			return fmt.Errorf("%s fetch: HTTP %d", doc, resp.StatusCode)
		}
		if resp.StatusCode != http.StatusOK {
			return resilience.Permanent(&fatalMemberError{msg: fmt.Sprintf("%s fetch: HTTP %d", doc, resp.StatusCode)})
		}
		out = data
		return nil
	})
	return out, err
}

// fetchMetrics downloads one member's Prometheus exposition.
func (c *memberClient) fetchMetrics(ctx context.Context, base string) ([]byte, error) {
	var out []byte
	err := c.group.Do(ctx, base, func(ctx context.Context) error {
		actx, cancel := context.WithTimeout(ctx, c.rpcTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(actx, http.MethodGet, base+"/metrics", nil)
		if err != nil {
			return resilience.Permanent(err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
		}
		out = data
		return nil
	})
	return out, err
}

// retryableStatus classifies server-side trouble a retry can outlive:
// 5xx (including a member mid-restart behind a proxy) and 429/503
// backpressure.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// call is one RPC attempt. Error classification is the resilience
// contract: transport failures, torn bodies, unparseable JSON, and
// retryable statuses return plain (retryable, breaker-counted) errors;
// everything else non-2xx is permanent.
func (c *memberClient) call(ctx context.Context, method, url string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return resilience.Permanent(err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = fmt.Sprintf("%s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		if retryableStatus(resp.StatusCode) {
			return fmt.Errorf("%s", msg)
		}
		return resilience.Permanent(&fatalMemberError{msg: msg})
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return err // truncated 2xx body: retry
	}
	return nil
}
