package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/telemetry"
)

// This file splices the fetched member part traces of a completed
// federated job into one global trace (<id>.trace.jsonl), shaped
// exactly like a single-node engine trace of the same campaign:
//
//	campaign_start                      synthesized from (plan, spec)
//	part_meta × parts                   the members' correlation prologues
//	per stratum, in plan order:
//	  stratum_start                     synthesized
//	  shard_done / experiment_retry /   spliced member events, in part
//	    experiment_quarantined            order (= global draw order)
//	  stratum_end                       synthesized from the merged Result
//	progress (final) + campaign_end     synthesized totals
//
// Member draw windows are executed with WithDrawRanges, so Draw values
// in member events are already absolute — splicing re-bases nothing.
// Every spliced event keeps its member-local timing but is relabelled
// to the coordinator campaign and stamped with (federated_job, part,
// member); shard indices are renumbered sequentially per stratum, since
// member-local shard numbers collide across parts. The payoff is the
// identity `sfitrace -strip-timing` pins: the stripped report of the
// merged trace is byte-identical to the stripped report of a
// single-node run of the same (plan, seed) — timing, shard geometry,
// and worker counts are exactly the detail stripping hides.

// interiorKinds are the member trace kinds that survive the splice.
// Everything else is either member-local bookkeeping (checkpoint paths,
// member-shaped campaign/stratum frames, progress) or replaced by a
// synthesized global frame.
var interiorKinds = map[string]bool{
	"shard_done":             true,
	"experiment_retry":       true,
	"experiment_quarantined": true,
}

// spliceFederatedTrace writes the merged global trace from the fetched
// part traces. Missing or unreadable part traces degrade to warnings
// and a sparser merged trace; only a write failure of the merged file
// itself is returned as an error.
func (s *Service) spliceFederatedTrace(j *job, plan *core.Plan, fed *fedDoc, merged *core.Result) error {
	type partTrace struct {
		interior map[int][]telemetry.Event // stratum → spliceable events, file order
		end      *telemetry.Event
	}
	parts := make([]partTrace, len(fed.Parts))
	for k := range fed.Parts {
		f, err := os.Open(s.partTracePath(j.id, k))
		if err != nil {
			s.appendWarning(j, "merged trace: part %d trace missing (%v); splicing without it", k, err)
			continue
		}
		events, rerr := telemetry.ReadTrace(f)
		f.Close()
		if rerr != nil {
			s.appendWarning(j, "merged trace: part %d trace unreadable (%v); splicing without it", k, rerr)
			continue
		}
		pt := partTrace{interior: map[int][]telemetry.Event{}}
		for i := range events {
			ev := events[i]
			switch {
			case interiorKinds[ev.Kind]:
				pt.interior[ev.Stratum] = append(pt.interior[ev.Stratum], ev)
			case ev.Kind == "campaign_end":
				pt.end = &events[i]
			case ev.Kind == telemetry.KindDrops && ev.Dropped > 0:
				s.appendWarning(j, "merged trace: part %d trace dropped %d event(s); interior detail may be incomplete",
					k, ev.Dropped)
			}
		}
		parts[k] = pt
	}

	name := j.spec.Name
	now := time.Now().UnixNano()
	planned := plan.TotalInjections()
	critical := criticalOf(merged)
	// Supervision and evaluation tallies sum across the part campaigns;
	// arena bytes is a level, so the fleet-wide figure is the maximum.
	var retries, skipped, evaluated, earlyExits, arena int64
	for k := range parts {
		if end := parts[k].end; end != nil {
			retries += end.Retries
			skipped += end.EvalSkipped
			evaluated += end.EvalEvaluated
			earlyExits += end.EvalEarlyExits
			if end.EvalArenaBytes > arena {
				arena = end.EvalArenaBytes
			}
		}
	}
	// Quarantined draws are exactly the planned-minus-tallied gap of the
	// merged estimates — derived from the Result rather than summed from
	// part traces, so a missing part trace cannot skew the count.
	var quarantined int64
	for i := range plan.Subpops {
		quarantined += plan.Subpops[i].SampleSize - merged.Estimates[i].SampleSize
	}

	out := make([]telemetry.Event, 0, 64)
	start := telemetry.NewEvent("campaign_start")
	start.Campaign = name
	start.TimeUnixNano = now
	start.Seed = j.spec.RunSeed
	start.Fingerprint = fmt.Sprintf("%016x", fed.Fingerprint)
	start.Workers = j.spec.Workers
	start.Planned = planned
	start.Strata = len(plan.Subpops)
	out = append(out, start)
	for k := range fed.Parts {
		pm := telemetry.PartMeta(name, j.id, k, fed.Parts[k].MemberName, fed.Parts[k].Ranges)
		pm.TimeUnixNano = now
		out = append(out, pm)
	}

	for i, sub := range plan.Subpops {
		ss := telemetry.NewEvent("stratum_start")
		ss.Campaign = name
		ss.TimeUnixNano = now
		ss.Stratum, ss.Layer, ss.Bit = i, sub.Layer, sub.Bit
		ss.StratumPlanned = sub.SampleSize
		out = append(out, ss)
		shardSeq := 0
		for k := range parts {
			for _, ev := range parts[k].interior[i] {
				part := k
				ev.Campaign = name
				ev.FederatedJob = j.id
				ev.Part = &part
				ev.Member = fed.Parts[k].MemberName
				if ev.Kind == "shard_done" {
					ev.Shard = shardSeq
					shardSeq++
				}
				out = append(out, ev)
			}
		}
		se := telemetry.NewEvent("stratum_end")
		se.Campaign = name
		se.TimeUnixNano = now
		se.Stratum, se.Layer, se.Bit = i, sub.Layer, sub.Bit
		se.StratumPlanned = sub.SampleSize
		se.Done = sub.SampleSize
		se.Critical = merged.Estimates[i].Successes
		out = append(out, se)
	}

	prog := telemetry.NewEvent(telemetry.KindProgress)
	prog.Campaign = name
	prog.TimeUnixNano = now
	prog.Done, prog.Planned, prog.Critical = planned, planned, critical
	prog.Final = true
	prog.Retries, prog.Quarantined = retries, quarantined
	prog.EvalSkipped, prog.EvalEvaluated, prog.EvalEarlyExits, prog.EvalArenaBytes = skipped, evaluated, earlyExits, arena
	out = append(out, prog)

	end := telemetry.NewEvent("campaign_end")
	end.Campaign = name
	end.TimeUnixNano = now
	end.Done, end.Planned, end.Critical = planned, planned, critical
	end.Retries, end.Quarantined = retries, quarantined
	end.EvalSkipped, end.EvalEvaluated, end.EvalEarlyExits, end.EvalArenaBytes = skipped, evaluated, earlyExits, arena
	out = append(out, end)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range out {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("service: encoding merged trace: %w", err)
		}
	}
	path := s.tracePath(j.id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("service: writing merged trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: committing merged trace: %w", err)
	}
	return nil
}
