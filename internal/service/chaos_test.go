package service_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cnnsfi/internal/resilience"
	"cnnsfi/internal/service"
)

// chaosCoord returns a coordinator configuration for chaos runs: fast
// polling, the chaos transport on every fleet RPC, and a breaker tuned
// tight enough to trip and recover within a test. Liveness comes from
// the registry (no heartbeats), so chaos-induced RPC failures read as
// transient, never as member death — these tests pin the retry and
// breaker layer, not reassignment.
func chaosCoord(t *testing.T, spec string) service.Config {
	t.Helper()
	chaos, err := resilience.ParseChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	return service.Config{
		Dir:              t.TempDir(),
		Coordinator:      true,
		MemberTimeout:    time.Hour,
		FederationPoll:   10 * time.Millisecond,
		MemberRPCTimeout: 2 * time.Second,
		BreakerThreshold: 3,
		BreakerOpenFor:   100 * time.Millisecond,
		StragglerRatio:   -1, // speculation pinned by TestFederatedStragglerSpeculation
		Transport:        resilience.NewTransport(chaos, nil),
	}
}

// metricsText renders the service registry in the exposition format.
func metricsText(t *testing.T, svc *service.Service) string {
	t.Helper()
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue returns the unlabeled sample of name from the service
// registry, failing the test if the series is absent.
func metricValue(t *testing.T, svc *service.Service, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metricsText(t, svc), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in registry output", name)
	return 0
}

// TestFederatedChaosBitIdentity is the resilience tentpole anchor: with
// a fault-injecting transport between the coordinator and its members —
// dropped connections, synthesized 5xx bursts, torn response bodies, a
// flapping link — a federated campaign must still complete with a
// merged Result byte-identical to the direct single-node run. Retries
// are visible in sfid_retries_total and every member carries a breaker
// series; no draw is ever tallied twice (that is what byte identity
// proves).
func TestFederatedChaosBitIdentity(t *testing.T) {
	spec := fullSpec("data-aware", 0.05)
	want := directResult(t, spec)
	scenarios := map[string]string{
		"drop":     "drop=0.25,seed=7",
		"error5xx": "err=0.25,seed=11",
		"truncate": "truncate=0.25,seed=13",
		"flap":     "flap=250ms/80ms",
		"burst":    "drop=0.1,err=0.1,truncate=0.1,delay=2ms,seed=17",
	}
	for name, chaosSpec := range scenarios {
		t.Run(name, func(t *testing.T) {
			coord, err := service.New(chaosCoord(t, chaosSpec))
			if err != nil {
				t.Fatal(err)
			}
			defer mustShutdown(t, coord)
			for i := 0; i < 2; i++ {
				m := startNode(t, memberConfig(4, nil))
				defer m.stop(t)
				if _, err := coord.RegisterMember(m.srv.URL, fmt.Sprintf("node-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			s := spec
			s.Federated = true
			st, err := coord.Submit(s)
			if err != nil {
				t.Fatal(err)
			}
			final := waitState(t, coord, st.ID, service.StateCompleted)
			if final.Done != final.Planned || final.Planned == 0 {
				t.Errorf("done %d of planned %d, want a complete nonzero tally", final.Done, final.Planned)
			}
			got, err := coord.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Result under chaos %q differs from the direct single-node run (double-tally or lost draws)", chaosSpec)
			}
			if v := metricValue(t, coord, "sfid_retries_total"); v == 0 {
				t.Errorf("sfid_retries_total = 0 under chaos %q, want retries to have been scheduled", chaosSpec)
			}
			if text := metricsText(t, coord); !strings.Contains(text, `sfid_member_breaker_state{member="`) {
				t.Error("no sfid_member_breaker_state series for the fleet members")
			}
		})
	}
}

// TestFederatedStragglerSpeculation pins speculative re-execution: a
// member whose progress rate sits far below the fleet median for the
// configured number of poll cycles gets its window speculatively
// re-dispatched to a spare member; the fast copy merges first, the
// crawling original is canceled before the merge, and the Result is
// still byte-identical — exactly one fetched copy of the window enters
// the merge.
func TestFederatedStragglerSpeculation(t *testing.T) {
	spec := fullSpec("network-wise", 0.02) // ~4k draws: two ~2k windows
	want := directResult(t, spec)

	coord, err := service.New(service.Config{
		Dir:             t.TempDir(),
		Coordinator:     true,
		MemberTimeout:   time.Hour,
		FederationPoll:  10 * time.Millisecond,
		StragglerRatio:  0.5,
		StragglerCycles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)

	var evals atomic.Int64
	// At 2ms per draw the tortoise needs seconds for its window. The
	// hare is 10× faster — slow enough that the poller samples its
	// progress rate (a part finishing inside the first poll cycle
	// would freeze a zero rate into the median pool), fast enough that
	// the speculative copy finishes long before the original.
	tortoise := startNode(t, memberConfig(1, slowBuilder(2*time.Millisecond, &evals)))
	defer tortoise.stop(t)
	hare := startNode(t, memberConfig(4, slowBuilder(200*time.Microsecond, &evals)))
	defer hare.stop(t)
	if _, err := coord.RegisterMember(tortoise.srv.URL, "tortoise"); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RegisterMember(hare.srv.URL, "hare"); err != nil {
		t.Fatal(err)
	}

	s := spec
	s.Federated = true
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, coord, st.ID, service.StateCompleted)
	joined := strings.Join(final.Warnings, "\n")
	if !strings.Contains(joined, "speculatively re-dispatched") {
		t.Errorf("warnings %q record no speculative dispatch", final.Warnings)
	}
	if !strings.Contains(joined, "finished first") {
		t.Errorf("warnings %q do not record the speculative copy winning", final.Warnings)
	}
	if final.Done != final.Planned {
		t.Errorf("done %d of planned %d after speculation", final.Done, final.Planned)
	}
	got, err := coord.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Result after speculative re-execution differs from the single-node run (double-tally)")
	}
	if v := metricValue(t, coord, "sfid_speculative_parts_total"); v < 1 {
		t.Errorf("sfid_speculative_parts_total = %v, want >= 1", v)
	}
	// The losing original must have been canceled, not left crawling.
	deadline := time.Now().Add(30 * time.Second)
	for {
		canceled := false
		for _, j := range tortoise.svc.List() {
			if j.State == service.StateCanceled {
				canceled = true
			}
		}
		if canceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the straggling original was never canceled on its member")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFederatedDegradedLocalFallback pins the zero-alive fallback: a
// federated campaign submitted to a coordinator whose fleet never
// materializes must not stall forever — after DegradedAfter the
// coordinator runs the orphaned window itself as an ordinary
// checkpointed ranged job, records the degradation in the warnings,
// and the Result is byte-identical to the direct run.
func TestFederatedDegradedLocalFallback(t *testing.T) {
	spec := fullSpec("network-wise", 0.2)
	want := directResult(t, spec)

	coord, err := service.New(service.Config{
		Dir:            t.TempDir(),
		Coordinator:    true,
		MemberTimeout:  time.Hour,
		FederationPoll: 10 * time.Millisecond,
		DegradedAfter:  50 * time.Millisecond,
		StragglerRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, coord)

	s := spec
	s.Federated = true
	st, err := coord.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, coord, st.ID, service.StateCompleted)
	if !strings.Contains(strings.Join(final.Warnings, "\n"), "degraded mode") {
		t.Errorf("warnings %q do not record the degraded-mode fallback", final.Warnings)
	}
	if final.Done != final.Planned || final.Planned == 0 {
		t.Errorf("done %d of planned %d after degraded fallback", final.Done, final.Planned)
	}
	got, err := coord.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("degraded-mode Result differs from the direct single-node run")
	}
}

// TestStateWriteFailuresSurfaceAsWarnings pins the durability
// observability satellite: when the atomic state write starts failing
// (the volume vanished beneath the daemon), the failure lands on the
// job's warnings and bumps sfid_state_write_errors_total instead of
// passing silently.
func TestStateWriteFailuresSurfaceAsWarnings(t *testing.T) {
	dir := t.TempDir()
	var evals atomic.Int64
	svc, err := service.New(service.Config{Dir: dir, BuildEvaluator: slowBuilder(time.Millisecond, &evals)})
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, svc)

	// Submit while the volume is healthy (a submit-time persist failure
	// rejects the job outright — a different, fail-fast contract), then
	// yank the directory under the running campaign.
	st, err := svc.Submit(fullSpec("network-wise", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, st.ID, service.StateRunning)
	if err := os.RemoveAll(dir); err != nil { // the volume goes away
		t.Fatal(err)
	}

	// Every later persist — the terminal transition at the latest —
	// fails; the failure must land on the job, not vanish into a log.
	deadline := time.Now().Add(60 * time.Second)
	var cur service.JobStatus
	for {
		cur, err = svc.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if isTerminal(cur.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state after the state dir vanished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(strings.Join(cur.Warnings, "\n"), "state write failed") {
		t.Errorf("warnings %q do not surface the failed state write", cur.Warnings)
	}
	if v := metricValue(t, svc, "sfid_state_write_errors_total"); v < 1 {
		t.Errorf("sfid_state_write_errors_total = %v, want >= 1", v)
	}
}
