package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/telemetry"
)

// This file is the federation layer: a coordinator sfid splits one
// statistical plan into contiguous per-stratum draw windows
// (core.SplitPlan), runs each window as a normal ranged job on a member
// sfid, and folds the members' partial Results back together in draw
// order (core.MergeRangeResults) — so the federated Result is
// byte-identical to a single-node run of the same (plan, seed).
//
// Durability: everything the merge depends on is on disk — the
// assignment document <id>.fed.json and one <id>.partK.result.json per
// fetched member result — and so is the member registry (members.json,
// rewritten on every registration), so a restarted coordinator knows
// its fleet immediately and member identities survive the restart.
// Members that re-register anyway (the heartbeat-404 fallback, kept for
// registries predating the durable file) are matched by URL and keep
// their IDs. A restarted coordinator therefore resumes the merge with
// zero re-evaluated draws: member jobs kept running during the outage,
// and the coordinator re-attaches to them by the URL + job ID stored in
// the assignment document (re-registration is not required for
// polling).
//
// Failure model: a member that stops heartbeating past
// Config.MemberTimeout *and* stops answering polls is declared dead;
// its unfetched windows are reassigned to live members (each reassigned
// window restarts from its beginning — member-local checkpoints do not
// travel). A member job that *fails* (as opposed to becoming
// unreachable) fails the federated job: the same spec would fail
// anywhere, so reassignment would loop. Draws are never double-tallied:
// exactly one fetched Result per window enters the merge, and the merge
// itself rejects overlaps and gaps.

// Federation sentinels; the HTTP layer maps ErrNotCoordinator to 409
// and ErrUnknownMember to 404 (a member receiving 404 on heartbeat
// re-registers, which is how the in-memory registry survives
// coordinator restarts).
var (
	ErrNotCoordinator = errors.New("not a coordinator")
	ErrUnknownMember  = errors.New("unknown member")
)

// member is one registered member daemon (coordinator-side state,
// guarded by Service.mu).
type member struct {
	id       string
	name     string
	url      string
	joinedAt time.Time
	lastSeen time.Time
}

// MemberStatus is the externally visible snapshot of one registered
// member — the JSON body of the member endpoints and of sfictl members.
type MemberStatus struct {
	// ID is the coordinator-assigned member identity; heartbeats are
	// keyed on it.
	ID string `json:"id"`
	// Name is the member's self-reported display label.
	Name string `json:"name,omitempty"`
	// URL is the member's advertised base URL; the coordinator submits
	// and polls member jobs against it.
	URL string `json:"url"`
	// JoinedAt / LastSeen are UTC registration and latest-heartbeat
	// times.
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
	// Alive reports whether the member heartbeat is within the
	// coordinator's member timeout; dead members get their unfetched
	// draw windows reassigned.
	Alive bool `json:"alive"`
}

// memberRegistration is the JSON body of POST /api/v1/members.
type memberRegistration struct {
	URL  string `json:"url"`
	Name string `json:"name,omitempty"`
}

func (s *Service) memberStatusLocked(m *member) MemberStatus {
	return MemberStatus{
		ID:       m.id,
		Name:     m.name,
		URL:      m.url,
		JoinedAt: m.joinedAt,
		LastSeen: m.lastSeen,
		Alive:    time.Since(m.lastSeen) <= s.cfg.MemberTimeout,
	}
}

// RegisterMember adds (or refreshes) one member daemon. Registration is
// idempotent on the advertised URL: re-registering refreshes the
// heartbeat and display name but keeps the member identity stable.
func (s *Service) RegisterMember(url, name string) (MemberStatus, error) {
	if !s.cfg.Coordinator {
		return MemberStatus{}, ErrNotCoordinator
	}
	if url == "" {
		return MemberStatus{}, fmt.Errorf("%w: member url is required", ErrInvalidSpec)
	}
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.members {
		if m.url == url {
			m.lastSeen = now
			if name != "" {
				m.name = name
			}
			s.persistMembersLocked()
			return s.memberStatusLocked(m), nil
		}
	}
	s.memberSeq++
	m := &member{
		id:       fmt.Sprintf("m%04d", s.memberSeq),
		name:     name,
		url:      url,
		joinedAt: now,
		lastSeen: now,
	}
	s.members[m.id] = m
	s.persistMembersLocked()
	return s.memberStatusLocked(m), nil
}

// memberRecord is the on-disk schema of one registry entry
// (members.json).
type memberRecord struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	URL      string    `json:"url"`
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
}

func (s *Service) membersPath() string {
	return filepath.Join(s.cfg.Dir, "members.json")
}

// persistMembersLocked rewrites the durable member registry atomically
// (tmp + rename). It runs at registration frequency, not heartbeat
// frequency, and failures degrade to a warning — a full disk must not
// reject a member. Caller holds s.mu.
func (s *Service) persistMembersLocked() {
	recs := make([]memberRecord, 0, len(s.members))
	for _, m := range s.members {
		recs = append(recs, memberRecord{ID: m.id, Name: m.name, URL: m.url, JoinedAt: m.joinedAt, LastSeen: m.lastSeen})
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	data, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		s.warnf("members: %v", err)
		return
	}
	path := s.membersPath()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		s.warnf("members: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.warnf("members: %v", err)
	}
}

// loadMembers restores the durable member registry at startup. Loaded
// members keep their IDs (so heartbeats from before the restart still
// resolve) but report dead until their next heartbeat refreshes
// lastSeen. Unreadable registries are skipped with a warning — members
// re-register through the heartbeat-404 fallback.
func (s *Service) loadMembers() {
	data, err := os.ReadFile(s.membersPath())
	if err != nil {
		if !os.IsNotExist(err) {
			s.warnf("members: %v", err)
		}
		return
	}
	var recs []memberRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		s.warnf("members: %s: %v", s.membersPath(), err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.ID == "" || r.URL == "" {
			continue
		}
		s.members[r.ID] = &member{id: r.ID, name: r.Name, url: r.URL, joinedAt: r.JoinedAt, lastSeen: r.LastSeen}
		var n int64
		if _, err := fmt.Sscanf(r.ID, "m%d", &n); err == nil && n > s.memberSeq {
			s.memberSeq = n
		}
	}
}

// MemberHeartbeat refreshes one member's liveness. An unknown ID fails
// with ErrUnknownMember (mapped to 404), which tells the member to
// re-register — the recovery path after a coordinator restart.
func (s *Service) MemberHeartbeat(id string) (MemberStatus, error) {
	if !s.cfg.Coordinator {
		return MemberStatus{}, ErrNotCoordinator
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[id]
	if !ok {
		return MemberStatus{}, fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	m.lastSeen = time.Now().UTC()
	return s.memberStatusLocked(m), nil
}

// Members lists every registered member, sorted by ID.
func (s *Service) Members() ([]MemberStatus, error) {
	if !s.cfg.Coordinator {
		return nil, ErrNotCoordinator
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemberStatus, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, s.memberStatusLocked(m))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

// aliveMembers snapshots the live members, sorted by ID so assignment
// order is deterministic for a given registry state.
func (s *Service) aliveMembers() []MemberStatus {
	all, err := s.Members()
	if err != nil {
		return nil
	}
	alive := all[:0]
	for _, m := range all {
		if m.Alive {
			alive = append(alive, m)
		}
	}
	return alive
}

// memberAliveByURL reports whether the registry currently considers the
// member advertising url alive. An unregistered URL counts as dead —
// after a coordinator restart a member that never re-registered and no
// longer answers polls must be treated as gone.
func (s *Service) memberAliveByURL(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.members {
		if m.url == url {
			return time.Since(m.lastSeen) <= s.cfg.MemberTimeout
		}
	}
	return false
}

// fedPart is one draw window's assignment state inside the durable
// federation document.
type fedPart struct {
	// Ranges is the window of each plan stratum this part covers.
	Ranges []core.DrawRange `json:"ranges"`
	// MemberURL / MemberJob locate the member job evaluating the part;
	// empty while unassigned (or after a reassignment reset). MemberName
	// is the member's display label at assignment time — the identity
	// stamped on the part's trace events and fleet-view rows.
	MemberURL  string `json:"member_url,omitempty"`
	MemberJob  string `json:"member_job,omitempty"`
	MemberName string `json:"member_name,omitempty"`
	// Fetched marks that the part's Result document is on disk
	// (partPath) and will enter the merge; Done / Critical carry its
	// final tallies for progress reporting.
	Fetched  bool  `json:"fetched,omitempty"`
	Done     int64 `json:"done,omitempty"`
	Critical int64 `json:"critical,omitempty"`
	// AbandonedLanes is the member job's final watchdog-abandoned lane
	// count, surfaced in the coordinator's merged warnings.
	AbandonedLanes int64 `json:"abandoned_lanes,omitempty"`
	// Reassigned counts how many dead members this part was moved off.
	Reassigned int `json:"reassigned,omitempty"`
}

// fedDoc is the durable merge state of one federated job
// (<id>.fed.json). It is persisted after every mutation, so a restarted
// coordinator re-attaches to every member job and re-evaluates nothing.
// (The one unavoidable crash window: a crash between a member-submit
// succeeding and the document persisting leaves an orphan member job —
// its draws may be evaluated twice on the fleet, but never tallied
// twice, because only the document's own job enters the merge.)
type fedDoc struct {
	ID          string    `json:"id"`
	Fingerprint uint64    `json:"plan_fingerprint"`
	Parts       []fedPart `json:"parts,omitempty"`
}

func (s *Service) fedPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".fed.json")
}
func (s *Service) partPath(id string, k int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%s.part%d.result.json", id, k))
}
func (s *Service) partTracePath(id string, k int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%s.part%d.trace.jsonl", id, k))
}

// persistFed writes the federation document atomically (tmp + rename).
func (s *Service) persistFed(fed *fedDoc) error {
	data, err := json.MarshalIndent(fed, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding federation state %s: %w", fed.ID, err)
	}
	path := s.fedPath(fed.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: writing federation state %s: %w", fed.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: committing federation state %s: %w", fed.ID, err)
	}
	return nil
}

// loadOrInitFed restores the job's durable federation document, or
// starts a fresh one. A document written for a different plan
// fingerprint is discarded with a warning (the spec on disk is the
// job's identity; a fingerprint mismatch means the document is stale).
func (s *Service) loadOrInitFed(j *job, fingerprint uint64) *fedDoc {
	data, err := os.ReadFile(s.fedPath(j.id))
	if err == nil {
		var fed fedDoc
		if jerr := json.Unmarshal(data, &fed); jerr == nil && fed.Fingerprint == fingerprint {
			return &fed
		}
		s.warnf("job %s: discarding stale federation state %s", j.id, s.fedPath(j.id))
	}
	return &fedDoc{ID: j.id, Fingerprint: fingerprint}
}

// removeFedState deletes the federation document and the fetched part
// results and traces — the cleanup after a completed merge (the spliced
// merged trace has subsumed the part traces by then) or a user
// cancellation.
func (s *Service) removeFedState(j *job, parts int) {
	os.Remove(s.fedPath(j.id))
	for k := 0; k < parts; k++ {
		os.Remove(s.partPath(j.id, k))
		os.Remove(s.partTracePath(j.id, k))
	}
}

// appendWarning records one operational notice on the job and persists
// it.
func (s *Service) appendWarning(j *job, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.warnf("job %s: %s", j.id, msg)
	s.mu.Lock()
	j.warnings = append(j.warnings, msg)
	if err := s.persistLocked(j); err != nil {
		s.warnf("job %s: %v", j.id, err)
	}
	s.mu.Unlock()
}

// fedClient is the coordinator's HTTP client for member traffic. The
// timeout doubles as the liveness probe bound: a member that cannot
// answer a status poll inside it counts as a failed poll.
var fedClient = &http.Client{Timeout: 5 * time.Second}

// fatalMemberError marks a member response that retrying cannot fix
// (spec rejected, job failed); transport errors stay retryable.
type fatalMemberError struct{ msg string }

func (e *fatalMemberError) Error() string { return e.msg }

// memberAPI performs one coordinator→member request and decodes the
// JSON response into out (when non-nil). Non-2xx responses with an
// error envelope come back as *fatalMemberError; transport failures
// come back as plain (retryable) errors.
func memberAPI(ctx context.Context, method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := fedClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &fatalMemberError{msg: fmt.Sprintf("%s (HTTP %d)", eb.Error, resp.StatusCode)}
		}
		return &fatalMemberError{msg: fmt.Sprintf("HTTP %d", resp.StatusCode)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// fetchMemberDoc downloads one member job document (result or trace)
// verbatim. Non-200 responses are fatal — the document either exists
// completely or not at all once the job is terminal.
func fetchMemberDoc(ctx context.Context, memberURL, jobID, doc string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		memberURL+"/api/v1/campaigns/"+jobID+"/"+doc, nil)
	if err != nil {
		return nil, err
	}
	resp, err := fedClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &fatalMemberError{msg: fmt.Sprintf("%s fetch: HTTP %d", doc, resp.StatusCode)}
	}
	return data, nil
}

// fetchMemberResult downloads one completed member job's Result
// document (the exact WriteJSON bytes).
func fetchMemberResult(ctx context.Context, memberURL, jobID string) ([]byte, error) {
	return fetchMemberDoc(ctx, memberURL, jobID, "result")
}

// fetchMemberTrace downloads one completed member job's JSONL trace.
func fetchMemberTrace(ctx context.Context, memberURL, jobID string) ([]byte, error) {
	return fetchMemberDoc(ctx, memberURL, jobID, "trace")
}

// runFederated drives one federated job end to end: split the plan
// across the live fleet, keep every window assigned to a live member,
// fetch finished windows, and merge them in draw order. It owns the
// job's terminal transition exactly like runJob does.
func (s *Service) runFederated(ctx context.Context, j *job) {
	_, plan, err := buildCampaign(j.spec, s.cfg.BuildEvaluator)
	if err != nil {
		s.finish(j, StateFailed, err.Error(), 0, 0)
		return
	}
	s.mu.Lock()
	j.planned = plan.TotalInjections()
	if perr := s.persistLocked(j); perr != nil {
		s.warnf("job %s: %v", j.id, perr)
	}
	s.mu.Unlock()

	fed := s.loadOrInitFed(j, core.PlanFingerprint(plan))
	ticker := time.NewTicker(s.cfg.FederationPoll)
	defer ticker.Stop()
	assignSeq := 0
	for {
		done, err := s.fedStep(ctx, j, plan, fed, &assignSeq)
		if err != nil {
			s.finish(j, StateFailed, err.Error(), s.fedDone(j), s.fedCritical(j))
			return
		}
		if done {
			return
		}
		select {
		case <-ctx.Done():
			if s.isUserCancel(j) {
				// Best-effort: stop the member jobs, then drop the merge
				// state — an individually canceled job never resumes.
				for _, p := range fed.Parts {
					if p.MemberJob != "" && !p.Fetched {
						_ = memberAPI(context.Background(), http.MethodDelete,
							p.MemberURL+"/api/v1/campaigns/"+p.MemberJob, nil, nil)
					}
				}
				s.removeFedState(j, len(fed.Parts))
				s.finish(j, StateCanceled, "canceled", s.fedDone(j), s.fedCritical(j))
				return
			}
			// Coordinator shutdown: the merge state is durable and the
			// member jobs keep running; the next daemon run re-attaches.
			s.repending(j, s.fedDone(j), s.fedCritical(j))
			return
		case <-ticker.C:
		}
	}
}

// fedStep advances the federated job one poll cycle. It returns done
// when the job reached a terminal transition (completed), and a non-nil
// error for unrecoverable failures.
func (s *Service) fedStep(ctx context.Context, j *job, plan *core.Plan, fed *fedDoc, assignSeq *int) (bool, error) {
	// Split once, by the live fleet size at first sight of any member.
	if fed.Parts == nil {
		alive := s.aliveMembers()
		if len(alive) == 0 {
			return false, nil // no fleet yet; keep waiting
		}
		parts, err := core.SplitPlan(plan, len(alive))
		if err != nil {
			return false, err
		}
		fed.Parts = make([]fedPart, len(parts))
		for k, ranges := range parts {
			fed.Parts[k] = fedPart{Ranges: ranges}
		}
		if err := s.persistFed(fed); err != nil {
			return false, err
		}
	}

	parts := make([]FleetPart, len(fed.Parts))
	for k := range fed.Parts {
		p := &fed.Parts[k]
		parts[k] = FleetPart{
			Job:       j.id,
			Part:      k,
			Member:    p.MemberName,
			MemberURL: p.MemberURL,
			MemberJob: p.MemberJob,
			Planned:   rangesLen(p.Ranges),
		}
		if p.Fetched {
			parts[k].Done = p.Done
			parts[k].Critical = p.Critical
			parts[k].Fetched = true
			continue
		}
		if p.MemberJob == "" {
			if err := s.assignPart(ctx, j, fed, k, assignSeq); err != nil {
				return false, err
			}
			parts[k].Member = fed.Parts[k].MemberName
			parts[k].MemberURL = fed.Parts[k].MemberURL
			parts[k].MemberJob = fed.Parts[k].MemberJob
			continue
		}
		var st JobStatus
		err := memberAPI(ctx, http.MethodGet, p.MemberURL+"/api/v1/campaigns/"+p.MemberJob, nil, &st)
		if err != nil {
			var fatal *fatalMemberError
			if !errors.As(err, &fatal) && s.memberAliveByURL(p.MemberURL) {
				continue // transient: the member still heartbeats
			}
			// Dead member (or a member that lost the job): reassign the
			// whole window to a live member. Nothing from the lost run is
			// tallied, so no draw can be counted twice.
			s.appendWarning(j, "part %d: member %s unreachable or lost job %s; reassigning its draw ranges (attempt %d)",
				k, p.MemberURL, p.MemberJob, p.Reassigned+1)
			p.MemberURL, p.MemberJob, p.MemberName = "", "", ""
			p.Reassigned++
			parts[k].Member, parts[k].MemberURL, parts[k].MemberJob = "", "", ""
			if err := s.persistFed(fed); err != nil {
				return false, err
			}
			continue
		}
		switch st.State {
		case StateCompleted:
			if err := s.fetchPart(ctx, j, fed, k, st); err != nil {
				var fatal *fatalMemberError
				if errors.As(err, &fatal) {
					return false, err
				}
				continue // transient fetch failure: retry next cycle
			}
			parts[k].Done = fed.Parts[k].Done
			parts[k].Critical = fed.Parts[k].Critical
			parts[k].Fetched = true
		case StateFailed, StateCanceled:
			// A failing spec fails everywhere; reassigning would loop.
			return false, fmt.Errorf("service: member %s job %s %s: %s",
				p.MemberURL, p.MemberJob, st.State, st.Error)
		default:
			parts[k].Done = st.Done
			parts[k].Critical = st.Critical
			parts[k].Rate = st.Rate
		}
	}
	allFetched := s.publishFedProgress(j, parts)
	if !allFetched {
		return false, nil
	}
	return true, s.mergeFederated(j, plan, fed)
}

// rangesLen sums the draw windows of one part.
func rangesLen(ranges []core.DrawRange) int64 {
	var n int64
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// assignPart submits part k's window to a live member and records the
// assignment durably. With no live member the part simply stays
// unassigned until one appears.
func (s *Service) assignPart(ctx context.Context, j *job, fed *fedDoc, k int, assignSeq *int) error {
	alive := s.aliveMembers()
	if len(alive) == 0 {
		return nil
	}
	target := alive[*assignSeq%len(alive)]
	*assignSeq++
	spec := j.spec
	spec.Federated = false
	spec.Ranges = fed.Parts[k].Ranges
	spec.Name = fmt.Sprintf("%s#part%d", j.spec.Name, k)
	// Correlation stamp: the member opens its part trace with these, and
	// the merged trace names them on every spliced event.
	part := k
	spec.FederatedJob = j.id
	spec.FederatedPart = &part
	spec.FederatedMember = memberLabel(target)
	var st JobStatus
	if err := memberAPI(ctx, http.MethodPost, target.URL+"/api/v1/campaigns", spec, &st); err != nil {
		var fatal *fatalMemberError
		if errors.As(err, &fatal) {
			return fmt.Errorf("service: member %s rejected part %d: %w", target.URL, k, err)
		}
		return nil // transient: retry next cycle (possibly another member)
	}
	fed.Parts[k].MemberURL = target.URL
	fed.Parts[k].MemberJob = st.ID
	fed.Parts[k].MemberName = memberLabel(target)
	return s.persistFed(fed)
}

// memberLabel is the member identity used in traces and fleet rows: the
// self-reported display name when set, the registry ID otherwise.
func memberLabel(m MemberStatus) string {
	if m.Name != "" {
		return m.Name
	}
	return m.ID
}

// fetchPart downloads and persists one completed member Result, parsing
// it first so a torn response can never enter the merge, plus the
// member's part trace for the merged-trace splice. A member that cannot
// serve its trace (e.g. an older daemon) degrades to a warning — the
// trace is observability, the Result is the contract.
func (s *Service) fetchPart(ctx context.Context, j *job, fed *fedDoc, k int, st JobStatus) error {
	data, err := fetchMemberResult(ctx, fed.Parts[k].MemberURL, fed.Parts[k].MemberJob)
	if err != nil {
		return err
	}
	if _, err := core.ReadResultJSON(bytes.NewReader(data)); err != nil {
		return &fatalMemberError{msg: fmt.Sprintf("part %d result unparseable: %v", k, err)}
	}
	tdata, terr := fetchMemberTrace(ctx, fed.Parts[k].MemberURL, fed.Parts[k].MemberJob)
	var fatal *fatalMemberError
	switch {
	case terr == nil:
		tpath := s.partTracePath(j.id, k)
		ttmp := tpath + ".tmp"
		if err := os.WriteFile(ttmp, tdata, 0o644); err != nil {
			return fmt.Errorf("service: writing part trace: %w", err)
		}
		if err := os.Rename(ttmp, tpath); err != nil {
			return fmt.Errorf("service: committing part trace: %w", err)
		}
	case errors.As(terr, &fatal):
		s.appendWarning(j, "part %d: member %s job %s has no trace (%v); the merged trace will omit it",
			k, fed.Parts[k].MemberURL, fed.Parts[k].MemberJob, terr)
	default:
		return terr // transient: retry the whole fetch next cycle
	}
	path := s.partPath(j.id, k)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: writing part result: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: committing part result: %w", err)
	}
	p := &fed.Parts[k]
	p.Fetched = true
	p.Done = st.Done
	p.Critical = st.Critical
	p.AbandonedLanes = st.AbandonedLanes
	if err := s.persistFed(fed); err != nil {
		return err
	}
	if st.AbandonedLanes > 0 {
		s.appendWarning(j, "member %s job %s: %d watchdog-abandoned lane(s)",
			p.MemberURL, p.MemberJob, st.AbandonedLanes)
	}
	s.mu.Lock()
	j.abandoned += st.AbandonedLanes
	if perr := s.persistLocked(j); perr != nil {
		s.warnf("job %s: %v", j.id, perr)
	}
	s.mu.Unlock()
	return nil
}

// mergeFederated folds the fetched part Results into the final document
// and completes the job. The merge is strict (in-order, gap-free,
// overlap-free), so any bookkeeping corruption surfaces as a failed
// job, never as a silently wrong Result.
func (s *Service) mergeFederated(j *job, plan *core.Plan, fed *fedDoc) error {
	parts := make([]*core.Result, len(fed.Parts))
	for k := range fed.Parts {
		data, err := os.ReadFile(s.partPath(j.id, k))
		if err != nil {
			return fmt.Errorf("service: part %d result missing: %w", k, err)
		}
		res, err := core.ReadResultJSON(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("service: part %d: %w", k, err)
		}
		parts[k] = res
	}
	merged, err := core.MergeRangeResults(plan, parts)
	if err != nil {
		return err
	}
	if werr := s.writeResult(j.id, merged); werr != nil {
		return werr
	}
	// Splice the fetched part traces into the job's merged global trace
	// before removeFedState deletes them. Trace trouble is a warning,
	// never a failed merge — the Result is already durable.
	if terr := s.spliceFederatedTrace(j, plan, fed, merged); terr != nil {
		s.appendWarning(j, "merged trace: %v", terr)
	}
	s.removeFedState(j, len(fed.Parts))
	s.finish(j, StateCompleted, "", merged.Injections(), criticalOf(merged))
	return nil
}

// fedDone / fedCritical return the job's freshest progress tallies (for
// the repending/cancel paths, where no engine result exists).
func (s *Service) fedDone(j *job) int64 {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	return j.prog.Done
}
func (s *Service) fedCritical(j *job) int64 {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	return j.prog.Critical
}

// publishFedProgress snapshots this cycle's per-part tallies for the
// fleet view, publishes one per-part progress frame per part plus the
// fleet-summed aggregate frame to SSE subscribers — so `sfictl watch`
// behaves identically for federated and local jobs while part-aware
// consumers can follow each member — and reports whether every part is
// fetched.
func (s *Service) publishFedProgress(j *job, parts []FleetPart) bool {
	var done, critical int64
	final := true
	for _, p := range parts {
		done += p.Done
		critical += p.Critical
		final = final && p.Fetched
	}
	s.mu.Lock()
	j.fedParts = append([]FleetPart(nil), parts...)
	s.mu.Unlock()
	for _, fp := range parts {
		ev := telemetry.NewEvent(telemetry.KindProgress)
		ev.Campaign = j.id
		ev.TimeUnixNano = time.Now().UnixNano()
		ev.FederatedJob = j.id
		k := fp.Part
		ev.Part = &k
		ev.Member = fp.Member
		ev.Done = fp.Done
		ev.Planned = fp.Planned
		ev.Critical = fp.Critical
		ev.Rate = fp.Rate
		ev.Final = fp.Fetched
		j.b.publishJSON(ev)
	}
	p := core.Progress{Done: done, Planned: j.planned, Critical: critical, Final: final}
	j.pmu.Lock()
	j.prog = p
	j.hasProg = true
	j.pmu.Unlock()
	j.b.publishJSON(telemetry.FromProgress(j.id, p))
	return final
}

// Join registers this daemon with a coordinator and keeps the
// registration alive with heartbeats until ctx ends — the client half
// of the membership protocol (sfid -join runs it). advertise is the
// base URL the coordinator should reach this daemon at. A heartbeat
// answered with 404 (coordinator restarted, registry gone) triggers
// re-registration; transport errors are retried at the same cadence
// and reported through warnf.
func Join(ctx context.Context, coordinator, advertise, name string, interval time.Duration, warnf func(format string, args ...any)) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	// Jittered cadence (±10%): a fleet started by one script would
	// otherwise register and heartbeat in lockstep, hammering the
	// coordinator with synchronized bursts forever.
	timer := time.NewTimer(jitter(interval))
	defer timer.Stop()
	var id string
	for {
		if id == "" {
			var st MemberStatus
			err := memberAPI(ctx, http.MethodPost, coordinator+"/api/v1/members",
				memberRegistration{URL: advertise, Name: name}, &st)
			if err != nil {
				warnf("join: registering with %s: %v", coordinator, err)
			} else {
				id = st.ID
			}
		} else {
			err := memberAPI(ctx, http.MethodPost,
				coordinator+"/api/v1/members/"+id+"/heartbeat", nil, nil)
			var fatal *fatalMemberError
			if errors.As(err, &fatal) {
				id = "" // unknown to the coordinator: re-register next tick
			} else if err != nil {
				warnf("join: heartbeat to %s: %v", coordinator, err)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			timer.Reset(jitter(interval))
		}
	}
}

// jitter spreads d by ±10%.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
}
