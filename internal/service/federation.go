package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/telemetry"
)

// This file is the federation layer: a coordinator sfid splits one
// statistical plan into contiguous per-stratum draw windows
// (core.SplitPlan), runs each window as a normal ranged job on a member
// sfid, and folds the members' partial Results back together in draw
// order (core.MergeRangeResults) — so the federated Result is
// byte-identical to a single-node run of the same (plan, seed).
//
// Durability: everything the merge depends on is on disk — the
// assignment document <id>.fed.json and one <id>.partK.result.json per
// fetched member result — and so is the member registry (members.json,
// rewritten on every registration), so a restarted coordinator knows
// its fleet immediately and member identities survive the restart.
// Members that re-register anyway (the heartbeat-404 fallback, kept for
// registries predating the durable file) are matched by URL and keep
// their IDs. A restarted coordinator therefore resumes the merge with
// zero re-evaluated draws: member jobs kept running during the outage,
// and the coordinator re-attaches to them by the URL + job ID stored in
// the assignment document (re-registration is not required for
// polling).
//
// Failure model: a member that stops heartbeating past
// Config.MemberTimeout *and* stops answering polls is declared dead;
// its unfetched windows are reassigned to live members (each reassigned
// window restarts from its beginning — member-local checkpoints do not
// travel). A member job that *fails* (as opposed to becoming
// unreachable) fails the federated job: the same spec would fail
// anywhere, so reassignment would loop. Draws are never double-tallied:
// exactly one fetched Result per window enters the merge, and the merge
// itself rejects overlaps and gaps.

// Federation sentinels; the HTTP layer maps ErrNotCoordinator to 409
// and ErrUnknownMember to 404 (a member receiving 404 on heartbeat
// re-registers, which is how the in-memory registry survives
// coordinator restarts).
var (
	ErrNotCoordinator = errors.New("not a coordinator")
	ErrUnknownMember  = errors.New("unknown member")
)

// member is one registered member daemon (coordinator-side state,
// guarded by Service.mu).
type member struct {
	id       string
	name     string
	url      string
	joinedAt time.Time
	lastSeen time.Time
}

// MemberStatus is the externally visible snapshot of one registered
// member — the JSON body of the member endpoints and of sfictl members.
type MemberStatus struct {
	// ID is the coordinator-assigned member identity; heartbeats are
	// keyed on it.
	ID string `json:"id"`
	// Name is the member's self-reported display label.
	Name string `json:"name,omitempty"`
	// URL is the member's advertised base URL; the coordinator submits
	// and polls member jobs against it.
	URL string `json:"url"`
	// JoinedAt / LastSeen are UTC registration and latest-heartbeat
	// times.
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
	// Alive reports whether the member heartbeat is within the
	// coordinator's member timeout; dead members get their unfetched
	// draw windows reassigned.
	Alive bool `json:"alive"`
}

// memberRegistration is the JSON body of POST /api/v1/members.
type memberRegistration struct {
	URL  string `json:"url"`
	Name string `json:"name,omitempty"`
}

func (s *Service) memberStatusLocked(m *member) MemberStatus {
	return MemberStatus{
		ID:       m.id,
		Name:     m.name,
		URL:      m.url,
		JoinedAt: m.joinedAt,
		LastSeen: m.lastSeen,
		Alive:    time.Since(m.lastSeen) <= s.cfg.MemberTimeout,
	}
}

// RegisterMember adds (or refreshes) one member daemon. Registration is
// idempotent on the advertised URL: re-registering refreshes the
// heartbeat and display name but keeps the member identity stable.
func (s *Service) RegisterMember(url, name string) (MemberStatus, error) {
	if !s.cfg.Coordinator {
		return MemberStatus{}, ErrNotCoordinator
	}
	if url == "" {
		return MemberStatus{}, fmt.Errorf("%w: member url is required", ErrInvalidSpec)
	}
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.members {
		if m.url == url {
			m.lastSeen = now
			if name != "" {
				m.name = name
			}
			s.persistMembersLocked()
			return s.memberStatusLocked(m), nil
		}
	}
	s.memberSeq++
	m := &member{
		id:       fmt.Sprintf("m%04d", s.memberSeq),
		name:     name,
		url:      url,
		joinedAt: now,
		lastSeen: now,
	}
	s.members[m.id] = m
	s.persistMembersLocked()
	return s.memberStatusLocked(m), nil
}

// memberRecord is the on-disk schema of one registry entry
// (members.json).
type memberRecord struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	URL      string    `json:"url"`
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
}

func (s *Service) membersPath() string {
	return filepath.Join(s.cfg.Dir, "members.json")
}

// persistMembersLocked rewrites the durable member registry atomically
// (tmp + rename). It runs at registration frequency, not heartbeat
// frequency, and failures degrade to a warning — a full disk must not
// reject a member. Caller holds s.mu.
func (s *Service) persistMembersLocked() {
	recs := make([]memberRecord, 0, len(s.members))
	for _, m := range s.members {
		recs = append(recs, memberRecord{ID: m.id, Name: m.name, URL: m.url, JoinedAt: m.joinedAt, LastSeen: m.lastSeen})
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	data, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		s.warnf("members: %v", err)
		return
	}
	if err := s.atomicWrite(s.membersPath(), append(data, '\n')); err != nil {
		s.warnf("members: %v", err)
	}
}

// loadMembers restores the durable member registry at startup. Loaded
// members keep their IDs (so heartbeats from before the restart still
// resolve) but report dead until their next heartbeat refreshes
// lastSeen. Unreadable registries are skipped with a warning — members
// re-register through the heartbeat-404 fallback.
func (s *Service) loadMembers() {
	data, err := os.ReadFile(s.membersPath())
	if err != nil {
		if !os.IsNotExist(err) {
			s.warnf("members: %v", err)
		}
		return
	}
	var recs []memberRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		s.warnf("members: %s: %v", s.membersPath(), err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.ID == "" || r.URL == "" {
			continue
		}
		s.members[r.ID] = &member{id: r.ID, name: r.Name, url: r.URL, joinedAt: r.JoinedAt, lastSeen: r.LastSeen}
		var n int64
		if _, err := fmt.Sscanf(r.ID, "m%d", &n); err == nil && n > s.memberSeq {
			s.memberSeq = n
		}
	}
}

// MemberHeartbeat refreshes one member's liveness. An unknown ID fails
// with ErrUnknownMember (mapped to 404), which tells the member to
// re-register — the recovery path after a coordinator restart.
func (s *Service) MemberHeartbeat(id string) (MemberStatus, error) {
	if !s.cfg.Coordinator {
		return MemberStatus{}, ErrNotCoordinator
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[id]
	if !ok {
		return MemberStatus{}, fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	m.lastSeen = time.Now().UTC()
	return s.memberStatusLocked(m), nil
}

// Members lists every registered member, sorted by ID.
func (s *Service) Members() ([]MemberStatus, error) {
	if !s.cfg.Coordinator {
		return nil, ErrNotCoordinator
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemberStatus, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, s.memberStatusLocked(m))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

// aliveMembers snapshots the live members, sorted by ID so assignment
// order is deterministic for a given registry state.
func (s *Service) aliveMembers() []MemberStatus {
	all, err := s.Members()
	if err != nil {
		return nil
	}
	alive := all[:0]
	for _, m := range all {
		if m.Alive {
			alive = append(alive, m)
		}
	}
	return alive
}

// memberAliveByURL reports whether the registry currently considers the
// member advertising url alive. An unregistered URL counts as dead —
// after a coordinator restart a member that never re-registered and no
// longer answers polls must be treated as gone.
func (s *Service) memberAliveByURL(url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.members {
		if m.url == url {
			return time.Since(m.lastSeen) <= s.cfg.MemberTimeout
		}
	}
	return false
}

// fedPart is one draw window's assignment state inside the durable
// federation document.
type fedPart struct {
	// Ranges is the window of each plan stratum this part covers.
	Ranges []core.DrawRange `json:"ranges"`
	// MemberURL / MemberJob locate the member job evaluating the part;
	// empty while unassigned (or after a reassignment reset). MemberName
	// is the member's display label at assignment time — the identity
	// stamped on the part's trace events and fleet-view rows.
	MemberURL  string `json:"member_url,omitempty"`
	MemberJob  string `json:"member_job,omitempty"`
	MemberName string `json:"member_name,omitempty"`
	// Fetched marks that the part's Result document is on disk
	// (partPath) and will enter the merge; Done / Critical carry its
	// final tallies for progress reporting.
	Fetched  bool  `json:"fetched,omitempty"`
	Done     int64 `json:"done,omitempty"`
	Critical int64 `json:"critical,omitempty"`
	// AbandonedLanes is the member job's final watchdog-abandoned lane
	// count, surfaced in the coordinator's merged warnings.
	AbandonedLanes int64 `json:"abandoned_lanes,omitempty"`
	// Reassigned counts how many dead members this part was moved off.
	Reassigned int `json:"reassigned,omitempty"`
	// SpecMemberURL / SpecMemberJob / SpecMemberName locate the
	// speculative duplicate of a straggling window while one is in
	// flight. Exactly one of the two copies enters the merge — the first
	// to complete — and the other is canceled before merging, so the
	// merged Result cannot double-tally a draw.
	SpecMemberURL  string `json:"spec_member_url,omitempty"`
	SpecMemberJob  string `json:"spec_member_job,omitempty"`
	SpecMemberName string `json:"spec_member_name,omitempty"`
	// Local marks a window running degraded on the coordinator itself
	// (no placeable member); it persists so a restarted coordinator
	// resumes the local run from its part checkpoint.
	Local bool `json:"local,omitempty"`
}

// fedDoc is the durable merge state of one federated job
// (<id>.fed.json). It is persisted after every mutation, so a restarted
// coordinator re-attaches to every member job and re-evaluates nothing.
// (The one unavoidable crash window: a crash between a member-submit
// succeeding and the document persisting leaves an orphan member job —
// its draws may be evaluated twice on the fleet, but never tallied
// twice, because only the document's own job enters the merge.)
type fedDoc struct {
	ID          string    `json:"id"`
	Fingerprint uint64    `json:"plan_fingerprint"`
	Parts       []fedPart `json:"parts,omitempty"`
}

func (s *Service) fedPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".fed.json")
}
func (s *Service) partPath(id string, k int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%s.part%d.result.json", id, k))
}
func (s *Service) partTracePath(id string, k int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%s.part%d.trace.jsonl", id, k))
}
func (s *Service) partCheckpointPath(id string, k int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%s.part%d.ckpt", id, k))
}

// persistFed writes the federation document atomically (tmp + rename).
func (s *Service) persistFed(fed *fedDoc) error {
	data, err := json.MarshalIndent(fed, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding federation state %s: %w", fed.ID, err)
	}
	if err := s.atomicWrite(s.fedPath(fed.ID), append(data, '\n')); err != nil {
		return fmt.Errorf("service: writing federation state %s: %w", fed.ID, err)
	}
	return nil
}

// loadOrInitFed restores the job's durable federation document, or
// starts a fresh one. A document written for a different plan
// fingerprint is discarded with a warning (the spec on disk is the
// job's identity; a fingerprint mismatch means the document is stale).
func (s *Service) loadOrInitFed(j *job, fingerprint uint64) *fedDoc {
	data, err := os.ReadFile(s.fedPath(j.id))
	if err == nil {
		var fed fedDoc
		if jerr := json.Unmarshal(data, &fed); jerr == nil && fed.Fingerprint == fingerprint {
			return &fed
		}
		s.warnf("job %s: discarding stale federation state %s", j.id, s.fedPath(j.id))
	}
	return &fedDoc{ID: j.id, Fingerprint: fingerprint}
}

// removeFedState deletes the federation document and the fetched part
// results and traces — the cleanup after a completed merge (the spliced
// merged trace has subsumed the part traces by then) or a user
// cancellation.
func (s *Service) removeFedState(j *job, parts int) {
	os.Remove(s.fedPath(j.id))
	for k := 0; k < parts; k++ {
		os.Remove(s.partPath(j.id, k))
		os.Remove(s.partTracePath(j.id, k))
		os.Remove(s.partCheckpointPath(j.id, k))
		os.Remove(s.partCheckpointPath(j.id, k) + ".bak")
	}
}

// appendWarning records one operational notice on the job and persists
// it.
func (s *Service) appendWarning(j *job, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.warnf("job %s: %s", j.id, msg)
	s.mu.Lock()
	j.warnings = append(j.warnings, msg)
	if err := s.persistLocked(j); err != nil {
		s.warnf("job %s: %v", j.id, err)
	}
	s.mu.Unlock()
}

// placeableMembers are the members a part can be dispatched to right
// now: alive by heartbeat *and* with a non-tripped circuit breaker.
// Skipping open breakers at placement time keeps a flapping member
// from collecting fresh assignments it will immediately strand.
func (s *Service) placeableMembers() []MemberStatus {
	alive := s.aliveMembers()
	out := alive[:0]
	for _, m := range alive {
		if s.fed.available(m.URL) {
			out = append(out, m)
		}
	}
	return out
}

// fedRuntime is the in-memory (non-durable) per-run state of one
// federated job: round-robin assignment position, per-part progress
// health for straggler detection, live degraded-mode local runs, and
// the fleet-wide placement-outage clock.
type fedRuntime struct {
	assignSeq int
	health    []partHealth
	local     map[int]*localRun
	// unplacedSince is when the coordinator last began seeing zero
	// placeable members (zero while any member is placeable).
	unplacedSince time.Time
}

// partHealth tracks one part's progress rate: an EWMA of per-cycle
// done-injection deltas, frozen once the part is fetched so completed
// parts keep anchoring the fleet median.
type partHealth struct {
	lastDone int64
	rate     float64
	slow     int // consecutive cycles below the straggler threshold
}

// localRun is one degraded-mode part running on the coordinator's own
// engine. done closes when the engine returns; prog is the live
// progress snapshot for the fleet view.
type localRun struct {
	done   chan struct{}
	res    *core.Result
	err    error
	mu     sync.Mutex
	prog   core.Progress
}

func (lr *localRun) progress() core.Progress {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.prog
}

// runFederated drives one federated job end to end: split the plan
// across the live fleet, keep every window assigned to a placeable
// member (or, degraded, to the local engine), fetch finished windows,
// and merge them in draw order. It owns the job's terminal transition
// exactly like runJob does.
func (s *Service) runFederated(ctx context.Context, j *job) {
	_, plan, err := buildCampaign(j.spec, s.cfg.BuildEvaluator)
	if err != nil {
		s.finish(j, StateFailed, err.Error(), 0, 0)
		return
	}
	s.mu.Lock()
	j.planned = plan.TotalInjections()
	if perr := s.persistLocked(j); perr != nil {
		s.warnf("job %s: %v", j.id, perr)
	}
	s.mu.Unlock()

	fed := s.loadOrInitFed(j, core.PlanFingerprint(plan))
	ticker := time.NewTicker(s.cfg.FederationPoll)
	defer ticker.Stop()
	rt := &fedRuntime{local: map[int]*localRun{}}
	for {
		done, err := s.fedStep(ctx, j, plan, fed, rt)
		if err != nil {
			s.finish(j, StateFailed, err.Error(), s.fedDone(j), s.fedCritical(j))
			return
		}
		if done {
			return
		}
		select {
		case <-ctx.Done():
			if s.isUserCancel(j) {
				// Best-effort: stop the member jobs (primaries and any
				// speculative copies), wait out the local runs, then drop
				// the merge state — an individually canceled job never
				// resumes.
				for _, p := range fed.Parts {
					if p.Fetched {
						continue
					}
					if p.MemberJob != "" && !p.Local {
						s.cancelMemberJob(p.MemberURL, p.MemberJob)
					}
					if p.SpecMemberJob != "" {
						s.cancelMemberJob(p.SpecMemberURL, p.SpecMemberJob)
					}
				}
				for _, lr := range rt.local {
					<-lr.done // the engine stops at its next shard boundary
				}
				s.removeFedState(j, len(fed.Parts))
				s.finish(j, StateCanceled, "canceled", s.fedDone(j), s.fedCritical(j))
				return
			}
			// Coordinator shutdown: the merge state is durable, the member
			// jobs keep running, and local degraded parts checkpointed; the
			// next daemon run re-attaches and resumes.
			s.repending(j, s.fedDone(j), s.fedCritical(j))
			return
		case <-ticker.C:
		}
	}
}

// cancelMemberJob best-effort stops one member job (the cancel path
// and the speculation loser). A short deadline bounds the retries —
// an unreachable member's job dies with the member anyway.
func (s *Service) cancelMemberJob(memberURL, jobID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*s.cfg.MemberRPCTimeout)
	defer cancel()
	_ = s.fed.api(ctx, memberURL, http.MethodDelete, "/api/v1/campaigns/"+jobID, nil, nil)
}

// fedStep advances the federated job one poll cycle. It returns done
// when the job reached a terminal transition (completed), and a non-nil
// error for unrecoverable failures.
func (s *Service) fedStep(ctx context.Context, j *job, plan *core.Plan, fed *fedDoc, rt *fedRuntime) (bool, error) {
	placeable := s.placeableMembers()
	if len(placeable) > 0 {
		rt.unplacedSince = time.Time{}
	} else if rt.unplacedSince.IsZero() {
		rt.unplacedSince = time.Now()
	}
	degraded := len(placeable) == 0 && s.cfg.DegradedAfter >= 0 &&
		time.Since(rt.unplacedSince) >= s.cfg.DegradedAfter

	// Split once, by the placeable fleet size at first sighting — or,
	// when the placement outage outlasts DegradedAfter before any fleet
	// was ever seen, into a single window the coordinator runs itself.
	if fed.Parts == nil {
		n := len(placeable)
		if n == 0 {
			if !degraded {
				return false, nil // no fleet yet; keep waiting
			}
			n = 1
		}
		parts, err := core.SplitPlan(plan, n)
		if err != nil {
			return false, err
		}
		fed.Parts = make([]fedPart, len(parts))
		for k, ranges := range parts {
			fed.Parts[k] = fedPart{Ranges: ranges}
		}
		if err := s.persistFed(fed); err != nil {
			return false, err
		}
	}
	if len(rt.health) != len(fed.Parts) {
		rt.health = make([]partHealth, len(fed.Parts))
	}

	parts := make([]FleetPart, len(fed.Parts))
	for k := range fed.Parts {
		p := &fed.Parts[k]
		parts[k] = FleetPart{
			Job:         j.id,
			Part:        k,
			Member:      p.MemberName,
			MemberURL:   p.MemberURL,
			MemberJob:   p.MemberJob,
			Planned:     rangesLen(p.Ranges),
			Speculative: p.SpecMemberJob != "",
		}
		if p.Fetched {
			parts[k].Done = p.Done
			parts[k].Critical = p.Critical
			parts[k].Fetched = true
			parts[k].Speculative = false
			continue
		}
		if p.Local {
			if err := s.stepLocalPart(ctx, j, fed, k, rt, &parts[k]); err != nil {
				return false, err
			}
			continue
		}
		if p.MemberJob == "" {
			if degraded {
				// Degraded fallback: nothing has been placeable for longer
				// than DegradedAfter — run the orphaned window locally as an
				// ordinary checkpointed ranged job instead of stalling.
				p.Local = true
				if err := s.persistFed(fed); err != nil {
					return false, err
				}
				s.appendWarning(j, "part %d: no placeable member for %s; running the window locally on the coordinator (degraded mode)",
					k, time.Since(rt.unplacedSince).Round(time.Second))
				if err := s.stepLocalPart(ctx, j, fed, k, rt, &parts[k]); err != nil {
					return false, err
				}
				continue
			}
			if err := s.assignPart(ctx, j, fed, k, rt, placeable); err != nil {
				return false, err
			}
			parts[k].Member = fed.Parts[k].MemberName
			parts[k].MemberURL = fed.Parts[k].MemberURL
			parts[k].MemberJob = fed.Parts[k].MemberJob
			continue
		}
		var st JobStatus
		err := s.fed.api(ctx, p.MemberURL, http.MethodGet, "/api/v1/campaigns/"+p.MemberJob, nil, &st)
		if err != nil {
			var fatal *fatalMemberError
			if !errors.As(err, &fatal) && s.memberAliveByURL(p.MemberURL) {
				continue // transient (or breaker-open): the member still heartbeats
			}
			// Dead member (or a member that lost the job). A speculative
			// copy in flight is promoted to primary — its run is warm —
			// instead of a cold reassignment; otherwise the window resets
			// for reassignment. Nothing from the lost run is tallied, so no
			// draw can be counted twice.
			if p.SpecMemberJob != "" {
				s.appendWarning(j, "part %d: member %s unreachable or lost job %s; promoting the speculative copy on %s",
					k, p.MemberURL, p.MemberJob, p.SpecMemberURL)
				p.MemberURL, p.MemberJob, p.MemberName = p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName
				p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName = "", "", ""
				rt.health[k] = partHealth{}
				parts[k].Member, parts[k].MemberURL, parts[k].MemberJob = p.MemberName, p.MemberURL, p.MemberJob
				parts[k].Speculative = false
			} else {
				s.appendWarning(j, "part %d: member %s unreachable or lost job %s; reassigning its draw ranges (attempt %d)",
					k, p.MemberURL, p.MemberJob, p.Reassigned+1)
				p.MemberURL, p.MemberJob, p.MemberName = "", "", ""
				p.Reassigned++
				rt.health[k] = partHealth{}
				parts[k].Member, parts[k].MemberURL, parts[k].MemberJob = "", "", ""
			}
			if err := s.persistFed(fed); err != nil {
				return false, err
			}
			continue
		}
		switch st.State {
		case StateCompleted:
			if err := s.completePart(ctx, j, fed, k, st, false); err != nil {
				var fatal *fatalMemberError
				if errors.As(err, &fatal) {
					return false, err
				}
				continue // transient fetch failure: retry next cycle
			}
			parts[k].Done = fed.Parts[k].Done
			parts[k].Critical = fed.Parts[k].Critical
			parts[k].Fetched = true
			parts[k].Speculative = false
		case StateFailed, StateCanceled:
			// A failing spec fails everywhere; reassigning would loop.
			return false, fmt.Errorf("service: member %s job %s %s: %s",
				p.MemberURL, p.MemberJob, st.State, st.Error)
		default:
			parts[k].Done = st.Done
			parts[k].Critical = st.Critical
			parts[k].Rate = st.Rate
			// Health fold: EWMA of per-cycle done deltas, the straggler
			// detector's progress-rate signal.
			h := &rt.health[k]
			delta := st.Done - h.lastDone
			if delta < 0 {
				delta = 0
			}
			h.lastDone = st.Done
			h.rate = 0.5*h.rate + 0.5*float64(delta)
		}
		if p.SpecMemberJob != "" && !p.Fetched {
			if err := s.stepSpeculative(ctx, j, fed, k, &parts[k]); err != nil {
				return false, err
			}
		}
	}
	s.checkStragglers(ctx, j, fed, rt, placeable)
	allFetched := s.publishFedProgress(j, parts)
	if !allFetched {
		return false, nil
	}
	return true, s.mergeFederated(j, plan, fed)
}

// checkStragglers compares every running part's progress rate against
// the fleet median and speculatively re-dispatches persistent
// stragglers to a spare member. Fetched parts keep their final
// (frozen) rate in the median pool, so a two-part fleet can still
// recognize its slow half after the fast half finishes.
func (s *Service) checkStragglers(ctx context.Context, j *job, fed *fedDoc, rt *fedRuntime, placeable []MemberStatus) {
	if s.cfg.StragglerRatio < 0 || len(fed.Parts) < 2 {
		return
	}
	rates := make([]float64, 0, len(rt.health))
	for k := range fed.Parts {
		if fed.Parts[k].Local {
			continue
		}
		rates = append(rates, rt.health[k].rate)
	}
	if len(rates) < 2 {
		return
	}
	sort.Float64s(rates)
	median := rates[len(rates)/2]
	if median <= 0 {
		return
	}
	for k := range fed.Parts {
		p := &fed.Parts[k]
		h := &rt.health[k]
		if p.Fetched || p.Local || p.MemberJob == "" || p.SpecMemberJob != "" {
			h.slow = 0
			continue
		}
		if h.rate < s.cfg.StragglerRatio*median {
			h.slow++
		} else {
			h.slow = 0
		}
		if h.slow < s.cfg.StragglerCycles {
			continue
		}
		h.slow = 0
		s.speculatePart(ctx, j, fed, k, placeable)
	}
}

// speculatePart dispatches a duplicate of part k's window to a spare
// member: any placeable member other than the straggler's, preferring
// one with no unfetched primary window of its own. Failing to find or
// reach a spare just waits for the next straggler verdict.
func (s *Service) speculatePart(ctx context.Context, j *job, fed *fedDoc, k int, placeable []MemberStatus) {
	p := &fed.Parts[k]
	busy := map[string]bool{}
	for i := range fed.Parts {
		if !fed.Parts[i].Fetched && fed.Parts[i].MemberJob != "" {
			busy[fed.Parts[i].MemberURL] = true
		}
	}
	var spare *MemberStatus
	for i := range placeable {
		m := &placeable[i]
		if m.URL == p.MemberURL {
			continue
		}
		if !busy[m.URL] {
			spare = m
			break
		}
		if spare == nil {
			spare = m
		}
	}
	if spare == nil {
		return
	}
	spec := s.partSpec(j, p.Ranges, k, memberLabel(*spare))
	var st JobStatus
	if err := s.fed.api(ctx, spare.URL, http.MethodPost, "/api/v1/campaigns", spec, &st); err != nil {
		return // transient or rejected: retry at the next straggler verdict
	}
	p.SpecMemberURL = spare.URL
	p.SpecMemberJob = st.ID
	p.SpecMemberName = memberLabel(*spare)
	s.specParts.Inc()
	s.appendWarning(j, "part %d: progress on %s below %.0f%% of the fleet median for %d cycles; speculatively re-dispatched to %s",
		k, p.MemberURL, s.cfg.StragglerRatio*100, s.cfg.StragglerCycles, spare.URL)
	if err := s.persistFed(fed); err != nil {
		s.warnf("job %s: %v", j.id, err)
	}
}

// stepSpeculative polls part k's speculative duplicate. Completion
// makes it the merged copy (completePart cancels the original as the
// loser); losing the copy just drops it — the primary still owns the
// window.
func (s *Service) stepSpeculative(ctx context.Context, j *job, fed *fedDoc, k int, view *FleetPart) error {
	p := &fed.Parts[k]
	var st JobStatus
	err := s.fed.api(ctx, p.SpecMemberURL, http.MethodGet, "/api/v1/campaigns/"+p.SpecMemberJob, nil, &st)
	if err != nil {
		var fatal *fatalMemberError
		if !errors.As(err, &fatal) && s.memberAliveByURL(p.SpecMemberURL) {
			return nil // transient: next cycle
		}
		s.appendWarning(j, "part %d: speculative member %s unreachable or lost job %s; dropping the copy",
			k, p.SpecMemberURL, p.SpecMemberJob)
		p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName = "", "", ""
		view.Speculative = false
		return s.persistFed(fed)
	}
	switch st.State {
	case StateCompleted:
		if err := s.completePart(ctx, j, fed, k, st, true); err != nil {
			var fatal *fatalMemberError
			if errors.As(err, &fatal) {
				// The copy's documents are unusable; keep the primary.
				s.appendWarning(j, "part %d: speculative copy unusable (%v); dropping it", k, err)
				p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName = "", "", ""
				view.Speculative = false
				return s.persistFed(fed)
			}
			return nil // transient fetch failure: retry next cycle
		}
		view.Done = p.Done
		view.Critical = p.Critical
		view.Fetched = true
		view.Speculative = false
		view.Member, view.MemberURL, view.MemberJob = p.MemberName, p.MemberURL, p.MemberJob
	case StateFailed, StateCanceled:
		s.appendWarning(j, "part %d: speculative copy on %s %s; dropping it", k, p.SpecMemberURL, st.State)
		p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName = "", "", ""
		view.Speculative = false
		return s.persistFed(fed)
	default:
		// Two copies race; the fleet view shows whichever is farther.
		if st.Done > view.Done {
			view.Done = st.Done
			view.Critical = st.Critical
			view.Rate = st.Rate
		}
	}
	return nil
}

// rangesLen sums the draw windows of one part.
func rangesLen(ranges []core.DrawRange) int64 {
	var n int64
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// assignPart submits part k's window to a placeable member and records
// the assignment durably. With no placeable member the part simply
// stays unassigned until one appears (or degraded mode takes it over).
func (s *Service) assignPart(ctx context.Context, j *job, fed *fedDoc, k int, rt *fedRuntime, placeable []MemberStatus) error {
	if len(placeable) == 0 {
		return nil
	}
	target := placeable[rt.assignSeq%len(placeable)]
	rt.assignSeq++
	spec := s.partSpec(j, fed.Parts[k].Ranges, k, memberLabel(target))
	var st JobStatus
	if err := s.fed.api(ctx, target.URL, http.MethodPost, "/api/v1/campaigns", spec, &st); err != nil {
		var fatal *fatalMemberError
		if errors.As(err, &fatal) {
			return fmt.Errorf("service: member %s rejected part %d: %w", target.URL, k, err)
		}
		return nil // transient: retry next cycle (possibly another member)
	}
	fed.Parts[k].MemberURL = target.URL
	fed.Parts[k].MemberJob = st.ID
	fed.Parts[k].MemberName = memberLabel(target)
	rt.health[k] = partHealth{}
	return s.persistFed(fed)
}

// partSpec is the member-job spec for one draw window of j: the same
// campaign restricted to the window, stamped with the correlation
// fields the member opens its part trace with (and the merged trace
// names on every spliced event).
func (s *Service) partSpec(j *job, ranges []core.DrawRange, k int, member string) CampaignSpec {
	spec := j.spec
	spec.Federated = false
	spec.Ranges = ranges
	spec.Name = fmt.Sprintf("%s#part%d", j.spec.Name, k)
	part := k
	spec.FederatedJob = j.id
	spec.FederatedPart = &part
	spec.FederatedMember = member
	return spec
}

// memberLabel is the member identity used in traces and fleet rows: the
// self-reported display name when set, the registry ID otherwise.
func memberLabel(m MemberStatus) string {
	if m.Name != "" {
		return m.Name
	}
	return m.ID
}

// completePart downloads and persists one completed copy of part k —
// the primary's (fromSpec false) or the speculative duplicate's
// (fromSpec true). The Result is parse-validated before it is written,
// so a torn response can never enter the merge; the member's part
// trace rides along for the merged-trace splice (a member that cannot
// serve its trace degrades to a warning — the trace is observability,
// the Result is the contract). When two copies raced, the loser's job
// is canceled and its Result is never fetched: exactly one Result per
// window reaches the merge, so no draw is ever double-tallied.
func (s *Service) completePart(ctx context.Context, j *job, fed *fedDoc, k int, st JobStatus, fromSpec bool) error {
	p := &fed.Parts[k]
	srcURL, srcJob, srcName := p.MemberURL, p.MemberJob, p.MemberName
	loserURL, loserJob := p.SpecMemberURL, p.SpecMemberJob
	if fromSpec {
		srcURL, srcJob, srcName = p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName
		loserURL, loserJob = p.MemberURL, p.MemberJob
	}
	data, err := s.fed.fetchDoc(ctx, srcURL, srcJob, "result")
	if err != nil {
		return err
	}
	if _, err := core.ReadResultJSON(bytes.NewReader(data)); err != nil {
		return &fatalMemberError{msg: fmt.Sprintf("part %d result unparseable: %v", k, err)}
	}
	tdata, terr := s.fed.fetchDoc(ctx, srcURL, srcJob, "trace")
	var fatal *fatalMemberError
	switch {
	case terr == nil:
		if err := s.atomicWrite(s.partTracePath(j.id, k), tdata); err != nil {
			return fmt.Errorf("service: writing part trace: %w", err)
		}
	case errors.As(terr, &fatal):
		s.appendWarning(j, "part %d: member %s job %s has no trace (%v); the merged trace will omit it",
			k, srcURL, srcJob, terr)
	default:
		return terr // transient: retry the whole fetch next cycle
	}
	if err := s.atomicWrite(s.partPath(j.id, k), data); err != nil {
		return fmt.Errorf("service: writing part result: %w", err)
	}
	if fromSpec {
		s.appendWarning(j, "part %d: speculative copy on %s finished first; merging it and canceling the original on %s",
			k, srcURL, loserURL)
	}
	p.MemberURL, p.MemberJob, p.MemberName = srcURL, srcJob, srcName
	p.SpecMemberURL, p.SpecMemberJob, p.SpecMemberName = "", "", ""
	p.Fetched = true
	p.Done = st.Done
	p.Critical = st.Critical
	p.AbandonedLanes = st.AbandonedLanes
	if err := s.persistFed(fed); err != nil {
		return err
	}
	// The losing copy is canceled before the merge can run (the merge
	// needs every part fetched, and this one just became fetched with
	// the winner's document); its draws may have been evaluated twice
	// on the fleet, but are tallied exactly once.
	if loserJob != "" {
		s.cancelMemberJob(loserURL, loserJob)
	}
	if st.AbandonedLanes > 0 {
		s.appendWarning(j, "member %s job %s: %d watchdog-abandoned lane(s)",
			p.MemberURL, p.MemberJob, st.AbandonedLanes)
	}
	s.mu.Lock()
	j.abandoned += st.AbandonedLanes
	if perr := s.persistLocked(j); perr != nil {
		s.warnf("job %s: %v", j.id, perr)
	}
	s.mu.Unlock()
	return nil
}

// localMemberLabel is the member identity stamped on degraded-mode
// windows in traces, fleet rows, and warnings.
const localMemberLabel = "coordinator"

// stepLocalPart advances one degraded-mode window: starts the local
// engine run on first sight, reflects its live progress in the fleet
// view while it runs, and harvests the finished Result into the same
// part slot the merge reads for remote windows.
func (s *Service) stepLocalPart(ctx context.Context, j *job, fed *fedDoc, k int, rt *fedRuntime, view *FleetPart) error {
	lr := rt.local[k]
	if lr == nil {
		lr = s.startLocalPart(ctx, j, fed, k)
		rt.local[k] = lr
	}
	view.Member = localMemberLabel
	view.MemberURL = ""
	view.MemberJob = ""
	select {
	case <-lr.done:
	default:
		p := lr.progress()
		view.Done = p.Done
		view.Critical = p.Critical
		view.Rate = p.Rate
		return nil
	}
	switch {
	case lr.err == nil && lr.res != nil && !lr.res.Partial:
		var buf bytes.Buffer
		if err := lr.res.WriteJSON(&buf); err != nil {
			return fmt.Errorf("service: part %d local result: %w", k, err)
		}
		if err := s.atomicWrite(s.partPath(j.id, k), buf.Bytes()); err != nil {
			return fmt.Errorf("service: writing part result: %w", err)
		}
		p := &fed.Parts[k]
		p.Fetched = true
		p.MemberName = localMemberLabel
		p.Done = lr.res.Injections()
		p.Critical = criticalOf(lr.res)
		if err := s.persistFed(fed); err != nil {
			return err
		}
		os.Remove(s.partCheckpointPath(j.id, k))
		os.Remove(s.partCheckpointPath(j.id, k) + ".bak")
		view.Done = p.Done
		view.Critical = p.Critical
		view.Fetched = true
		delete(rt.local, k)
		return nil
	case ctx.Err() != nil, lr.err == nil && lr.res != nil && lr.res.Partial:
		// Shutdown or cancel interrupted the run; runFederated's ctx
		// branch owns what happens next (the part checkpoint makes a
		// daemon-restart resume exact).
		return nil
	default:
		return fmt.Errorf("service: part %d local run: %v", k, lr.err)
	}
}

// startLocalPart launches part k's window on the coordinator's own
// engine as an ordinary checkpointed ranged job: same spec, same draw
// window, part-scoped checkpoint and trace files, resumable. Workers
// are clamped to the local pool — safe because Results are
// bit-identical at any worker count.
func (s *Service) startLocalPart(ctx context.Context, j *job, fed *fedDoc, k int) *localRun {
	lr := &localRun{done: make(chan struct{})}
	spec := s.partSpec(j, fed.Parts[k].Ranges, k, localMemberLabel)
	if spec.Workers > s.cfg.TotalWorkers {
		spec.Workers = s.cfg.TotalWorkers
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(lr.done)
		ev, plan, err := buildCampaign(spec, s.cfg.BuildEvaluator)
		if err != nil {
			lr.err = err
			return
		}
		tr, closeTrace := s.openPartTrace(j, k, spec)
		defer closeTrace()
		progress := func(p core.Progress) {
			lr.mu.Lock()
			lr.prog = p
			lr.mu.Unlock()
		}
		opts := []core.Option{
			core.WithWorkers(spec.Workers),
			core.WithCheckpoint(s.partCheckpointPath(j.id, k)),
			core.WithResume(),
			core.WithWarnings(func(msg string) { s.warnf("job %s part %d: %s", j.id, k, msg) }),
			core.WithDrawRanges(spec.Ranges),
		}
		if tr != nil {
			tp, inner := tr.Progress(spec.Name), progress
			progress = func(p core.Progress) { tp(p); inner(p) }
			opts = append(opts, core.WithTrace(tr.Sink(spec.Name)))
		}
		opts = append(opts, core.WithProgress(progress))
		if s.cfg.CheckpointEvery > 0 {
			opts = append(opts, core.WithCheckpointInterval(s.cfg.CheckpointEvery))
		}
		if s.cfg.ProgressEvery > 0 {
			opts = append(opts, core.WithProgressInterval(s.cfg.ProgressEvery))
		}
		if spec.EarlyStop != nil {
			opts = append(opts, core.WithEarlyStop(*spec.EarlyStop))
		}
		if spec.ExperimentTimeoutMS > 0 {
			opts = append(opts, core.WithExperimentTimeout(time.Duration(spec.ExperimentTimeoutMS)*time.Millisecond))
		}
		if spec.MaxRetries != nil {
			opts = append(opts, core.WithMaxRetries(*spec.MaxRetries))
		}
		if spec.Batch > 1 {
			opts = append(opts, core.WithGroupedEvaluation(true))
		}
		lr.res, lr.err = core.NewEngine(opts...).Execute(ctx, ev, plan, spec.RunSeed)
	}()
	return lr
}

// openPartTrace opens the degraded window's on-disk part trace with the
// same part_meta prologue a member daemon writes, so the merged-trace
// splice treats local and remote parts identically. Trace trouble
// degrades to a warning; the returned tracer may be nil.
func (s *Service) openPartTrace(j *job, k int, spec CampaignSpec) (*telemetry.Tracer, func()) {
	f, err := os.Create(s.partTracePath(j.id, k))
	if err != nil {
		s.warnf("job %s part %d: trace: %v", j.id, k, err)
		return nil, func() {}
	}
	pm := telemetry.PartMeta(spec.Name, j.id, k, localMemberLabel, spec.Ranges)
	if data, merr := json.Marshal(pm); merr == nil {
		if _, werr := f.Write(append(data, '\n')); werr != nil {
			s.warnf("job %s part %d: trace: %v", j.id, k, werr)
		}
	}
	tr := telemetry.NewTracer(f, traceBuffer)
	return tr, func() {
		if cerr := tr.Close(); cerr != nil {
			s.warnf("job %s part %d: trace: %v", j.id, k, cerr)
		}
		if cerr := f.Close(); cerr != nil {
			s.warnf("job %s part %d: trace: %v", j.id, k, cerr)
		}
	}
}

// mergeFederated folds the fetched part Results into the final document
// and completes the job. The merge is strict (in-order, gap-free,
// overlap-free), so any bookkeeping corruption surfaces as a failed
// job, never as a silently wrong Result.
func (s *Service) mergeFederated(j *job, plan *core.Plan, fed *fedDoc) error {
	parts := make([]*core.Result, len(fed.Parts))
	for k := range fed.Parts {
		data, err := os.ReadFile(s.partPath(j.id, k))
		if err != nil {
			return fmt.Errorf("service: part %d result missing: %w", k, err)
		}
		res, err := core.ReadResultJSON(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("service: part %d: %w", k, err)
		}
		parts[k] = res
	}
	merged, err := core.MergeRangeResults(plan, parts)
	if err != nil {
		return err
	}
	if werr := s.writeResult(j.id, merged); werr != nil {
		return werr
	}
	// Splice the fetched part traces into the job's merged global trace
	// before removeFedState deletes them. Trace trouble is a warning,
	// never a failed merge — the Result is already durable.
	if terr := s.spliceFederatedTrace(j, plan, fed, merged); terr != nil {
		s.appendWarning(j, "merged trace: %v", terr)
	}
	s.removeFedState(j, len(fed.Parts))
	s.finish(j, StateCompleted, "", merged.Injections(), criticalOf(merged))
	return nil
}

// fedDone / fedCritical return the job's freshest progress tallies (for
// the repending/cancel paths, where no engine result exists).
func (s *Service) fedDone(j *job) int64 {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	return j.prog.Done
}
func (s *Service) fedCritical(j *job) int64 {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	return j.prog.Critical
}

// publishFedProgress snapshots this cycle's per-part tallies for the
// fleet view, publishes one per-part progress frame per part plus the
// fleet-summed aggregate frame to SSE subscribers — so `sfictl watch`
// behaves identically for federated and local jobs while part-aware
// consumers can follow each member — and reports whether every part is
// fetched.
func (s *Service) publishFedProgress(j *job, parts []FleetPart) bool {
	var done, critical int64
	final := true
	for _, p := range parts {
		done += p.Done
		critical += p.Critical
		final = final && p.Fetched
	}
	s.mu.Lock()
	j.fedParts = append([]FleetPart(nil), parts...)
	s.mu.Unlock()
	for _, fp := range parts {
		ev := telemetry.NewEvent(telemetry.KindProgress)
		ev.Campaign = j.id
		ev.TimeUnixNano = time.Now().UnixNano()
		ev.FederatedJob = j.id
		k := fp.Part
		ev.Part = &k
		ev.Member = fp.Member
		ev.Done = fp.Done
		ev.Planned = fp.Planned
		ev.Critical = fp.Critical
		ev.Rate = fp.Rate
		ev.Final = fp.Fetched
		j.b.publishJSON(ev)
	}
	p := core.Progress{Done: done, Planned: j.planned, Critical: critical, Final: final}
	j.pmu.Lock()
	j.prog = p
	j.hasProg = true
	j.pmu.Unlock()
	j.b.publishJSON(telemetry.FromProgress(j.id, p))
	return final
}

// JoinConfig parameterises JoinFleet, the member half of the
// membership protocol.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL; Advertise the base URL
	// the coordinator should reach this daemon at; Name the display
	// label.
	Coordinator string
	Advertise   string
	Name        string
	// Interval is the heartbeat cadence (default 2s, jittered ±10%).
	Interval time.Duration
	// RPCTimeout bounds each registration/heartbeat attempt (default 5s).
	RPCTimeout time.Duration
	// Transport optionally replaces the HTTP transport — the chaos seam.
	Transport http.RoundTripper
	// Warnf receives one-line diagnostics.
	Warnf func(format string, args ...any)
}

// Join registers this daemon with a coordinator and keeps the
// registration alive with heartbeats until ctx ends, with the default
// resilience shape; JoinFleet is the configurable variant (sfid -join
// runs it).
func Join(ctx context.Context, coordinator, advertise, name string, interval time.Duration, warnf func(format string, args ...any)) {
	JoinFleet(ctx, JoinConfig{Coordinator: coordinator, Advertise: advertise, Name: name, Interval: interval, Warnf: warnf})
}

// JoinFleet runs the member→coordinator half of the membership
// protocol: register, then heartbeat until ctx ends. A heartbeat
// answered with 404 (coordinator restarted, registry gone) triggers
// re-registration; transport errors are reported through Warnf and the
// next tick simply tries again. The member-side breaker makes a dead
// coordinator cost one fast refusal per tick instead of a full
// timeout.
func JoinFleet(ctx context.Context, jc JoinConfig) {
	warnf := jc.Warnf
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	interval := jc.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	// Heartbeats recur on their own cadence, so each tick gets at most
	// one in-tick retry; more would just delay the next fresh beat.
	client := newMemberClient(jc.Transport, jc.RPCTimeout, 0, 0, nil)
	client.group.Policy.MaxAttempts = 2
	// Jittered cadence (±10%): a fleet started by one script would
	// otherwise register and heartbeat in lockstep, hammering the
	// coordinator with synchronized bursts forever.
	timer := time.NewTimer(jitter(interval))
	defer timer.Stop()
	var id string
	for {
		if id == "" {
			var st MemberStatus
			err := client.api(ctx, jc.Coordinator, http.MethodPost, "/api/v1/members",
				memberRegistration{URL: jc.Advertise, Name: jc.Name}, &st)
			if err != nil {
				warnf("join: registering with %s: %v", jc.Coordinator, err)
			} else {
				id = st.ID
			}
		} else {
			err := client.api(ctx, jc.Coordinator, http.MethodPost,
				"/api/v1/members/"+id+"/heartbeat", nil, nil)
			var fatal *fatalMemberError
			if errors.As(err, &fatal) {
				id = "" // unknown to the coordinator: re-register next tick
			} else if err != nil {
				warnf("join: heartbeat to %s: %v", jc.Coordinator, err)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			timer.Reset(jitter(interval))
		}
	}
}

// jitter spreads d by ±10%.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
}
