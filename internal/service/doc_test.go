package service_test

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"cnnsfi/internal/service"
)

// apiDoc loads docs/API.md, the operator-facing reference this package
// must stay in sync with.
func apiDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	return string(data)
}

// TestEveryRouteIsDocumented enforces the acceptance criterion that
// docs/API.md covers the full served surface: each mux route must
// appear verbatim as `METHOD PATTERN`.
func TestEveryRouteIsDocumented(t *testing.T) {
	doc := apiDoc(t)
	routes := service.Routes()
	if len(routes) < 12 {
		t.Fatalf("Routes() lists %d routes, expected the full surface (12+)", len(routes))
	}
	for _, r := range routes {
		want := fmt.Sprintf("`%s %s`", r.Method, r.Pattern)
		if !strings.Contains(doc, want) {
			t.Errorf("docs/API.md is missing route %s", want)
		}
	}
}

// TestEverySpecFieldIsDocumented keeps the field tables in docs/API.md
// complete: every JSON field of the request and status schemas must be
// mentioned.
func TestEverySpecFieldIsDocumented(t *testing.T) {
	doc := apiDoc(t)
	for _, typ := range []reflect.Type{
		reflect.TypeOf(service.CampaignSpec{}),
		reflect.TypeOf(service.JobStatus{}),
		reflect.TypeOf(service.JobStateEvent{}),
		reflect.TypeOf(service.MemberStatus{}),
		reflect.TypeOf(service.FleetStatus{}),
		reflect.TypeOf(service.FleetMember{}),
		reflect.TypeOf(service.FleetPart{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if name == "" || name == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, `"`+name+`"`) {
				t.Errorf("docs/API.md never mentions %s field %q", typ.Name(), name)
			}
		}
	}
}
