package service_test

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"cnnsfi/internal/service"
)

// apiDoc loads docs/API.md, the operator-facing reference this package
// must stay in sync with.
func apiDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	return string(data)
}

// TestEveryRouteIsDocumented enforces the acceptance criterion that
// docs/API.md covers the full served surface: each mux route must
// appear verbatim as `METHOD PATTERN`.
func TestEveryRouteIsDocumented(t *testing.T) {
	doc := apiDoc(t)
	routes := service.Routes()
	if len(routes) < 12 {
		t.Fatalf("Routes() lists %d routes, expected the full surface (12+)", len(routes))
	}
	for _, r := range routes {
		want := fmt.Sprintf("`%s %s`", r.Method, r.Pattern)
		if !strings.Contains(doc, want) {
			t.Errorf("docs/API.md is missing route %s", want)
		}
	}
}

// TestFailureModeMatrixIsDocumented enforces the operator contract for
// the resilience layer: docs/OPERATIONS.md must carry a "Failure modes
// and recovery" matrix covering every automatic intervention and the
// signal it emits — the warnings and metric names the code actually
// produces, so an operator chasing a symptom finds the row.
func TestFailureModeMatrixIsDocumented(t *testing.T) {
	data, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md must exist: %v", err)
	}
	doc := string(data)
	if !strings.Contains(doc, "## Failure modes and recovery") {
		t.Fatal("docs/OPERATIONS.md has no \"Failure modes and recovery\" section")
	}
	matrix := doc[strings.Index(doc, "## Failure modes and recovery"):]
	if end := strings.Index(matrix[2:], "\n## "); end >= 0 {
		matrix = matrix[:end+2]
	}
	for _, want := range []string{
		// The metrics the resilience layer exports.
		"sfid_retries_total",
		"sfid_member_breaker_state",
		"sfid_speculative_parts_total",
		"sfid_state_write_errors_total",
		// The warning phrases the coordinator writes onto jobs —
		// verbatim, so a grep of the matrix matches a grep of a job.
		"reassigning its draw ranges",
		"speculatively re-dispatched",
		"degraded mode",
		"state write failed",
	} {
		if !strings.Contains(matrix, want) {
			t.Errorf("failure-mode matrix never mentions %q", want)
		}
	}
}

// TestEverySpecFieldIsDocumented keeps the field tables in docs/API.md
// complete: every JSON field of the request and status schemas must be
// mentioned.
func TestEverySpecFieldIsDocumented(t *testing.T) {
	doc := apiDoc(t)
	for _, typ := range []reflect.Type{
		reflect.TypeOf(service.CampaignSpec{}),
		reflect.TypeOf(service.JobStatus{}),
		reflect.TypeOf(service.JobStateEvent{}),
		reflect.TypeOf(service.MemberStatus{}),
		reflect.TypeOf(service.FleetStatus{}),
		reflect.TypeOf(service.FleetMember{}),
		reflect.TypeOf(service.FleetPart{}),
		reflect.TypeOf(service.ResyncEvent{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if name == "" || name == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, `"`+name+`"`) {
				t.Errorf("docs/API.md never mentions %s field %q", typ.Name(), name)
			}
		}
	}
}
