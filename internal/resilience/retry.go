// Package resilience provides the fleet's failure-handling primitives:
// a retry policy with exponential backoff, full jitter, and a shared
// per-call retry budget; a three-state per-member circuit breaker; and
// a chaos transport for proving both under injected faults.
//
// The package is deliberately free of service-layer concepts — it
// speaks errors, contexts, and http.RoundTripper only — so the engine
// hot path never touches it and the service layer wraps RPCs without
// pulling scheduling logic down here.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// permanentError marks an error as not-retryable. Unwrap preserves
// errors.Is/As through the wrapper so callers can still classify the
// underlying failure (e.g. a structured 4xx from a member).
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Policy.Do returns it immediately instead of
// retrying. Wrapping nil returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Budget is a token bucket shared across calls: each retry (not each
// first attempt) withdraws one token, and tokens refill at a steady
// rate. Under a wide outage this caps the retry amplification the
// fleet can generate — first attempts always proceed, but the extra
// load from retries is bounded. A nil *Budget never refuses.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time // injectable for tests
}

// NewBudget returns a full bucket holding max tokens that refills at
// perSecond tokens per second.
func NewBudget(max, perSecond float64) *Budget {
	return &Budget{tokens: max, max: max, rate: perSecond, now: time.Now}
}

// Withdraw takes one retry token, reporting false when the bucket is
// empty (the retry should be abandoned).
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Policy is a reusable retry policy: exponential backoff with full
// jitter between attempts, an attempt cap, and an optional shared
// Budget. The zero value is usable and means "3 attempts, 50ms base,
// 2s cap, no budget".
type Policy struct {
	MaxAttempts int           // total attempts including the first; 0 means 3
	BaseDelay   time.Duration // first backoff ceiling; 0 means 50ms
	MaxDelay    time.Duration // backoff ceiling; 0 means 2s
	Budget      *Budget       // shared retry budget; nil means unlimited

	// OnRetry, when set, observes each scheduled retry (attempt is the
	// 1-based number of the attempt that just failed).
	OnRetry func(attempt int, err error)

	// Rand and Sleep are injectable for tests. Rand returns a float in
	// [0,1); Sleep must honour ctx cancellation.
	Rand  func() float64
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p *Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p *Policy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

var rngMu sync.Mutex
var rng = rand.New(rand.NewSource(time.Now().UnixNano()))

func defaultRand() float64 {
	rngMu.Lock()
	defer rngMu.Unlock()
	return rng.Float64()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a Permanent error, the context
// is cancelled, the attempt cap is reached, or the budget is
// exhausted. The last error from op is returned on failure.
func (p *Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	rnd := p.Rand
	if rnd == nil {
		rnd = defaultRand
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err = op(ctx)
		if err == nil || IsPermanent(err) {
			return err
		}
		if ctx.Err() != nil {
			// The attempt failed because the overall call was cancelled
			// or timed out; report that rather than the transport noise.
			return err
		}
		if attempt >= p.maxAttempts() || !p.Budget.Withdraw() {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		// Full jitter: sleep uniformly in [0, min(cap, base<<(n-1))).
		ceil := p.baseDelay() << (attempt - 1)
		if ceil > p.maxDelay() || ceil <= 0 {
			ceil = p.maxDelay()
		}
		if err := sleep(ctx, time.Duration(rnd()*float64(ceil))); err != nil {
			return err
		}
	}
}
