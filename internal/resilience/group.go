package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Group combines one retry Policy with a lazily-created circuit
// breaker per key (in the fleet, the key is the member base URL).
// Group.Do is the single choke point every member RPC goes through.
type Group struct {
	Policy     Policy
	NewBreaker func() *Breaker // breaker factory; nil means NewBreaker(5, 10s)

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// Breaker returns the breaker for key, creating it closed on first
// sight.
func (g *Group) Breaker(key string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.breakers == nil {
		g.breakers = make(map[string]*Breaker)
	}
	br := g.breakers[key]
	if br == nil {
		if g.NewBreaker != nil {
			br = g.NewBreaker()
		} else {
			br = NewBreaker(5, 10*time.Second)
		}
		g.breakers[key] = br
	}
	return br
}

// States snapshots every known breaker's state, keyed as registered.
func (g *Group) States() map[string]State {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]State, len(g.breakers))
	for k, b := range g.breakers {
		out[k] = b.State()
	}
	return out
}

// Do runs op under the group's retry policy and the breaker for key.
// Every attempt first consults the breaker: a refusal surfaces as a
// Permanent error wrapping ErrOpen (retrying locally is pointless —
// the breaker re-probes on a later call). Attempt outcomes feed the
// breaker: success closes it, a retryable failure counts against it,
// and Permanent errors or caller cancellation count as neither (a
// structured 4xx means the member is healthy but refusing, and a
// cancelled context says nothing about the member at all).
func (g *Group) Do(ctx context.Context, key string, op func(ctx context.Context) error) error {
	br := g.Breaker(key)
	return g.Policy.Do(ctx, func(ctx context.Context) error {
		if !br.Allow() {
			return Permanent(fmt.Errorf("%w: %s", ErrOpen, key))
		}
		err := op(ctx)
		switch {
		case err == nil:
			br.Success()
		case IsPermanent(err) || ctx.Err() != nil:
			// No breaker movement.
		default:
			br.Failure()
		}
		return err
	})
}
