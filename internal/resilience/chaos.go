package resilience

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Chaos describes an injectable fault mix for the chaos transport.
// Probabilities are per-request in [0,1]; a zero value injects
// nothing.
type Chaos struct {
	Drop     float64       // probability of a synthetic connection error
	Err      float64       // probability of a synthesized 503 response
	Truncate float64       // probability of a half-delivered body
	Delay    time.Duration // fixed added latency per request
	// Flap models a member that dies and revives on a schedule: for
	// FlapDown out of every FlapPeriod, every request fails with a
	// connection error.
	FlapPeriod time.Duration
	FlapDown   time.Duration
	Seed       int64 // RNG seed; 0 means 1 (deterministic by default)
}

// ParseChaos parses a comma-separated chaos spec of the form
// "drop=0.2,delay=50ms,err=0.1,truncate=0.1,flap=2s/500ms,seed=7".
// Unknown keys are errors; an empty spec is the zero Chaos.
func ParseChaos(spec string) (Chaos, error) {
	var c Chaos
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "drop":
			c.Drop, err = parseProb(v)
		case "err":
			c.Err, err = parseProb(v)
		case "truncate":
			c.Truncate, err = parseProb(v)
		case "delay":
			c.Delay, err = time.ParseDuration(v)
		case "flap":
			period, down, ok := strings.Cut(v, "/")
			if !ok {
				return c, fmt.Errorf("chaos: flap wants period/down, got %q", v)
			}
			if c.FlapPeriod, err = time.ParseDuration(period); err == nil {
				c.FlapDown, err = time.ParseDuration(down)
			}
			if err == nil && (c.FlapPeriod <= 0 || c.FlapDown <= 0 || c.FlapDown >= c.FlapPeriod) {
				err = fmt.Errorf("flap wants 0 < down < period, got %s/%s", period, down)
			}
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return c, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("chaos: %s: %v", k, err)
		}
	}
	return c, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// Transport is an http.RoundTripper that injects the configured chaos
// in front of a base transport. It exists to prove the resilience
// layer: the fleet must keep its bit-identity contract with this in
// the request path.
type Transport struct {
	Chaos Chaos
	Base  http.RoundTripper // nil means http.DefaultTransport

	mu    sync.Mutex
	rng   *rand.Rand
	start time.Time
}

// NewTransport returns a chaos transport over base (nil for the
// default transport). The flap clock starts at the first request.
func NewTransport(c Chaos, base http.RoundTripper) *Transport {
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{Chaos: c, Base: base, rng: rand.New(rand.NewSource(seed))}
}

// chaosError is the synthetic connection failure: retryable by every
// sane HTTP client classification.
type chaosError struct{ what string }

func (e *chaosError) Error() string { return "chaos: " + e.what }

// Timeout and Temporary mark the error like a real net error would.
func (e *chaosError) Timeout() bool   { return false }
func (e *chaosError) Temporary() bool { return true }

func (t *Transport) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < p
}

func (t *Transport) flapping() bool {
	if t.Chaos.FlapPeriod <= 0 {
		return false
	}
	t.mu.Lock()
	if t.start.IsZero() {
		t.start = time.Now()
	}
	since := time.Since(t.start)
	t.mu.Unlock()
	return since%t.Chaos.FlapPeriod < t.Chaos.FlapDown
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.flapping() {
		return nil, &chaosError{what: "member down (flap window)"}
	}
	if t.Chaos.Delay > 0 {
		timer := time.NewTimer(t.Chaos.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if t.roll(t.Chaos.Drop) {
		return nil, &chaosError{what: "connection dropped"}
	}
	if t.roll(t.Chaos.Err) {
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: synthesized 503\n")),
			Request:    req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.roll(t.Chaos.Truncate) {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		// Deliver half the body, then fail the stream the way a torn
		// connection would.
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(body[:len(body)/2]),
			&errReader{err: io.ErrUnexpectedEOF},
		))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }
