package resilience

import (
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker's position. The numeric values are part
// of the observable surface: sfid_member_breaker_state exports them
// verbatim (0 closed, 1 half-open, 2 open).
type State int

const (
	Closed   State = 0
	HalfOpen State = 1
	Open     State = 2
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrOpen is returned (wrapped, via Group.Do) when a breaker refuses a
// call. It is a transient condition — the breaker re-probes after its
// open interval — so callers should treat it like an unreachable peer,
// not a fatal protocol error.
var ErrOpen = errors.New("circuit breaker open")

// Breaker is a three-state circuit breaker. Consecutive failures trip
// it open; after OpenFor it admits a single probe (half-open); the
// probe's outcome either closes it or re-opens it for another
// interval.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	openFor   time.Duration
	now       func() time.Time

	state    State
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeAt  time.Time
}

// NewBreaker returns a closed breaker that trips after threshold
// consecutive failures (min 1) and stays open for openFor before
// probing.
func NewBreaker(threshold int, openFor time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if openFor <= 0 {
		openFor = 10 * time.Second
	}
	return &Breaker{threshold: threshold, openFor: openFor, now: time.Now}
}

// Allow reports whether a call may proceed now. In the open state it
// returns false until OpenFor has elapsed, then transitions to
// half-open and admits exactly one probe; while that probe is in
// flight (bounded by another OpenFor interval, in case the caller
// never reports back) further calls are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.probeAt = b.now()
		return true
	default: // HalfOpen
		if b.probing && b.now().Sub(b.probeAt) < b.openFor {
			return false
		}
		b.probing = true
		b.probeAt = b.now()
		return true
	}
}

// Success reports a completed call; any state collapses to closed.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed call. A failed half-open probe re-opens the
// breaker immediately; in the closed state failures accumulate until
// the threshold trips it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
		b.failures = 0
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
			b.failures = 0
		}
	default: // Open: a straggling failure report changes nothing.
	}
}

// Available is a read-only placement check: it reports whether a call
// admitted now could proceed, without consuming the half-open probe
// slot. Placement logic uses this to skip tripped members without
// perturbing probe accounting.
func (b *Breaker) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		return b.now().Sub(b.openedAt) >= b.openFor
	}
	return true
}

// State returns the breaker's current position without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
