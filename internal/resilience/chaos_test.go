package resilience

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("drop=0.2,delay=50ms,err=0.1,truncate=0.25,flap=2s/500ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Chaos{Drop: 0.2, Err: 0.1, Truncate: 0.25, Delay: 50 * time.Millisecond,
		FlapPeriod: 2 * time.Second, FlapDown: 500 * time.Millisecond, Seed: 7}
	if c != want {
		t.Fatalf("ParseChaos = %+v, want %+v", c, want)
	}
	if c, err := ParseChaos(""); err != nil || c != (Chaos{}) {
		t.Fatalf("empty spec = %+v, %v; want zero, nil", c, err)
	}
	for _, bad := range []string{
		"drop=1.5", "drop=x", "bogus=1", "flap=2s", "flap=500ms/2s", "delay", "flap=0s/0s",
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestTransportDropAndErr(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	// drop=1: every request fails with a connection-style error.
	cl := &http.Client{Transport: NewTransport(Chaos{Drop: 1}, nil)}
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("drop=1 transport returned a response")
	}
	// err=1: every request yields a synthesized 503 without reaching
	// the server.
	cl = &http.Client{Transport: NewTransport(Chaos{Err: 1}, nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestTransportTruncate(t *testing.T) {
	const body = "a perfectly reasonable response body"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()

	cl := &http.Client{Transport: NewTransport(Chaos{Truncate: 1}, nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAll err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) >= len(body) || !strings.HasPrefix(body, string(got)) {
		t.Fatalf("got %d/%d bytes %q, want a strict prefix", len(got), len(body), got)
	}
}

func TestTransportFlapWindows(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := NewTransport(Chaos{FlapPeriod: 200 * time.Millisecond, FlapDown: 100 * time.Millisecond}, nil)
	cl := &http.Client{Transport: tr}
	// The flap clock starts at the first request, so the first window
	// is down.
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("request during the down window succeeded")
	}
	time.Sleep(120 * time.Millisecond)
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("request during the up window failed: %v", err)
	}
	resp.Body.Close()
}
