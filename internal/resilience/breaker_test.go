package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, openFor time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, openFor)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if b.State() != Closed {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatalf("state = %v, Allow = true; want open and refusing", b.State())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenProbeSuccess(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the open interval elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v during probe, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted while the first is in flight")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatalf("probe success: state = %v, want closed and admitting", b.State())
	}
}

func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe")
	}
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatalf("probe failure: state = %v, want re-opened and refusing", b.State())
	}
	// The re-open starts a fresh interval.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not re-probe after the second open interval")
	}
}

func TestBreakerAvailableIsSideEffectFree(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Available() {
		t.Fatal("open breaker reported available")
	}
	clk.advance(time.Second)
	if !b.Available() {
		t.Fatal("probe-ready breaker reported unavailable")
	}
	if b.State() != Open {
		t.Fatal("Available() transitioned the breaker state")
	}
	// The probe slot is still intact for Allow.
	if !b.Allow() {
		t.Fatal("Allow refused after Available")
	}
}

func TestBreakerStuckProbeTimesOut(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	// The probe's caller dies without reporting. After another open
	// interval a fresh probe must be admitted.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker wedged on a probe that never reported back")
	}
}

func TestGroupDoFeedsBreaker(t *testing.T) {
	g := &Group{
		Policy:     Policy{MaxAttempts: 1},
		NewBreaker: func() *Breaker { return NewBreaker(2, time.Hour) },
	}
	boom := errors.New("boom")
	fail := func(context.Context) error { return boom }

	if err := g.Do(context.Background(), "m", fail); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if err := g.Do(context.Background(), "m", fail); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	// Tripped: the third call is refused without running op.
	calls := 0
	err := g.Do(context.Background(), "m", func(context.Context) error { calls++; return nil })
	if !errors.Is(err, ErrOpen) || calls != 0 {
		t.Fatalf("Do = %v with %d op calls, want ErrOpen and 0", err, calls)
	}
	if st := g.States()["m"]; st != Open {
		t.Fatalf("States()[m] = %v, want open", st)
	}
	// Other keys are independent.
	if err := g.Do(context.Background(), "other", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("independent key refused: %v", err)
	}
}

func TestGroupPermanentErrorsDoNotTrip(t *testing.T) {
	g := &Group{
		Policy:     Policy{MaxAttempts: 1},
		NewBreaker: func() *Breaker { return NewBreaker(1, time.Hour) },
	}
	for i := 0; i < 5; i++ {
		err := g.Do(context.Background(), "m", func(context.Context) error {
			return Permanent(errors.New("structured 404"))
		})
		if !IsPermanent(err) {
			t.Fatalf("Do = %v, want permanent", err)
		}
	}
	if st := g.States()["m"]; st != Closed {
		t.Fatalf("permanent errors tripped the breaker: %v", st)
	}
}

func TestGroupCancellationDoesNotTrip(t *testing.T) {
	g := &Group{
		Policy:     Policy{MaxAttempts: 1},
		NewBreaker: func() *Breaker { return NewBreaker(1, time.Hour) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	_ = g.Do(ctx, "m", func(context.Context) error {
		cancel()
		return context.Canceled
	})
	if st := g.States()["m"]; st != Closed {
		t.Fatalf("caller cancellation tripped the breaker: %v", st)
	}
}
