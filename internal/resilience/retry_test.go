package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// noSleep makes Policy.Do instantaneous while recording requested
// backoffs.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		if delays != nil {
			*delays = append(*delays, d)
		}
		return nil
	}
}

func TestPolicyRetriesUntilSuccess(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: noSleep(nil), Rand: func() float64 { return 0.5 }}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestPolicyStopsAtMaxAttempts(t *testing.T) {
	calls := 0
	retries := 0
	p := Policy{
		MaxAttempts: 3,
		Sleep:       noSleep(nil),
		Rand:        func() float64 { return 0.5 },
		OnRetry:     func(int, error) { retries++ },
	}
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 || retries != 2 {
		t.Fatalf("Do = %v, calls %d, retries %d; want sentinel, 3, 2", err, calls, retries)
	}
}

func TestPolicyPermanentShortCircuits(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: noSleep(nil)}
	inner := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("member said: %w", inner))
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !IsPermanent(err) || !errors.Is(err, inner) {
		t.Fatalf("classification lost through wrap: %v", err)
	}
}

func TestPolicyHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10, Sleep: noSleep(nil), Rand: func() float64 { return 0 }}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if err == nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want error after 1 (cancelled)", err, calls)
	}
}

func TestPolicyBackoffIsExponentialWithFullJitter(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Sleep:       noSleep(&delays),
		Rand:        func() float64 { return 1.0 - 1e-9 }, // worst case: near the ceiling
	}
	_ = p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %d entries", delays, len(want))
	}
	for i := range want {
		if delays[i] > want[i] || delays[i] < want[i]/2 {
			t.Errorf("delay[%d] = %v, want near ceiling %v", i, delays[i], want[i])
		}
	}
	// Full jitter: rand()=0 must produce zero sleeps.
	delays = nil
	p.Rand = func() float64 { return 0 }
	_ = p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	for i, d := range delays {
		if d != 0 {
			t.Errorf("delay[%d] = %v with rand()=0, want 0", i, d)
		}
	}
}

func TestBudgetCapsRetries(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBudget(2, 1) // 2 tokens, 1/s refill
	b.now = func() time.Time { return clock }

	calls := 0
	p := Policy{MaxAttempts: 10, Budget: b, Sleep: noSleep(nil), Rand: func() float64 { return 0 }}
	_ = p.Do(context.Background(), func(context.Context) error { calls++; return errors.New("x") })
	if calls != 3 { // first attempt + 2 budgeted retries
		t.Fatalf("calls = %d, want 3 (budget of 2 retries)", calls)
	}
	// Exhausted: the next failing call gets no retries at all.
	calls = 0
	_ = p.Do(context.Background(), func(context.Context) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Fatalf("calls = %d with empty budget, want 1", calls)
	}
	// Refill restores capacity.
	clock = clock.Add(5 * time.Second)
	calls = 0
	_ = p.Do(context.Background(), func(context.Context) error { calls++; return errors.New("x") })
	if calls != 3 {
		t.Fatalf("calls = %d after refill, want 3", calls)
	}
}

func TestNilBudgetNeverRefuses(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Withdraw() {
			t.Fatal("nil budget refused a withdrawal")
		}
	}
}
