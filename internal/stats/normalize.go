package stats

import (
	"math"
	"sort"
)

// MinMaxNormalize linearly rescales values into [a, b] (Eq. 5 of the
// paper without outlier handling):
//
//	out = a + (v − min)·(b − a)/(max − min).
//
// When all values are equal the midpoint (a+b)/2 is returned for every
// element. The input is not modified.
func MinMaxNormalize(values []float64, a, b float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for i, v := range values {
		if hi == lo {
			out[i] = (a + b) / 2
			continue
		}
		out[i] = a + unitPos(v, lo, hi)*(b-a)
	}
	return out
}

// unitPos returns (v−lo)/(hi−lo) computed without intermediate overflow
// even when hi−lo exceeds MaxFloat64, clamped into [0, 1].
func unitPos(v, lo, hi float64) float64 {
	var t float64
	if d := hi - lo; !math.IsInf(d, 0) {
		t = (v - lo) / d
	} else {
		t = (v/2 - lo/2) / (hi/2 - lo/2)
	}
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// OutlierBounds returns the Tukey fences [Q1 − k·IQR, Q3 + k·IQR] of the
// values with the conventional k = 1.5. Values outside the fences are
// considered outliers. Empty input returns (−Inf, +Inf).
func OutlierBounds(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return math.Inf(-1), math.Inf(1)
	}
	q1 := Quantile(values, 0.25)
	q3 := Quantile(values, 0.75)
	iqr := q3 - q1
	return q1 - 1.5*iqr, q3 + 1.5*iqr
}

// MinMaxNormalizeExcludingOutliers implements the full Eq. 5 convention
// of the paper: the min and max of the rescaling are computed over the
// non-outlier values only (Tukey fences), and outliers above the upper
// fence are assigned the maximum criticality b while outliers below the
// lower fence are assigned a. The paper motivates this by noting that a
// very large average bit-flip distance can directly be given the highest
// criticality p = 0.5. Results are clamped into [a, b].
func MinMaxNormalizeExcludingOutliers(values []float64, a, b float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	loFence, hiFence := OutlierBounds(values)

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < loFence || v > hiFence {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // everything is an outlier; fall back to plain min-max
		return MinMaxNormalize(values, a, b)
	}
	for i, v := range values {
		switch {
		case v > hiFence:
			out[i] = b
		case v < loFence:
			out[i] = a
		case hi == lo:
			out[i] = (a + b) / 2
		default:
			out[i] = a + unitPos(v, lo, hi)*(b-a)
		}
	}
	return out
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the values using
// linear interpolation between order statistics (type-7, the default of
// R and NumPy). It panics on empty input or q outside [0, 1].
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile level outside [0,1]")
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
