package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.95, 1.6448536269514722},
		{0.9995, 3.2905267314919255},
		{0.025, -1.959963984540054},
		{0.001, -3.090232306167813},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.0005; p < 1; p += 0.0137 {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestZRoundedConventions(t *testing.T) {
	tests := []struct {
		conf, want float64
	}{
		{0.99, 2.58},
		{0.95, 1.96},
		{0.90, 1.64},
		{0.999, 3.29},
	}
	for _, tt := range tests {
		if got := ZRounded(tt.conf); got != tt.want {
			t.Errorf("ZRounded(%v) = %v, want %v", tt.conf, got, tt.want)
		}
	}
	// Unconventional level falls back to exact rounded to 2 decimals.
	if got := ZRounded(0.98); math.Abs(got-2.33) > 1e-9 {
		t.Errorf("ZRounded(0.98) = %v, want 2.33", got)
	}
}

func TestZExact99(t *testing.T) {
	if got := ZExact(0.99); math.Abs(got-2.5758293035489004) > 1e-9 {
		t.Errorf("ZExact(0.99) = %v", got)
	}
}

// TestSampleSizeReproducesTableI pins the package to the exact values of
// Table I of the paper (ResNet-20), which is the ground truth for the
// paper-compatible conventions (t = 2.58, round-to-nearest).
func TestSampleSizeReproducesTableI(t *testing.T) {
	c := DefaultConfig()
	tests := []struct {
		name string
		N    int64
		want int64
	}{
		{"network-wise ResNet-20", 17174144, 16625},
		{"network-wise MobileNetV2", 141029376, 16639},
		{"layer-wise L0", 27648, 10389},
		{"layer-wise L1", 147456, 14954},
		{"layer-wise L7", 294912, 15752},
		{"layer-wise L8", 589824, 16184},
		{"layer-wise L11", 590464, 16185},
		{"layer-wise L13", 1179648, 16410},
		{"layer-wise L14", 2359296, 16524},
		{"layer-wise L19", 40960, 11834},
		{"data-unaware per-bit L0", 864, 821},
		{"data-unaware per-bit L1", 4608, 3609},
		{"data-unaware per-bit L7", 9216, 5931},
		{"data-unaware per-bit L8", 18432, 8746},
		{"data-unaware per-bit L13", 36864, 11466},
		{"data-unaware per-bit L14", 73728, 13577},
		{"data-unaware per-bit L19", 1280, 1189},
	}
	for _, tt := range tests {
		if got := c.SampleSize(tt.N); got != tt.want {
			t.Errorf("%s: SampleSize(%d) = %d, want %d", tt.name, tt.N, got, tt.want)
		}
	}
}

func TestSampleSizeEdgeCases(t *testing.T) {
	c := DefaultConfig()
	if got := c.SampleSize(0); got != 0 {
		t.Errorf("SampleSize(0) = %d", got)
	}
	if got := c.SampleSize(1); got != 1 {
		t.Errorf("SampleSize(1) = %d, want 1", got)
	}
	// Tiny populations: n never exceeds N.
	for N := int64(1); N < 50; N++ {
		if got := c.SampleSize(N); got > N || got < 1 {
			t.Fatalf("SampleSize(%d) = %d out of [1,N]", N, got)
		}
	}
}

func TestSampleSizeCeilIsAtLeastNearest(t *testing.T) {
	near := DefaultConfig()
	ceil := DefaultConfig()
	ceil.Rounding = RoundCeil
	for _, N := range []int64{100, 864, 27648, 17174144} {
		if ceil.SampleSize(N) < near.SampleSize(N) {
			t.Errorf("ceil rounding produced smaller n for N=%d", N)
		}
	}
}

func TestSampleSizeMonotoneInPopulation(t *testing.T) {
	c := DefaultConfig()
	f := func(a, b uint32) bool {
		n1, n2 := int64(a%1e6), int64(b%1e6)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return c.SampleSize(n1) <= c.SampleSize(n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleSizeDecreasesAwayFromHalf(t *testing.T) {
	// p·(1-p) is maximal at 0.5 (Fig. 1 left), so n must shrink as p
	// departs from 0.5 in either direction.
	c := DefaultConfig()
	const N = 589824
	nHalf := c.SampleSize(N)
	for _, p := range []float64{0.4, 0.25, 0.1, 0.01, 0.6, 0.9} {
		if got := c.WithP(p).SampleSize(N); got >= nHalf {
			t.Errorf("p=%v: n=%d not below n(0.5)=%d", p, got, nHalf)
		}
	}
}

func TestSampleSizeMonotoneInErrorMargin(t *testing.T) {
	const N = 147456
	c1, c2 := DefaultConfig(), DefaultConfig()
	c1.ErrorMargin = 0.005
	c2.ErrorMargin = 0.02
	if c1.SampleSize(N) <= c2.SampleSize(N) {
		t.Error("tighter margin should need more samples")
	}
}

func TestWithPClamps(t *testing.T) {
	c := DefaultConfig()
	if got := c.WithP(0).P; got <= 0 {
		t.Errorf("WithP(0) left p=%v", got)
	}
	if got := c.WithP(1).P; got >= 1 {
		t.Errorf("WithP(1) left p=%v", got)
	}
	if got := c.WithP(0.3).P; got != 0.3 {
		t.Errorf("WithP(0.3) = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []SampleSizeConfig{
		{ErrorMargin: 0, Confidence: 0.99, P: 0.5},
		{ErrorMargin: 0.01, Confidence: 1.5, P: 0.5},
		{ErrorMargin: 0.01, Confidence: 0.99, P: 0},
		{ErrorMargin: 1, Confidence: 0.99, P: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestAchievedMarginRoundTrip(t *testing.T) {
	// The margin achieved by the computed sample size must not exceed
	// the requested margin by more than the rounding granularity.
	c := DefaultConfig()
	c.Rounding = RoundCeil
	for _, N := range []int64{1000, 27648, 589824, 17174144} {
		n := c.SampleSize(N)
		if m := c.AchievedMargin(n, N); m > c.ErrorMargin*1.0001 {
			t.Errorf("N=%d: achieved margin %v exceeds requested %v", N, m, c.ErrorMargin)
		}
	}
}

func TestAchievedMarginExhaustiveIsZero(t *testing.T) {
	c := DefaultConfig()
	if got := c.AchievedMargin(100, 100); got != 0 {
		t.Errorf("exhaustive margin = %v, want 0", got)
	}
	if got := c.AchievedMargin(5, 1); got != 0 {
		t.Errorf("N=1 margin = %v, want 0", got)
	}
}

func TestAchievedMarginShrinksWithN(t *testing.T) {
	c := DefaultConfig()
	const N = 100000
	prev := math.Inf(1)
	for _, n := range []int64{10, 100, 1000, 10000, 99999} {
		m := c.AchievedMargin(n, N)
		if m >= prev {
			t.Fatalf("margin did not shrink at n=%d: %v >= %v", n, m, prev)
		}
		prev = m
	}
}

func TestObservedMargin(t *testing.T) {
	c := DefaultConfig()
	// At pHat = 0.5 the observed margin equals the planned margin.
	if got, want := c.ObservedMargin(0.5, 1000, 100000), c.AchievedMargin(1000, 100000); got != want {
		t.Errorf("observed(0.5) = %v, planned = %v", got, want)
	}
	// Extreme observed proportions shrink the margin.
	if c.ObservedMargin(0.01, 1000, 100000) >= c.ObservedMargin(0.5, 1000, 100000) {
		t.Error("margin at pHat=0.01 should be below pHat=0.5")
	}
	// Degenerate proportions give zero margin.
	if c.ObservedMargin(0, 1000, 100000) != 0 {
		t.Error("margin at pHat=0 should be 0")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	got := MinMaxNormalize([]float64{0, 5, 10}, 0, 0.5)
	want := []float64{0, 0.25, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("index %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestMinMaxNormalizeConstantInput(t *testing.T) {
	got := MinMaxNormalize([]float64{3, 3, 3}, 0, 0.5)
	for _, v := range got {
		if v != 0.25 {
			t.Errorf("constant input should map to midpoint, got %v", v)
		}
	}
}

func TestMinMaxNormalizeEmpty(t *testing.T) {
	if got := MinMaxNormalize(nil, 0, 1); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestMinMaxNormalizeBounds(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		out := MinMaxNormalize(vals, 0, 0.5)
		for _, v := range out {
			if v < 0 || v > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxNormalizeExcludingOutliers(t *testing.T) {
	// One extreme outlier: it must be clamped to b, and the remaining
	// values must span the full [a, b] range (unlike plain min-max,
	// where the outlier would squash them near a).
	vals := []float64{1, 2, 3, 4, 5, 1e9}
	out := MinMaxNormalizeExcludingOutliers(vals, 0, 0.5)
	if out[5] != 0.5 {
		t.Errorf("outlier mapped to %v, want 0.5", out[5])
	}
	if out[0] != 0 {
		t.Errorf("min mapped to %v, want 0", out[0])
	}
	if math.Abs(out[4]-0.5) > 1e-12 {
		t.Errorf("non-outlier max mapped to %v, want 0.5", out[4])
	}
	// Compare: plain min-max would give out[4] ≈ 0.
	plain := MinMaxNormalize(vals, 0, 0.5)
	if plain[4] > 1e-6 {
		t.Errorf("sanity: plain normalize should squash, got %v", plain[4])
	}
}

func TestMinMaxNormalizeExcludingOutliersNoOutliers(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	a := MinMaxNormalizeExcludingOutliers(vals, 0, 0.5)
	b := MinMaxNormalize(vals, 0, 0.5)
	for i := range vals {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("index %d: with-outlier-handling %v != plain %v", i, a[i], b[i])
		}
	}
}

func TestMinMaxNormalizeExcludingOutliersInBounds(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		out := MinMaxNormalizeExcludingOutliers(vals, 0, 0.5)
		for _, v := range out {
			if v < 0 || v > 0.5 || math.IsNaN(v) {
				return false
			}
		}
		return len(out) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := Quantile(vals, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(vals, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(vals, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Quantile did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
}

func TestMeanVarianceStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := Variance(vals); got != 4 {
		t.Errorf("variance = %v", got)
	}
	if got := StdDev(vals); got != 2 {
		t.Errorf("std = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty describe should be 0")
	}
}

func TestMeanStdFloat32(t *testing.T) {
	vals := []float32{1, 2, 3}
	if got := MeanFloat32(vals); got != 2 {
		t.Errorf("mean32 = %v", got)
	}
	if got := StdDevFloat32(vals); math.Abs(got-math.Sqrt(2.0/3)) > 1e-9 {
		t.Errorf("std32 = %v", got)
	}
}

func TestBernoulliVariancePeaksAtHalf(t *testing.T) {
	peak := BernoulliVariance(0.5)
	if peak != 0.25 {
		t.Fatalf("p(1-p) at 0.5 = %v", peak)
	}
	for p := 0.0; p <= 1.0; p += 0.01 {
		if BernoulliVariance(p) > peak+1e-15 {
			t.Fatalf("variance at %v exceeds peak", p)
		}
	}
}

func TestBinomialVariance(t *testing.T) {
	if got := BinomialVariance(100, 0.5); got != 25 {
		t.Errorf("binomial variance = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0, -5, 7}, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 4 {
		t.Errorf("histogram = %v", counts)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, k int64 }{{100, 10}, {100, 100}, {1, 1}, {10, 0}, {1 << 40, 1000}} {
		got := SampleWithoutReplacement(rng, tc.n, tc.k)
		if int64(len(got)) != tc.k {
			t.Fatalf("n=%d k=%d: got %d items", tc.n, tc.k, len(got))
		}
		seen := make(map[int64]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample %d out of range [0,%d)", v, tc.n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := SampleWithoutReplacement(rng, 50, 50)
	seen := make(map[int64]bool)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Errorf("k=n sample missing values: %d distinct", len(seen))
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Chi-square-ish sanity: each of 10 items should be picked roughly
	// equally often when sampling 5 of 10 many times.
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(rng, 10, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 0.5
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("item %d picked %d times, want ≈ %v", i, c, want)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k int64 }{{5, 6}, {-1, 0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d k=%d did not panic", tc.n, tc.k)
				}
			}()
			SampleWithoutReplacement(rng, tc.n, tc.k)
		}()
	}
}

func TestProportionEstimate(t *testing.T) {
	c := DefaultConfig()
	p := ProportionEstimate{Successes: 50, SampleSize: 1000, PopulationSize: 100000}
	if got := p.PHat(); got != 0.05 {
		t.Errorf("pHat = %v", got)
	}
	m := p.Margin(c)
	if m <= 0 || m > 0.05 {
		t.Errorf("margin = %v out of plausible range", m)
	}
	if !p.Covers(c, 0.05) {
		t.Error("estimate should cover its own point value")
	}
	if p.Covers(c, 0.5) {
		t.Error("estimate should not cover a far value")
	}
	if pm := p.PlannedMargin(c); pm < m {
		t.Errorf("planned margin %v below observed-pHat margin %v (pHat far from 0.5)", pm, m)
	}
}

func TestProportionEstimateEmpty(t *testing.T) {
	var p ProportionEstimate
	if p.PHat() != 0 {
		t.Error("empty pHat should be 0")
	}
	if p.Margin(DefaultConfig()) != 1 {
		t.Error("empty margin should be 1 (no information)")
	}
}

func TestCombineStratified(t *testing.T) {
	// Two strata with different sizes and rates: combined pHat must be
	// the population-weighted mean, not the sample-weighted mean.
	parts := []ProportionEstimate{
		{Successes: 10, SampleSize: 100, PopulationSize: 1000}, // 10%
		{Successes: 90, SampleSize: 100, PopulationSize: 9000}, // 90%
	}
	got := Combine(parts)
	wantP := (0.1*1000 + 0.9*9000) / 10000
	if math.Abs(got.PHat()-wantP) > 0.005 {
		t.Errorf("combined pHat = %v, want ≈ %v", got.PHat(), wantP)
	}
	if got.SampleSize != 200 || got.PopulationSize != 10000 {
		t.Errorf("combined sizes = %d/%d", got.SampleSize, got.PopulationSize)
	}
}

func TestCombineEmpty(t *testing.T) {
	if got := Combine(nil); got.PopulationSize != 0 || got.PHat() != 0 {
		t.Error("combining nothing should give the zero estimate")
	}
}

func BenchmarkSampleSize(b *testing.B) {
	c := DefaultConfig()
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += c.SampleSize(17174144)
	}
	_ = acc
}

func BenchmarkNormalQuantile(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += NormalQuantile(0.995)
	}
	_ = acc
}

func BenchmarkSampleWithoutReplacement(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		SampleWithoutReplacement(rng, 1<<30, 1000)
	}
}

func TestWilsonIntervalBasics(t *testing.T) {
	c := DefaultConfig()
	// Zero successes: lower bound 0, upper bound small but positive.
	lo, hi := c.WilsonInterval(0, 100, 1000000)
	if lo != 0 {
		t.Errorf("lo = %v", lo)
	}
	if hi <= 0 || hi > 0.15 {
		t.Errorf("hi = %v, want small positive", hi)
	}
	// All successes: mirror image.
	lo2, hi2 := c.WilsonInterval(100, 100, 1000000)
	if hi2 != 1 {
		t.Errorf("hi2 = %v", hi2)
	}
	if math.Abs((1-lo2)-hi) > 1e-9 {
		t.Errorf("interval not symmetric: 1-lo2=%v hi=%v", 1-lo2, hi)
	}
	// Contains the observed proportion.
	lo3, hi3 := c.WilsonInterval(30, 100, 1000000)
	if lo3 > 0.3 || hi3 < 0.3 {
		t.Errorf("interval [%v,%v] misses 0.3", lo3, hi3)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	c := DefaultConfig()
	prev := 1.0
	for _, n := range []int64{10, 100, 1000, 10000} {
		lo, hi := c.WilsonInterval(n/10, n, 1e9)
		if w := hi - lo; w >= prev {
			t.Fatalf("width %v did not shrink at n=%d", w, n)
		} else {
			prev = w
		}
	}
}

func TestWilsonIntervalExhaustive(t *testing.T) {
	c := DefaultConfig()
	// Sampling the whole population: FPC zeroes the variance term but
	// the z²/n prior width remains; the interval must still contain p̂
	// tightly and stay in [0,1].
	lo, hi := c.WilsonInterval(5, 100, 100)
	if lo > 0.05 || hi < 0.05 || lo < 0 || hi > 1 {
		t.Errorf("exhaustive interval [%v,%v]", lo, hi)
	}
}

func TestWilsonIntervalNoSample(t *testing.T) {
	c := DefaultConfig()
	lo, hi := c.WilsonInterval(0, 0, 100)
	if lo != 0 || hi != 1 {
		t.Errorf("no-information interval = [%v,%v]", lo, hi)
	}
}

func TestWilsonCoversLikeWald(t *testing.T) {
	// For comfortable n and interior p̂ the two intervals agree closely.
	c := DefaultConfig()
	const n, x, N = 10000, 500, 10000000
	lo, hi := c.WilsonInterval(x, n, N)
	pHat := float64(x) / n
	wald := c.ObservedMargin(pHat, n, N)
	if math.Abs((hi-lo)/2-wald) > wald*0.05 {
		t.Errorf("wilson half-width %v vs wald %v", (hi-lo)/2, wald)
	}
}
