// Package stats implements the statistical-inference substrate of the
// statistical fault injection (SFI) methodology: normal quantiles, the
// finite-population-corrected sample-size formula (Eq. 1 of the paper),
// achieved-error-margin inversion, confidence intervals for proportions,
// min-max normalization with outlier exclusion (Eq. 5), descriptive
// statistics, and uniform sampling without replacement.
//
// # Paper-compatible conventions
//
// Reverse-engineering Table I of the paper shows the authors use the
// conventional rounded two-sided normal quantiles (t = 2.58 at 99%,
// 1.96 at 95%) and round the resulting sample size to the nearest
// integer. With these conventions every network-wise, layer-wise, and
// data-unaware entry of Tables I and II reproduces exactly. The package
// exposes both the rounded convention (default, ZRounded) and the exact
// quantile (ZExact) so the difference can be quantified (see the
// rounded-vs-exact ablation bench).
package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0, 1) using Acklam's rational
// approximation refined by one Halley step, accurate to ~1e-15.
// It panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile requires p in (0,1), got %v", p))
	}

	// Coefficients for Acklam's algorithm.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// ZExact returns the exact two-sided standard normal quantile for the
// given confidence level, e.g. ZExact(0.99) ≈ 2.5758.
// It panics if confidence is outside (0, 1).
func ZExact(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence must be in (0,1), got %v", confidence))
	}
	return NormalQuantile(0.5 + confidence/2)
}

// ZRounded returns the conventional rounded two-sided normal quantile
// used throughout the reliability literature and, in particular, by the
// paper's Tables I and II: 2.58 at 99%, 1.96 at 95%, 1.64 at 90%,
// 3.29 at 99.9%. Confidence levels without a conventional rounding fall
// back to the exact quantile rounded to two decimals.
func ZRounded(confidence float64) float64 {
	switch {
	case almostEqual(confidence, 0.90):
		return 1.64
	case almostEqual(confidence, 0.95):
		return 1.96
	case almostEqual(confidence, 0.99):
		return 2.58
	case almostEqual(confidence, 0.999):
		return 3.29
	default:
		return math.Round(ZExact(confidence)*100) / 100
	}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
