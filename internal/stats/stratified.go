package stats

import "math"

// Stratified is an estimate assembled from independent per-stratum
// samples (the situation of the bit-granular SFI approaches: one sample
// per (bit, layer) subpopulation, combined into a per-layer or whole-
// network figure).
//
// The point estimate weights each stratum's observed proportion by its
// population share. The margin is the half-width of the normal-
// approximation interval for the *stratified* estimator,
//
//	Var = Σ_h (N_h/N)² · p̂_h(1−p̂_h)/n_h · (N_h−n_h)/(N_h−1),
//
// which can differ by orders of magnitude from the simple-random-sample
// formula when sampling fractions are unequal across strata — treating a
// stratified sample as if it were uniform is exactly the kind of
// statistical mistake the paper warns about.
type Stratified struct {
	// Parts are the per-stratum estimates.
	Parts []ProportionEstimate
}

// SampleSize returns the total number of injections across strata.
func (s Stratified) SampleSize() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.SampleSize
	}
	return n
}

// PopulationSize returns the combined population size.
func (s Stratified) PopulationSize() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.PopulationSize
	}
	return n
}

// PHat returns the population-weighted point estimate.
func (s Stratified) PHat() float64 {
	N := s.PopulationSize()
	if N == 0 {
		return 0
	}
	var weighted float64
	for _, p := range s.Parts {
		weighted += p.PHat() * float64(p.PopulationSize)
	}
	return weighted / float64(N)
}

// Margin returns the half-width of the stratified confidence interval at
// the configuration's confidence level, evaluated at the observed
// per-stratum proportions with finite population corrections. A stratum
// with no sample contributes its worst-case Bernoulli variance (0.25),
// since nothing is known about it; the result is clamped to [0, 1].
func (s Stratified) Margin(c SampleSizeConfig) float64 {
	N := float64(s.PopulationSize())
	if N == 0 {
		return 1
	}
	var variance float64
	for _, p := range s.Parts {
		w := float64(p.PopulationSize) / N
		switch {
		case p.PopulationSize == 0:
			// Empty stratum contributes nothing.
		case p.SampleSize <= 0:
			// Unsampled stratum: worst-case variance of its true
			// proportion.
			variance += w * w * 0.25
		case p.SampleSize >= p.PopulationSize:
			// Exhaustive stratum: no estimation error.
		default:
			fpc := (float64(p.PopulationSize) - float64(p.SampleSize)) /
				(float64(p.PopulationSize) - 1)
			variance += w * w * strataVariance(p) / float64(p.SampleSize) * fpc
		}
	}
	m := c.Z() * math.Sqrt(variance)
	if m > 1 {
		m = 1
	}
	return m
}

// Covers reports whether PHat ± Margin contains the value.
func (s Stratified) Covers(c SampleSizeConfig, truth float64) bool {
	m := s.Margin(c)
	ph := s.PHat()
	return truth >= ph-m && truth <= ph+m
}

// strataVariance returns the Bernoulli variance attributed to one
// stratum's true proportion. For an interior observation (0 < x < n) it
// is the plug-in p̂(1−p̂). A degenerate sample (x = 0 or x = n) would
// plug in zero — claiming certainty from, say, a single trial — so it is
// replaced by the Anscombe-adjusted plug-in p̃ = (x+½)/(n+1), capped by
// the stratum's planned Bernoulli variance: the planner asserted the
// stratum's p when sizing the sample (tiny for a data-aware mantissa
// stratum, 0.5 for an agnostic one), and that assertion is the only
// other information available.
func strataVariance(p ProportionEstimate) float64 {
	ph := p.PHat()
	if p.Successes > 0 && p.Successes < p.SampleSize {
		return ph * (1 - ph)
	}
	adj := (float64(p.Successes) + 0.5) / (float64(p.SampleSize) + 1)
	anscombe := adj * (1 - adj)
	planned := 0.25
	if p.PlannedP > 0 && p.PlannedP < 1 {
		planned = p.PlannedP * (1 - p.PlannedP)
	}
	if anscombe < planned {
		return anscombe
	}
	return planned
}
