package stats

import (
	"math"
	"testing"
)

func TestStratifiedPHatWeightsByPopulation(t *testing.T) {
	s := Stratified{Parts: []ProportionEstimate{
		{Successes: 10, SampleSize: 100, PopulationSize: 1000, PlannedP: 0.5}, // 10%
		{Successes: 90, SampleSize: 100, PopulationSize: 9000, PlannedP: 0.5}, // 90%
	}}
	want := (0.1*1000 + 0.9*9000) / 10000
	if got := s.PHat(); math.Abs(got-want) > 1e-12 {
		t.Errorf("pHat = %v, want %v", got, want)
	}
	if s.SampleSize() != 200 || s.PopulationSize() != 10000 {
		t.Errorf("sizes = %d/%d", s.SampleSize(), s.PopulationSize())
	}
}

func TestStratifiedEmptyIsNoInformation(t *testing.T) {
	var s Stratified
	if s.PHat() != 0 {
		t.Error("empty pHat should be 0")
	}
	if got := s.Margin(DefaultConfig()); got != 1 {
		t.Errorf("empty margin = %v, want 1", got)
	}
}

// TestStratifiedMarginVsNaive: with wildly unequal sampling fractions,
// the stratified margin must exceed the naive simple-random-sample
// margin computed from the pooled counts — the error this type exists to
// prevent.
func TestStratifiedMarginVsNaive(t *testing.T) {
	c := DefaultConfig()
	// Stratum A: heavily sampled, p̂ = 0.5. Stratum B: barely sampled,
	// p̂ = 0.5 too (interior so no floor logic involved).
	s := Stratified{Parts: []ProportionEstimate{
		{Successes: 5000, SampleSize: 10000, PopulationSize: 10001, PlannedP: 0.5},
		{Successes: 2, SampleSize: 4, PopulationSize: 1000000, PlannedP: 0.5},
	}}
	naive := ProportionEstimate{
		Successes:      5002,
		SampleSize:     10004,
		PopulationSize: 1010001,
	}
	if s.Margin(c) <= naive.Margin(c) {
		t.Errorf("stratified margin %v should exceed naive %v", s.Margin(c), naive.Margin(c))
	}
}

func TestStratifiedExhaustiveStratumHasNoError(t *testing.T) {
	c := DefaultConfig()
	s := Stratified{Parts: []ProportionEstimate{
		{Successes: 42, SampleSize: 100, PopulationSize: 100, PlannedP: 0.5},
	}}
	if got := s.Margin(c); got != 0 {
		t.Errorf("exhaustive stratum margin = %v, want 0", got)
	}
}

func TestStratifiedUnsampledStratumWorstCase(t *testing.T) {
	c := DefaultConfig()
	s := Stratified{Parts: []ProportionEstimate{
		{SampleSize: 0, PopulationSize: 1000, PlannedP: 0.5},
	}}
	// Worst-case variance 0.25 → margin z·0.5 clamped to 1.
	if got := s.Margin(c); got != 1 {
		t.Errorf("unsampled margin = %v, want 1 (clamped)", got)
	}
	if !s.Covers(c, 0.99) {
		t.Error("no-information estimate must cover everything")
	}
}

// TestStrataVarianceDegenerateFloors pins the degenerate-sample rule:
// zero observed successes must not claim zero variance; the floor is the
// smaller of the Anscombe plug-in and the planned Bernoulli variance.
func TestStrataVarianceDegenerateFloors(t *testing.T) {
	// Interior sample: plain plug-in.
	interior := ProportionEstimate{Successes: 5, SampleSize: 10, PopulationSize: 100, PlannedP: 0.5}
	if got := strataVariance(interior); got != 0.25 {
		t.Errorf("interior variance = %v, want 0.25", got)
	}

	// Degenerate with agnostic planning (p = 0.5): Anscombe wins.
	degenerate := ProportionEstimate{Successes: 0, SampleSize: 27, PopulationSize: 1000, PlannedP: 0.5}
	adj := 0.5 / 28.0
	want := adj * (1 - adj)
	if got := strataVariance(degenerate); math.Abs(got-want) > 1e-12 {
		t.Errorf("degenerate variance = %v, want Anscombe %v", got, want)
	}

	// Degenerate with a tiny planned p (data-aware mantissa stratum):
	// the planned variance caps the floor.
	tiny := ProportionEstimate{Successes: 0, SampleSize: 7, PopulationSize: 1000, PlannedP: 0.001}
	if got := strataVariance(tiny); math.Abs(got-0.001*0.999) > 1e-12 {
		t.Errorf("tiny-planned variance = %v, want 0.000999", got)
	}

	// Unknown planning defaults to worst case, so Anscombe still wins.
	unknown := ProportionEstimate{Successes: 7, SampleSize: 7, PopulationSize: 1000}
	adj = 7.5 / 8.0
	if got := strataVariance(unknown); math.Abs(got-adj*(1-adj)) > 1e-12 {
		t.Errorf("unknown-planned variance = %v", got)
	}
}

func TestStratifiedSinglePartMatchesSimpleAtInterior(t *testing.T) {
	c := DefaultConfig()
	part := ProportionEstimate{Successes: 50, SampleSize: 1000, PopulationSize: 100000, PlannedP: 0.5}
	s := Stratified{Parts: []ProportionEstimate{part}}
	if math.Abs(s.Margin(c)-part.Margin(c)) > 1e-12 {
		t.Errorf("single-stratum margin %v != simple margin %v", s.Margin(c), part.Margin(c))
	}
	if s.PHat() != part.PHat() {
		t.Error("single-stratum pHat mismatch")
	}
}

func TestStratifiedCovers(t *testing.T) {
	c := DefaultConfig()
	s := Stratified{Parts: []ProportionEstimate{
		{Successes: 100, SampleSize: 1000, PopulationSize: 100000, PlannedP: 0.5},
	}}
	if !s.Covers(c, 0.1) {
		t.Error("must cover its own point estimate")
	}
	if s.Covers(c, 0.9) {
		t.Error("must not cover a distant value")
	}
}

func TestStratifiedEmptyPopulationPartIgnored(t *testing.T) {
	c := DefaultConfig()
	s := Stratified{Parts: []ProportionEstimate{
		{Successes: 10, SampleSize: 100, PopulationSize: 1000, PlannedP: 0.5},
		{PopulationSize: 0},
	}}
	ref := Stratified{Parts: s.Parts[:1]}
	if s.Margin(c) != ref.Margin(c) || s.PHat() != ref.PHat() {
		t.Error("empty-population stratum should not affect the estimate")
	}
}
