package stats

import (
	"math"
	"testing"
)

// Fuzz targets for the Eq. 1 / Eq. 3 sample-size machinery. Run over
// the seed corpus by plain `go test`; explored further by the CI fuzz
// smoke stage (`go test -fuzz=FuzzSampleSize -fuzztime=30s`).

// FuzzSampleSize checks the structural invariants of Eq. 1 for
// arbitrary configurations: the sample size always lands in [1, N] for
// a nonempty population, shrinks (weakly) as the requested margin
// grows, and under RoundCeil the achieved margin never exceeds the
// requested one — the property that makes the conservative rounding
// mode conservative.
func FuzzSampleSize(f *testing.F) {
	f.Add(0.01, 0.99, 0.5, int64(17215926))  // ResNet-20, Table I
	f.Add(0.01, 0.99, 0.5, int64(141513952)) // MobileNetV2, Table I
	f.Add(0.05, 0.95, 0.5, int64(1))
	f.Add(0.001, 0.999, 0.0001, int64(1<<40))
	f.Add(0.9999, 0.5, 0.9999, int64(2))
	f.Add(math.NaN(), 0.99, 0.5, int64(100)) // must be rejected, not mis-sized
	f.Fuzz(func(t *testing.T, e, conf, p float64, N int64) {
		cfg := SampleSizeConfig{ErrorMargin: e, Confidence: conf, P: p}
		if err := cfg.Validate(); err != nil {
			// Invalid configurations must be rejected deterministically —
			// NaN/Inf parameters included — and SampleSize must refuse
			// them by panicking rather than returning a bogus count.
			defer func() {
				if recover() == nil {
					t.Errorf("SampleSize accepted invalid config %+v", cfg)
				}
			}()
			cfg.SampleSize(1000)
			return
		}
		if N < 0 || N > 1<<50 {
			t.Skip() // negative populations panic by contract; huge ones lose float precision
		}

		n := cfg.SampleSize(N)
		if n < 0 || n > N {
			t.Fatalf("SampleSize(%d) = %d outside [0, N] for %+v", N, n, cfg)
		}
		if N > 0 && n < 1 {
			t.Fatalf("SampleSize(%d) = %d; nonempty population needs at least one injection", N, n)
		}

		// Weak monotonicity in the margin: doubling e never increases n.
		if e2 := 2 * e; e2 < 1 {
			cfg2 := cfg
			cfg2.ErrorMargin = e2
			if n2 := cfg2.SampleSize(N); n2 > n {
				t.Errorf("n grew from %d to %d when margin relaxed %v -> %v", n, n2, e, e2)
			}
		}

		// RoundCeil: the achieved margin must meet the request (up to
		// float round-off), or the sample is exhaustive.
		ceil := cfg
		ceil.Rounding = RoundCeil
		nc := ceil.SampleSize(N)
		if nc < n {
			t.Errorf("RoundCeil n=%d below RoundNearest n=%d", nc, n)
		}
		if nc > 0 {
			if got := ceil.AchievedMargin(nc, N); got > e*(1+1e-9)+1e-12 {
				t.Errorf("RoundCeil achieved margin %v exceeds requested %v (n=%d, N=%d, %+v)",
					got, e, nc, N, cfg)
			}
		}
	})
}

// FuzzAchievedMargin checks the Eq. 3 inversion: margins are finite,
// non-negative, zero for exhaustive samples, and weakly decreasing in
// the sample size.
func FuzzAchievedMargin(f *testing.F) {
	f.Add(0.01, 0.99, 0.5, int64(2100), int64(17215926))
	f.Add(0.01, 0.99, 0.5, int64(1), int64(2))
	f.Add(0.05, 0.95, 0.0001, int64(50), int64(100))
	f.Fuzz(func(t *testing.T, e, conf, p float64, n, N int64) {
		cfg := SampleSizeConfig{ErrorMargin: e, Confidence: conf, P: p}
		if cfg.Validate() != nil || n <= 0 || N < 0 || N > 1<<50 {
			t.Skip()
		}
		m := cfg.AchievedMargin(n, N)
		if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
			t.Fatalf("AchievedMargin(%d, %d) = %v for %+v", n, N, m, cfg)
		}
		if n >= N && m != 0 {
			t.Fatalf("exhaustive sample (n=%d >= N=%d) has margin %v, want 0", n, N, m)
		}
		if n+1 <= N {
			if m2 := cfg.AchievedMargin(n+1, N); m2 > m*(1+1e-12) {
				t.Errorf("margin grew from %v to %v as n went %d -> %d", m, m2, n, n+1)
			}
		}
	})
}

// FuzzWilsonInterval checks that the Wilson bounds always form a valid
// sub-interval of [0, 1] containing the observed proportion.
func FuzzWilsonInterval(f *testing.F) {
	f.Add(0.99, int64(0), int64(100), int64(1000))
	f.Add(0.99, int64(100), int64(100), int64(1000))
	f.Add(0.95, int64(3), int64(7), int64(7))
	f.Fuzz(func(t *testing.T, conf float64, successes, n, N int64) {
		cfg := SampleSizeConfig{ErrorMargin: 0.01, Confidence: conf, P: 0.5}
		if cfg.Validate() != nil || n <= 0 || n > 1<<40 || successes < 0 || successes > n {
			t.Skip()
		}
		lo, hi := cfg.WilsonInterval(successes, n, N)
		if !(lo >= 0 && hi <= 1 && lo <= hi) {
			t.Fatalf("WilsonInterval(%d, %d, %d) = [%v, %v] invalid", successes, n, N, lo, hi)
		}
		pHat := float64(successes) / float64(n)
		if pHat < lo-1e-12 || pHat > hi+1e-12 {
			t.Fatalf("interval [%v, %v] excludes observed proportion %v", lo, hi, pHat)
		}
	})
}
