package stats

import (
	"fmt"
	"math"
)

// Rounding selects how the real-valued sample size of Eq. 1 is converted
// to an integer number of fault injections.
type Rounding uint8

// Rounding modes.
const (
	// RoundNearest rounds half away from zero; this is the convention
	// that reproduces the paper's Tables I and II exactly.
	RoundNearest Rounding = iota
	// RoundCeil always rounds up; the statistically conservative choice
	// (the achieved margin never exceeds the requested one).
	RoundCeil
)

// SampleSizeConfig carries the parameters of Eq. 1.
type SampleSizeConfig struct {
	// ErrorMargin is the desired maximum error of the estimate e, as a
	// probability (the paper uses e = 0.01, i.e. 1%).
	ErrorMargin float64
	// Confidence is the desired confidence level, e.g. 0.99.
	Confidence float64
	// P is the a-priori probability that a trial succeeds (a fault
	// becomes a critical failure). p = 0.5 maximizes p·(1-p) and is the
	// safest, data-unaware choice; the data-aware methodology supplies
	// per-bit values p(i) ∈ (0, 0.5].
	P float64
	// UseExactZ selects the exact normal quantile instead of the
	// conventional rounded value (2.58 at 99%). The paper uses the
	// rounded convention; leave false to reproduce its tables.
	UseExactZ bool
	// Rounding converts the real-valued n to an integer count.
	Rounding Rounding
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: e = 1%, 99% confidence (t = 2.58), p = 0.5,
// round-to-nearest.
func DefaultConfig() SampleSizeConfig {
	return SampleSizeConfig{ErrorMargin: 0.01, Confidence: 0.99, P: 0.5}
}

// WithP returns a copy of the configuration with the success probability
// replaced, clamped into the open interval (0, 1) to keep Eq. 1
// well-defined. The data-aware methodology (Eq. 5) produces p ∈ [0, 0.5];
// p = 0 would mean "no injections needed at all", which is statistically
// degenerate, so it is clamped to a small positive floor.
func (c SampleSizeConfig) WithP(p float64) SampleSizeConfig {
	const floor = 1e-4
	if p < floor {
		p = floor
	}
	if p > 1-floor {
		p = 1 - floor
	}
	c.P = p
	return c
}

// Z returns the normal quantile t of Eq. 1 under the configuration's
// convention.
func (c SampleSizeConfig) Z() float64 {
	if c.UseExactZ {
		return ZExact(c.Confidence)
	}
	return ZRounded(c.Confidence)
}

// Validate reports whether the configuration parameters are usable.
// The comparisons are phrased positively so that NaN (which fails every
// ordering) is rejected rather than slipping through an
// outside-the-range test.
func (c SampleSizeConfig) Validate() error {
	if !(c.ErrorMargin > 0 && c.ErrorMargin < 1) {
		return fmt.Errorf("stats: error margin %v outside (0,1)", c.ErrorMargin)
	}
	if !(c.Confidence > 0 && c.Confidence < 1) {
		return fmt.Errorf("stats: confidence %v outside (0,1)", c.Confidence)
	}
	if !(c.P > 0 && c.P < 1) {
		return fmt.Errorf("stats: p %v outside (0,1)", c.P)
	}
	return nil
}

// SampleSize evaluates Eq. 1 of the paper,
//
//	n = N / (1 + e²·(N−1)/(t²·p·(1−p))),
//
// the sample size needed to estimate a proportion over a finite
// population of N faults with maximum error e at the configured
// confidence, assuming per-trial success probability p (binomial model
// with the normal approximation and the finite population correction).
//
// The result is guaranteed to lie in [0, N]. It panics if the
// configuration is invalid (use Validate to check first) or N < 0.
func (c SampleSizeConfig) SampleSize(populationSize int64) int64 {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if populationSize < 0 {
		panic("stats: negative population size")
	}
	if populationSize == 0 {
		return 0
	}
	N := float64(populationSize)
	t := c.Z()
	e := c.ErrorMargin
	raw := N / (1 + e*e*(N-1)/(t*t*c.P*(1-c.P)))

	var n int64
	switch c.Rounding {
	case RoundCeil:
		n = int64(math.Ceil(raw))
	default:
		n = int64(math.Round(raw))
	}
	if n < 1 {
		n = 1 // always inject at least one fault in a nonempty population
	}
	if n > populationSize {
		n = populationSize
	}
	return n
}

// AchievedMargin inverts Eq. 1: given a sample of size n drawn from a
// population of size N, it returns the error margin e actually achieved
// at the configured confidence for the configured p,
//
//	e = t·sqrt(p·(1−p)/n)·sqrt((N−n)/(N−1)),
//
// i.e. the half-width of the normal-approximation confidence interval
// with the finite population correction. For n ≥ N (exhaustive) the
// margin is zero. It panics on invalid configuration or n ≤ 0.
func (c SampleSizeConfig) AchievedMargin(n, populationSize int64) float64 {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic("stats: non-positive sample size")
	}
	N := float64(populationSize)
	if populationSize <= 1 || n >= populationSize {
		return 0
	}
	t := c.Z()
	fpc := math.Sqrt((N - float64(n)) / (N - 1))
	return t * math.Sqrt(c.P*(1-c.P)/float64(n)) * fpc
}

// WilsonInterval returns the Wilson score interval for x successes in n
// trials at the configuration's confidence. Unlike the Wald interval
// (ObservedMargin), it stays meaningful at observed proportions of 0 or
// 1 and never leaves [0, 1] — useful when reporting bit-level strata
// that observe no critical faults at all. The finite population
// correction is applied to the variance term.
func (c SampleSizeConfig) WilsonInterval(successes, n, populationSize int64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := c.Z()
	nf := float64(n)
	pHat := float64(successes) / nf
	fpc := 1.0
	if populationSize > 1 && n < populationSize {
		fpc = (float64(populationSize) - nf) / (float64(populationSize) - 1)
	}
	z2 := z * z * fpc
	denom := 1 + z2/nf
	center := (pHat + z2/(2*nf)) / denom
	half := z * math.Sqrt(fpc*pHat*(1-pHat)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ObservedMargin is AchievedMargin evaluated at the observed success
// proportion pHat instead of the planning p. This is the error bar
// reported alongside a campaign estimate (the thin black bars of
// Figs. 5-7): e = t·sqrt(p̂·(1−p̂)/n)·sqrt((N−n)/(N−1)).
func (c SampleSizeConfig) ObservedMargin(pHat float64, n, populationSize int64) float64 {
	if pHat < 0 || pHat > 1 {
		panic(fmt.Sprintf("stats: observed proportion %v outside [0,1]", pHat))
	}
	if n <= 0 {
		panic("stats: non-positive sample size")
	}
	N := float64(populationSize)
	if populationSize <= 1 || n >= populationSize {
		return 0
	}
	t := c.Z()
	fpc := math.Sqrt((N - float64(n)) / (N - 1))
	return t * math.Sqrt(pHat*(1-pHat)/float64(n)) * fpc
}
