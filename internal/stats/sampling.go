package stats

import (
	"fmt"
	"math/rand"
)

// SampleWithoutReplacement draws k distinct integers uniformly at random
// from [0, n) using Robert Floyd's algorithm, which needs O(k) memory and
// O(k) expected time regardless of n. Sampling without replacement is
// what the finite population correction of Eq. 1 assumes; sampling with
// replacement would inflate the variance for n close to N.
//
// The returned slice is in insertion order (not sorted). It panics if
// k < 0, n < 0, or k > n.
func SampleWithoutReplacement(rng *rand.Rand, n, k int64) []int64 {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: cannot sample %d from %d", k, n))
	}
	out := make([]int64, 0, k)
	seen := make(map[int64]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Int63n(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// ProportionEstimate is the outcome of estimating a success proportion
// from a sample drawn without replacement from a finite population.
type ProportionEstimate struct {
	// Successes is the number of critical outcomes observed.
	Successes int64
	// SampleSize is the number of trials n.
	SampleSize int64
	// PopulationSize is the size N of the finite population.
	PopulationSize int64
	// PlannedP is the a-priori success probability the stratum was
	// planned with (Eq. 1's p). It bounds the variance attributed to a
	// degenerate sample (0 or n successes) in stratified margins; zero
	// means "unknown" and is treated as the worst case 0.5.
	PlannedP float64
}

// PHat returns the point estimate x/n. It is 0 for an empty sample.
func (p ProportionEstimate) PHat() float64 {
	if p.SampleSize == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.SampleSize)
}

// Margin returns the half-width of the confidence interval around PHat
// at the configuration's confidence, evaluated at the observed
// proportion with the finite population correction. This is the error
// bar drawn in Figs. 5-7 of the paper.
func (p ProportionEstimate) Margin(c SampleSizeConfig) float64 {
	if p.SampleSize == 0 {
		return 1
	}
	return c.ObservedMargin(p.PHat(), p.SampleSize, p.PopulationSize)
}

// PlannedMargin returns the a-priori margin for the sample under the
// planning p of the configuration (rather than the observed proportion).
func (p ProportionEstimate) PlannedMargin(c SampleSizeConfig) float64 {
	if p.SampleSize == 0 {
		return 1
	}
	return c.AchievedMargin(p.SampleSize, p.PopulationSize)
}

// Covers reports whether the interval PHat ± Margin contains the value
// (e.g. the exhaustive ground-truth proportion).
func (p ProportionEstimate) Covers(c SampleSizeConfig, truth float64) bool {
	m := p.Margin(c)
	ph := p.PHat()
	return truth >= ph-m && truth <= ph+m
}

// Combine merges per-subpopulation estimates into a single estimate for
// the union population, weighting each subpopulation's proportion by its
// population size (stratified estimator). The merged Successes field is
// the implied success count rounded to the nearest integer; SampleSize
// is the total number of injections actually performed.
func Combine(parts []ProportionEstimate) ProportionEstimate {
	var totalN, totalSamples int64
	var weighted float64
	for _, p := range parts {
		totalN += p.PopulationSize
		totalSamples += p.SampleSize
		weighted += p.PHat() * float64(p.PopulationSize)
	}
	if totalN == 0 {
		return ProportionEstimate{}
	}
	pHat := weighted / float64(totalN)
	return ProportionEstimate{
		Successes:      int64(pHat*float64(totalSamples) + 0.5),
		SampleSize:     totalSamples,
		PopulationSize: totalN,
	}
}
