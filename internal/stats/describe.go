package stats

import "math"

// Mean returns the arithmetic mean of the values, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance (dividing by n), or 0 for
// fewer than one element.
func Variance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(values))
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 { return math.Sqrt(Variance(values)) }

// MeanFloat32 returns the arithmetic mean of float32 values as float64.
func MeanFloat32(values []float32) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += float64(v)
	}
	return sum / float64(len(values))
}

// StdDevFloat32 returns the population standard deviation of float32
// values as float64.
func StdDevFloat32(values []float32) float64 {
	if len(values) == 0 {
		return 0
	}
	m := MeanFloat32(values)
	var ss float64
	for _, v := range values {
		d := float64(v) - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)))
}

// BinomialVariance returns Eq. 2 of the paper: σ² = n·p·(1−p), the
// variance of a binomial distribution with parameters n and p.
func BinomialVariance(n int64, p float64) float64 {
	return float64(n) * p * (1 - p)
}

// BernoulliVariance returns p·(1−p), the per-trial variance plotted in
// Fig. 1 (left) of the paper. It is maximal at p = 0.5.
func BernoulliVariance(p float64) float64 { return p * (1 - p) }

// Histogram counts the values into nbins equal-width bins over
// [min, max]. Values outside the range are clamped into the first/last
// bin. It panics if nbins <= 0 or max <= min.
func Histogram(values []float64, min, max float64, nbins int) []int {
	if nbins <= 0 {
		panic("stats: Histogram needs a positive bin count")
	}
	if max <= min {
		panic("stats: Histogram needs max > min")
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, v := range values {
		i := int((v - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
