// Package tensor provides a minimal dense float32 tensor used by the CNN
// inference and training substrates. Data is stored flat in row-major
// order; images use CHW layout (channels, height, width) and batches add
// a leading N dimension.
package tensor

import "fmt"

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	// Shape holds the dimension sizes, outermost first.
	Shape []int
	// Data is the flat row-major backing storage; len(Data) equals the
	// product of Shape.
	Data []float32
}

// New allocates a zero-filled tensor of the given shape.
// It panics on negative dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float32, n)}
}

// FromSlice wraps existing data in a tensor of the given shape.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to zero, keeping the allocation.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Reshape returns a view of the same data with a new shape of equal
// volume. It panics on volume mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (len %d) to %v", t.Shape, len(t.Data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// At3 returns element (c, y, x) of a CHW tensor.
func (t *Tensor) At3(c, y, x int) float32 {
	return t.Data[(c*t.Shape[1]+y)*t.Shape[2]+x]
}

// Set3 assigns element (c, y, x) of a CHW tensor.
func (t *Tensor) Set3(c, y, x int, v float32) {
	t.Data[(c*t.Shape[1]+y)*t.Shape[2]+x] = v
}

// At4 returns element (n, c, y, x) of an NCHW tensor.
func (t *Tensor) At4(n, c, y, x int) float32 {
	return t.Data[((n*t.Shape[1]+c)*t.Shape[2]+y)*t.Shape[3]+x]
}

// Set4 assigns element (n, c, y, x) of an NCHW tensor.
func (t *Tensor) Set4(n, c, y, x int, v float32) {
	t.Data[((n*t.Shape[1]+c)*t.Shape[2]+y)*t.Shape[3]+x] = v
}

// ArgMax returns the index of the largest element (first occurrence on
// ties) or -1 for an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		return -1
	}
	best, bestIdx := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best = v
			bestIdx = i + 1
		}
	}
	return bestIdx
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}
