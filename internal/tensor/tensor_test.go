package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewShapeAndVolume(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor: len=%d rank=%d", x.Len(), x.Rank())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Error("FromSlice shape wrong")
	}
	if x.Data[5] != 6 {
		t.Error("FromSlice lost data")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched FromSlice did not panic")
		}
	}()
	FromSlice([]float32{1, 2}, 3)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Error("Clone shares data")
	}
	if !SameShape(x, y) {
		t.Error("Clone changed shape")
	}
}

func TestZeroAndFill(t *testing.T) {
	x := New(4)
	x.Fill(3.5)
	for _, v := range x.Data {
		if v != 3.5 {
			t.Fatal("Fill failed")
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Error("Reshape must share data")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Error("Reshape shape wrong")
	}
}

func TestReshapePanicsOnVolumeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad reshape did not panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestIndexing3(t *testing.T) {
	x := New(2, 3, 4) // CHW
	x.Set3(1, 2, 3, 42)
	if x.At3(1, 2, 3) != 42 {
		t.Error("At3/Set3 roundtrip failed")
	}
	// Flat index check: (1*3+2)*4+3 = 23.
	if x.Data[23] != 42 {
		t.Error("Set3 wrote to wrong flat index")
	}
}

func TestIndexing4(t *testing.T) {
	x := New(2, 3, 4, 5) // NCHW
	x.Set4(1, 2, 3, 4, 9)
	if x.At4(1, 2, 3, 4) != 9 {
		t.Error("At4/Set4 roundtrip failed")
	}
	// Flat index: ((1*3+2)*4+3)*5+4 = 119.
	if x.Data[119] != 9 {
		t.Error("Set4 wrote to wrong flat index")
	}
}

func TestIndexRoundTripProperty(t *testing.T) {
	x := New(3, 5, 7)
	f := func(c, y, xx uint8, v float32) bool {
		ci, yi, xi := int(c)%3, int(y)%5, int(xx)%7
		x.Set3(ci, yi, xi, v)
		return x.At3(ci, yi, xi) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := FromSlice([]float32{0.1, 0.9, 0.3}, 3).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
	// First occurrence wins on ties.
	if got := FromSlice([]float32{5, 5, 5}, 3).ArgMax(); got != 0 {
		t.Errorf("tie ArgMax = %d", got)
	}
	if got := New(0).ArgMax(); got != -1 {
		t.Errorf("empty ArgMax = %d", got)
	}
	if got := FromSlice([]float32{-3, -1, -2}, 3).ArgMax(); got != 1 {
		t.Errorf("negative ArgMax = %d", got)
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Error("equal shapes reported unequal")
	}
	if SameShape(New(2, 3), New(3, 2)) {
		t.Error("different shapes reported equal")
	}
	if SameShape(New(6), New(2, 3)) {
		t.Error("different ranks reported equal")
	}
}
