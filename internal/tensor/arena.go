package tensor

// Arena is a bump allocator for scratch tensors, built for the fault
// injection hot path where the same inference shape is executed once per
// experiment for millions of experiments. Instead of allocating fresh
// output tensors per node per image per fault (and leaning on the GC to
// reclaim them), an evaluator owns one Arena, calls Reset at the start
// of each inference, and draws every intermediate tensor from it. After
// the first few inferences the arena reaches a fixed point and the
// steady state performs zero heap allocations.
//
// Slot discipline: Get returns slots in call order, so a caller that
// performs the same sequence of Get calls between Resets (the case for a
// fixed network graph) gets the same backing buffers every time. A
// returned *Tensor — header and data — is valid only until the next
// Reset; the arena re-issues the same storage afterwards. Callers that
// need a value to survive a Reset must Clone it first.
//
// An Arena is NOT safe for concurrent use. The ownership rule for this
// repo: one arena per Network, used only by the network's single owner
// (a worker's injector clone). Evaluators that share one Network across
// goroutines must stay on the heap-allocating Exec/ExecFrom path.
type Arena struct {
	slots []*arenaSlot
	next  int
	bytes int64
}

// arenaSlot holds one reusable tensor. Slots are heap-allocated
// individually (the slice holds pointers) so the Tensor headers handed
// out by Get keep stable addresses when the slot list grows.
type arenaSlot struct {
	t     Tensor
	buf   []float32
	shape []int
}

// NewArena returns an empty arena. It allocates nothing until first use.
func NewArena() *Arena { return &Arena{} }

// Reset makes every slot available again without releasing its storage.
// All tensors and scratch slices returned since the previous Reset are
// invalidated: their backing arrays will be re-issued (zeroed) by
// subsequent Get/Scratch calls.
func (a *Arena) Reset() { a.next = 0 }

// Get returns a zero-filled tensor of the given shape backed by arena
// storage, growing the arena on first use or when a slot's buffer is too
// small. The zero fill matters: layer kernels in internal/nn accumulate
// into their output (`out[i] += ...`) or write only selected elements,
// exactly as they may with a fresh tensor.New.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: arena Get with non-positive dimension")
		}
		n *= d
	}
	s := a.slot()
	data := a.take(s, n)
	s.shape = append(s.shape[:0], shape...)
	s.t = Tensor{Shape: s.shape, Data: data}
	return &s.t
}

// Scratch returns a zero-filled []float32 of length n from the arena,
// for raw workspace buffers (e.g. the im2col patch matrix) that need no
// tensor header. Like Get, the slice is valid only until the next Reset.
func (a *Arena) Scratch(n int) []float32 {
	if n < 0 {
		panic("tensor: arena Scratch with negative length")
	}
	return a.take(a.slot(), n)
}

// slot returns the next slot in issue order, appending a new one when
// the arena has not yet seen this many allocations in one cycle.
func (a *Arena) slot() *arenaSlot {
	if a.next == len(a.slots) {
		a.slots = append(a.slots, &arenaSlot{})
	}
	s := a.slots[a.next]
	a.next++
	return s
}

// take sizes the slot's buffer to n elements, accounting growth in
// Bytes, and returns it zeroed.
func (a *Arena) take(s *arenaSlot, n int) []float32 {
	if cap(s.buf) < n {
		a.bytes += int64(n-cap(s.buf)) * 4
		s.buf = make([]float32, n)
	}
	data := s.buf[:n]
	clear(data)
	return data
}

// Bytes reports the total float32 storage retained by the arena, in
// bytes. It grows monotonically and is a measure of the steady-state
// memory cost of one worker's scratch space (headers and shape slices
// are excluded; they are a few dozen bytes per slot).
func (a *Arena) Bytes() int64 { return a.bytes }

// Slots reports how many distinct tensors/scratch buffers the arena has
// handed out in its widest cycle so far.
func (a *Arena) Slots() int { return len(a.slots) }
