package tensor

import "testing"

func TestArenaGetZeroedAndShaped(t *testing.T) {
	a := NewArena()
	x := a.Get(2, 3)
	if len(x.Data) != 6 || len(x.Shape) != 2 || x.Shape[0] != 2 || x.Shape[1] != 3 {
		t.Fatalf("Get(2,3) = shape %v len %d", x.Shape, len(x.Data))
	}
	for i := range x.Data {
		x.Data[i] = float32(i + 1)
	}
	a.Reset()
	y := a.Get(2, 3)
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("reused slot not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaSlotReuseAcrossResets(t *testing.T) {
	a := NewArena()
	first := a.Get(4)
	firstData := &first.Data[0]
	a.Reset()
	second := a.Get(4)
	if first != second {
		t.Fatalf("same-order Get after Reset returned a different header")
	}
	if &second.Data[0] != firstData {
		t.Fatalf("same-order Get after Reset returned different storage")
	}
	if a.Slots() != 1 {
		t.Fatalf("Slots = %d, want 1", a.Slots())
	}
}

func TestArenaHeaderStableAcrossGrowth(t *testing.T) {
	a := NewArena()
	first := a.Get(2)
	// Force the slot slice to grow many times; the first header must not
	// move (callers hold *Tensor across subsequent Gets within a cycle).
	for i := 0; i < 100; i++ {
		a.Get(2)
	}
	first.Data[0] = 42
	a.Reset()
	if got := a.Get(2); got != first {
		t.Fatalf("header moved after slot growth")
	}
}

func TestArenaGrowsBufferAndBytes(t *testing.T) {
	a := NewArena()
	a.Get(10)
	if a.Bytes() != 40 {
		t.Fatalf("Bytes = %d, want 40", a.Bytes())
	}
	a.Reset()
	a.Get(20) // same slot, larger buffer: grows by 10 floats
	if a.Bytes() != 80 {
		t.Fatalf("Bytes after growth = %d, want 80", a.Bytes())
	}
	a.Reset()
	x := a.Get(5) // shrink reuses the larger buffer
	if a.Bytes() != 80 {
		t.Fatalf("Bytes after shrink = %d, want 80", a.Bytes())
	}
	if len(x.Data) != 5 {
		t.Fatalf("len = %d, want 5", len(x.Data))
	}
}

func TestArenaScratch(t *testing.T) {
	a := NewArena()
	s := a.Scratch(7)
	if len(s) != 7 {
		t.Fatalf("Scratch len = %d", len(s))
	}
	for i := range s {
		s[i] = 1
	}
	a.Reset()
	s2 := a.Scratch(7)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("Scratch not zeroed at %d", i)
		}
	}
	if a.Scratch(0) == nil {
		// zero-length scratch is legal and returns an empty slice
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena()
	warm := func() {
		a.Reset()
		a.Get(3, 3)
		a.Get(9)
		a.Scratch(12)
	}
	warm() // grow
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times, want 0", allocs)
	}
}

func TestArenaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Get with zero dimension did not panic")
		}
	}()
	NewArena().Get(2, 0)
}
