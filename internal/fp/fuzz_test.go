package fp

import (
	"math"
	"testing"
)

// Fuzz targets double as property tests: `go test` executes them over
// the seed corpus; `go test -fuzz=FuzzName` explores further.

func FuzzFloat16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 0.5, 65504, 6e-8, 1e-30, 1e30, 0.333} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		if v != v { // NaN handled by its own target
			t.Skip()
		}
		h := Float32ToFloat16(v)
		back := Float16ToFloat32(h)

		switch {
		case math.Abs(float64(v)) >= 65520: // rounds to Inf under RNE
			if !math.IsInf(float64(back), 0) && math.Abs(float64(back)) < 65504 {
				t.Fatalf("overflow of %v decoded to %v", v, back)
			}
		case math.Abs(float64(v)) < math.Pow(2, -25): // below half the smallest subnormal
			if back != 0 && math.Abs(float64(back)) > math.Pow(2, -24) {
				t.Fatalf("underflow of %v decoded to %v", v, back)
			}
		case math.Abs(float64(v)) >= math.Pow(2, -14): // normal range
			rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
			if rel > 1.0/1024 {
				t.Fatalf("relative error %v for %v -> %v", rel, v, back)
			}
		default: // subnormal range: absolute error within one subnormal step
			if math.Abs(float64(back-v)) > math.Pow(2, -24) {
				t.Fatalf("subnormal error for %v -> %v", v, back)
			}
		}

		// Sign preservation (for nonzero results).
		if back != 0 && math.Signbit(float64(back)) != math.Signbit(float64(v)) {
			t.Fatalf("sign flipped: %v -> %v", v, back)
		}
		// Idempotence: re-encoding the decoded value is stable.
		if Float32ToFloat16(back) != h {
			t.Fatalf("re-encode of %v unstable", v)
		}
	})
}

func FuzzBFloat16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 3.14159, 1e38, -1e-38, 255.5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		if v != v {
			t.Skip()
		}
		b := Float32ToBFloat16(v)
		back := BFloat16ToFloat32(b)
		if math.IsInf(float64(back), 0) {
			// Rounding 0x7f7fxxxx up can overflow; accept.
			if math.Abs(float64(v)) < 3.3e38 {
				t.Fatalf("spurious overflow: %v", v)
			}
			return
		}
		if v != 0 {
			rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
			if rel > 1.0/128 && math.Abs(float64(v)) > 1e-38 {
				t.Fatalf("relative error %v for %v -> %v", rel, v, back)
			}
		}
		if Float32ToBFloat16(back) != b {
			t.Fatalf("re-encode of %v unstable", v)
		}
	})
}

func FuzzFlipBitInvolution(f *testing.F) {
	f.Add(float32(1.5), uint8(3))
	f.Add(float32(-0.01), uint8(30))
	f.Fuzz(func(t *testing.T, v float32, bit uint8) {
		i := int(bit % 32)
		twice := FlipBit32(FlipBit32(v, i), i)
		if math.Float32bits(twice) != math.Float32bits(v) {
			t.Fatalf("flip not involutive at bit %d for %v", i, v)
		}
		// Stuck-at is idempotent and flip ≠ identity.
		if math.Float32bits(FlipBit32(v, i)) == math.Float32bits(v) {
			t.Fatalf("flip was identity at bit %d for %v", i, v)
		}
	})
}

func FuzzFlipDistanceFinite(f *testing.F) {
	f.Add(float32(0.5), uint8(30))
	f.Add(float32(math.MaxFloat32), uint8(0))
	f.Fuzz(func(t *testing.T, v float32, bit uint8) {
		i := int(bit % 32)
		d := FlipDistance32(v, i)
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 || d > MaxDistance {
			t.Fatalf("distance %v out of [0, MaxDistance] for %v bit %d", d, v, i)
		}
	})
}
