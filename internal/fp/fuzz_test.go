package fp

import (
	"math"
	"testing"
)

// Fuzz targets double as property tests: `go test` executes them over
// the seed corpus; `go test -fuzz=FuzzName` explores further.

func FuzzFloat16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 0.5, 65504, 6e-8, 1e-30, 1e30, 0.333} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		if v != v { // NaN handled by its own target
			t.Skip()
		}
		h := Float32ToFloat16(v)
		back := Float16ToFloat32(h)

		switch {
		case math.Abs(float64(v)) >= 65520: // rounds to Inf under RNE
			if !math.IsInf(float64(back), 0) && math.Abs(float64(back)) < 65504 {
				t.Fatalf("overflow of %v decoded to %v", v, back)
			}
		case math.Abs(float64(v)) < math.Pow(2, -25): // below half the smallest subnormal
			if back != 0 && math.Abs(float64(back)) > math.Pow(2, -24) {
				t.Fatalf("underflow of %v decoded to %v", v, back)
			}
		case math.Abs(float64(v)) >= math.Pow(2, -14): // normal range
			rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
			if rel > 1.0/1024 {
				t.Fatalf("relative error %v for %v -> %v", rel, v, back)
			}
		default: // subnormal range: absolute error within one subnormal step
			if math.Abs(float64(back-v)) > math.Pow(2, -24) {
				t.Fatalf("subnormal error for %v -> %v", v, back)
			}
		}

		// Sign preservation (for nonzero results).
		if back != 0 && math.Signbit(float64(back)) != math.Signbit(float64(v)) {
			t.Fatalf("sign flipped: %v -> %v", v, back)
		}
		// Idempotence: re-encoding the decoded value is stable.
		if Float32ToFloat16(back) != h {
			t.Fatalf("re-encode of %v unstable", v)
		}
	})
}

func FuzzBFloat16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 3.14159, 1e38, -1e-38, 255.5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		if v != v {
			t.Skip()
		}
		b := Float32ToBFloat16(v)
		back := BFloat16ToFloat32(b)
		if math.IsInf(float64(back), 0) {
			// Rounding 0x7f7fxxxx up can overflow; accept.
			if math.Abs(float64(v)) < 3.3e38 {
				t.Fatalf("spurious overflow: %v", v)
			}
			return
		}
		if v != 0 {
			rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
			if rel > 1.0/128 && math.Abs(float64(v)) > 1e-38 {
				t.Fatalf("relative error %v for %v -> %v", rel, v, back)
			}
		}
		if Float32ToBFloat16(back) != b {
			t.Fatalf("re-encode of %v unstable", v)
		}
	})
}

func FuzzFlipBitInvolution(f *testing.F) {
	f.Add(float32(1.5), uint8(3))
	f.Add(float32(-0.01), uint8(30))
	f.Fuzz(func(t *testing.T, v float32, bit uint8) {
		i := int(bit % 32)
		twice := FlipBit32(FlipBit32(v, i), i)
		if math.Float32bits(twice) != math.Float32bits(v) {
			t.Fatalf("flip not involutive at bit %d for %v", i, v)
		}
		// Stuck-at is idempotent and flip ≠ identity.
		if math.Float32bits(FlipBit32(v, i)) == math.Float32bits(v) {
			t.Fatalf("flip was identity at bit %d for %v", i, v)
		}
	})
}

func FuzzFlipDistanceFinite(f *testing.F) {
	f.Add(float32(0.5), uint8(30))
	f.Add(float32(math.MaxFloat32), uint8(0))
	f.Fuzz(func(t *testing.T, v float32, bit uint8) {
		i := int(bit % 32)
		d := FlipDistance32(v, i)
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 || d > MaxDistance {
			t.Fatalf("distance %v out of [0, MaxDistance] for %v bit %d", d, v, i)
		}
	})
}

// bitEdgeCases seeds the word-level targets with the encodings where
// bit manipulation historically goes wrong: zeros, denormals, NaNs with
// payloads, infinities, and the extreme finite values. Inputs are raw
// uint32 words, not float32 parameters, so NaN payload bits reach the
// property unmangled.
var bitEdgeCases = []uint32{
	0x00000000, // +0
	0x80000000, // -0
	0x3F800000, // 1.0
	0xBF800000, // -1.0
	0x00000001, // smallest positive denormal
	0x807FFFFF, // largest negative denormal
	0x7F7FFFFF, // MaxFloat32
	0x7F800000, // +Inf
	0xFF800000, // -Inf
	0x7FC00000, // canonical quiet NaN
	0x7FC00001, // quiet NaN with payload
	0x7F800001, // signalling NaN encoding
	0xFFFFFFFF, // NaN, every bit set
}

// FuzzStuckAtBits checks that the bit-mutation primitives are exact
// word-level operations for every encoding and bit position: the result
// differs from the input by precisely the target bit, stuck-ats are
// idempotent, flips invert and round-trip, and NaN payloads and
// denormal patterns survive untouched. These properties are what make
// the injector's masked-fault short-circuit exact, so they are fuzzed
// rather than spot-checked.
func FuzzStuckAtBits(f *testing.F) {
	for _, bits := range bitEdgeCases {
		for _, bit := range []uint8{0, 22, 23, 30, 31} {
			f.Add(bits, bit)
		}
	}
	f.Fuzz(func(t *testing.T, bits uint32, bit uint8) {
		i := int(bit % Bits32)
		mask := uint32(1) << uint(i)
		v := math.Float32frombits(bits)

		// Go preserves float32 bit patterns (including NaN payloads)
		// through assignment; every property below relies on it.
		if math.Float32bits(v) != bits {
			t.Fatalf("float32 round-trip mangled 0x%08x to 0x%08x", bits, math.Float32bits(v))
		}

		set := SetBit32(v, i)
		clr := ClearBit32(v, i)
		flip := FlipBit32(v, i)

		// Exact word arithmetic: only the target bit may change.
		if got := math.Float32bits(set); got != bits|mask {
			t.Errorf("SetBit32(0x%08x, %d) = 0x%08x, want 0x%08x", bits, i, got, bits|mask)
		}
		if got := math.Float32bits(clr); got != bits&^mask {
			t.Errorf("ClearBit32(0x%08x, %d) = 0x%08x, want 0x%08x", bits, i, got, bits&^mask)
		}
		if got := math.Float32bits(flip); got != bits^mask {
			t.Errorf("FlipBit32(0x%08x, %d) = 0x%08x, want 0x%08x", bits, i, got, bits^mask)
		}

		// Post-conditions on the target bit.
		if !Bit32(set, i) {
			t.Errorf("bit %d not set after SetBit32", i)
		}
		if Bit32(clr, i) {
			t.Errorf("bit %d not clear after ClearBit32", i)
		}
		if Bit32(flip, i) == Bit32(v, i) {
			t.Errorf("bit %d unchanged after FlipBit32", i)
		}

		// Idempotence of the stuck-at mutations.
		if got := math.Float32bits(SetBit32(set, i)); got != math.Float32bits(set) {
			t.Errorf("SetBit32 not idempotent at bit %d: 0x%08x", i, got)
		}
		if got := math.Float32bits(ClearBit32(clr, i)); got != math.Float32bits(clr) {
			t.Errorf("ClearBit32 not idempotent at bit %d: 0x%08x", i, got)
		}

		// A flip is exactly the non-masked stuck-at variant, and a second
		// flip restores the original word.
		want := set
		if Bit32(v, i) {
			want = clr
		}
		if math.Float32bits(flip) != math.Float32bits(want) {
			t.Errorf("flip at bit %d != complementary stuck-at", i)
		}
		if got := math.Float32bits(FlipBit32(flip, i)); got != bits {
			t.Errorf("double flip at bit %d: 0x%08x, want 0x%08x", i, got, bits)
		}

		// StuckAt32 is definitionally Set/Clear.
		if math.Float32bits(StuckAt32(v, i, true)) != math.Float32bits(set) ||
			math.Float32bits(StuckAt32(v, i, false)) != math.Float32bits(clr) {
			t.Errorf("StuckAt32 disagrees with Set/ClearBit32 at bit %d", i)
		}

		// Masking equivalence: a stuck-at leaves the word unchanged iff
		// the bit already holds the stuck value — the exactness claim
		// behind the injector's masked-fault short-circuit.
		if (math.Float32bits(set) == bits) != Bit32(v, i) {
			t.Errorf("stuck-at-1 masking disagrees with Bit32 at bit %d of 0x%08x", i, bits)
		}
		if (math.Float32bits(clr) == bits) != !Bit32(v, i) {
			t.Errorf("stuck-at-0 masking disagrees with Bit32 at bit %d of 0x%08x", i, bits)
		}

		// Role classification never panics for in-range bits.
		_ = RoleOf32(i)
	})
}

// FuzzStuckDistanceMasked checks the Fig. 2 stuck-at distances on
// arbitrary encodings: always finite, within [0, MaxDistance], and
// exactly 0 for the masked variant of every (word, bit) pair.
func FuzzStuckDistanceMasked(f *testing.F) {
	for _, bits := range bitEdgeCases {
		f.Add(bits, uint8(30))
		f.Add(bits, uint8(0))
	}
	f.Fuzz(func(t *testing.T, bits uint32, bit uint8) {
		i := int(bit % Bits32)
		v := math.Float32frombits(bits)
		for _, stuckAt := range []bool{false, true} {
			d := StuckDistance32(v, i, stuckAt)
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 || d > MaxDistance {
				t.Fatalf("distance %v out of [0, MaxDistance] (bits 0x%08x, bit %d, stuckAt %v)",
					d, bits, i, stuckAt)
			}
			if masked := Bit32(v, i) == stuckAt; masked && d != 0 {
				t.Errorf("masked stuck-at distance %v, want 0 (bits 0x%08x, bit %d, stuckAt %v)",
					d, bits, i, stuckAt)
			}
		}
	})
}
