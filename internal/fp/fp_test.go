package fp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoleOf32(t *testing.T) {
	tests := []struct {
		bit  int
		want Role
	}{
		{0, RoleMantissa},
		{12, RoleMantissa},
		{22, RoleMantissa},
		{23, RoleExponent},
		{28, RoleExponent},
		{30, RoleExponent},
		{31, RoleSign},
	}
	for _, tt := range tests {
		if got := RoleOf32(tt.bit); got != tt.want {
			t.Errorf("RoleOf32(%d) = %v, want %v", tt.bit, got, tt.want)
		}
	}
}

func TestRoleOf32PanicsOutOfRange(t *testing.T) {
	for _, bit := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RoleOf32(%d) did not panic", bit)
				}
			}()
			RoleOf32(bit)
		}()
	}
}

func TestRoleString(t *testing.T) {
	if RoleMantissa.String() != "mantissa" || RoleExponent.String() != "exponent" || RoleSign.String() != "sign" {
		t.Error("Role.String returned unexpected names")
	}
	if Role(99).String() != "unknown" {
		t.Error("unknown role should stringify to unknown")
	}
}

func TestFlipBit32KnownValues(t *testing.T) {
	// Flipping the sign bit of 1.0 gives -1.0.
	if got := FlipBit32(1.0, SignBit32); got != -1.0 {
		t.Errorf("sign flip of 1.0 = %v, want -1.0", got)
	}
	// Flipping the MSB of the exponent of 1.0 (0x3f800000) gives
	// 0xbf800000^... 0x3f800000 ^ 0x40000000 = 0x7f800000 → +Inf.
	got := FlipBit32(1.0, ExpHigh32)
	if !math.IsInf(float64(got), 1) {
		t.Errorf("exp-MSB flip of 1.0 = %v, want +Inf", got)
	}
	// Flipping exponent MSB of 0.5 (exp=126) yields 2^127 ≈ 1.7e38.
	got = FlipBit32(0.5, ExpHigh32)
	if math.Abs(float64(got)-math.Pow(2, 127)*0.5/0.5) > 1e30 && got != float32(math.Pow(2, 126)) {
		// 0.5 = 1.0 × 2^-1, biased exp 126 (0111_1110); flipping bit 30
		// gives biased exp 254 → 2^127 × 1.0 = 1.7014e38.
		t.Errorf("exp-MSB flip of 0.5 = %v", got)
	}
	// Flipping the LSB of the mantissa produces a tiny change.
	d := math.Abs(float64(FlipBit32(1.0, 0)) - 1.0)
	if d == 0 || d > 1e-6 {
		t.Errorf("mantissa LSB flip distance = %v, want tiny nonzero", d)
	}
}

func TestFlipBit32Involution(t *testing.T) {
	f := func(v float32, bit uint8) bool {
		i := int(bit % 32)
		w := FlipBit32(FlipBit32(v, i), i)
		return math.Float32bits(w) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStuckAt32Idempotent(t *testing.T) {
	f := func(v float32, bit uint8, sa bool) bool {
		i := int(bit % 32)
		once := StuckAt32(v, i, sa)
		twice := StuckAt32(once, i, sa)
		return math.Float32bits(once) == math.Float32bits(twice) && Bit32(once, i) == sa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetClearBit32(t *testing.T) {
	v := float32(0.75)
	for i := 0; i < 32; i++ {
		if !Bit32(SetBit32(v, i), i) {
			t.Errorf("SetBit32 bit %d not set", i)
		}
		if Bit32(ClearBit32(v, i), i) {
			t.Errorf("ClearBit32 bit %d not cleared", i)
		}
	}
}

func TestFlipDistance32(t *testing.T) {
	// Fig. 2 scenario: a high exponent bit flip on a small weight causes a
	// huge distance; mantissa LSB causes a near-zero distance. (Bit 28 on
	// |w|<1 flips a set exponent bit downward, so the distance is ≈|w|;
	// bit 30 flips 0→1 and explodes the magnitude.)
	w := float32(0.0417) // a typical trained conv weight magnitude
	dExp := FlipDistance32(w, 30)
	dLSB := FlipDistance32(w, 0)
	if dExp <= 1.0 {
		t.Errorf("bit-30 flip distance = %v, want large", dExp)
	}
	if d28 := FlipDistance32(w, 28); math.Abs(d28-float64(w)) > 1e-3 {
		t.Errorf("bit-28 flip distance = %v, want ≈ |w|", d28)
	}
	if dLSB >= 1e-6 {
		t.Errorf("bit-0 flip distance = %v, want tiny", dLSB)
	}
	if dExp <= dLSB {
		t.Error("exponent flip should dominate mantissa flip")
	}
}

func TestFlipDistance32ClampsInf(t *testing.T) {
	// 1.0 has biased exponent 127; flipping bit 30 yields exponent 255
	// (Inf). Distance must be clamped, not Inf.
	d := FlipDistance32(1.0, ExpHigh32)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("distance not clamped: %v", d)
	}
	if d != MaxDistance {
		t.Errorf("clamped distance = %v, want MaxDistance", d)
	}
}

func TestFlipDistance32NaNInput(t *testing.T) {
	d := FlipDistance32(float32(math.NaN()), 5)
	if d != MaxDistance {
		t.Errorf("NaN input distance = %v, want MaxDistance", d)
	}
}

func TestStuckDistance32ZeroWhenAlreadyStuck(t *testing.T) {
	f := func(v float32, bit uint8) bool {
		if v != v { // skip NaN: distance() clamps NaN inputs to MaxDistance
			return true
		}
		i := int(bit % 32)
		cur := Bit32(v, i)
		return StuckDistance32(v, i, cur) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStuckDistanceMatchesFlipWhenDifferent(t *testing.T) {
	f := func(v float32, bit uint8) bool {
		if v != v {
			return true
		}
		i := int(bit % 32)
		cur := Bit32(v, i)
		return StuckDistance32(v, i, !cur) == FlipDistance32(v, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPathological32(t *testing.T) {
	if !IsPathological32(float32(math.Inf(1))) || !IsPathological32(float32(math.NaN())) {
		t.Error("Inf/NaN should be pathological")
	}
	if IsPathological32(1.0) || IsPathological32(0) || IsPathological32(-123.5) {
		t.Error("finite values should not be pathological")
	}
}

func TestFormatRoleOf(t *testing.T) {
	if FP16.RoleOf(15) != RoleSign || FP16.RoleOf(10) != RoleExponent || FP16.RoleOf(9) != RoleMantissa {
		t.Error("FP16 roles wrong")
	}
	if BF16.RoleOf(15) != RoleSign || BF16.RoleOf(7) != RoleExponent || BF16.RoleOf(6) != RoleMantissa {
		t.Error("BF16 roles wrong")
	}
	if FP32.RoleOf(31) != RoleSign || FP32.RoleOf(23) != RoleExponent || FP32.RoleOf(22) != RoleMantissa {
		t.Error("FP32 roles wrong")
	}
}

func TestFormatFieldWidthsConsistent(t *testing.T) {
	for _, f := range []Format{FP32, FP16, BF16} {
		if 1+f.ExpBits+f.MantBits != f.Bits {
			t.Errorf("%s: fields do not sum to width", f.Name)
		}
		if f.SignBit() != f.Bits-1 {
			t.Errorf("%s: sign bit misplaced", f.Name)
		}
	}
}

func TestFP32EncodeDecodeRoundTrip(t *testing.T) {
	f := func(v float32) bool {
		return math.Float32bits(FP32.Decode(FP32.Encode(v))) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in binary16 must round-trip.
	exact := []float32{0, 1, -1, 0.5, -0.5, 2, 1024, 0.25, 65504, -65504, 6.103515625e-05}
	for _, v := range exact {
		h := Float32ToFloat16(v)
		back := Float16ToFloat32(h)
		if back != v {
			t.Errorf("fp16 round trip %v -> %#x -> %v", v, h, back)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	h := Float32ToFloat16(1e10)
	if !math.IsInf(float64(Float16ToFloat32(h)), 1) {
		t.Error("fp16 overflow should produce +Inf")
	}
	h = Float32ToFloat16(-1e10)
	if !math.IsInf(float64(Float16ToFloat32(h)), -1) {
		t.Error("fp16 overflow should produce -Inf")
	}
}

func TestFloat16Underflow(t *testing.T) {
	if got := Float16ToFloat32(Float32ToFloat16(1e-30)); got != 0 {
		t.Errorf("fp16 underflow = %v, want 0", got)
	}
}

func TestFloat16Subnormal(t *testing.T) {
	// Smallest positive binary16 subnormal is 2^-24.
	v := float32(math.Pow(2, -24))
	h := Float32ToFloat16(v)
	if h != 1 {
		t.Fatalf("2^-24 encodes to %#x, want 0x1", h)
	}
	if back := Float16ToFloat32(h); back != v {
		t.Errorf("subnormal round trip = %v, want %v", back, v)
	}
}

func TestFloat16NaN(t *testing.T) {
	h := Float32ToFloat16(float32(math.NaN()))
	if back := Float16ToFloat32(h); !math.IsNaN(float64(back)) {
		t.Error("fp16 NaN not preserved")
	}
}

func TestFloat16RoundingError(t *testing.T) {
	// Round trip of arbitrary finite values within fp16 range keeps a
	// relative error below 2^-10 (half the mantissa step).
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 2000; k++ {
		v := float32((rng.Float64()*2 - 1) * 100)
		if v == 0 {
			continue
		}
		back := Float16ToFloat32(Float32ToFloat16(v))
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		if rel > 1.0/1024 {
			t.Fatalf("fp16 relative error %v for %v", rel, v)
		}
	}
}

func TestBFloat16RoundTripExact(t *testing.T) {
	exact := []float32{0, 1, -1, 0.5, 2, -128, 3.0}
	for _, v := range exact {
		if back := BFloat16ToFloat32(Float32ToBFloat16(v)); back != v {
			t.Errorf("bf16 round trip %v -> %v", v, back)
		}
	}
}

func TestBFloat16NaNPreserved(t *testing.T) {
	b := Float32ToBFloat16(float32(math.NaN()))
	if !math.IsNaN(float64(BFloat16ToFloat32(b))) {
		t.Error("bf16 NaN not preserved")
	}
}

func TestBFloat16RoundingError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 2000; k++ {
		v := float32((rng.Float64()*2 - 1) * 1e6)
		if v == 0 {
			continue
		}
		back := BFloat16ToFloat32(Float32ToBFloat16(v))
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		if rel > 1.0/128 {
			t.Fatalf("bf16 relative error %v for %v", rel, v)
		}
	}
}

func TestFormatFlipDistanceMatchesFP32(t *testing.T) {
	w := float32(0.125)
	bits := FP32.Encode(w)
	for i := 0; i < 32; i++ {
		if got, want := FP32.FlipDistance(bits, i), FlipDistance32(w, i); got != want {
			t.Errorf("bit %d: Format.FlipDistance = %v, FlipDistance32 = %v", i, got, want)
		}
	}
}

func TestFormatFlipDistanceFP16ExponentDominates(t *testing.T) {
	bits := FP16.Encode(0.04)
	dExp := FP16.FlipDistance(bits, 14) // exponent MSB
	dMant := FP16.FlipDistance(bits, 0) // mantissa LSB
	if dExp <= dMant {
		t.Errorf("fp16 exponent flip (%v) should dominate mantissa flip (%v)", dExp, dMant)
	}
}

func TestEncodeDecodeUnknownFormatPanics(t *testing.T) {
	bad := Format{Name: "fp8", Bits: 8, ExpBits: 4, MantBits: 3}
	for _, fn := range []func(){
		func() { bad.Encode(1) },
		func() { bad.Decode(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown format did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkFlipBit32(b *testing.B) {
	v := float32(0.123)
	for i := 0; i < b.N; i++ {
		v = FlipBit32(v, i&31)
	}
	_ = v
}

func BenchmarkFlipDistance32(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += FlipDistance32(0.123, i&31)
	}
	_ = acc
}
