// Package fp provides IEEE-754 bit-level manipulation primitives used by
// the fault models and the data-aware statistical analysis.
//
// The paper targets the Single Precision IEEE 754 (binary32) standard:
// faults are stuck-at-0/stuck-at-1 or transient bit-flips on individual
// bits of CNN weights. This package implements:
//
//   - bit-level mutations (flip, stuck-at) on float32 values,
//   - bit-role classification (sign / exponent / mantissa),
//   - the bit-flip distance of Fig. 2: |golden − faulty| for a flip at a
//     given bit position, with explicit handling of Inf/NaN outcomes,
//   - binary16 (IEEE half) and bfloat16 software representations used by
//     the future-work data-type extension (examples/datatype_sweep).
//
// All functions are pure and allocation-free; they are called hundreds of
// millions of times during full-scale population scans.
package fp

import "math"

// Width of the binary32 format and positions of its fields.
const (
	// Bits32 is the number of bits in an IEEE-754 binary32 value.
	Bits32 = 32
	// SignBit32 is the bit index of the binary32 sign bit.
	SignBit32 = 31
	// ExpLow32 is the lowest bit index of the binary32 exponent field.
	ExpLow32 = 23
	// ExpHigh32 is the highest bit index of the binary32 exponent field
	// (the most critical bit for CNN weight faults).
	ExpHigh32 = 30
	// MantissaBits32 is the number of mantissa (fraction) bits.
	MantissaBits32 = 23
)

// Role identifies the function of a bit position within a floating-point
// representation.
type Role uint8

// Bit roles within an IEEE-754-style representation.
const (
	RoleMantissa Role = iota
	RoleExponent
	RoleSign
)

// String returns the lowercase name of the role.
func (r Role) String() string {
	switch r {
	case RoleMantissa:
		return "mantissa"
	case RoleExponent:
		return "exponent"
	case RoleSign:
		return "sign"
	default:
		return "unknown"
	}
}

// RoleOf32 returns the role of bit i (0 = LSB) in a binary32 value.
// It panics if i is outside [0, 31].
func RoleOf32(i int) Role {
	switch {
	case i == SignBit32:
		return RoleSign
	case i >= ExpLow32 && i <= ExpHigh32:
		return RoleExponent
	case i >= 0 && i < ExpLow32:
		return RoleMantissa
	default:
		panic("fp: bit index out of range for binary32")
	}
}

// FlipBit32 returns v with bit i (0 = LSB) inverted.
func FlipBit32(v float32, i int) float32 {
	return math.Float32frombits(math.Float32bits(v) ^ (1 << uint(i)))
}

// SetBit32 returns v with bit i forced to 1 (stuck-at-1).
func SetBit32(v float32, i int) float32 {
	return math.Float32frombits(math.Float32bits(v) | (1 << uint(i)))
}

// ClearBit32 returns v with bit i forced to 0 (stuck-at-0).
func ClearBit32(v float32, i int) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << uint(i)))
}

// Bit32 reports whether bit i of v is 1.
func Bit32(v float32, i int) bool {
	return math.Float32bits(v)&(1<<uint(i)) != 0
}

// StuckAt32 returns v with bit i forced to the given logic value.
// stuckAt=false is stuck-at-0, stuckAt=true is stuck-at-1.
func StuckAt32(v float32, i int, stuckAt bool) float32 {
	if stuckAt {
		return SetBit32(v, i)
	}
	return ClearBit32(v, i)
}

// MaxDistance is the value at which bit-flip distances are clamped when a
// flip produces an Inf or NaN encoding. Trained CNN weights are almost
// always |w| < 1 so the corrupted exponent rarely reaches the all-ones
// pattern, but the clamp keeps averages finite when it does. The paper
// does not state its handling; clamping at MaxFloat32 is the most
// conservative finite choice (it is the supremum of representable
// distances).
const MaxDistance = math.MaxFloat32

// FlipDistance32 returns |v − flip(v, i)| as a float64, the per-weight
// distance of Fig. 2. Distances involving Inf or NaN encodings are
// clamped to MaxDistance.
func FlipDistance32(v float32, i int) float64 {
	f := FlipBit32(v, i)
	return distance(float64(v), float64(f))
}

// StuckDistance32 returns |v − stuck(v, i, stuckAt)|. The distance is 0
// when the bit already holds the stuck value — checked on the bit
// pattern, not the float comparison, so masked faults on NaN weights
// are 0 too rather than hitting the NaN clamp in distance.
func StuckDistance32(v float32, i int, stuckAt bool) float64 {
	f := StuckAt32(v, i, stuckAt)
	if math.Float32bits(f) == math.Float32bits(v) {
		return 0
	}
	return distance(float64(v), float64(f))
}

func distance(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return MaxDistance
	}
	d := math.Abs(a - b)
	if math.IsInf(d, 0) || d > MaxDistance {
		return MaxDistance
	}
	return d
}

// IsPathological32 reports whether v is an Inf or NaN encoding, i.e. the
// exponent field is all ones.
func IsPathological32(v float32) bool {
	bits := math.Float32bits(v)
	return bits>>ExpLow32&0xff == 0xff
}

// Format describes a software floating-point representation analyzed by
// the data-aware methodology. FP32 delegates to the hardware; FP16 and
// BF16 are software-converted (the future-work extension of Section VI).
type Format struct {
	// Name is a short identifier such as "fp32".
	Name string
	// Bits is the total width of the representation.
	Bits int
	// ExpBits is the width of the exponent field.
	ExpBits int
	// MantBits is the width of the mantissa field.
	MantBits int
}

// Predefined formats.
var (
	// FP32 is IEEE-754 binary32, the paper's target representation.
	FP32 = Format{Name: "fp32", Bits: 32, ExpBits: 8, MantBits: 23}
	// FP16 is IEEE-754 binary16.
	FP16 = Format{Name: "fp16", Bits: 16, ExpBits: 5, MantBits: 10}
	// BF16 is the bfloat16 format (truncated binary32).
	BF16 = Format{Name: "bf16", Bits: 16, ExpBits: 8, MantBits: 7}
)

// SignBit returns the bit index of the sign bit for the format.
func (f Format) SignBit() int { return f.Bits - 1 }

// RoleOf returns the role of bit i (0 = LSB) within the format.
// It panics if i is outside [0, f.Bits-1].
func (f Format) RoleOf(i int) Role {
	switch {
	case i == f.Bits-1:
		return RoleSign
	case i >= f.MantBits && i < f.Bits-1:
		return RoleExponent
	case i >= 0 && i < f.MantBits:
		return RoleMantissa
	default:
		panic("fp: bit index out of range for format " + f.Name)
	}
}

// Encode converts a float32 into the format's bit pattern (round-to-
// nearest-even for FP16, truncation-free rounding for BF16). For FP32 it
// returns the raw binary32 bits.
func (f Format) Encode(v float32) uint32 {
	switch f.Name {
	case "fp32":
		return math.Float32bits(v)
	case "fp16":
		return uint32(Float32ToFloat16(v))
	case "bf16":
		return uint32(Float32ToBFloat16(v))
	default:
		panic("fp: unknown format " + f.Name)
	}
}

// Decode converts a bit pattern in the format back to float32.
func (f Format) Decode(bits uint32) float32 {
	switch f.Name {
	case "fp32":
		return math.Float32frombits(bits)
	case "fp16":
		return Float16ToFloat32(uint16(bits))
	case "bf16":
		return BFloat16ToFloat32(uint16(bits))
	default:
		panic("fp: unknown format " + f.Name)
	}
}

// FlipDistance returns |decode(bits) − decode(bits XOR 1<<i)| for the
// format, clamped like FlipDistance32.
func (f Format) FlipDistance(bits uint32, i int) float64 {
	a := float64(f.Decode(bits))
	b := float64(f.Decode(bits ^ 1<<uint(i)))
	return distance(a, b)
}

// Float32ToFloat16 converts v to IEEE-754 binary16 with round-to-nearest-
// even, handling overflow to Inf and subnormals.
func Float32ToFloat16(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits >> 16 & 0x8000)
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case bits&0x7fffffff == 0: // ±0
		return sign
	case bits>>23&0xff == 0xff: // Inf / NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp >= 0x1f: // overflow → Inf
		return sign | 0x7c00
	case exp <= 0: // subnormal or underflow
		if exp < -10 {
			return sign // underflow to zero
		}
		// Add the implicit leading 1 then shift into subnormal position,
		// rounding to nearest with ties to even.
		mant |= 0x800000
		shift := uint(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		if mant&(half<<1-1) == half && rounded&1 == 1 {
			rounded-- // tie: round back to even
		}
		return sign | uint16(rounded)
	default:
		// Normal: round mantissa from 23 to 10 bits, ties to even.
		rounded := mant + 0xfff + (mant >> 13 & 1)
		if rounded&0x800000 != 0 { // mantissa overflow bumps exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13&0x3ff)
	}
}

// Float16ToFloat32 converts an IEEE-754 binary16 bit pattern to float32.
func Float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7fc00000) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// Float32ToBFloat16 converts v to bfloat16 with round-to-nearest-even.
func Float32ToBFloat16(v float32) uint16 {
	bits := math.Float32bits(v)
	if bits>>23&0xff == 0xff && bits&0x7fffff != 0 {
		return uint16(bits>>16) | 0x40 // keep NaN quiet
	}
	rounded := bits + 0x7fff + (bits >> 16 & 1)
	return uint16(rounded >> 16)
}

// BFloat16ToFloat32 converts a bfloat16 bit pattern to float32.
func BFloat16ToFloat32(b uint16) float32 {
	return math.Float32frombits(uint32(b) << 16)
}
