package oracle

import (
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/inject"
	"cnnsfi/internal/models"
)

// TestOracleMatchesInferenceStructure cross-validates the oracle's
// criticality surface against real inference-based fault injection on
// the same network: the per-bit critical-rate *structure* (which bits
// matter, in which order, at what magnitude class) must agree, because
// that structure is what the statistical methodology stratifies on.
func TestOracleMatchesInferenceStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs thousands of real inferences")
	}
	net := models.SmallCNN(1)
	o := New(net, DefaultConfig(3))
	ds := dataset.Synthetic(dataset.Config{N: 6, Seed: 1, Size: 16})
	inj := inject.New(net, ds)
	space := o.Space()

	// Probe the same spread of faults on both substrates, per bit class.
	rate := func(ev interface {
		IsCritical(faultmodel.Fault) bool
	}, layer, bit, probes int) float64 {
		n := space.BitLayerTotal(layer)
		critical := 0
		for k := 0; k < probes; k++ {
			j := int64(k) * (n - 1) / int64(probes-1)
			if ev.IsCritical(space.BitLayerFault(layer, bit, j)) {
				critical++
			}
		}
		return float64(critical) / float64(probes)
	}

	const probes = 150
	layer := 2 // the largest SmallCNN layer

	// 1. Exponent MSB: both substrates see a large critical rate
	//    (≈ f0 · pMax under stuck-at pairs → ~0.5 raw).
	oracleMSB := rate(o, layer, 30, probes)
	injMSB := rate(inj, layer, 30, probes)
	if oracleMSB < 0.25 || injMSB < 0.25 {
		t.Errorf("bit-30 rates: oracle %.3f, inference %.3f — both should be large", oracleMSB, injMSB)
	}
	if diff := oracleMSB - injMSB; diff > 0.25 || diff < -0.25 {
		t.Errorf("bit-30 rates disagree: oracle %.3f vs inference %.3f", oracleMSB, injMSB)
	}

	// 2. Mantissa: both essentially zero.
	for _, bit := range []int{0, 8, 16} {
		or := rate(o, layer, bit, probes)
		ir := rate(inj, layer, bit, probes)
		if or > 0.02 || ir > 0.02 {
			t.Errorf("bit %d rates: oracle %.3f, inference %.3f — both should be ≈ 0", bit, or, ir)
		}
	}

	// 3. Sign and mid exponent: rare events on both substrates
	//    (well below the exponent MSB).
	for _, bit := range []int{31, 26, 24} {
		or := rate(o, layer, bit, probes)
		ir := rate(inj, layer, bit, probes)
		if or > oracleMSB/3 || ir > injMSB/3 {
			t.Errorf("bit %d rates: oracle %.3f, inference %.3f — should be far below the MSB", bit, or, ir)
		}
	}

	// 4. Rank agreement: ordering of bit classes matches.
	order := func(ev interface {
		IsCritical(faultmodel.Fault) bool
	}) (msb, mid, mant float64) {
		return rate(ev, layer, 30, probes), rate(ev, layer, 24, probes), rate(ev, layer, 4, probes)
	}
	om, omid, omant := order(o)
	im, imid, imant := order(inj)
	if !(om >= omid && omid >= omant) {
		t.Errorf("oracle ordering broken: %v %v %v", om, omid, omant)
	}
	if !(im >= imid && imid >= imant) {
		t.Errorf("inference ordering broken: %v %v %v", im, imid, imant)
	}
}
