// Package oracle provides a full-scale simulated fault-outcome substrate:
// a deterministic Critical/Non-critical verdict for every fault in a
// network's population, computable in O(1) per fault without running
// inference.
//
// # Why an oracle
//
// The paper validates its statistical methodology against exhaustive
// fault-injection campaigns that took 37 days (ResNet-20, 17.2M faults ×
// 10k images) and 54 days (MobileNetV2, 141M faults) on a GPU server.
// Reproducing those runs with CPU inference is out of reach by orders of
// magnitude, but the property under test — do the SFI estimates land
// within their predicted error margins of the exhaustive ground truth? —
// only requires *a* fixed ground-truth labelling of the full population
// with realistic structure. The oracle supplies that labelling:
//
//   - The verdict depends on the *actual* golden weight value and the
//     *actual* bit arithmetic of the fault: a stuck-at matching the
//     current bit value is always benign (exactly as in reality), and
//     the perturbation magnitude |w_faulty − w_golden| is computed with
//     the same IEEE-754 machinery the real injector uses.
//   - The probability that a perturbation becomes critical follows a
//     log-logistic curve in the perturbation magnitude relative to the
//     layer's weight scale — huge exponent-bit corruptions are almost
//     always critical, mantissa noise never is — with a mild per-layer
//     attenuation. This mirrors the structure reported by the paper and
//     the DNN-reliability literature, and is cross-validated in this
//     repository against real inference-based injection on SmallCNN
//     (see EXPERIMENTS.md).
//   - Tie-breaking randomness is a pure hash of (seed, fault), so the
//     ground truth is a fixed labelling: exhaustive enumeration and any
//     sampling scheme see consistent outcomes, which is precisely the
//     statistical setting of the paper (a finite population of Bernoulli
//     outcomes with heterogeneous p across subpopulations).
package oracle

import (
	"math"
	"sync/atomic"
	"time"

	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/stats"
)

// Config tunes the criticality surface.
type Config struct {
	// Seed fixes the ground-truth labelling.
	Seed int64
	// Alpha is the log-logistic steepness (default 2.0; the curve must
	// be steep enough that perturbations of the order of the weight
	// scale — sign flips, low exponent bits — are almost never critical,
	// matching inference-based results and the DNN-reliability
	// literature).
	Alpha float64
	// Tau is the relative perturbation at which criticality reaches
	// half of PMax (default 100: a perturbation 100× the layer's weight
	// scale is critical about half the time).
	Tau float64
	// PMax is the asymptotic criticality of unbounded perturbations
	// (default 0.97; even 2^127 corruptions are occasionally masked,
	// e.g. by ReLU clipping or dead channels).
	PMax float64
	// LayerAttenuation multiplies PMax per layer index (default 0.985):
	// deeper layers have slightly fewer propagation opportunities.
	LayerAttenuation float64
}

// DefaultConfig returns the calibrated default surface. The calibration
// is cross-checked against real inference-based injection on SmallCNN
// (see TestOracleMatchesInferenceStructure and EXPERIMENTS.md): the
// exponent MSB is almost always critical under stuck-at-1, sign and
// mid-exponent faults are rare events, mantissa faults are benign.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Alpha: 2.0, Tau: 100, PMax: 0.97, LayerAttenuation: 0.985}
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 2.0
	}
	if c.Tau == 0 {
		c.Tau = 100
	}
	if c.PMax == 0 {
		c.PMax = 0.97
	}
	if c.LayerAttenuation == 0 {
		c.LayerAttenuation = 0.985
	}
	return c
}

// Oracle labels every fault of a network's stuck-at universe.
type Oracle struct {
	cfg     Config
	space   faultmodel.Space
	weights [][]float32
	scale   []float64 // per-layer weight scale (std dev)
	pmax    []float64 // per-layer attenuated PMax
	// Evaluations counts verdicts issued, for reporting. It is updated
	// atomically: IsCritical is safe for concurrent use (the verdict is
	// a pure function of the snapshot and the seed), which the parallel
	// campaign runner relies on.
	Evaluations int64

	// skipped/evaluated back EvalStats: how many verdicts came from the
	// masked-fault short-circuit vs the full perturbation model.
	skipped, evaluated int64

	// latency, when non-nil, receives the wall time of every full
	// (non-masked) verdict; see SetLatencyHistogram.
	latency *evalstats.Histogram
}

// New snapshots the network's weights and builds the oracle over its
// permanent stuck-at universe.
func New(net *nn.Network, cfg Config) *Oracle {
	cfg = cfg.withDefaults()
	layers := net.WeightLayers()
	o := &Oracle{
		cfg:     cfg,
		space:   faultmodel.NewStuckAt(net.LayerParamCounts(), fp.Bits32),
		weights: make([][]float32, len(layers)),
		scale:   make([]float64, len(layers)),
		pmax:    make([]float64, len(layers)),
	}
	att := 1.0
	for l, wl := range layers {
		w := make([]float32, wl.NumWeights())
		copy(w, wl.WeightData())
		o.weights[l] = w
		s := stats.StdDevFloat32(w)
		if s < 1e-6 {
			s = 1e-6
		}
		o.scale[l] = s
		o.pmax[l] = cfg.PMax * att
		att *= cfg.LayerAttenuation
	}
	return o
}

// Space returns the fault universe the oracle labels.
func (o *Oracle) Space() faultmodel.Space { return o.space }

// CriticalProbability returns the oracle's underlying p for the fault:
// the log-logistic criticality of its perturbation magnitude. A no-op
// fault (stuck-at equal to the current bit value) has probability 0.
func (o *Oracle) CriticalProbability(f faultmodel.Fault) float64 {
	w := o.weights[f.Layer][f.Param]
	var faulty float32
	switch f.Model {
	case faultmodel.StuckAt0:
		faulty = fp.ClearBit32(w, f.Bit)
	case faultmodel.StuckAt1:
		faulty = fp.SetBit32(w, f.Bit)
	default:
		faulty = fp.FlipBit32(w, f.Bit)
	}
	if math.Float32bits(faulty) == math.Float32bits(w) {
		return 0
	}
	delta := math.Abs(float64(faulty) - float64(w))
	if math.IsNaN(delta) || math.IsInf(delta, 0) || delta > fp.MaxDistance {
		delta = fp.MaxDistance
	}
	if delta == 0 {
		return 0
	}
	rel := delta / o.scale[f.Layer]
	// Log-logistic: P = PMax / (1 + (Tau/rel)^Alpha).
	return o.pmax[f.Layer] / (1 + math.Pow(o.cfg.Tau/rel, o.cfg.Alpha))
}

// Masked reports whether f is a stuck-at fault whose target bit already
// holds the stuck value in the oracle's weight snapshot. Such faults
// leave the weight bit-identical, so CriticalProbability is 0 by
// construction and the verdict is Non-critical without evaluating the
// perturbation model — the oracle-side mirror of the injector's
// masked-fault short-circuit. BitFlip is never masked.
func (o *Oracle) Masked(f faultmodel.Fault) bool {
	switch f.Model {
	case faultmodel.StuckAt0:
		return !fp.Bit32(o.weights[f.Layer][f.Param], f.Bit)
	case faultmodel.StuckAt1:
		return fp.Bit32(o.weights[f.Layer][f.Param], f.Bit)
	default:
		return false
	}
}

// IsCritical returns the fixed ground-truth verdict for the fault. It
// is safe for concurrent use. Masked faults short-circuit to false —
// exactly the verdict the full model produces for them (a bit-identical
// weight has CriticalProbability 0), as the differential tests pin.
func (o *Oracle) IsCritical(f faultmodel.Fault) bool {
	atomic.AddInt64(&o.Evaluations, 1)
	if o.Masked(f) {
		atomic.AddInt64(&o.skipped, 1)
		return false
	}
	atomic.AddInt64(&o.evaluated, 1)
	if o.latency != nil {
		start := time.Now()
		v := o.verdict(f)
		o.latency.Observe(time.Since(start))
		return v
	}
	return o.verdict(f)
}

// SetLatencyHistogram implements evalstats.LatencySampler: every
// subsequent non-masked verdict records its wall time into h. The
// oracle is shared across campaign workers rather than cloned, so
// install the histogram before the campaign starts — IsCritical reads
// the pointer without synchronization. A nil h disables timing (the
// default; the disabled path never touches the clock).
func (o *Oracle) SetLatencyHistogram(h *evalstats.Histogram) { o.latency = h }

// IsCriticalReference is IsCritical without the masked-fault
// short-circuit: the full perturbation-magnitude path for every fault.
// It exists as the reference side of the differential test harness and
// does not update any counter.
func (o *Oracle) IsCriticalReference(f faultmodel.Fault) bool {
	return o.verdict(f)
}

func (o *Oracle) verdict(f faultmodel.Fault) bool {
	p := o.CriticalProbability(f)
	if p <= 0 {
		return false
	}
	return hashUnit(o.cfg.Seed, f) < p
}

// EvalStats implements core.StatsReporter. The oracle has no arena and
// no early exits; only the skip/evaluate split is populated.
func (o *Oracle) EvalStats() evalstats.EvalStats {
	return evalstats.EvalStats{
		Skipped:   atomic.LoadInt64(&o.skipped),
		Evaluated: atomic.LoadInt64(&o.evaluated),
	}
}

// ExhaustiveLayerRate enumerates every fault in layer l and returns the
// exact critical-fault proportion — the dark-blue bars of Figs. 5-7.
func (o *Oracle) ExhaustiveLayerRate(l int) float64 {
	var critical, total int64
	for bit := 0; bit < o.space.Bits; bit++ {
		c, t := o.ExhaustiveBitLayerCount(l, bit)
		critical += c
		total += t
	}
	return float64(critical) / float64(total)
}

// ExhaustiveBitLayerCount enumerates the (bit, layer) subpopulation and
// returns (critical, total) counts.
func (o *Oracle) ExhaustiveBitLayerCount(l, bit int) (critical, total int64) {
	n := o.space.BitLayerTotal(l)
	for j := int64(0); j < n; j++ {
		if o.IsCritical(o.space.BitLayerFault(l, bit, j)) {
			critical++
		}
	}
	return critical, n
}

// ExhaustiveNetworkRate enumerates the entire population and returns the
// exact critical proportion. For MobileNetV2 this walks 141M faults;
// expect tens of seconds of CPU time.
func (o *Oracle) ExhaustiveNetworkRate() float64 {
	var critical, total int64
	for l := 0; l < o.space.NumLayers(); l++ {
		for bit := 0; bit < o.space.Bits; bit++ {
			c, t := o.ExhaustiveBitLayerCount(l, bit)
			critical += c
			total += t
		}
	}
	return float64(critical) / float64(total)
}

// Oracle implements both halves of the evaluator stats seam.
var (
	_ evalstats.Reporter       = (*Oracle)(nil)
	_ evalstats.LatencySampler = (*Oracle)(nil)
)

// hashUnit maps (seed, fault) to a uniform value in [0, 1) via FNV-1a.
func hashUnit(seed int64, f faultmodel.Fault) float64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(seed))
	mix(uint64(f.Layer))
	mix(uint64(f.Param))
	mix(uint64(f.Bit))
	mix(uint64(f.Model))
	// Final avalanche (splitmix64 finalizer) to decorrelate low bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
