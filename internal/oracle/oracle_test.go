package oracle

import (
	"testing"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/models"
)

func newSmallOracle(t *testing.T) *Oracle {
	t.Helper()
	return New(models.SmallCNN(1), DefaultConfig(7))
}

func TestVerdictsAreDeterministic(t *testing.T) {
	a := newSmallOracle(t)
	b := New(models.SmallCNN(1), DefaultConfig(7))
	space := a.Space()
	for g := int64(0); g < 2000; g++ {
		f := space.GlobalFault(g * 53 % space.Total())
		if a.IsCritical(f) != b.IsCritical(f) {
			t.Fatalf("verdict for %v differs between identical oracles", f)
		}
		// And stable across repeated queries.
		if a.IsCritical(f) != a.IsCritical(f) {
			t.Fatalf("verdict for %v not stable", f)
		}
	}
}

func TestSeedChangesLabelling(t *testing.T) {
	a := New(models.SmallCNN(1), DefaultConfig(7))
	b := New(models.SmallCNN(1), DefaultConfig(8))
	space := a.Space()
	diff := 0
	stride := space.Total() / 5000
	for g := int64(0); g < 5000; g++ {
		f := space.GlobalFault(g * stride % space.Total())
		if a.IsCritical(f) != b.IsCritical(f) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical labellings")
	}
}

func TestNoOpFaultsNeverCritical(t *testing.T) {
	o := newSmallOracle(t)
	w := o.weights[0]
	for p := 0; p < len(w) && p < 50; p++ {
		for bit := 0; bit < 32; bit++ {
			m := faultmodel.StuckAt0
			if fp.Bit32(w[p], bit) {
				m = faultmodel.StuckAt1
			}
			f := faultmodel.Fault{Layer: 0, Param: p, Bit: bit, Model: m}
			if o.CriticalProbability(f) != 0 {
				t.Fatalf("no-op fault %v has p > 0", f)
			}
			if o.IsCritical(f) {
				t.Fatalf("no-op fault %v critical", f)
			}
		}
	}
}

// TestBitCriticalityOrdering: exponent-MSB sa1 faults must be almost
// always critical, mantissa-LSB faults never — the structure every real
// FI study observes and the paper's Fig. 4 encodes.
func TestBitCriticalityOrdering(t *testing.T) {
	o := newSmallOracle(t)
	space := o.Space()

	cHigh, _ := o.ExhaustiveBitLayerCount(0, 30)
	nHigh := space.BitLayerTotal(0)
	rateHigh := float64(cHigh) / float64(nHigh)
	// Half the subpopulation is sa0 (benign on a naturally-0 bit) so the
	// rate tops out near pmax/2 ≈ 0.48.
	if rateHigh < 0.3 {
		t.Errorf("bit-30 critical rate = %v, want > 0.3", rateHigh)
	}

	cLow, nLow := o.ExhaustiveBitLayerCount(0, 0)
	rateLow := float64(cLow) / float64(nLow)
	if rateLow > 0.001 {
		t.Errorf("bit-0 critical rate = %v, want ≈ 0", rateLow)
	}

	if rateHigh <= rateLow {
		t.Error("bit 30 must dominate bit 0")
	}
}

func TestExhaustiveLayerRatePlausible(t *testing.T) {
	o := newSmallOracle(t)
	for l := 0; l < o.Space().NumLayers(); l++ {
		rate := o.ExhaustiveLayerRate(l)
		if rate <= 0 || rate >= 0.5 {
			t.Errorf("layer %d critical rate = %v, want in (0, 0.5)", l, rate)
		}
	}
}

func TestExhaustiveNetworkRateMatchesLayerAggregation(t *testing.T) {
	o := newSmallOracle(t)
	space := o.Space()
	var weighted float64
	for l := 0; l < space.NumLayers(); l++ {
		weighted += o.ExhaustiveLayerRate(l) * float64(space.LayerTotal(l))
	}
	want := weighted / float64(space.Total())
	got := o.ExhaustiveNetworkRate()
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("network rate %v != aggregated %v", got, want)
	}
}

func TestCriticalProbabilityMonotoneInPerturbation(t *testing.T) {
	o := newSmallOracle(t)
	// For one weight, probability must not decrease with bit height
	// within the exponent field under sa1 (larger perturbations).
	w := o.weights[0][0]
	var prev float64 = -1
	for bit := 23; bit <= 30; bit++ {
		if fp.Bit32(w, bit) {
			continue // sa1 would be a no-op or downward; skip
		}
		f := faultmodel.Fault{Layer: 0, Param: 0, Bit: bit, Model: faultmodel.StuckAt1}
		p := o.CriticalProbability(f)
		if p < prev {
			t.Errorf("bit %d: p=%v decreased from %v", bit, p, prev)
		}
		prev = p
	}
}

func TestLayerAttenuationBoundsPMax(t *testing.T) {
	o := newSmallOracle(t)
	for l := range o.pmax {
		if o.pmax[l] > o.cfg.PMax || o.pmax[l] <= 0 {
			t.Errorf("layer %d pmax = %v", l, o.pmax[l])
		}
		if l > 0 && o.pmax[l] >= o.pmax[l-1] {
			t.Errorf("pmax not attenuating at layer %d", l)
		}
	}
}

func TestHashUnitUniform(t *testing.T) {
	// Rough uniformity check over 20k faults.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := faultmodel.Fault{Layer: i % 4, Param: i, Bit: i % 32, Model: faultmodel.Model(i % 2)}
		u := hashUnit(1, f)
		if u < 0 || u >= 1 {
			t.Fatalf("hash out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("hash mean = %v, want ≈ 0.5", mean)
	}
}

func TestEvaluationCounter(t *testing.T) {
	o := newSmallOracle(t)
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 30, Model: faultmodel.StuckAt1}
	o.IsCritical(f)
	o.IsCritical(f)
	if o.Evaluations != 2 {
		t.Errorf("evaluations = %d", o.Evaluations)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Seed: 5}.withDefaults()
	if c.Alpha == 0 || c.Tau == 0 || c.PMax == 0 || c.LayerAttenuation == 0 {
		t.Error("defaults not applied")
	}
	d := DefaultConfig(5)
	if d != c {
		t.Errorf("DefaultConfig %+v != withDefaults %+v", d, c)
	}
}

func BenchmarkOracleVerdict(b *testing.B) {
	o := New(models.SmallCNN(1), DefaultConfig(7))
	space := o.Space()
	total := space.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.IsCritical(space.GlobalFault(int64(i) % total))
	}
}
