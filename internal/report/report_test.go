package report

import (
	"strings"
	"testing"
)

func TestComma(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{17174144, "17,174,144"},
		{141029376, "141,029,376"},
		{-12345, "-12,345"},
	}
	for _, tt := range tests {
		if got := Comma(tt.in); got != tt.want {
			t.Errorf("Comma(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0121); got != "1.21%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1); got != "100.00%" {
		t.Errorf("Pct(1) = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table I", "Layer", "Params", "n")
	tab.AddRow(0, 432, 27648)
	tab.AddRow(19, 640, 40960)
	out := tab.String()
	for _, want := range []string{"Table I", "Layer", "27,648", "40,960", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableFloats(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow(0.5)
	tab.AddRow(1.21)
	out := tab.String()
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "1.21") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if strings.Contains(out, "0.5000") {
		t.Error("trailing zeros not trimmed")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b, "bit", "p")
	c.Row(30, 0.5)
	c.Row(0, 0.0001)
	got := b.String()
	want := "bit,p\n30,0.5\n0,0.0001\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "title", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := b.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "##########") {
		t.Errorf("bars output:\n%s", out)
	}
	// Max value gets full width; half value gets half width.
	if !strings.Contains(out, "#####") {
		t.Errorf("bars scaling wrong:\n%s", out)
	}
}

func TestBarsAllZero(t *testing.T) {
	var b strings.Builder
	Bars(&b, "", []string{"x"}, []float64{0}, 10)
	if strings.Contains(b.String(), "#") {
		t.Error("zero values should render no bars")
	}
}
