// Package report renders the experiment outputs — fixed-width text
// tables matching the paper's Tables I-III, CSV series for the figures,
// and simple ASCII bar charts for terminal inspection.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers label the columns.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case float32:
			row[i] = trimFloat(float64(x))
		case int, int64, int32:
			row[i] = Comma(toInt64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func toInt64(v interface{}) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int64:
		return x
	case int32:
		return int64(x)
	default:
		return 0
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var sep strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(w, "| %-*s ", widths[i], h)
		sep.WriteString("|")
		sep.WriteString(strings.Repeat("-", widths[i]+2))
	}
	fmt.Fprintln(w, "|")
	fmt.Fprintln(w, sep.String()+"|")
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(w, "| %*s ", widths[i], cell)
		}
		fmt.Fprintln(w, "|")
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Comma formats an integer with thousands separators (e.g. 17,174,144),
// matching the paper's table style.
func Comma(v int64) string {
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return sign + strings.Join(parts, ",")
}

// Pct formats a fraction as a percentage with two decimals ("1.21%").
func Pct(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// CSV writes rows of values as comma-separated lines, with a header.
type CSV struct {
	w io.Writer
}

// NewCSV starts a CSV stream with the given column names.
func NewCSV(w io.Writer, columns ...string) *CSV {
	fmt.Fprintln(w, strings.Join(columns, ","))
	return &CSV{w: w}
}

// Row writes one data row.
func (c *CSV) Row(values ...interface{}) {
	parts := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%g", x)
		case float32:
			parts[i] = fmt.Sprintf("%g", x)
		default:
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	fmt.Fprintln(c.w, strings.Join(parts, ","))
}

// Bars renders an ASCII horizontal bar chart of labeled non-negative
// values, scaled to maxWidth characters.
func Bars(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	max := 0.0
	lw := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > lw {
			lw = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(maxWidth))
		}
		fmt.Fprintf(w, "%-*s | %s %.4g\n", lw, labels[i], strings.Repeat("#", n), v)
	}
}
