package inject

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"cnnsfi/internal/core"
	"cnnsfi/internal/stats"
)

// TestEngineCheckpointResumeInjector is the inference-substrate half of
// the checkpoint acceptance criterion: a campaign on the real
// forward-pass injector killed mid-run and resumed must yield a Result
// byte-identical to the uninterrupted run at the same seed and worker
// count, with workers 1+ evaluating on per-worker weight clones. It
// lives here because core's in-package tests cannot import inject
// (cycle).
func TestEngineCheckpointResumeInjector(t *testing.T) {
	inj := newTestInjector(t)
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = 0.05 // keep the inference campaign small
	const seed, workers = 3, 4

	for _, plan := range []*core.Plan{
		core.PlanNetworkWise(inj.Space(), cfg),
		core.PlanLayerWise(inj.Space(), cfg),
	} {
		var want bytes.Buffer
		if err := core.RunParallel(inj, plan, seed, workers).WriteJSON(&want); err != nil {
			t.Fatal(err)
		}

		ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		eng := core.NewEngine(
			core.WithWorkers(workers),
			core.WithCheckpoint(ckpt), core.WithCheckpointInterval(64),
			core.WithProgressInterval(32),
			// Cancel at the first progress event: the fast path makes
			// shards short enough that waiting for a deep cutoff would
			// race the in-flight completion overrun past the plan total,
			// leaving nothing to resume.
			core.WithProgress(func(p core.Progress) {
				if !p.Final {
					once.Do(cancel)
				}
			}))
		partial, err := eng.Execute(ctx, inj, plan, seed)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted run returned %v, want context.Canceled", plan.Approach, err)
		}
		if partial.Injections() >= plan.TotalInjections() {
			t.Fatalf("%s: interruption left no work to resume", plan.Approach)
		}

		resumed, err := core.NewEngine(core.WithWorkers(workers),
			core.WithCheckpoint(ckpt), core.WithResume()).
			Execute(context.Background(), inj, plan, seed)
		if err != nil {
			t.Fatalf("%s: resume failed: %v", plan.Approach, err)
		}
		var got bytes.Buffer
		if err := resumed.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: resumed inference campaign differs from uninterrupted run", plan.Approach)
		}
	}
}

// TestEngineEarlyStopInjector: early stop against real inference — a
// stratum may only halt once its observed margin meets the target, and
// the injector's per-worker clones must not disturb the tally.
func TestEngineEarlyStopInjector(t *testing.T) {
	inj := newTestInjector(t)
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = 0.05
	plan := core.PlanLayerWise(inj.Space(), cfg)

	res, err := core.NewEngine(core.WithWorkers(2), core.WithEarlyStop(0.10)).
		Execute(context.Background(), inj, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range res.EarlyStopped {
		est := res.Estimates[i]
		if est.SampleSize >= plan.Subpops[i].SampleSize {
			t.Errorf("stratum %d: stopped but n=%d not below planned %d",
				i, est.SampleSize, plan.Subpops[i].SampleSize)
		}
		if m := cfg.ObservedMargin(est.PHat(), est.SampleSize, est.PopulationSize); m > 0.10 {
			t.Errorf("stratum %d stopped at margin %v > target 0.10", i, m)
		}
	}
}

// TestEngineBatchedGroupedBitIdentity is the acceptance gate for the
// batched refactor at the engine layer: a campaign on a batched
// injector under the grouped shard schedule must serialize to the exact
// bytes of the unbatched, ungrouped baseline at workers 1 and 4.
// Batching changes only how many images one suffix pass evaluates, and
// grouping changes only the order experiments run within a shard — the
// tally is merged strictly in draw order — so the Result must stay a
// pure function of (plan, seed).
func TestEngineBatchedGroupedBitIdentity(t *testing.T) {
	inj := newTestInjector(t)
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = 0.05
	const seed = 11

	for _, plan := range []*core.Plan{
		core.PlanNetworkWise(inj.Space(), cfg),
		core.PlanLayerWise(inj.Space(), cfg),
	} {
		var want bytes.Buffer
		if err := core.RunParallel(inj, plan, seed, 1).WriteJSON(&want); err != nil {
			t.Fatal(err)
		}

		batched := inj.Clone()
		batched.SetBatchSize(4)
		for _, workers := range []int{1, 4} {
			eng := core.NewEngine(core.WithWorkers(workers), core.WithGroupedEvaluation(true))
			res, err := eng.Execute(context.Background(), batched, plan, seed)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", plan.Approach, workers, err)
			}
			var got bytes.Buffer
			if err := res.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%s workers=%d: batched+grouped campaign differs from unbatched baseline",
					plan.Approach, workers)
			}
		}
	}
}
