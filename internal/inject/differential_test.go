package inject

import (
	"math"
	"math/rand"
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/models"
	"cnnsfi/internal/oracle"
	"cnnsfi/internal/tensor"
)

// This file is the differential test harness for the allocation-free
// hot path: a reference evaluator that reproduces the pre-optimization
// behaviour exactly — Apply + closure restore, a freshly allocated node
// cache per experiment, heap ExecFrom, no masked-fault short-circuit,
// no SDC early-exit accounting — is run against IsCritical and
// MismatchCount over thousands of seeded random faults per criterion,
// on both fault models and both evaluation substrates.

// referenceIsCritical is the pre-optimization classification path,
// reconstructed verbatim: it allocates its cache per call, executes the
// suffix on the heap, and evaluates every fault fully (masked or not).
func referenceIsCritical(inj *Injector, f faultmodel.Fault) bool {
	restore := inj.Apply(f)
	defer restore()

	from := inj.nodes[f.Layer]
	scratch := make([]*tensor.Tensor, len(inj.Net.Nodes))

	mismatches := 0
	correct := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFrom(img, scratch, from)
		pred := predictChecked(out)
		if pred != inj.golden[i] {
			mismatches++
			if inj.Criterion == SDC {
				return true
			}
		}
		if pred == inj.labels[i] {
			correct++
		}
	}

	switch inj.Criterion {
	case SDC:
		return mismatches > 0
	case AccuracyDrop:
		return float64(correct)/float64(len(inj.images)) < inj.acc
	case MismatchRate:
		return float64(mismatches)/float64(len(inj.images)) > inj.Threshold
	default:
		panic("unsupported criterion")
	}
}

// referenceMismatchCount is the pre-optimization MismatchCount.
func referenceMismatchCount(inj *Injector, f faultmodel.Fault) int {
	restore := inj.Apply(f)
	defer restore()

	from := inj.nodes[f.Layer]
	scratch := make([]*tensor.Tensor, len(inj.Net.Nodes))
	mismatches := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFrom(img, scratch, from)
		if predictChecked(out) != inj.golden[i] {
			mismatches++
		}
	}
	return mismatches
}

// randomFault draws a uniformly random fault: location from the
// network's universe, model uniformly over StuckAt0/StuckAt1/BitFlip —
// covering both the permanent stuck-at campaigns and the transient-flip
// model, and (via stuck-at on uniformly random bits) a ~50% masked mix.
func randomFault(r *rand.Rand, space faultmodel.Space) faultmodel.Fault {
	f := space.GlobalFault(r.Int63n(space.Total()))
	if r.Intn(3) == 0 {
		f.Model = faultmodel.BitFlip
	}
	return f
}

// TestDifferentialInference pits the optimized IsCritical against the
// reference evaluator on the real-inference substrate: ≥5000 seeded
// random faults per criterion, all three criteria, stuck-at and
// bit-flip models. Any divergence — a masked fault misclassified, an
// early exit changing a verdict, an arena buffer leaking state between
// experiments — fails with the exact fault that exposed it.
func TestDifferentialInference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness runs thousands of inference experiments")
	}
	const faultsPerCriterion = 5000

	// A small evaluation set keeps the reference side (which evaluates
	// every fault fully, no masking) affordable; determinism does not
	// depend on the set size.
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})

	for _, crit := range []Criterion{SDC, AccuracyDrop, MismatchRate} {
		crit := crit
		t.Run(crit.String(), func(t *testing.T) {
			inj := New(net.Clone(), ds)
			inj.Criterion = crit
			inj.Threshold = 0.25 // make MismatchRate distinguishable from SDC

			r := rand.New(rand.NewSource(42 + int64(crit)))
			masked := 0
			for i := 0; i < faultsPerCriterion; i++ {
				f := randomFault(r, inj.Space())
				if inj.Masked(f) {
					masked++
				}
				want := referenceIsCritical(inj, f)
				got := inj.IsCritical(f)
				if got != want {
					t.Fatalf("fault #%d %v: fast path = %v, reference = %v", i, f, got, want)
				}
			}
			// The harness must actually exercise the short-circuit: with
			// uniform bits roughly a third of draws are masked stuck-ats.
			if masked < faultsPerCriterion/10 {
				t.Errorf("only %d/%d faults were masked; harness not covering the short-circuit", masked, faultsPerCriterion)
			}
			if got := inj.EvalStats(); got.Skipped != int64(masked) {
				t.Errorf("EvalStats.Skipped = %d, want %d", got.Skipped, masked)
			}
		})
	}
}

// TestDifferentialMismatchCount does the same for MismatchCount, whose
// masked short-circuit must return exactly 0 mismatches.
func TestDifferentialMismatchCount(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness runs thousands of inference experiments")
	}
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	inj := New(net, ds)

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		f := randomFault(r, inj.Space())
		want := referenceMismatchCount(inj, f)
		got := inj.MismatchCount(f)
		if got != want {
			t.Fatalf("fault #%d %v: MismatchCount fast path = %d, reference = %d", i, f, got, want)
		}
	}
}

// TestDifferentialWeightsRestored guards the inline mutate-and-restore:
// after any number of fast-path experiments the weights must be
// bit-identical to the golden network's.
func TestDifferentialWeightsRestored(t *testing.T) {
	inj := newTestInjector(t)
	golden := models.SmallCNN(1).WeightLayers()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		inj.IsCritical(randomFault(r, inj.Space()))
	}
	for l, wl := range inj.Net.WeightLayers() {
		w, g := wl.WeightData(), golden[l].WeightData()
		for p := range w {
			if math.Float32bits(w[p]) != math.Float32bits(g[p]) {
				t.Fatalf("layer %d param %d: weight 0x%08x differs from golden 0x%08x after restore",
					l, p, math.Float32bits(w[p]), math.Float32bits(g[p]))
			}
		}
	}
}

// TestDifferentialOracle pins the oracle substrate the same way:
// IsCritical (with the masked short-circuit) must agree with
// IsCriticalReference (the full perturbation-model path) on every fault.
// The oracle verdict is O(1), so this sweeps a much larger sample.
func TestDifferentialOracle(t *testing.T) {
	net := models.SmallCNN(1)
	o := oracle.New(net, oracle.DefaultConfig(3))

	r := rand.New(rand.NewSource(99))
	disagree := 0
	const n = 50000
	for i := 0; i < n; i++ {
		f := randomFault(r, o.Space())
		if got, want := o.IsCritical(f), o.IsCriticalReference(f); got != want {
			disagree++
			if disagree <= 5 {
				t.Errorf("fault %v: oracle fast = %v, reference = %v", f, got, want)
			}
		}
	}
	if disagree > 0 {
		t.Fatalf("%d/%d oracle verdicts diverged", disagree, n)
	}
	s := o.EvalStats()
	if s.Skipped+s.Evaluated != n {
		t.Errorf("oracle EvalStats: skipped %d + evaluated %d != %d verdicts", s.Skipped, s.Evaluated, n)
	}
	if s.Skipped < n/10 {
		t.Errorf("oracle skipped only %d/%d; masked short-circuit not exercised", s.Skipped, n)
	}
}
