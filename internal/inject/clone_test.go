package inject

import (
	"sync"
	"testing"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/models"
	"cnnsfi/internal/stats"
)

// TestCloneWeightIndependence: a fault applied through a clone must not
// be visible in the parent's weights, and vice versa — clones deep-copy
// weight storage, which is the only state Apply mutates.
func TestCloneWeightIndependence(t *testing.T) {
	parent := newTestInjector(t)
	clone := parent.Clone()

	pw := parent.Net.WeightLayers()[0].WeightData()
	cw := clone.Net.WeightLayers()[0].WeightData()
	if &pw[0] == &cw[0] {
		t.Fatal("clone shares weight storage with parent")
	}

	f := faultmodel.Fault{Layer: 0, Param: 3, Bit: 30, Model: faultmodel.StuckAt1}
	restore := clone.Apply(f)
	if pw[3] != cw[3] {
		// Expected: the clone's weight changed, the parent's did not.
		restore()
	} else {
		restore()
		t.Fatal("fault applied to clone leaked into parent weights")
	}

	restore = parent.Apply(f)
	if cw[3] == pw[3] {
		restore()
		t.Fatal("fault applied to parent leaked into clone weights")
	}
	restore()
}

// TestCloneVerdictsMatchParent: a clone carries the same golden state,
// so IsCritical must agree with the parent on every fault.
func TestCloneVerdictsMatchParent(t *testing.T) {
	parent := newTestInjector(t)
	clone := parent.Clone()
	space := parent.Space()
	for g := int64(0); g < 120; g++ {
		f := space.GlobalFault(g * 911 % space.Total())
		if clone.IsCritical(f) != parent.IsCritical(f) {
			t.Fatalf("fault %v: clone verdict diverges from parent", f)
		}
	}
}

// TestCloneCountsAggregate: clones share the root's atomic experiment
// counter, so campaign totals survive the fan-out/join.
func TestCloneCountsAggregate(t *testing.T) {
	parent := newTestInjector(t)
	a, b := parent.Clone(), parent.Clone()
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 10, Model: faultmodel.StuckAt1}
	parent.IsCritical(f)
	a.IsCritical(f)
	a.IsCritical(f)
	b.IsCritical(f)
	if parent.Injections != 4 {
		t.Errorf("root counter = %d, want 4 (aggregated across clones)", parent.Injections)
	}
}

// TestCloneForWorkerImplementsContract: the core.WorkerCloner adapter
// must hand back a fully independent Evaluator.
func TestCloneForWorkerImplementsContract(t *testing.T) {
	parent := newTestInjector(t)
	var _ core.WorkerCloner = parent
	ev := parent.CloneForWorker()
	if _, ok := ev.(*Injector); !ok {
		t.Fatalf("CloneForWorker returned %T, want *Injector", ev)
	}
	if ev.(*Injector) == parent {
		t.Fatal("CloneForWorker returned the parent itself")
	}
}

// TestConcurrentClones hammers one clone per goroutine over the same
// fault set; run under `go test -race` this proves the cloned injectors
// share no mutable state (the shared golden inputs are read-only, the
// experiment counter is atomic).
func TestConcurrentClones(t *testing.T) {
	parent := newTestInjector(t)
	space := parent.Space()

	// Serial reference verdicts.
	const faults = 64
	want := make([]bool, faults)
	ref := parent.Clone()
	for g := 0; g < faults; g++ {
		want[g] = ref.IsCritical(space.GlobalFault(int64(g*1811) % space.Total()))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(clone *Injector) {
			defer wg.Done()
			for g := 0; g < faults; g++ {
				f := space.GlobalFault(int64(g*1811) % space.Total())
				if clone.IsCritical(f) != want[g] {
					errs <- f.String()
					return
				}
			}
		}(parent.Clone())
	}
	wg.Wait()
	close(errs)
	for f := range errs {
		t.Errorf("concurrent clone verdict diverged on fault %s", f)
	}
}

// TestActivationInjectorConcurrent: the activation injector never
// mutates shared state in IsCritical (faulty tensors are private
// copies), so goroutines may share one instance without cloning.
func TestActivationInjectorConcurrent(t *testing.T) {
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	inj := NewActivation(net, ds)
	space := inj.Space()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(offset int64) {
			defer wg.Done()
			for g := int64(0); g < 32; g++ {
				inj.IsCritical(space.GlobalFault((offset + g*211) % space.Total()))
			}
		}(int64(w * 37))
	}
	wg.Wait()
	if inj.Injections != 8*32 {
		t.Errorf("Injections = %d, want %d", inj.Injections, 8*32)
	}
}

// TestRunParallelInjectorMatchesRun is the inference-substrate twin of
// core's oracle determinism test: the shard-parallel runner must hand
// back bit-identical results for an Injector at any worker count, with
// workers 1+ evaluating on per-worker weight clones. It lives here
// because core's in-package tests cannot import inject (cycle).
func TestRunParallelInjectorMatchesRun(t *testing.T) {
	inj := newTestInjector(t)
	cfg := stats.DefaultConfig()
	cfg.ErrorMargin = 0.05 // keep the inference campaign small
	for _, plan := range []*core.Plan{
		core.PlanNetworkWise(inj.Space(), cfg),
		core.PlanLayerWise(inj.Space(), cfg),
	} {
		serial := core.Run(inj, plan, 3)
		for _, workers := range []int{1, 4} {
			parallel := core.RunParallel(inj, plan, 3, workers)
			for i := range serial.Estimates {
				if parallel.Estimates[i] != serial.Estimates[i] {
					t.Fatalf("%s workers=%d stratum %d: %+v != %+v",
						plan.Approach, workers, i, parallel.Estimates[i], serial.Estimates[i])
				}
			}
			for l, est := range serial.LayerSlices {
				if parallel.LayerSlices[l] != est {
					t.Fatalf("%s workers=%d layer slice %d mismatch", plan.Approach, workers, l)
				}
			}
		}
	}
}
