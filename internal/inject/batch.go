package inject

// Batched evaluation: the same experiment loop as IsCritical /
// MismatchCount, but the per-image suffix re-execution is replaced by
// one batched suffix pass per image *chunk* (nn.ExecBatchFromScratch).
// The graph-walk and patch-gather overhead that the unbatched path pays
// once per image is paid once per chunk, and the batched kernels keep
// per-element accumulation order identical to the single-image kernels,
// so verdicts — and the EvalStats breakdown — are bit-identical to the
// unbatched path. SetBatchSize opts in; the default remains unbatched.

import (
	"fmt"
	"sync/atomic"
	"time"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

// SetBatchSize selects how many evaluation images each faulted forward
// pass evaluates at once. n <= 1 restores the default unbatched path; n
// larger than the evaluation set is clamped by construction (the final
// chunk simply holds the remainder). Changing the size discards any
// previously built batched golden state, which is rebuilt lazily on the
// next evaluated experiment. Verdicts and EvalStats are bit-identical at
// every batch size; only wall time changes. Call it before the campaign
// starts and before cloning — clones inherit the size (and any state
// already built) at clone time. Goroutine-level parallelism inside one
// batched pass is a separate, orthogonal knob: Net.SetBatchParallelism.
func (inj *Injector) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	if n == inj.batch {
		return
	}
	inj.batch = n
	inj.batchInputs = nil
	inj.batchCaches = nil
	inj.batchScratch = nil
}

// BatchSize returns the configured batch size (0 or 1 mean unbatched).
func (inj *Injector) BatchSize() int { return inj.batch }

// batched reports whether experiments should take the batched path.
// A single-image evaluation set gains nothing from batching, so it
// stays on the (identical-verdict) unbatched path.
func (inj *Injector) batched() bool { return inj.batch > 1 && len(inj.images) > 1 }

// ensureBatchState lazily builds the batched golden state: the
// evaluation images stacked into NCHW chunks of up to batch images, and
// one batched golden activation cache per chunk. Chunks cover the
// images in evaluation-set order, so image i lives at position
// i%batch of chunk i/batch and the batched loops visit images in the
// exact order the unbatched loops do. Must be called while the network
// is fault-free (before the experiment's mutate step) so the caches are
// golden. The built state is immutable and shared with clones taken
// afterwards.
func (inj *Injector) ensureBatchState() {
	if inj.batchInputs != nil {
		return
	}
	sz := inj.images[0].Len()
	shape := inj.images[0].Shape
	for i := 0; i < len(inj.images); i += inj.batch {
		nb := min(inj.batch, len(inj.images)-i)
		in := tensor.New(append([]int{nb}, shape...)...)
		for n := 0; n < nb; n++ {
			copy(in.Data[n*sz:(n+1)*sz], inj.images[i+n].Data)
		}
		inj.batchInputs = append(inj.batchInputs, in)
		inj.batchCaches = append(inj.batchCaches, inj.Net.ExecBatch(in))
	}
}

// batchScratchBuf returns the reusable per-experiment batched cache
// view; per-instance (never shared with clones), like scratchBuf.
func (inj *Injector) batchScratchBuf() []*tensor.Tensor {
	if len(inj.batchScratch) != len(inj.Net.Nodes) {
		inj.batchScratch = make([]*tensor.Tensor, len(inj.Net.Nodes))
	}
	return inj.batchScratch
}

// faultChannel returns the output channel of the faulted layer that a
// single weight fault can affect, or -1 when channel locality is
// unknown for the layer type. A Conv2D weight at Param belongs to
// exactly one output channel (its W is laid out oc-major), so a fault
// there leaves every other channel's output bit-identical to golden —
// the knowledge ExecBatchFromScratchChannel turns into a partial
// recompute of the faulted node.
func (inj *Injector) faultChannel(f faultmodel.Fault) int {
	if c, ok := inj.layers[f.Layer].(*nn.Conv2D); ok {
		return f.Param / (c.InC / c.Groups * c.KH * c.KW)
	}
	return -1
}

// isCriticalBatched is IsCritical's batched twin: identical counting,
// masked short-circuit, inline mutate-and-restore and classification —
// only the evaluation loop differs, running one arena suffix pass per
// chunk instead of per image. SDC still exits on the first mismatching
// image (skipping any remaining chunks), and earlyExits counts exactly
// the cases the unbatched path counts: a mismatch on any image but the
// last.
func (inj *Injector) isCriticalBatched(f faultmodel.Fault) bool {
	inj.countInjection()
	c := inj.stats()
	if inj.Masked(f) {
		atomic.AddInt64(&c.skipped, 1)
		return false
	}
	atomic.AddInt64(&c.evaluated, 1)
	inj.ensureBatchState() // before the mutate below: caches must be golden
	var start time.Time
	if inj.latency != nil {
		start = time.Now()
	}

	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	w[f.Param] = faultValue(old, f)
	defer func() {
		w[f.Param] = old
		inj.publishArenaGrowth(c)
		if inj.latency != nil {
			inj.latency.Observe(time.Since(start))
		}
	}()

	from := inj.nodes[f.Layer]
	oc := inj.faultChannel(f)
	scratch := inj.batchScratchBuf()

	mismatches := 0
	correct := 0
	img := 0
	for ci, in := range inj.batchInputs {
		copy(scratch, inj.batchCaches[ci])
		out := inj.Net.ExecBatchFromScratchChannel(in, scratch, from, oc)
		nb := in.Shape[0]
		k := out.Len() / nb
		for n := 0; n < nb; n++ {
			pred := predictCheckedSlice(out.Data[n*k : (n+1)*k])
			if pred != inj.golden[img] {
				mismatches++
				if inj.Criterion == SDC {
					if img < len(inj.images)-1 {
						atomic.AddInt64(&c.earlyExits, 1)
					}
					return true
				}
			}
			if pred == inj.labels[img] {
				correct++
			}
			img++
		}
	}

	switch inj.Criterion {
	case SDC:
		return mismatches > 0
	case AccuracyDrop:
		return float64(correct)/float64(len(inj.images)) < inj.acc
	case MismatchRate:
		return float64(mismatches)/float64(len(inj.images)) > inj.Threshold
	default:
		panic(fmt.Sprintf("inject: unsupported criterion %v", inj.Criterion))
	}
}

// mismatchCountBatched is MismatchCount's batched twin (no early exit).
func (inj *Injector) mismatchCountBatched(f faultmodel.Fault) int {
	inj.countInjection()
	c := inj.stats()
	if inj.Masked(f) {
		atomic.AddInt64(&c.skipped, 1)
		return 0
	}
	atomic.AddInt64(&c.evaluated, 1)
	inj.ensureBatchState()
	var start time.Time
	if inj.latency != nil {
		start = time.Now()
	}

	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	w[f.Param] = faultValue(old, f)
	defer func() {
		w[f.Param] = old
		inj.publishArenaGrowth(c)
		if inj.latency != nil {
			inj.latency.Observe(time.Since(start))
		}
	}()

	from := inj.nodes[f.Layer]
	oc := inj.faultChannel(f)
	scratch := inj.batchScratchBuf()
	mismatches := 0
	img := 0
	for ci, in := range inj.batchInputs {
		copy(scratch, inj.batchCaches[ci])
		out := inj.Net.ExecBatchFromScratchChannel(in, scratch, from, oc)
		nb := in.Shape[0]
		k := out.Len() / nb
		for n := 0; n < nb; n++ {
			if predictCheckedSlice(out.Data[n*k:(n+1)*k]) != inj.golden[img] {
				mismatches++
			}
			img++
		}
	}
	return mismatches
}

// predictCheckedSlice is predictChecked over one image's slice of a
// batched output tensor: any NaN maps to -1, otherwise the first-
// occurrence argmax (tensor.ArgMax semantics, including -1 for empty).
func predictCheckedSlice(data []float32) int {
	idx := -1
	var best float32
	for i, v := range data {
		if v != v {
			return -1
		}
		if idx == -1 || v > best {
			best, idx = v, i
		}
	}
	return idx
}
