package inject

import (
	"math"
	"testing"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
)

// setWeight overwrites one weight with an exact bit pattern so the
// masked predicate can be probed on edge-case encodings.
func setWeight(inj *Injector, layer, param int, bits uint32) {
	inj.layers[layer].WeightData()[param] = math.Float32frombits(bits)
}

// TestMaskedPredicateEdgeCases drives Injector.Masked over the IEEE-754
// encodings where an approximate predicate would slip: exact zero,
// negative zero, a denormal with a single mantissa bit, NaN with a
// payload, infinity, and an ordinary value. The ground truth for every
// row is the definition itself — a stuck-at is masked iff the stored
// bit already equals the stuck value — computed independently from the
// raw bit pattern.
func TestMaskedPredicateEdgeCases(t *testing.T) {
	weights := []struct {
		name string
		bits uint32
	}{
		{"plus_zero", 0x00000000},    // all bits clear
		{"minus_zero", 0x80000000},   // only the sign bit set
		{"one", 0x3F800000},          // exponent bits set, mantissa clear
		{"denormal_lsb", 0x00000001}, // smallest positive denormal
		{"nan_payload", 0x7FC00001},  // quiet NaN with payload bit
		{"neg_inf", 0xFF800000},      // sign + full exponent
		{"ordinary", 0xBE99999A},     // -0.3, mixed bit pattern
		{"all_ones", 0xFFFFFFFF},     // NaN with every bit set
	}

	inj := newTestInjector(t)
	for _, w := range weights {
		t.Run(w.name, func(t *testing.T) {
			setWeight(inj, 0, 0, w.bits)
			for bit := 0; bit < fp.Bits32; bit++ {
				stored := w.bits>>uint(bit)&1 == 1
				cases := []struct {
					model  faultmodel.Model
					masked bool
				}{
					{faultmodel.StuckAt0, !stored}, // masked iff bit already 0
					{faultmodel.StuckAt1, stored},  // masked iff bit already 1
					{faultmodel.BitFlip, false},    // always changes the word
				}
				for _, c := range cases {
					f := faultmodel.Fault{Layer: 0, Param: 0, Bit: bit, Model: c.model}
					if got := inj.Masked(f); got != c.masked {
						t.Errorf("bits 0x%08x %v bit %d: Masked = %v, want %v",
							w.bits, c.model, bit, got, c.masked)
					}
					// Cross-check against Apply: masked must mean exactly
					// "applying the fault leaves the weight bit-identical".
					restore := inj.Apply(f)
					after := math.Float32bits(inj.layers[0].WeightData()[0])
					restore()
					if identical := after == w.bits; identical != c.masked {
						t.Errorf("bits 0x%08x %v bit %d: Apply changed word to 0x%08x but Masked = %v",
							w.bits, c.model, bit, after, c.masked)
					}
				}
			}
		})
	}
}

// TestMaskedShortCircuitVerdictAndCounters: a masked fault must be
// classified Non-critical by IsCritical and 0 by MismatchCount, while
// still counting as an injection (the campaign accounting is about
// experiments, not inferences) and incrementing only the skipped
// counter.
func TestMaskedShortCircuitVerdictAndCounters(t *testing.T) {
	inj := newTestInjector(t)
	setWeight(inj, 0, 0, 0x3F800000) // 1.0: mantissa clear, exponent set

	base := inj.EvalStats()
	baseInj := inj.Injections

	// 1.0's exponent is 0x7F: bits 23-29 set, bit 30 and mantissa clear.
	maskedSA0 := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt0}
	maskedSA1 := faultmodel.Fault{Layer: 0, Param: 0, Bit: 26, Model: faultmodel.StuckAt1}
	for _, f := range []faultmodel.Fault{maskedSA0, maskedSA1} {
		if inj.IsCritical(f) {
			t.Errorf("masked fault %v classified Critical", f)
		}
		if got := inj.MismatchCount(f); got != 0 {
			t.Errorf("masked fault %v: MismatchCount = %d, want 0", f, got)
		}
	}

	s := inj.EvalStats()
	if got, want := s.Skipped-base.Skipped, int64(4); got != want {
		t.Errorf("Skipped advanced by %d, want %d", got, want)
	}
	if s.Evaluated != base.Evaluated {
		t.Errorf("Evaluated advanced by %d on masked-only faults", s.Evaluated-base.Evaluated)
	}
	if got, want := inj.Injections-baseInj, int64(4); got != want {
		t.Errorf("Injections advanced by %d, want %d (masked experiments still count)", got, want)
	}
}

// TestUnmaskedStuckAtEvaluates: the complementary stuck-at on the same
// bit must take the full evaluation path and restore the weight.
func TestUnmaskedStuckAtEvaluates(t *testing.T) {
	inj := newTestInjector(t)
	setWeight(inj, 0, 0, 0x3F800000) // 1.0

	base := inj.EvalStats()
	// Mantissa LSB of 1.0 is 0, so StuckAt1 is unmasked (and benign).
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1}
	if inj.Masked(f) {
		t.Fatal("StuckAt1 on a clear bit reported masked")
	}
	inj.IsCritical(f)
	s := inj.EvalStats()
	if got := s.Evaluated - base.Evaluated; got != 1 {
		t.Errorf("Evaluated advanced by %d, want 1", got)
	}
	if got := math.Float32bits(inj.layers[0].WeightData()[0]); got != 0x3F800000 {
		t.Errorf("weight not restored: 0x%08x", got)
	}
}

// TestEvalStatsExperimentsAccounting: Skipped + Evaluated must equal
// the number of single-fault experiments, whatever the mix.
func TestEvalStatsExperimentsAccounting(t *testing.T) {
	inj := newTestInjector(t)
	const n = 200
	for j := int64(0); j < n; j++ {
		inj.IsCritical(inj.Space().LayerFault(0, j))
	}
	s := inj.EvalStats()
	if s.Experiments() != n {
		t.Errorf("Experiments() = %d (skipped %d + evaluated %d), want %d",
			s.Experiments(), s.Skipped, s.Evaluated, n)
	}
	if s.Skipped == 0 || s.Evaluated == 0 {
		t.Errorf("expected a mix of skipped (%d) and evaluated (%d) over a stuck-at sweep",
			s.Skipped, s.Evaluated)
	}
	if s.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d after %d evaluations; arena growth not published", s.ArenaBytes, n)
	}
}
