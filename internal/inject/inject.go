// Package inject performs inference-based fault injection on a CNN: the
// role PyTorchFI plays in the paper. A fault (stuck-at or bit-flip on
// one weight bit) is applied in place, the network is re-evaluated on a
// fixed test set, the outcome is classified Critical or Non-critical,
// and the weight is restored.
//
// Two optimizations make exhaustive campaigns tractable on a CPU:
//
//   - Golden prefix caching: for every test image the activations of
//     every graph node are computed once; a fault in weight layer l only
//     invalidates nodes from that layer onward, so each experiment
//     re-executes only the suffix of the graph.
//   - Early exit: under the SDC criterion a fault is Critical as soon as
//     one image's top-1 prediction changes, so critical faults terminate
//     after the first mismatching image.
//
// A third lever is parallelism: Injector.Clone produces per-worker
// copies that share the (immutable) golden state but own independent
// weight storage, so core.RunParallel can evaluate one campaign on all
// cores while each worker mutates only its private network.
package inject

import (
	"fmt"
	"sync/atomic"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

// Criterion selects how a fault's effect on the test set is classified.
type Criterion uint8

// Classification criteria.
const (
	// SDC marks a fault Critical if any image's top-1 prediction
	// differs from the golden top-1 (silent data corruption; the
	// strictest criterion and this package's default).
	SDC Criterion = iota
	// AccuracyDrop marks a fault Critical if the top-1 accuracy against
	// the ground-truth labels decreases relative to the golden run (the
	// paper's "depending on whether the top-1 prediction is correct").
	AccuracyDrop
	// MismatchRate marks a fault Critical if the fraction of images
	// whose top-1 changed exceeds Injector.Threshold.
	MismatchRate
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case SDC:
		return "sdc"
	case AccuracyDrop:
		return "accuracy-drop"
	case MismatchRate:
		return "mismatch-rate"
	default:
		return "unknown"
	}
}

// Injector owns a network, a fixed evaluation set, and the golden
// (fault-free) reference state. A single Injector is not safe for
// concurrent use — a fault mutates the network weights in place — but
// Clone produces independent per-worker copies that are: each clone
// owns a private copy of the injectable weights and shares the
// immutable golden state, which is how core.RunParallel evaluates an
// inference-based campaign on all cores.
type Injector struct {
	// Net is the network under test.
	Net *nn.Network
	// Criterion selects the Critical classification rule (default SDC).
	Criterion Criterion
	// Threshold is the mismatch-rate threshold for MismatchRate.
	Threshold float64

	images []*tensor.Tensor
	labels []int
	golden []int              // golden top-1 per image
	caches [][]*tensor.Tensor // per-image golden node outputs
	space  faultmodel.Space   // stuck-at universe over Net's layers
	layers []nn.WeightLayer   // resolved weight layers
	nodes  []int              // graph node index per weight layer
	acc    float64            // golden top-1 accuracy

	// Injections counts the experiments run, for reporting. Clones
	// aggregate their counts here too (atomically), so after a parallel
	// campaign the root injector's counter covers all workers. Read it
	// only after the campaign's goroutines have been joined.
	Injections int64

	// count is where experiment counts accumulate: the root injector's
	// own Injections field, shared by every clone derived from it.
	count *int64
}

// New builds an injector over the network and evaluation set, computing
// golden predictions and per-image activation caches. It panics on an
// empty dataset.
func New(net *nn.Network, ds *dataset.Dataset) *Injector {
	if ds.Len() == 0 {
		panic("inject: empty evaluation set")
	}
	inj := &Injector{
		Net:    net,
		layers: net.WeightLayers(),
	}
	inj.count = &inj.Injections
	for l := range inj.layers {
		inj.nodes = append(inj.nodes, net.WeightNodeIndex(l))
	}
	inj.space = faultmodel.NewStuckAt(net.LayerParamCounts(), fp.Bits32)

	correct := 0
	for _, s := range ds.Samples {
		cache := net.Exec(s.Image)
		pred := cache[len(cache)-1].ArgMax()
		inj.images = append(inj.images, s.Image)
		inj.labels = append(inj.labels, s.Label)
		inj.golden = append(inj.golden, pred)
		inj.caches = append(inj.caches, cache)
		if pred == s.Label {
			correct++
		}
	}
	inj.acc = float64(correct) / float64(ds.Len())
	return inj
}

// Space returns the permanent stuck-at fault universe of the network.
func (inj *Injector) Space() faultmodel.Space { return inj.space }

// GoldenAccuracy returns the fault-free top-1 accuracy on the
// evaluation set.
func (inj *Injector) GoldenAccuracy() float64 { return inj.acc }

// GoldenPredictions returns the fault-free top-1 predictions.
func (inj *Injector) GoldenPredictions() []int {
	out := make([]int, len(inj.golden))
	copy(out, inj.golden)
	return out
}

// NumImages returns the evaluation-set size.
func (inj *Injector) NumImages() int { return len(inj.images) }

// Clone returns an injector that shares this one's immutable golden
// state (evaluation images, labels, golden predictions, per-image
// activation caches, fault space) but owns an independent deep copy of
// the network's injectable weights, so the clone's IsCritical may run
// concurrently with the original's and with other clones'. Experiment
// counts from every clone aggregate atomically into the root injector's
// Injections field. Cloning copies only the weight tensors (~1 MiB for
// ResNet-20); the golden activation caches — the expensive part of New —
// are reused.
func (inj *Injector) Clone() *Injector {
	// Field-wise copy rather than `*inj`: the Injections field is
	// atomically incremented by running clones, and a whole-struct copy
	// would read it non-atomically (a data race when cloning while
	// sibling clones evaluate).
	c := &Injector{
		Net:       inj.Net.Clone(),
		Criterion: inj.Criterion,
		Threshold: inj.Threshold,
		images:    inj.images,
		labels:    inj.labels,
		golden:    inj.golden,
		caches:    inj.caches,
		space:     inj.space,
		nodes:     inj.nodes,
		acc:       inj.acc,
		count:     inj.count,
	}
	if c.count == nil { // zero-value parent never initialised its counter
		c.count = &inj.Injections
	}
	c.layers = c.Net.WeightLayers()
	return c
}

// CloneForWorker implements core.WorkerCloner, letting core.RunParallel
// give each evaluation worker its own isolated injector.
func (inj *Injector) CloneForWorker() core.Evaluator { return inj.Clone() }

// countInjection bumps the campaign-wide experiment counter. The root
// injector counts into its own Injections field; clones count into
// their root's.
func (inj *Injector) countInjection() {
	if inj.count == nil { // zero-value Injector, serial use only
		inj.count = &inj.Injections
	}
	atomic.AddInt64(inj.count, 1)
}

// Apply injects the fault into the network weights and returns a restore
// function that must be called to undo it. Any of the three fault models
// is accepted (campaigns sample from the stuck-at universe, but the
// multi-fault extension also applies transient flips to weights). It
// panics on an invalid fault location.
func (inj *Injector) Apply(f faultmodel.Fault) (restore func()) {
	if f.Layer < 0 || f.Layer >= len(inj.layers) {
		panic(fmt.Sprintf("inject: layer %d out of range", f.Layer))
	}
	if f.Param < 0 || f.Param >= inj.layers[f.Layer].NumWeights() {
		panic(fmt.Sprintf("inject: param %d out of range for layer %d", f.Param, f.Layer))
	}
	if f.Bit < 0 || f.Bit >= fp.Bits32 {
		panic(fmt.Sprintf("inject: bit %d out of range", f.Bit))
	}
	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	switch f.Model {
	case faultmodel.StuckAt0:
		w[f.Param] = fp.ClearBit32(old, f.Bit)
	case faultmodel.StuckAt1:
		w[f.Param] = fp.SetBit32(old, f.Bit)
	case faultmodel.BitFlip:
		w[f.Param] = fp.FlipBit32(old, f.Bit)
	default:
		panic(fmt.Sprintf("inject: unsupported fault model %v", f.Model))
	}
	return func() { w[f.Param] = old }
}

// IsCritical runs one complete fault-injection experiment: apply the
// fault, re-evaluate the suffix of the network on every image (with
// early exit under SDC), classify, restore.
func (inj *Injector) IsCritical(f faultmodel.Fault) bool {
	restore := inj.Apply(f)
	defer restore()
	inj.countInjection()

	from := inj.nodes[f.Layer]
	scratch := make([]*tensor.Tensor, len(inj.Net.Nodes))

	mismatches := 0
	correct := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFrom(img, scratch, from)
		pred := predictChecked(out)
		if pred != inj.golden[i] {
			mismatches++
			if inj.Criterion == SDC {
				return true
			}
		}
		if pred == inj.labels[i] {
			correct++
		}
	}

	switch inj.Criterion {
	case SDC:
		return mismatches > 0
	case AccuracyDrop:
		return float64(correct)/float64(len(inj.images)) < inj.acc
	case MismatchRate:
		return float64(mismatches)/float64(len(inj.images)) > inj.Threshold
	default:
		panic(fmt.Sprintf("inject: unsupported criterion %v", inj.Criterion))
	}
}

// MismatchCount applies the fault and returns how many evaluation images
// change their top-1 prediction (no early exit). Useful for analyses
// beyond the binary Critical/Non-critical classification.
func (inj *Injector) MismatchCount(f faultmodel.Fault) int {
	restore := inj.Apply(f)
	defer restore()
	inj.countInjection()

	from := inj.nodes[f.Layer]
	scratch := make([]*tensor.Tensor, len(inj.Net.Nodes))
	mismatches := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFrom(img, scratch, from)
		if predictChecked(out) != inj.golden[i] {
			mismatches++
		}
	}
	return mismatches
}

// predictChecked returns the top-1 index, mapping any output containing
// NaN to -1 (which never equals a golden prediction, so numerical
// corruption always counts as a mismatch).
func predictChecked(out *tensor.Tensor) int {
	for _, v := range out.Data {
		if v != v {
			return -1
		}
	}
	return out.ArgMax()
}
