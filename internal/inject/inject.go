// Package inject performs inference-based fault injection on a CNN: the
// role PyTorchFI plays in the paper. A fault (stuck-at or bit-flip on
// one weight bit) is applied in place, the network is re-evaluated on a
// fixed test set, the outcome is classified Critical or Non-critical,
// and the weight is restored.
//
// Four optimizations make exhaustive campaigns tractable on a CPU:
//
//   - Golden prefix caching: for every test image the activations of
//     every graph node are computed once; a fault in weight layer l only
//     invalidates nodes from that layer onward, so each experiment
//     re-executes only the suffix of the graph.
//   - Early exit: under the SDC criterion a fault is Critical as soon as
//     one image's top-1 prediction changes, so critical faults terminate
//     after the first mismatching image.
//   - Masked-fault short-circuit: a stuck-at fault whose target bit
//     already holds the stuck value (about half the stuck-at universe)
//     leaves the weight bit-identical and is classified Non-critical
//     with no inference at all. See Injector.Masked.
//   - Arena execution: the evaluation loop draws every recomputed
//     activation from a per-injector scratch arena (nn.Network's
//     ExecFromScratch), so steady-state experiments perform zero heap
//     allocations. EvalStats reports how each experiment was resolved.
//
// A third lever is parallelism: Injector.Clone produces per-worker
// copies that share the (immutable) golden state but own independent
// weight storage, so core.RunParallel can evaluate one campaign on all
// cores while each worker mutates only its private network.
package inject

import (
	"fmt"
	"sync/atomic"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/dataset"
	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

// Criterion selects how a fault's effect on the test set is classified.
type Criterion uint8

// Classification criteria.
const (
	// SDC marks a fault Critical if any image's top-1 prediction
	// differs from the golden top-1 (silent data corruption; the
	// strictest criterion and this package's default).
	SDC Criterion = iota
	// AccuracyDrop marks a fault Critical if the top-1 accuracy against
	// the ground-truth labels decreases relative to the golden run (the
	// paper's "depending on whether the top-1 prediction is correct").
	AccuracyDrop
	// MismatchRate marks a fault Critical if the fraction of images
	// whose top-1 changed exceeds Injector.Threshold.
	MismatchRate
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case SDC:
		return "sdc"
	case AccuracyDrop:
		return "accuracy-drop"
	case MismatchRate:
		return "mismatch-rate"
	default:
		return "unknown"
	}
}

// Injector owns a network, a fixed evaluation set, and the golden
// (fault-free) reference state. A single Injector is not safe for
// concurrent use — a fault mutates the network weights in place — but
// Clone produces independent per-worker copies that are: each clone
// owns a private copy of the injectable weights and shares the
// immutable golden state, which is how core.RunParallel evaluates an
// inference-based campaign on all cores.
type Injector struct {
	// Net is the network under test.
	Net *nn.Network
	// Criterion selects the Critical classification rule (default SDC).
	Criterion Criterion
	// Threshold is the mismatch-rate threshold for MismatchRate.
	Threshold float64

	images []*tensor.Tensor
	labels []int
	golden []int              // golden top-1 per image
	caches [][]*tensor.Tensor // per-image golden node outputs
	space  faultmodel.Space   // stuck-at universe over Net's layers
	layers []nn.WeightLayer   // resolved weight layers
	nodes  []int              // graph node index per weight layer
	acc    float64            // golden top-1 accuracy

	// Injections counts the experiments run, for reporting. Clones
	// aggregate their counts here too (atomically), so after a parallel
	// campaign the root injector's counter covers all workers. Read it
	// only after the campaign's goroutines have been joined.
	Injections int64

	// count is where experiment counts accumulate: the root injector's
	// own Injections field, shared by every clone derived from it.
	count *int64

	// counters aggregates the campaign-wide evaluation statistics
	// (masked skips, full evaluations, SDC early exits, arena bytes),
	// shared by every clone derived from the same root and updated
	// atomically — like count, but for the EvalStats breakdown.
	counters *evalCounters

	// latency, when non-nil, receives the wall time of every evaluated
	// experiment (masked skips are counted, not timed — they cost
	// nanoseconds and would both distort the histogram and double their
	// own cost). Shared with clones like counters; install it via
	// SetLatencyHistogram before the campaign starts.
	latency *evalstats.Histogram

	// scratch is this injector's reusable node-output slice for the hot
	// path; per-instance (not shared with clones) like Net's arena.
	scratch []*tensor.Tensor

	// batch is the opt-in evaluation batch size (SetBatchSize); 0 and 1
	// both mean the default unbatched path. The three fields below are
	// the lazily built batched golden state: the evaluation images
	// stacked into NCHW chunks, one batched golden activation cache per
	// chunk (both immutable once built, shared with clones taken after
	// the build), and the per-instance batched cache view (never
	// shared, like scratch).
	batch        int
	batchInputs  []*tensor.Tensor
	batchCaches  [][]*tensor.Tensor
	batchScratch []*tensor.Tensor
	// arenaSeen is how much of Net's arena growth this injector has
	// already published to counters.ArenaBytes (owner-only state).
	arenaSeen int64
}

// evalCounters is the shared, atomically-updated backing store for
// core.EvalStats. One instance is shared by a root injector and all its
// clones so a parallel campaign aggregates into a single tally.
type evalCounters struct {
	skipped    int64
	evaluated  int64
	earlyExits int64
	arenaBytes int64
}

// New builds an injector over the network and evaluation set, computing
// golden predictions and per-image activation caches. It panics on an
// empty dataset.
func New(net *nn.Network, ds *dataset.Dataset) *Injector {
	if ds.Len() == 0 {
		panic("inject: empty evaluation set")
	}
	inj := &Injector{
		Net:    net,
		layers: net.WeightLayers(),
	}
	inj.count = &inj.Injections
	inj.counters = &evalCounters{}
	for l := range inj.layers {
		inj.nodes = append(inj.nodes, net.WeightNodeIndex(l))
	}
	inj.space = faultmodel.NewStuckAt(net.LayerParamCounts(), fp.Bits32)

	correct := 0
	for _, s := range ds.Samples {
		cache := net.Exec(s.Image)
		pred := cache[len(cache)-1].ArgMax()
		inj.images = append(inj.images, s.Image)
		inj.labels = append(inj.labels, s.Label)
		inj.golden = append(inj.golden, pred)
		inj.caches = append(inj.caches, cache)
		if pred == s.Label {
			correct++
		}
	}
	inj.acc = float64(correct) / float64(ds.Len())
	return inj
}

// Space returns the permanent stuck-at fault universe of the network.
func (inj *Injector) Space() faultmodel.Space { return inj.space }

// GoldenAccuracy returns the fault-free top-1 accuracy on the
// evaluation set.
func (inj *Injector) GoldenAccuracy() float64 { return inj.acc }

// GoldenPredictions returns the fault-free top-1 predictions.
func (inj *Injector) GoldenPredictions() []int {
	out := make([]int, len(inj.golden))
	copy(out, inj.golden)
	return out
}

// NumImages returns the evaluation-set size.
func (inj *Injector) NumImages() int { return len(inj.images) }

// Clone returns an injector that shares this one's immutable golden
// state (evaluation images, labels, golden predictions, per-image
// activation caches, fault space) but owns an independent deep copy of
// the network's injectable weights, so the clone's IsCritical may run
// concurrently with the original's and with other clones'. Experiment
// counts from every clone aggregate atomically into the root injector's
// Injections field. Cloning copies only the weight tensors (~1 MiB for
// ResNet-20); the golden activation caches — the expensive part of New —
// are reused.
func (inj *Injector) Clone() *Injector {
	// Field-wise copy rather than `*inj`: the Injections field is
	// atomically incremented by running clones, and a whole-struct copy
	// would read it non-atomically (a data race when cloning while
	// sibling clones evaluate).
	c := &Injector{
		Net:       inj.Net.Clone(),
		Criterion: inj.Criterion,
		Threshold: inj.Threshold,
		images:    inj.images,
		labels:    inj.labels,
		golden:    inj.golden,
		caches:    inj.caches,
		space:     inj.space,
		nodes:     inj.nodes,
		acc:       inj.acc,
		count:     inj.count,
		counters:  inj.stats(),
		latency:   inj.latency,

		// Batched golden state is immutable once built: clones share
		// it like the unbatched caches, and each clone lazily builds
		// its own private batchScratch.
		batch:       inj.batch,
		batchInputs: inj.batchInputs,
		batchCaches: inj.batchCaches,
	}
	if c.count == nil { // zero-value parent never initialised its counter
		c.count = &inj.Injections
	}
	c.layers = c.Net.WeightLayers()
	return c
}

// CloneForWorker implements core.WorkerCloner, letting core.RunParallel
// give each evaluation worker its own isolated injector.
func (inj *Injector) CloneForWorker() core.Evaluator { return inj.Clone() }

// countInjection bumps the campaign-wide experiment counter. The root
// injector counts into its own Injections field; clones count into
// their root's.
func (inj *Injector) countInjection() {
	if inj.count == nil { // zero-value Injector, serial use only
		inj.count = &inj.Injections
	}
	atomic.AddInt64(inj.count, 1)
}

// stats returns the shared counter block, lazily initialising it for
// zero-value injectors (serial use only, like countInjection).
func (inj *Injector) stats() *evalCounters {
	if inj.counters == nil {
		inj.counters = &evalCounters{}
	}
	return inj.counters
}

// SetLatencyHistogram implements evalstats.LatencySampler: every
// subsequently evaluated experiment records its wall time into h
// (masked skips are not timed). Call it before the campaign starts and
// before cloning — clones inherit the pointer held at clone time, and
// the hot path reads it without synchronization. A nil h disables
// timing (the default; the disabled path never touches the clock).
func (inj *Injector) SetLatencyHistogram(h *evalstats.Histogram) { inj.latency = h }

// EvalStats implements core.StatsReporter: a snapshot of how this
// injector (and every clone sharing its root) has spent experiments.
// Mid-campaign reads are approximate (counters advance concurrently);
// reads after the campaign's goroutines are joined are exact.
func (inj *Injector) EvalStats() core.EvalStats {
	c := inj.stats()
	return core.EvalStats{
		Skipped:    atomic.LoadInt64(&c.skipped),
		Evaluated:  atomic.LoadInt64(&c.evaluated),
		EarlyExits: atomic.LoadInt64(&c.earlyExits),
		ArenaBytes: atomic.LoadInt64(&c.arenaBytes),
	}
}

// publishArenaGrowth adds any new growth of this injector's private
// arena to the shared ArenaBytes tally. Only the delta is published, so
// the aggregate across clones is the sum of every worker's retained
// scratch space.
func (inj *Injector) publishArenaGrowth(c *evalCounters) {
	if b := inj.Net.ScratchArena().Bytes(); b != inj.arenaSeen {
		atomic.AddInt64(&c.arenaBytes, b-inj.arenaSeen)
		inj.arenaSeen = b
	}
}

// scratchBuf returns this injector's reusable node-output slice.
func (inj *Injector) scratchBuf() []*tensor.Tensor {
	if len(inj.scratch) != len(inj.Net.Nodes) {
		inj.scratch = make([]*tensor.Tensor, len(inj.Net.Nodes))
	}
	return inj.scratch
}

// checkFault panics if the fault's location or model is invalid.
func (inj *Injector) checkFault(f faultmodel.Fault) {
	if f.Layer < 0 || f.Layer >= len(inj.layers) {
		panic(fmt.Sprintf("inject: layer %d out of range", f.Layer))
	}
	if f.Param < 0 || f.Param >= inj.layers[f.Layer].NumWeights() {
		panic(fmt.Sprintf("inject: param %d out of range for layer %d", f.Param, f.Layer))
	}
	if f.Bit < 0 || f.Bit >= fp.Bits32 {
		panic(fmt.Sprintf("inject: bit %d out of range", f.Bit))
	}
	switch f.Model {
	case faultmodel.StuckAt0, faultmodel.StuckAt1, faultmodel.BitFlip:
	default:
		panic(fmt.Sprintf("inject: unsupported fault model %v", f.Model))
	}
}

// faultValue returns the corrupted weight value f produces from old.
func faultValue(old float32, f faultmodel.Fault) float32 {
	switch f.Model {
	case faultmodel.StuckAt0:
		return fp.ClearBit32(old, f.Bit)
	case faultmodel.StuckAt1:
		return fp.SetBit32(old, f.Bit)
	default: // BitFlip; checkFault rejected everything else
		return fp.FlipBit32(old, f.Bit)
	}
}

// Masked reports whether f is masked by construction: a stuck-at fault
// whose target bit already holds the stuck value. Applying such a fault
// leaves the weight bit-identical, so the "faulty" network IS the golden
// network and the verdict is Non-critical under every criterion — no
// inference needed, and the short-circuit is exact, not approximate.
// For any weight, bit i is either 0 or 1, masking exactly one of the two
// stuck-at variants, so about half of the stuck-at universe is masked.
// BitFlip always changes the stored bit and is never masked. The
// predicate is pure bit arithmetic (fp.Bit32), so denormal, NaN and Inf
// weights are classified exactly. Like Apply, it panics on an invalid
// fault.
func (inj *Injector) Masked(f faultmodel.Fault) bool {
	inj.checkFault(f)
	switch f.Model {
	case faultmodel.StuckAt0:
		return !fp.Bit32(inj.layers[f.Layer].WeightData()[f.Param], f.Bit)
	case faultmodel.StuckAt1:
		return fp.Bit32(inj.layers[f.Layer].WeightData()[f.Param], f.Bit)
	default:
		return false
	}
}

// Apply injects the fault into the network weights and returns a restore
// function that must be called to undo it. Any of the three fault models
// is accepted (campaigns sample from the stuck-at universe, but the
// multi-fault extension also applies transient flips to weights). It
// panics on an invalid fault location.
//
// The returned closure escapes to the heap; IsCritical/MismatchCount
// inline the same mutate-and-restore sequence instead to stay
// allocation-free.
func (inj *Injector) Apply(f faultmodel.Fault) (restore func()) {
	inj.checkFault(f)
	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	w[f.Param] = faultValue(old, f)
	return func() { w[f.Param] = old }
}

// IsCritical runs one complete fault-injection experiment: classify the
// fault as Non-critical outright if it is masked (no inference), else
// apply it, re-evaluate the suffix of the network on every image (with
// early exit under SDC), classify, restore.
//
// The evaluation loop is allocation-free in steady state: node outputs
// come from the network's scratch arena (ExecFromScratch) and the
// per-experiment cache view is a reused per-injector slice.
//
// When a batch size has been configured (SetBatchSize), the experiment
// runs on the batched twin instead — same verdicts, same EvalStats,
// fewer suffix passes (one per image chunk).
func (inj *Injector) IsCritical(f faultmodel.Fault) bool {
	if inj.batched() {
		return inj.isCriticalBatched(f)
	}
	inj.countInjection()
	c := inj.stats()
	if inj.Masked(f) {
		atomic.AddInt64(&c.skipped, 1)
		return false
	}
	atomic.AddInt64(&c.evaluated, 1)
	var start time.Time
	if inj.latency != nil {
		start = time.Now()
	}

	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	w[f.Param] = faultValue(old, f)
	defer func() {
		w[f.Param] = old
		inj.publishArenaGrowth(c)
		if inj.latency != nil {
			inj.latency.Observe(time.Since(start))
		}
	}()

	from := inj.nodes[f.Layer]
	scratch := inj.scratchBuf()

	mismatches := 0
	correct := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFromScratch(img, scratch, from)
		pred := predictChecked(out)
		if pred != inj.golden[i] {
			mismatches++
			if inj.Criterion == SDC {
				if i < len(inj.images)-1 {
					atomic.AddInt64(&c.earlyExits, 1)
				}
				return true
			}
		}
		if pred == inj.labels[i] {
			correct++
		}
	}

	switch inj.Criterion {
	case SDC:
		return mismatches > 0
	case AccuracyDrop:
		return float64(correct)/float64(len(inj.images)) < inj.acc
	case MismatchRate:
		return float64(mismatches)/float64(len(inj.images)) > inj.Threshold
	default:
		panic(fmt.Sprintf("inject: unsupported criterion %v", inj.Criterion))
	}
}

// MismatchCount applies the fault and returns how many evaluation images
// change their top-1 prediction (no early exit). Useful for analyses
// beyond the binary Critical/Non-critical classification. Masked faults
// short-circuit to 0, and the evaluation loop shares IsCritical's
// allocation-free arena path.
func (inj *Injector) MismatchCount(f faultmodel.Fault) int {
	if inj.batched() {
		return inj.mismatchCountBatched(f)
	}
	inj.countInjection()
	c := inj.stats()
	if inj.Masked(f) {
		atomic.AddInt64(&c.skipped, 1)
		return 0
	}
	atomic.AddInt64(&c.evaluated, 1)
	var start time.Time
	if inj.latency != nil {
		start = time.Now()
	}

	w := inj.layers[f.Layer].WeightData()
	old := w[f.Param]
	w[f.Param] = faultValue(old, f)
	defer func() {
		w[f.Param] = old
		inj.publishArenaGrowth(c)
		if inj.latency != nil {
			inj.latency.Observe(time.Since(start))
		}
	}()

	from := inj.nodes[f.Layer]
	scratch := inj.scratchBuf()
	mismatches := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFromScratch(img, scratch, from)
		if predictChecked(out) != inj.golden[i] {
			mismatches++
		}
	}
	return mismatches
}

// predictChecked returns the top-1 index, mapping any output containing
// NaN to -1 (which never equals a golden prediction, so numerical
// corruption always counts as a mismatch).
func predictChecked(out *tensor.Tensor) int {
	for _, v := range out.Data {
		if v != v {
			return -1
		}
	}
	return out.ArgMax()
}

// Injector implements both halves of the evaluator stats seam.
var (
	_ core.StatsReporter       = (*Injector)(nil)
	_ evalstats.LatencySampler = (*Injector)(nil)
)
