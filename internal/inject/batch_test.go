package inject

import (
	"math/rand"
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/models"
)

// This file extends the differential harness to the batched evaluation
// path: SetBatchSize must change wall time only, never a verdict, a
// mismatch count, or an EvalStats counter.

// TestDifferentialBatched pits the batched IsCritical against the
// pre-optimization reference evaluator: ≥5000 seeded random faults per
// criterion on the inference substrate, with a batch size (4 over a
// 6-image set) that exercises both a full chunk and a remainder chunk.
// It simultaneously runs an unbatched twin over the same fault stream
// and requires the Skipped/Evaluated/EarlyExits counters to match
// exactly — the SDC early-exit accounting must be image-accurate, not
// chunk-accurate.
func TestDifferentialBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness runs thousands of inference experiments")
	}
	const faultsPerCriterion = 5000

	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 6, Seed: 1, Size: 16})

	for _, crit := range []Criterion{SDC, AccuracyDrop, MismatchRate} {
		crit := crit
		t.Run(crit.String(), func(t *testing.T) {
			batched := New(net.Clone(), ds)
			batched.Criterion = crit
			batched.Threshold = 0.25
			batched.SetBatchSize(4)

			plain := New(net.Clone(), ds)
			plain.Criterion = crit
			plain.Threshold = 0.25

			r := rand.New(rand.NewSource(42 + int64(crit)))
			for i := 0; i < faultsPerCriterion; i++ {
				f := randomFault(r, batched.Space())
				want := referenceIsCritical(plain, f)
				if got := plain.IsCritical(f); got != want {
					t.Fatalf("fault #%d %v: unbatched = %v, reference = %v", i, f, got, want)
				}
				if got := batched.IsCritical(f); got != want {
					t.Fatalf("fault #%d %v: batched = %v, reference = %v", i, f, got, want)
				}
			}

			b, p := batched.EvalStats(), plain.EvalStats()
			if b.Skipped != p.Skipped || b.Evaluated != p.Evaluated || b.EarlyExits != p.EarlyExits {
				t.Errorf("EvalStats diverge: batched {skipped %d, evaluated %d, earlyExits %d}, unbatched {%d, %d, %d}",
					b.Skipped, b.Evaluated, b.EarlyExits, p.Skipped, p.Evaluated, p.EarlyExits)
			}
			if b.Evaluated == 0 || (crit == SDC && b.EarlyExits == 0) {
				t.Errorf("harness did not exercise the batched loop: %+v", b)
			}
		})
	}
}

// TestDifferentialBatchedMismatchCount does the same for MismatchCount
// with a batch size that leaves a single-image remainder chunk.
func TestDifferentialBatchedMismatchCount(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness runs thousands of inference experiments")
	}
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	inj := New(net, ds)
	inj.SetBatchSize(3) // chunks of 3 and 1

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		f := randomFault(r, inj.Space())
		want := referenceMismatchCount(inj, f)
		if got := inj.MismatchCount(f); got != want {
			t.Fatalf("fault #%d %v: batched MismatchCount = %d, reference = %d", i, f, got, want)
		}
	}
}

// TestBatchedCloneSharesGoldenState checks that a clone taken after the
// batched state is built inherits the batch size, shares the immutable
// chunks and caches, owns its own scratch, and returns the same
// verdicts as its root.
func TestBatchedCloneSharesGoldenState(t *testing.T) {
	inj := newTestInjector(t)
	inj.SetBatchSize(4)
	r := rand.New(rand.NewSource(21))
	f0 := randomFault(r, inj.Space())
	inj.IsCritical(f0) // force the lazy build

	c := inj.Clone()
	if c.BatchSize() != 4 {
		t.Fatalf("clone batch size = %d, want 4", c.BatchSize())
	}
	if len(c.batchInputs) == 0 || &c.batchInputs[0] != &inj.batchInputs[0] {
		t.Fatal("clone does not share the built batch inputs")
	}
	if len(c.batchScratch) != 0 {
		t.Fatal("clone inherited the root's batchScratch; it must be per-instance")
	}
	for i := 0; i < 200; i++ {
		f := randomFault(r, inj.Space())
		if got, want := c.IsCritical(f), inj.IsCritical(f); got != want {
			t.Fatalf("fault #%d %v: clone = %v, root = %v", i, f, got, want)
		}
	}
}

// TestSetBatchSizeInvalidates checks that resizing discards the built
// state (it is rebuilt at the new chunking) and that size 0/1 restores
// the unbatched path — with verdicts unchanged throughout.
func TestSetBatchSizeInvalidates(t *testing.T) {
	inj := newTestInjector(t)
	r := rand.New(rand.NewSource(33))
	faults := make([]faultmodel.Fault, 50)
	want := make([]bool, len(faults))
	for i := range faults {
		faults[i] = randomFault(r, inj.Space())
		want[i] = inj.IsCritical(faults[i])
	}
	for _, size := range []int{4, 3, 8, 1, 5, 0} {
		inj.SetBatchSize(size)
		if size > 1 && inj.batchInputs != nil {
			t.Fatalf("size %d: stale batch state survived the resize", size)
		}
		for i, f := range faults {
			if got := inj.IsCritical(f); got != want[i] {
				t.Fatalf("size %d fault #%d %v: verdict %v, want %v", size, i, f, got, want[i])
			}
		}
	}
}

// unmaskedStuckAt returns a layer-0 stuck-at fault guaranteed not to be
// masked (it targets whichever stuck value bit 0 does not already hold).
func unmaskedStuckAt(inj *Injector) faultmodel.Fault {
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1}
	if fp.Bit32(inj.layers[0].WeightData()[0], 0) {
		f.Model = faultmodel.StuckAt0
	}
	return f
}

// TestBatchedSteadyStateAllocFree pins the batched hot path at zero
// heap allocations once the batch state and arena are warm — with the
// latency histogram disabled and enabled (telemetry off / on).
func TestBatchedSteadyStateAllocFree(t *testing.T) {
	for _, telemetry := range []bool{false, true} {
		name := "telemetry-off"
		if telemetry {
			name = "telemetry-on"
		}
		t.Run(name, func(t *testing.T) {
			inj := newTestInjector(t)
			inj.SetBatchSize(4)
			if telemetry {
				var h evalstats.Histogram
				inj.SetLatencyHistogram(&h)
			}
			f := unmaskedStuckAt(inj)
			inj.IsCritical(f) // build batch state, warm the arena
			if allocs := testing.AllocsPerRun(20, func() { inj.IsCritical(f) }); allocs != 0 {
				t.Fatalf("warm batched IsCritical allocates %.1f times per run, want 0", allocs)
			}
			masked := f
			masked.Model = faultmodel.StuckAt0
			if masked.Model == f.Model {
				masked.Model = faultmodel.StuckAt1
			}
			if allocs := testing.AllocsPerRun(20, func() { inj.IsCritical(masked) }); allocs != 0 {
				t.Fatalf("masked short-circuit allocates %.1f times per run on the batched path, want 0", allocs)
			}
		})
	}
}
