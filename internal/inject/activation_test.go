package inject

import (
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/models"
)

func newActInjector(t *testing.T) *ActivationInjector {
	t.Helper()
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	return NewActivation(net, ds)
}

func TestActivationSpaceShape(t *testing.T) {
	inj := newActInjector(t)
	space := inj.Space()
	if space.NumLayers() != 4 {
		t.Fatalf("layers = %d", space.NumLayers())
	}
	// conv0 output on 16×16 input: 4×16×16 = 1024 elements × 4 images.
	if got := inj.LayerElems(0); got != 1024 {
		t.Errorf("layer 0 elems = %d, want 1024", got)
	}
	if got := space.LayerTotal(0); got != 1024*4*32 {
		t.Errorf("layer 0 population = %d, want %d", got, 1024*4*32)
	}
	// fc output: 10 elements.
	if got := inj.LayerElems(3); got != 10 {
		t.Errorf("fc elems = %d, want 10", got)
	}
}

func TestActivationDecode(t *testing.T) {
	inj := newActInjector(t)
	f := faultmodel.Fault{Layer: 0, Param: 1024*2 + 7, Bit: 3, Model: faultmodel.BitFlip}
	elem, image := inj.Decode(f)
	if elem != 7 || image != 2 {
		t.Errorf("decode = (%d, %d), want (7, 2)", elem, image)
	}
}

func TestActivationHighBitFlipIsCritical(t *testing.T) {
	inj := newActInjector(t)
	space := inj.Space()
	// Bit-30 flips explode the datapath, but roughly half the corrupted
	// values go hugely *negative* and are masked by the following ReLU —
	// so expect a substantial but not overwhelming critical rate. Probe
	// positions spread across the whole layer to avoid spatial bias.
	critical := 0
	const probes = 200
	n := space.BitLayerTotal(0)
	for k := 0; k < probes; k++ {
		j := int64(k) * (n - 1) / (probes - 1)
		if inj.IsCritical(space.BitLayerFault(0, 30, j)) {
			critical++
		}
	}
	if critical < probes/10 {
		t.Errorf("only %d/%d exponent-MSB activation flips critical", critical, probes)
	}
	// Final-layer (fc score) corruption is far harder to mask.
	fcCritical := 0
	nFC := space.BitLayerTotal(3)
	for j := int64(0); j < nFC; j++ {
		if inj.IsCritical(space.BitLayerFault(3, 30, j)) {
			fcCritical++
		}
	}
	if float64(fcCritical)/float64(nFC) < 0.4 {
		t.Errorf("fc-score bit-30 critical rate %d/%d, want large", fcCritical, nFC)
	}
}

func TestActivationLowBitFlipIsBenign(t *testing.T) {
	inj := newActInjector(t)
	for e := 0; e < 30; e++ {
		f := faultmodel.Fault{Layer: 0, Param: e, Bit: 0, Model: faultmodel.BitFlip}
		if inj.IsCritical(f) {
			t.Fatalf("mantissa-LSB activation flip %d critical", e)
		}
	}
}

// TestActivationFaultIsTransient: the golden cache must be untouched, so
// repeating the same experiment gives the same answer and a following
// golden-equivalent check still passes.
func TestActivationFaultIsTransient(t *testing.T) {
	inj := newActInjector(t)
	f := faultmodel.Fault{Layer: 1, Param: 5, Bit: 30, Model: faultmodel.BitFlip}
	first := inj.IsCritical(f)
	for k := 0; k < 3; k++ {
		if inj.IsCritical(f) != first {
			t.Fatal("verdict changed across repetitions (cache corrupted?)")
		}
	}
	// A no-op-free check: golden predictions unchanged.
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	for i, s := range ds.Samples {
		if got := inj.Net.Predict(s.Image); got != inj.golden[i] {
			t.Fatalf("golden prediction %d drifted", i)
		}
	}
}

func TestActivationRejectsNonFlipModels(t *testing.T) {
	inj := newActInjector(t)
	defer func() {
		if recover() == nil {
			t.Error("stuck-at on activations did not panic")
		}
	}()
	inj.IsCritical(faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1})
}

func TestActivationLastLayerFaultFlipsOnlyThatImage(t *testing.T) {
	inj := newActInjector(t)
	// A bit-30 flip on an fc output score is confined to one image; the
	// experiment must still classify deterministically.
	f := faultmodel.Fault{Layer: 3, Param: 0, Bit: 30, Model: faultmodel.BitFlip}
	_ = inj.IsCritical(f)
	if inj.Injections != 1 {
		t.Errorf("injections = %d", inj.Injections)
	}
}

func TestActivationWorksWithCorePlanner(t *testing.T) {
	// The activation universe must be consumable by the same statistical
	// machinery (interface-level integration).
	inj := newActInjector(t)
	space := inj.Space()
	if space.Total() <= 0 {
		t.Fatal("empty activation universe")
	}
	f := space.GlobalFault(space.Total() - 1)
	if err := space.Validate(f); err != nil {
		t.Fatal(err)
	}
	_ = inj.IsCritical(f)
}

func BenchmarkActivationIsCritical(b *testing.B) {
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 4, Seed: 1, Size: 16})
	inj := NewActivation(net, ds)
	space := inj.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.IsCritical(space.GlobalFault(int64(i*257) % space.Total()))
	}
}
