package inject

import (
	"testing"

	"cnnsfi/internal/evalstats"
	"cnnsfi/internal/faultmodel"
)

// unmaskedFault returns a fault newTestInjector's network evaluates in
// full (never masked), so alloc and latency tests exercise the
// inference path.
func unmaskedFault(t *testing.T, inj *Injector) faultmodel.Fault {
	t.Helper()
	space := inj.Space()
	for j := int64(0); j < space.Total(); j++ {
		f := space.GlobalFault(j)
		if !inj.Masked(f) {
			return f
		}
	}
	t.Fatal("no unmasked fault in space")
	return faultmodel.Fault{}
}

// TestLatencyHistogramObserves checks the LatencySampler seam: with a
// histogram installed, each fully evaluated experiment records one
// observation, masked skips record none, and clones feed the shared
// histogram.
func TestLatencyHistogramObserves(t *testing.T) {
	inj := newTestInjector(t)
	var h evalstats.Histogram
	inj.SetLatencyHistogram(&h)

	f := unmaskedFault(t, inj)
	inj.IsCritical(f)
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("after 1 evaluated experiment: histogram count = %d, want 1", got)
	}

	// A masked stuck-at is classified without inference and must not be
	// timed.
	masked := f
	for j := int64(0); j < inj.Space().Total(); j++ {
		if c := inj.Space().GlobalFault(j); inj.Masked(c) {
			masked = c
			break
		}
	}
	inj.IsCritical(masked)
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("masked skip was timed: histogram count = %d, want 1", got)
	}

	// Clones inherit the histogram pointer and observe into the shared
	// instance.
	clone := inj.Clone()
	clone.IsCritical(f)
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("after clone experiment: histogram count = %d, want 2", got)
	}

	if s := h.Snapshot(); s.Sum <= 0 {
		t.Errorf("Sum = %v, want > 0", s.Sum)
	}
	if inj.MismatchCount(f); h.Snapshot().Count != 3 {
		t.Errorf("MismatchCount not timed: count = %d, want 3", h.Snapshot().Count)
	}
}

// TestIsCriticalAllocs pins the telemetry invariant on the experiment
// hot path: zero steady-state allocations per experiment, both with the
// latency histogram disabled (the telemetry-off guarantee) and enabled
// (Observe is allocation-free and the timing code adds no escaping
// closures).
func TestIsCriticalAllocs(t *testing.T) {
	inj := newTestInjector(t)
	f := unmaskedFault(t, inj)

	// Warm up: grows the arena and the scratch slice to steady state.
	inj.IsCritical(f)

	if n := testing.AllocsPerRun(50, func() { inj.IsCritical(f) }); n != 0 {
		t.Errorf("telemetry off: %.1f allocs per experiment, want 0", n)
	}

	var h evalstats.Histogram
	inj.SetLatencyHistogram(&h)
	if n := testing.AllocsPerRun(50, func() { inj.IsCritical(f) }); n != 0 {
		t.Errorf("telemetry on: %.1f allocs per experiment, want 0", n)
	}
	if h.Snapshot().Count == 0 {
		t.Error("histogram saw no observations during the alloc runs")
	}
}
