package inject

import (
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/models"
)

func newTestInjector(t *testing.T) *Injector {
	t.Helper()
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 8, Seed: 1, Size: 16})
	return New(net, ds)
}

func TestGoldenStateIsConsistent(t *testing.T) {
	inj := newTestInjector(t)
	if inj.NumImages() != 8 {
		t.Fatalf("images = %d", inj.NumImages())
	}
	preds := inj.GoldenPredictions()
	if len(preds) != 8 {
		t.Fatalf("golden preds = %d", len(preds))
	}
	// Golden predictions must be reproducible by plain Forward.
	ds := dataset.Synthetic(dataset.Config{N: 8, Seed: 1, Size: 16})
	for i, s := range ds.Samples {
		if got := inj.Net.Predict(s.Image); got != preds[i] {
			t.Errorf("image %d: Predict = %d, golden = %d", i, got, preds[i])
		}
	}
	if acc := inj.GoldenAccuracy(); acc < 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestApplyAndRestore(t *testing.T) {
	inj := newTestInjector(t)
	w := inj.Net.WeightLayers()[0].WeightData()
	before := w[3]

	f := faultmodel.Fault{Layer: 0, Param: 3, Bit: 30, Model: faultmodel.StuckAt1}
	restore := inj.Apply(f)
	if w[3] != fp.SetBit32(before, 30) {
		t.Errorf("fault not applied: %v", w[3])
	}
	restore()
	if w[3] != before {
		t.Error("restore failed")
	}
}

func TestApplyAllModels(t *testing.T) {
	inj := newTestInjector(t)
	w := inj.Net.WeightLayers()[1].WeightData()
	before := w[0]

	sa0 := faultmodel.Fault{Layer: 1, Param: 0, Bit: 5, Model: faultmodel.StuckAt0}
	r := inj.Apply(sa0)
	if fp.Bit32(w[0], 5) {
		t.Error("sa0 did not clear bit")
	}
	r()

	sa1 := faultmodel.Fault{Layer: 1, Param: 0, Bit: 5, Model: faultmodel.StuckAt1}
	r = inj.Apply(sa1)
	if !fp.Bit32(w[0], 5) {
		t.Error("sa1 did not set bit")
	}
	r()
	if w[0] != before {
		t.Error("weight not restored")
	}
}

func TestApplyPanicsOnInvalidFault(t *testing.T) {
	inj := newTestInjector(t)
	defer func() {
		if recover() == nil {
			t.Error("invalid fault did not panic")
		}
	}()
	inj.Apply(faultmodel.Fault{Layer: 99})
}

// TestExponentMSBFaultIsCritical: forcing bit 30 of a weight to 1 blows
// the weight up to ~2^127; on a trained-scale network the prediction
// must change for at least one image.
func TestExponentMSBFaultIsCritical(t *testing.T) {
	inj := newTestInjector(t)
	critical := 0
	for p := 0; p < 20; p++ {
		f := faultmodel.Fault{Layer: 0, Param: p, Bit: 30, Model: faultmodel.StuckAt1}
		if inj.IsCritical(f) {
			critical++
		}
	}
	if critical < 15 {
		t.Errorf("only %d/20 exponent-MSB sa1 faults critical, want nearly all", critical)
	}
}

// TestMantissaLSBFaultIsBenign: the least significant mantissa bit
// perturbs a weight by ~1e-8 of its value, which cannot change a top-1
// outcome on a non-degenerate network.
func TestMantissaLSBFaultIsBenign(t *testing.T) {
	inj := newTestInjector(t)
	critical := 0
	for p := 0; p < 20; p++ {
		for _, m := range []faultmodel.Model{faultmodel.StuckAt0, faultmodel.StuckAt1} {
			f := faultmodel.Fault{Layer: 1, Param: p, Bit: 0, Model: m}
			if inj.IsCritical(f) {
				critical++
			}
		}
	}
	if critical != 0 {
		t.Errorf("%d mantissa-LSB faults critical, want 0", critical)
	}
}

// TestStuckAtMatchingBitIsNeutral: a stuck-at equal to the current bit
// value changes nothing, so it must never be critical.
func TestStuckAtMatchingBitIsNeutral(t *testing.T) {
	inj := newTestInjector(t)
	w := inj.Net.WeightLayers()[0].WeightData()
	for p := 0; p < 10; p++ {
		for bit := 0; bit < 32; bit++ {
			m := faultmodel.StuckAt0
			if fp.Bit32(w[p], bit) {
				m = faultmodel.StuckAt1
			}
			f := faultmodel.Fault{Layer: 0, Param: p, Bit: bit, Model: m}
			if inj.IsCritical(f) {
				t.Fatalf("no-op fault %v classified critical", f)
			}
		}
	}
}

// TestWeightsUnchangedAfterCampaign: the golden state must survive any
// sequence of experiments bit-exactly.
func TestWeightsUnchangedAfterCampaign(t *testing.T) {
	inj := newTestInjector(t)
	before := inj.Net.AllWeights()
	space := inj.Space()
	for g := int64(0); g < 200; g++ {
		inj.IsCritical(space.GlobalFault(g * 97 % space.Total()))
	}
	after := inj.Net.AllWeights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weight %d changed after campaign", i)
		}
	}
}

// TestPrefixCacheMatchesFullForward: classification via the cached
// suffix execution must agree with a from-scratch forward pass.
func TestPrefixCacheMatchesFullForward(t *testing.T) {
	inj := newTestInjector(t)
	ds := dataset.Synthetic(dataset.Config{N: 8, Seed: 1, Size: 16})
	space := inj.Space()
	for g := int64(0); g < 100; g++ {
		f := space.GlobalFault(g * 1093 % space.Total())

		// Reference: apply fault, full forward on every image.
		restore := inj.Apply(f)
		refCritical := false
		for i, s := range ds.Samples {
			if inj.Net.Predict(s.Image) != inj.golden[i] {
				refCritical = true
				break
			}
		}
		restore()

		if got := inj.IsCritical(f); got != refCritical {
			t.Fatalf("fault %v: cached classification %v, reference %v", f, got, refCritical)
		}
	}
}

func TestCriteria(t *testing.T) {
	inj := newTestInjector(t)
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 30, Model: faultmodel.StuckAt1}

	inj.Criterion = SDC
	sdc := inj.IsCritical(f)

	inj.Criterion = MismatchRate
	inj.Threshold = 0 // any mismatch
	rate0 := inj.IsCritical(f)
	if sdc != rate0 {
		t.Errorf("SDC %v disagrees with MismatchRate(0) %v", sdc, rate0)
	}

	inj.Threshold = 1 // impossible: rate can never exceed 1
	if inj.IsCritical(f) {
		t.Error("threshold 1 should never classify critical")
	}

	inj.Criterion = AccuracyDrop
	_ = inj.IsCritical(f) // must not panic; direction depends on golden accuracy
}

func TestMismatchCount(t *testing.T) {
	inj := newTestInjector(t)
	big := faultmodel.Fault{Layer: 0, Param: 0, Bit: 30, Model: faultmodel.StuckAt1}
	tiny := faultmodel.Fault{Layer: 0, Param: 0, Bit: 0, Model: faultmodel.StuckAt1}
	if inj.MismatchCount(big) <= 0 {
		t.Error("exponent-MSB fault should flip at least one prediction")
	}
	if got := inj.MismatchCount(tiny); got != 0 {
		t.Errorf("mantissa-LSB fault flipped %d predictions", got)
	}
}

func TestInjectionCounter(t *testing.T) {
	inj := newTestInjector(t)
	f := faultmodel.Fault{Layer: 0, Param: 0, Bit: 10, Model: faultmodel.StuckAt1}
	inj.IsCritical(f)
	inj.IsCritical(f)
	inj.MismatchCount(f)
	if inj.Injections != 3 {
		t.Errorf("injection counter = %d, want 3", inj.Injections)
	}
}

func TestCriterionString(t *testing.T) {
	if SDC.String() != "sdc" || AccuracyDrop.String() != "accuracy-drop" ||
		MismatchRate.String() != "mismatch-rate" || Criterion(9).String() != "unknown" {
		t.Error("criterion names wrong")
	}
}

func TestNewPanicsOnEmptyDataset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty dataset did not panic")
		}
	}()
	New(models.SmallCNN(1), &dataset.Dataset{Classes: 10})
}

func BenchmarkIsCriticalPrefixCached(b *testing.B) {
	net := models.SmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 8, Seed: 1, Size: 16})
	inj := New(net, ds)
	space := inj.Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.IsCritical(space.GlobalFault(int64(i*313) % space.Total()))
	}
}
