package inject

import (
	"fmt"
	"sync/atomic"

	"cnnsfi/internal/faultmodel"
)

// IsCriticalMulti evaluates several simultaneous faults as one
// experiment — lifting the paper's single-fault assumption to model
// multi-bit upsets (MBUs: one particle strike corrupting physically
// adjacent cells) or accumulated permanent defects. All faults are
// applied together, the network suffix from the earliest affected layer
// is re-executed, the criterion is evaluated, and every fault is
// reverted. An empty fault list is never critical, and so is a list
// whose faults are all masked (each would leave its weight
// bit-identical, so together they reproduce the golden network).
func (inj *Injector) IsCriticalMulti(faults []faultmodel.Fault) bool {
	if len(faults) == 0 {
		return false
	}
	allMasked := true
	for _, f := range faults {
		if !inj.Masked(f) {
			allMasked = false
			break
		}
	}
	c := inj.stats()
	if allMasked {
		inj.countInjection()
		atomic.AddInt64(&c.skipped, 1)
		return false
	}
	restores := make([]func(), 0, len(faults))
	earliest := faults[0].Layer
	for _, f := range faults {
		restores = append(restores, inj.Apply(f))
		if f.Layer < earliest {
			earliest = f.Layer
		}
	}
	defer func() {
		for i := len(restores) - 1; i >= 0; i-- {
			restores[i]()
		}
		inj.publishArenaGrowth(c)
	}()
	inj.countInjection()
	atomic.AddInt64(&c.evaluated, 1)

	from := inj.nodes[earliest]
	scratch := inj.scratchBuf()

	mismatches := 0
	correct := 0
	for i, img := range inj.images {
		copy(scratch, inj.caches[i])
		out := inj.Net.ExecFromScratch(img, scratch, from)
		pred := predictChecked(out)
		if pred != inj.golden[i] {
			mismatches++
			if inj.Criterion == SDC {
				if i < len(inj.images)-1 {
					atomic.AddInt64(&c.earlyExits, 1)
				}
				return true
			}
		}
		if pred == inj.labels[i] {
			correct++
		}
	}
	switch inj.Criterion {
	case SDC:
		return mismatches > 0
	case AccuracyDrop:
		return float64(correct)/float64(len(inj.images)) < inj.acc
	case MismatchRate:
		return float64(mismatches)/float64(len(inj.images)) > inj.Threshold
	default:
		panic(fmt.Sprintf("inject: unsupported criterion %v", inj.Criterion))
	}
}

// AdjacentMBU expands a seed fault into a burst of width adjacent
// bit-flips within the same weight word — the classic multi-bit-upset
// pattern of high-density SRAM. Bits past the word's MSB are clipped, so
// the returned burst may be shorter than width. The seed's model is
// preserved for the first fault; the neighbours are transient flips.
func AdjacentMBU(seed faultmodel.Fault, width, bits int) []faultmodel.Fault {
	if width < 1 {
		panic("inject: MBU width must be ≥ 1")
	}
	out := make([]faultmodel.Fault, 0, width)
	out = append(out, seed)
	for k := 1; k < width; k++ {
		bit := seed.Bit + k
		if bit >= bits {
			break
		}
		out = append(out, faultmodel.Fault{
			Layer: seed.Layer, Param: seed.Param, Bit: bit,
			Model: faultmodel.BitFlip,
		})
	}
	return out
}
