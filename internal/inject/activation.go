package inject

import (
	"fmt"
	"sync/atomic"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

// ActivationInjector performs transient single-bit-flip injection on the
// *outputs* of the weight layers (PyTorchFI's "neuron" injection mode),
// the natural extension of the paper's weight fault model to datapath
// soft errors. A transient activation fault exists during exactly one
// inference, so the fault universe is
//
//	(layer, output element, evaluation image) × bit positions,
//
// and a fault is Critical when the top-1 prediction of *that image*
// changes relative to the golden run. The same Eq. 1 statistics apply:
// the universe is exposed as a faultmodel.Space whose per-layer
// "parameter" count is elements × images, so every planner in package
// core works on it unchanged.
//
// Unlike the weight Injector, IsCritical is safe for concurrent use:
// the network weights are never modified, each experiment corrupts a
// private copy of one cached activation tensor, and the experiment
// counter is updated atomically. core.RunParallel can therefore share
// one ActivationInjector across all workers without cloning.
type ActivationInjector struct {
	// Net is the network under test (its weights are never modified).
	Net *nn.Network

	images []*tensor.Tensor
	golden []int
	caches [][]*tensor.Tensor
	nodes  []int // graph node per weight layer
	elems  []int // output elements per weight layer
	space  faultmodel.Space

	// Injections counts the experiments run. It is updated atomically;
	// read it only after concurrent evaluation has been joined.
	Injections int64
}

// NewActivation builds the activation-fault injector, computing golden
// predictions and per-image activation caches. It panics on an empty
// dataset.
func NewActivation(net *nn.Network, ds *dataset.Dataset) *ActivationInjector {
	if ds.Len() == 0 {
		panic("inject: empty evaluation set")
	}
	inj := &ActivationInjector{Net: net}
	for l := 0; l < net.NumWeightLayers(); l++ {
		inj.nodes = append(inj.nodes, net.WeightNodeIndex(l))
	}
	for _, s := range ds.Samples {
		cache := net.Exec(s.Image)
		inj.images = append(inj.images, s.Image)
		inj.golden = append(inj.golden, cache[len(cache)-1].ArgMax())
		inj.caches = append(inj.caches, cache)
	}
	// Per-layer element counts come from the cached activations of the
	// first image (shapes are input-size dependent but identical across
	// the evaluation set).
	layerSizes := make([]int, len(inj.nodes))
	for l, node := range inj.nodes {
		inj.elems = append(inj.elems, inj.caches[0][node].Len())
		layerSizes[l] = inj.elems[l] * len(inj.images)
	}
	inj.space = faultmodel.NewBitFlip(layerSizes, fp.Bits32)
	return inj
}

// Space returns the transient activation-fault universe: one bit-flip
// fault per (layer output element, image, bit).
func (inj *ActivationInjector) Space() faultmodel.Space { return inj.space }

// Decode splits a fault's composite Param index into the output element
// and the evaluation image it addresses.
func (inj *ActivationInjector) Decode(f faultmodel.Fault) (elem, image int) {
	if err := inj.space.Validate(f); err != nil {
		panic(err)
	}
	return f.Param % inj.elems[f.Layer], f.Param / inj.elems[f.Layer]
}

// IsCritical runs one transient-fault experiment: corrupt one bit of one
// activation element during one image's inference and check whether its
// top-1 prediction changes. The golden prefix cache makes this a
// suffix-only re-execution. It is safe for concurrent use.
func (inj *ActivationInjector) IsCritical(f faultmodel.Fault) bool {
	if f.Model != faultmodel.BitFlip {
		panic(fmt.Sprintf("inject: activation faults are transient bit-flips, got %v", f.Model))
	}
	elem, image := inj.Decode(f)
	atomic.AddInt64(&inj.Injections, 1)

	node := inj.nodes[f.Layer]
	cache := inj.caches[image]

	// Corrupt a copy of the faulted node's golden output.
	corrupted := cache[node].Clone()
	corrupted.Data[elem] = fp.FlipBit32(corrupted.Data[elem], f.Bit)

	scratch := make([]*tensor.Tensor, len(inj.Net.Nodes))
	copy(scratch, cache)
	scratch[node] = corrupted
	out := inj.Net.ExecFrom(inj.images[image], scratch, node+1)
	return predictChecked(out) != inj.golden[image]
}

// NumImages returns the evaluation-set size.
func (inj *ActivationInjector) NumImages() int { return len(inj.images) }

// LayerElems returns the number of output elements of weight layer l.
func (inj *ActivationInjector) LayerElems(l int) int { return inj.elems[l] }
