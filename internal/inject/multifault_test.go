package inject

import (
	"testing"

	"cnnsfi/internal/faultmodel"
	"cnnsfi/internal/fp"
)

func TestIsCriticalMultiEmptyIsBenign(t *testing.T) {
	inj := newTestInjector(t)
	if inj.IsCriticalMulti(nil) {
		t.Error("empty fault list classified critical")
	}
}

func TestIsCriticalMultiMatchesSingleForOneFault(t *testing.T) {
	inj := newTestInjector(t)
	space := inj.Space()
	for g := int64(0); g < 100; g++ {
		f := space.GlobalFault(g * 733 % space.Total())
		single := inj.IsCritical(f)
		multi := inj.IsCriticalMulti([]faultmodel.Fault{f})
		if single != multi {
			t.Fatalf("fault %v: single %v, multi %v", f, single, multi)
		}
	}
}

func TestIsCriticalMultiRestoresAllWeights(t *testing.T) {
	inj := newTestInjector(t)
	before := inj.Net.AllWeights()
	burst := AdjacentMBU(faultmodel.Fault{
		Layer: 1, Param: 3, Bit: 27, Model: faultmodel.StuckAt1,
	}, 4, fp.Bits32)
	if len(burst) != 4 {
		t.Fatalf("burst = %v", burst)
	}
	inj.IsCriticalMulti(burst)
	after := inj.Net.AllWeights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weight %d not restored", i)
		}
	}
}

// TestMBUDominatesSingleFault: a burst that includes a high exponent bit
// is at least as critical as the seed alone (monotonicity in corruption
// is not a theorem — masking exists — but holds overwhelmingly; check in
// aggregate).
func TestMBUAggregateRates(t *testing.T) {
	inj := newTestInjector(t)
	singleCritical, burstCritical := 0, 0
	const probes = 60
	for k := 0; k < probes; k++ {
		seed := faultmodel.Fault{Layer: 0, Param: k % 108, Bit: 28, Model: faultmodel.BitFlip}
		if inj.IsCritical(seed) {
			singleCritical++
		}
		// A 3-bit burst spanning bits 28-30 reaches the exponent MSB.
		if inj.IsCriticalMulti(AdjacentMBU(seed, 3, fp.Bits32)) {
			burstCritical++
		}
	}
	if burstCritical < singleCritical {
		t.Errorf("3-bit MBU rate %d/%d below single-bit rate %d/%d",
			burstCritical, probes, singleCritical, probes)
	}
	if burstCritical == 0 {
		t.Error("bursts through bit 30 should produce criticals")
	}
}

func TestAdjacentMBUClipsAtWordEnd(t *testing.T) {
	seed := faultmodel.Fault{Layer: 0, Param: 0, Bit: 30, Model: faultmodel.BitFlip}
	burst := AdjacentMBU(seed, 4, fp.Bits32)
	if len(burst) != 2 { // bits 30 and 31 only
		t.Fatalf("burst = %v", burst)
	}
	if burst[1].Bit != 31 || burst[1].Model != faultmodel.BitFlip {
		t.Errorf("neighbour = %v", burst[1])
	}
}

func TestAdjacentMBUPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 0 did not panic")
		}
	}()
	AdjacentMBU(faultmodel.Fault{}, 0, 32)
}

func TestApplyAcceptsBitFlip(t *testing.T) {
	inj := newTestInjector(t)
	w := inj.Net.WeightLayers()[0].WeightData()
	before := w[0]
	restore := inj.Apply(faultmodel.Fault{Layer: 0, Param: 0, Bit: 5, Model: faultmodel.BitFlip})
	if w[0] != fp.FlipBit32(before, 5) {
		t.Error("flip not applied")
	}
	restore()
	if w[0] != before {
		t.Error("flip not restored")
	}
}
