// Package evalstats defines the evaluation-statistics surface shared by
// the campaign engine (internal/core) and every evaluator substrate
// (internal/inject, internal/oracle). It sits below all of them in the
// import graph so substrates can implement the Reporter interface
// without importing the engine; core re-exports the names, and most
// code should refer to core.EvalStats / core.StatsReporter.
package evalstats

// EvalStats summarizes how an evaluator spent its experiments. It is
// the observability half of the evaluation fast path: campaigns read it
// through core.Progress.Eval, tools through the sfi facade.
type EvalStats struct {
	// Skipped counts experiments classified without any inference — the
	// masked-fault short-circuit (a stuck-at fault whose target bit
	// already holds the stuck value, provably Non-critical).
	Skipped int64
	// Evaluated counts experiments that ran the evaluation loop.
	Evaluated int64
	// EarlyExits counts evaluated experiments that terminated before
	// scanning the whole evaluation set (the SDC first-mismatch exit).
	// Always ≤ Evaluated.
	EarlyExits int64
	// ArenaBytes is the scratch-arena storage retained across the
	// evaluator and all its worker clones, in bytes — the steady-state
	// memory cost of allocation-free evaluation (0 for evaluators
	// without arenas).
	ArenaBytes int64
}

// Experiments returns the total number of experiments the stats cover.
func (s EvalStats) Experiments() int64 { return s.Skipped + s.Evaluated }

// Sub returns the campaign-local view of s against a baseline snapshot
// taken when the campaign started: the monotone counters are
// differenced, while ArenaBytes — a level, not a flow — is carried
// as-is (arena storage persists across campaigns by design).
func (s EvalStats) Sub(base EvalStats) EvalStats {
	return EvalStats{
		Skipped:    s.Skipped - base.Skipped,
		Evaluated:  s.Evaluated - base.Evaluated,
		EarlyExits: s.EarlyExits - base.EarlyExits,
		ArenaBytes: s.ArenaBytes,
	}
}

// Reporter is an optional evaluator extension: evaluators that track
// EvalStats expose them here and the campaign engine surfaces them in
// progress events. Both the inference injector and the oracle implement
// it. EvalStats must be safe to call concurrently with evaluation
// (counter reads are atomic; mid-campaign snapshots may be slightly
// stale).
type Reporter interface {
	EvalStats() EvalStats
}
