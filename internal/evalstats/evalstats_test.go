package evalstats

import (
	"sync"
	"testing"
	"time"
)

// TestSubArenaBytesIsALevel pins the Sub contract: the monotone
// experiment counters are differenced against the baseline, but
// ArenaBytes is a level (current retained scratch storage) and must be
// carried through unchanged — NOT differenced, which would report
// nonsense like 0 or negative bytes for a campaign that reused an
// already-grown arena.
func TestSubArenaBytesIsALevel(t *testing.T) {
	base := EvalStats{Skipped: 100, Evaluated: 200, EarlyExits: 50, ArenaBytes: 1 << 20}
	now := EvalStats{Skipped: 130, Evaluated: 260, EarlyExits: 55, ArenaBytes: 1 << 20}

	got := now.Sub(base)
	want := EvalStats{Skipped: 30, Evaluated: 60, EarlyExits: 5, ArenaBytes: 1 << 20}
	if got != want {
		t.Errorf("Sub(base) = %+v, want %+v", got, want)
	}

	// An arena that grew mid-campaign reports its new level, not the
	// growth delta.
	now.ArenaBytes = 3 << 20
	if got := now.Sub(base); got.ArenaBytes != 3<<20 {
		t.Errorf("ArenaBytes after growth = %d, want the current level %d", got.ArenaBytes, 3<<20)
	}

	// Subtracting a snapshot from itself zeroes the counters but keeps
	// the level.
	self := now.Sub(now)
	if self.Skipped != 0 || self.Evaluated != 0 || self.EarlyExits != 0 {
		t.Errorf("self-Sub counters = %+v, want zeros", self)
	}
	if self.ArenaBytes != now.ArenaBytes {
		t.Errorf("self-Sub ArenaBytes = %d, want %d", self.ArenaBytes, now.ArenaBytes)
	}
}

func TestExperiments(t *testing.T) {
	s := EvalStats{Skipped: 7, Evaluated: 11, EarlyExits: 3}
	if got := s.Experiments(); got != 18 {
		t.Errorf("Experiments() = %d, want 18 (EarlyExits must not double-count)", got)
	}
}

// TestHistogramBuckets pins the power-of-two bucketing: an observation
// of n nanoseconds lands in the bucket indexed by n's bit length.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Microsecond, 10}, // 1000 ns
		{time.Millisecond, 20}, // 1e6 ns
		{time.Second, 30},      // 1e9 ns
		{-time.Second, 0},      // clamped to 0
		{10 * time.Minute, 39}, // past the last bound: overflow bucket
		{1<<62 - 1, HistogramBuckets - 1},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		s := h.Snapshot()
		for i, n := range s.Buckets {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.d, i, n, want)
			}
		}
		if s.Count != 1 {
			t.Errorf("Observe(%v): Count = %d, want 1", tc.d, s.Count)
		}
		wantSum := tc.d
		if wantSum < 0 {
			wantSum = 0
		}
		if s.Sum != wantSum {
			t.Errorf("Observe(%v): Sum = %v, want %v", tc.d, s.Sum, wantSum)
		}
	}
}

// TestHistogramBucketBound checks the bound invariant the Prometheus
// exporter relies on: every observation in buckets 0..i is ≤ bound(i).
func TestHistogramBucketBound(t *testing.T) {
	if got := HistogramBucketBound(0); got != 0 {
		t.Errorf("bound(0) = %v, want 0", got)
	}
	for i := 1; i < HistogramBuckets; i++ {
		want := time.Duration(uint64(1)<<uint(i) - 1)
		if got := HistogramBucketBound(i); got != want {
			t.Errorf("bound(%d) = %d, want %d", i, got, want)
		}
		// The smallest duration of bucket i must exceed bound(i-1).
		lo := time.Duration(uint64(1) << uint(i-1))
		if lo <= HistogramBucketBound(i-1) {
			t.Errorf("bucket %d low edge %d not above bound(%d) = %d",
				i, lo, i-1, HistogramBucketBound(i-1))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*perW + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Errorf("Count = %d, want %d", s.Count, workers*perW)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket sum = %d, want Count = %d", total, s.Count)
	}
}

// TestObserveAllocs pins the hot-path contract: Observe never
// allocates.
func TestObserveAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); n != 0 {
		t.Errorf("Observe allocates %.1f times per call, want 0", n)
	}
}
