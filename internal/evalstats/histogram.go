package evalstats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the fixed bucket count of Histogram. Bucket i
// holds observations whose nanosecond count has bit length i — i.e.
// durations in [2^(i-1), 2^i) ns, with bucket 0 holding exactly 0 ns —
// so 40 buckets span 1 ns to ~9 minutes before the final bucket
// overflows, comfortably covering both the ~100 ns oracle verdict and
// multi-second inference experiments.
const HistogramBuckets = 40

// Histogram is a fixed-size power-of-two latency histogram safe for
// concurrent use. Observe is allocation-free and lock-free (three
// atomic adds), cheap enough for the per-experiment hot path; it is the
// backing store for the experiment-latency metric exported by
// internal/telemetry. The zero value is ready to use.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations (clock steps) are
// clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a Histogram's state.
// Taken while observations are in flight it is approximate (each field
// is read atomically but not the set as a whole); after the observing
// goroutines are joined it is exact.
type HistogramSnapshot struct {
	// Buckets[i] counts observations with bit length i; see
	// HistogramBucketBound for the bucket's inclusive upper bound.
	Buckets [HistogramBuckets]int64
	// Count is the total number of observations and Sum their summed
	// duration.
	Count int64
	Sum   time.Duration
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistogramBucketBound returns bucket i's inclusive upper bound: every
// observation counted in buckets 0..i took at most this long. The final
// bucket also absorbs overflow, so its bound is a floor, not a bound —
// exporters should publish it as +Inf.
func HistogramBucketBound(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(uint64(1)<<uint(i) - 1)
}

// LatencySampler is an optional evaluator extension, the second half of
// the Reporter seam: evaluators that can time individual experiments
// accept a shared histogram here. Install the histogram before the
// campaign starts — evaluators read the pointer without synchronization
// on the hot path, and worker clones inherit whatever the root held at
// clone time. A nil histogram (the default) disables timing entirely;
// evaluators must not touch the clock in that case so the disabled path
// stays free of overhead.
type LatencySampler interface {
	SetLatencyHistogram(h *Histogram)
}
