// Package train is a minimal backpropagation training substrate for
// sequential CNNs built from the nn layers (convolution, frozen-affine
// batch normalization, ReLU/ReLU6, max pooling, global average pooling,
// flatten, linear). It exists so that the inference-based validation
// campaigns run on genuinely *trained* weights — the paper's setting —
// rather than on synthetic initializations.
//
// Scope notes: only strictly sequential graphs are supported (SmallCNN
// is sequential; ResNet-20 and MobileNetV2 use the distribution-
// calibrated synthetic weights as documented in DESIGN.md), and batch
// normalization is trained in "frozen statistics" mode: the running
// mean/variance stay fixed while γ and β learn, which is exact for the
// affine transform actually executed at inference time.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

// Trainer runs SGD-with-momentum on a sequential network.
type Trainer struct {
	// Net is the network being trained (mutated in place).
	Net *nn.Network
	// LR is the learning rate.
	LR float64
	// Momentum is the SGD momentum coefficient.
	Momentum float64
	// WeightDecay is the L2 penalty coefficient applied to conv/linear
	// weights.
	WeightDecay float64
	// LRDecay multiplies LR after every epoch (1 = constant; 0 is
	// treated as 1). Step decay stabilizes the tail of training on the
	// synthetic task.
	LRDecay float64

	velocity map[string][]float32 // per-parameter-buffer momentum state
}

// New validates that the network is a supported sequential graph and
// returns a trainer.
func New(net *nn.Network, lr, momentum float64) (*Trainer, error) {
	for i, node := range net.Nodes {
		if len(node.Inputs) != 1 {
			return nil, fmt.Errorf("train: node %d (%s) has %d inputs; only sequential graphs are supported",
				i, node.Layer.Name(), len(node.Inputs))
		}
		want := i - 1
		if node.Inputs[0] != want {
			return nil, fmt.Errorf("train: node %d (%s) does not feed from node %d", i, node.Layer.Name(), want)
		}
		switch node.Layer.(type) {
		case *nn.Conv2D, *nn.Linear, *nn.BatchNorm2D, *nn.ReLU, *nn.ReLU6,
			*nn.MaxPool2D, *nn.GlobalAvgPool, *nn.Flatten:
		default:
			return nil, fmt.Errorf("train: unsupported layer type %T (%s)", node.Layer, node.Layer.Name())
		}
	}
	return &Trainer{Net: net, LR: lr, Momentum: momentum, velocity: make(map[string][]float32)}, nil
}

// TrainSample performs one forward/backward/update step on a single
// labeled image and returns the cross-entropy loss before the update.
func (t *Trainer) TrainSample(img *tensor.Tensor, label int) float64 {
	acts := t.Net.Exec(img)
	out := acts[len(acts)-1]

	// Softmax cross-entropy gradient: dL/dscore = softmax − onehot.
	probs := nn.Softmax(out)
	loss := -math.Log(math.Max(float64(probs.Data[label]), 1e-12))
	grad := tensor.New(out.Shape...)
	for i := range grad.Data {
		grad.Data[i] = probs.Data[i]
	}
	grad.Data[label] -= 1

	// Backward pass through the sequence.
	for i := len(t.Net.Nodes) - 1; i >= 0; i-- {
		var in *tensor.Tensor
		if i == 0 {
			in = img
		} else {
			in = acts[i-1]
		}
		grad = t.backward(i, t.Net.Nodes[i].Layer, in, acts[i], grad)
	}
	return loss
}

// Epoch trains one pass over the dataset in a shuffled order
// (deterministic in shuffleSeed) and returns the mean loss.
func (t *Trainer) Epoch(ds *dataset.Dataset, shuffleSeed int64) float64 {
	order := rand.New(rand.NewSource(shuffleSeed)).Perm(ds.Len())
	var total float64
	for _, i := range order {
		s := ds.Samples[i]
		total += t.TrainSample(s.Image, s.Label)
	}
	return total / float64(ds.Len())
}

// Fit trains for the given number of epochs, applying LRDecay between
// epochs, and returns the per-epoch mean losses.
func (t *Trainer) Fit(ds *dataset.Dataset, epochs int) []float64 {
	losses := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		losses[e] = t.Epoch(ds, int64(e))
		if t.LRDecay > 0 && t.LRDecay != 1 {
			t.LR *= t.LRDecay
		}
	}
	return losses
}

// Accuracy returns the top-1 accuracy of the network on the dataset.
func Accuracy(net *nn.Network, ds *dataset.Dataset) float64 {
	correct := 0
	for _, s := range ds.Samples {
		if net.Predict(s.Image) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// backward dispatches the layer-specific gradient computation, applies
// the parameter update, and returns the gradient w.r.t. the layer input.
func (t *Trainer) backward(node int, layer nn.Layer, in, out, dout *tensor.Tensor) *tensor.Tensor {
	switch l := layer.(type) {
	case *nn.ReLU:
		din := tensor.New(in.Shape...)
		for i := range din.Data {
			if in.Data[i] > 0 {
				din.Data[i] = dout.Data[i]
			}
		}
		return din

	case *nn.ReLU6:
		din := tensor.New(in.Shape...)
		for i := range din.Data {
			if in.Data[i] > 0 && in.Data[i] < 6 {
				din.Data[i] = dout.Data[i]
			}
		}
		return din

	case *nn.Flatten:
		return dout.Reshape(in.Shape...)

	case *nn.GlobalAvgPool:
		c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
		din := tensor.New(in.Shape...)
		inv := 1 / float32(h*w)
		for ci := 0; ci < c; ci++ {
			g := dout.Data[ci] * inv
			plane := din.Data[ci*h*w : (ci+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
		return din

	case *nn.MaxPool2D:
		return maxPoolBackward(l, in, dout)

	case *nn.BatchNorm2D:
		return t.bnBackward(node, l, in, dout)

	case *nn.Linear:
		return t.linearBackward(node, l, in, dout)

	case *nn.Conv2D:
		return t.convBackward(node, l, in, dout)

	default:
		panic(fmt.Sprintf("train: no backward for %T", layer))
	}
}

func maxPoolBackward(l *nn.MaxPool2D, in, dout *tensor.Tensor) *tensor.Tensor {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := (h-l.Kernel)/l.Stride + 1
	ow := (w-l.Kernel)/l.Stride + 1
	din := tensor.New(in.Shape...)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestY, bestX := oy*l.Stride, ox*l.Stride
				best := in.At3(ci, bestY, bestX)
				for ky := 0; ky < l.Kernel; ky++ {
					for kx := 0; kx < l.Kernel; kx++ {
						iy, ix := oy*l.Stride+ky, ox*l.Stride+kx
						if v := in.At3(ci, iy, ix); v > best {
							best, bestY, bestX = v, iy, ix
						}
					}
				}
				din.Set3(ci, bestY, bestX, din.At3(ci, bestY, bestX)+dout.At3(ci, oy, ox))
			}
		}
	}
	return din
}

func (t *Trainer) bnBackward(node int, l *nn.BatchNorm2D, in, dout *tensor.Tensor) *tensor.Tensor {
	c := in.Shape[0]
	plane := in.Len() / c
	din := tensor.New(in.Shape...)
	dgamma := make([]float32, c)
	dbeta := make([]float32, c)
	for ci := 0; ci < c; ci++ {
		inv := 1 / float32(math.Sqrt(float64(l.Var[ci]+l.Eps)))
		scale := l.Gamma[ci] * inv
		for i := ci * plane; i < (ci+1)*plane; i++ {
			xhat := (in.Data[i] - l.Mean[ci]) * inv
			dgamma[ci] += dout.Data[i] * xhat
			dbeta[ci] += dout.Data[i]
			din.Data[i] = dout.Data[i] * scale
		}
	}
	t.update(fmt.Sprintf("n%d.gamma", node), l.Gamma, dgamma, 0)
	t.update(fmt.Sprintf("n%d.beta", node), l.Beta, dbeta, 0)
	l.Refold()
	return din
}

func (t *Trainer) linearBackward(node int, l *nn.Linear, in, dout *tensor.Tensor) *tensor.Tensor {
	din := tensor.New(in.Shape...)
	dw := make([]float32, len(l.W))
	for o := 0; o < l.Out; o++ {
		g := dout.Data[o]
		row := l.W[o*l.In : (o+1)*l.In]
		dwRow := dw[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			dwRow[i] += g * in.Data[i]
			din.Data[i] += g * row[i]
		}
	}
	t.update(fmt.Sprintf("n%d.w", node), l.W, dw, float32(t.WeightDecay))
	if l.Bias != nil {
		t.update(fmt.Sprintf("n%d.b", node), l.Bias, dout.Data, 0)
	}
	return din
}

func (t *Trainer) convBackward(node int, c *nn.Conv2D, in, dout *tensor.Tensor) *tensor.Tensor {
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := dout.Shape[1], dout.Shape[2]
	din := tensor.New(in.Shape...)
	dw := make([]float32, len(c.W))
	var dbias []float32
	if c.Bias != nil {
		dbias = make([]float32, len(c.Bias))
	}

	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	ksize := icg * c.KH * c.KW

	for oc := 0; oc < c.OutC; oc++ {
		g := oc / ocg
		wBase := oc * ksize
		doutPlane := dout.Data[oc*oh*ow : (oc+1)*oh*ow]
		if dbias != nil {
			var sum float32
			for _, v := range doutPlane {
				sum += v
			}
			dbias[oc] += sum
		}
		for icl := 0; icl < icg; icl++ {
			ic := g*icg + icl
			inPlane := in.Data[ic*h*w : (ic+1)*h*w]
			dinPlane := din.Data[ic*h*w : (ic+1)*h*w]
			wOff := wBase + icl*c.KH*c.KW
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					wv := c.W[wOff+ky*c.KW+kx]
					var dwAcc float32
					for oy := 0; oy < oh; oy++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						doutRow := doutPlane[oy*ow : oy*ow+ow]
						inRow := inPlane[iy*w : iy*w+w]
						dinRow := dinPlane[iy*w : iy*w+w]
						for ox := 0; ox < ow; ox++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							gv := doutRow[ox]
							dwAcc += gv * inRow[ix]
							dinRow[ix] += gv * wv
						}
					}
					dw[wOff+ky*c.KW+kx] += dwAcc
				}
			}
		}
	}
	t.update(fmt.Sprintf("n%d.w", node), c.W, dw, float32(t.WeightDecay))
	if dbias != nil {
		t.update(fmt.Sprintf("n%d.b", node), c.Bias, dbias, 0)
	}
	return din
}

// update applies one SGD-with-momentum step to a parameter buffer.
func (t *Trainer) update(key string, param, grad []float32, weightDecay float32) {
	vel := t.velocity[key]
	if vel == nil {
		vel = make([]float32, len(param))
		t.velocity[key] = vel
	}
	lr := float32(t.LR)
	mom := float32(t.Momentum)
	for i := range param {
		g := grad[i] + weightDecay*param[i]
		vel[i] = mom*vel[i] - lr*g
		param[i] += vel[i]
	}
}

// TrainableSmallCNN builds the SmallCNN topology with fresh He-
// initialized convolutions and identity batch normalization — a clean
// starting point for training (models.SmallCNN, in contrast, fabricates
// "already-trained-looking" statistics).
func TrainableSmallCNN(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("smallcnn-trainable")

	he := func(w []float32, fanIn int) {
		std := math.Sqrt(2 / float64(fanIn))
		for i := range w {
			w[i] = float32(rng.NormFloat64() * std)
		}
	}
	addConvBN := func(label string, inC, outC, from int) int {
		c := nn.NewConv2D(label, inC, outC, 3, 1, 1, 1)
		he(c.W, inC*9)
		id := n.Add(c, from)
		bn := nn.NewBatchNorm2D(label+"_bn", outC)
		bn.Refold()
		return n.Add(bn, id)
	}

	last := addConvBN("conv0", 3, 4, nn.InputID)
	last = n.Add(&nn.ReLU{Label: "relu0"}, last)
	last = n.Add(&nn.MaxPool2D{Label: "pool0", Kernel: 2, Stride: 2}, last)
	last = addConvBN("conv1", 4, 8, last)
	last = n.Add(&nn.ReLU{Label: "relu1"}, last)
	last = n.Add(&nn.MaxPool2D{Label: "pool1", Kernel: 2, Stride: 2}, last)
	last = addConvBN("conv2", 8, 16, last)
	last = n.Add(&nn.ReLU{Label: "relu2"}, last)
	last = n.Add(&nn.GlobalAvgPool{Label: "gap"}, last)
	fc := nn.NewLinear("fc", 16, 10)
	he(fc.W, 16)
	n.Add(fc, last)
	return n
}
