package train

import (
	"math"
	"testing"

	"cnnsfi/internal/dataset"
	"cnnsfi/internal/models"
	"cnnsfi/internal/nn"
	"cnnsfi/internal/tensor"
)

func TestNewRejectsNonSequential(t *testing.T) {
	if _, err := New(models.ResNet20(1), 0.01, 0.9); err == nil {
		t.Error("ResNet-20 (residual graph) should be rejected")
	}
	if _, err := New(TrainableSmallCNN(1), 0.01, 0.9); err != nil {
		t.Errorf("TrainableSmallCNN rejected: %v", err)
	}
}

// smoothNet builds a small kink-free network (conv → BN → conv → GAP →
// linear, no ReLU or pooling) on which central finite differences are
// exact, so the analytic backward pass can be verified tightly.
func smoothNet() *nn.Network {
	n := nn.NewNetwork("smooth")
	c0 := nn.NewConv2D("c0", 2, 3, 3, 1, 1, 1)
	for i := range c0.W {
		c0.W[i] = float32(i%7)*0.05 - 0.15
	}
	c0.Bias = make([]float32, 3)
	n.Add(c0)
	bn := nn.NewBatchNorm2D("bn", 3)
	bn.Gamma = []float32{1.1, 0.9, 1.05}
	bn.Beta = []float32{0.1, -0.1, 0}
	bn.Mean = []float32{0.05, -0.02, 0}
	bn.Var = []float32{0.9, 1.1, 1}
	bn.Refold()
	n.Add(bn)
	c1 := nn.NewConv2D("c1", 3, 2, 3, 1, 0, 1)
	for i := range c1.W {
		c1.W[i] = float32(i%5)*0.04 - 0.08
	}
	n.Add(c1)
	n.Add(&nn.GlobalAvgPool{Label: "gap"})
	fc := nn.NewLinear("fc", 2, 4)
	for i := range fc.W {
		fc.W[i] = float32(i)*0.1 - 0.35
	}
	fc.Bias = make([]float32, 4)
	n.Add(fc)
	return n
}

// TestGradientsMatchFiniteDifferences compares analytic weight gradients
// against central finite differences through the full network loss on a
// smooth network.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	net := smoothNet()
	img := tensor.New(2, 8, 8)
	for i := range img.Data {
		img.Data[i] = float32(i%9)*0.1 - 0.4
	}
	label := 2

	loss := func() float64 {
		out := net.Forward(img)
		probs := nn.Softmax(out)
		return -math.Log(math.Max(float64(probs.Data[label]), 1e-12))
	}

	// Analytic gradient via a zero-momentum, tiny-LR trainer trick:
	// record the parameter delta after one step; delta = -lr * grad.
	const lr = 1e-3
	tr, err := New(net, lr, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot, probe a few weights in each weight layer.
	layers := net.WeightLayers()
	type probe struct{ layer, idx int }
	probes := []probe{{0, 0}, {0, 31}, {1, 10}, {1, 40}, {2, 3}, {2, 7}}

	before := make([][]float32, len(layers))
	for i, l := range layers {
		before[i] = append([]float32(nil), l.WeightData()...)
	}
	tr.TrainSample(img, label)
	analytic := make(map[probe]float64)
	for _, p := range probes {
		delta := layers[p.layer].WeightData()[p.idx] - before[p.layer][p.idx]
		analytic[p] = -float64(delta) / lr
	}
	// Restore the original weights.
	for i, l := range layers {
		copy(l.WeightData(), before[i])
	}

	const h = 1e-2
	for _, p := range probes {
		w := layers[p.layer].WeightData()
		orig := w[p.idx]
		w[p.idx] = orig + h
		up := loss()
		w[p.idx] = orig - h
		down := loss()
		w[p.idx] = orig
		numeric := (up - down) / (2 * h)

		diff := math.Abs(analytic[p] - numeric)
		scale := math.Max(math.Abs(numeric), math.Abs(analytic[p]))
		if scale > 1e-4 && diff/scale > 0.05 {
			t.Errorf("layer %d idx %d: analytic %v vs numeric %v", p.layer, p.idx, analytic[p], numeric)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	net := TrainableSmallCNN(1)
	ds := dataset.Synthetic(dataset.Config{N: 60, Seed: 5, Size: 16, Noise: 0.1})
	tr, err := New(net, 0.002, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	losses := tr.Fit(ds, 4)
	if losses[len(losses)-1] >= losses[0]*0.9 {
		t.Errorf("loss did not drop: %v", losses)
	}
}

func TestTrainingReachesHighAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	net := TrainableSmallCNN(1)
	data := dataset.Synthetic(dataset.Config{N: 260, Seed: 5, Size: 16, Noise: 0.1})
	trainSet, testSet := data.Split(200)
	tr, err := New(net, 0.002, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr.Fit(trainSet, 10)
	acc := Accuracy(net, testSet)
	if acc < 0.8 {
		t.Errorf("test accuracy = %v, want ≥ 0.8 on the synthetic task", acc)
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	l := &nn.MaxPool2D{Label: "p", Kernel: 2, Stride: 2}
	in := tensor.FromSlice([]float32{
		1, 9, 2, 3,
		4, 5, 8, 6,
		0, 1, 2, 3,
		7, 1, 4, 5,
	}, 1, 4, 4)
	dout := tensor.FromSlice([]float32{10, 20, 30, 40}, 1, 2, 2)
	din := maxPoolBackward(l, in, dout)
	// Argmaxes: 9 (0,1), 8 (1,2), 7 (3,0), 5 (3,3).
	if din.At3(0, 0, 1) != 10 || din.At3(0, 1, 2) != 20 || din.At3(0, 3, 0) != 30 || din.At3(0, 3, 3) != 40 {
		t.Errorf("pool backward = %v", din.Data)
	}
	var sum float32
	for _, v := range din.Data {
		sum += v
	}
	if sum != 100 {
		t.Errorf("gradient mass = %v, want 100", sum)
	}
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	ds := dataset.Synthetic(dataset.Config{N: 40, Seed: 6, Size: 16, Noise: 0.1})

	run := func(momentum float64) float64 {
		net := TrainableSmallCNN(2)
		tr, _ := New(net, 0.02, momentum)
		losses := tr.Fit(ds, 3)
		return losses[len(losses)-1]
	}
	if run(0.9) >= run(0)*1.5 {
		t.Error("momentum run catastrophically worse than plain SGD")
	}
}

func TestWeightDecayShrinksNorm(t *testing.T) {
	ds := dataset.Synthetic(dataset.Config{N: 20, Seed: 7, Size: 16})
	norm := func(decay float64) float64 {
		net := TrainableSmallCNN(3)
		tr, _ := New(net, 0.02, 0.9)
		tr.WeightDecay = decay
		tr.Fit(ds, 3)
		var s float64
		for _, w := range net.AllWeights() {
			s += float64(w) * float64(w)
		}
		return s
	}
	if norm(0.01) >= norm(0) {
		t.Error("weight decay did not shrink the weight norm")
	}
}

func TestEpochDeterministic(t *testing.T) {
	ds := dataset.Synthetic(dataset.Config{N: 30, Seed: 8, Size: 16})
	a := TrainableSmallCNN(4)
	b := TrainableSmallCNN(4)
	ta, _ := New(a, 0.03, 0.9)
	tb, _ := New(b, 0.03, 0.9)
	la := ta.Epoch(ds, 1)
	lb := tb.Epoch(ds, 1)
	if la != lb {
		t.Errorf("identical setups gave losses %v vs %v", la, lb)
	}
	wa, wb := a.AllWeights(), b.AllWeights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("identical training diverged")
		}
	}
}

func TestLRDecayApplied(t *testing.T) {
	net := TrainableSmallCNN(5)
	ds := dataset.Synthetic(dataset.Config{N: 10, Seed: 9, Size: 16})
	tr, _ := New(net, 0.01, 0.9)
	tr.LRDecay = 0.5
	tr.Fit(ds, 3)
	if math.Abs(tr.LR-0.00125) > 1e-12 {
		t.Errorf("LR after 3 decayed epochs = %v, want 0.00125", tr.LR)
	}
	// Zero decay means constant LR.
	tr2, _ := New(TrainableSmallCNN(5), 0.01, 0.9)
	tr2.Fit(ds, 2)
	if tr2.LR != 0.01 {
		t.Errorf("constant LR changed to %v", tr2.LR)
	}
}
