package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cnnsfi/internal/evalstats"
)

func TestRegistryPrometheusText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("sfi_masked_skips_total", "Masked-fault short circuits.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("sfi_injections_per_second", "Campaign throughput.")
	g.Set(1234.5)
	reg.GaugeFunc("sfi_arena_bytes", "Retained arena storage.", func() float64 { return 96 })
	reg.CounterFunc("sfi_injections_total", "Experiments run.", func() int64 { return 7 })

	var h evalstats.Histogram
	h.Observe(100 * time.Nanosecond) // bucket 7 (64..127 ns)
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond) // bucket 20
	reg.Histogram("sfi_experiment_duration_seconds", "Experiment latency.", &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE sfi_masked_skips_total counter",
		"sfi_masked_skips_total 42",
		"# TYPE sfi_injections_per_second gauge",
		"sfi_injections_per_second 1234.5",
		"sfi_arena_bytes 96",
		"sfi_injections_total 7",
		"# TYPE sfi_experiment_duration_seconds histogram",
		`sfi_experiment_duration_seconds_bucket{le="+Inf"} 3`,
		"sfi_experiment_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and non-decreasing, ending
	// at the total count.
	var prev int64 = -1
	var buckets int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sfi_experiment_duration_seconds_bucket") {
			continue
		}
		buckets++
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not monotone at %q (prev %d)", line, prev)
		}
		prev = n
	}
	if prev != 3 {
		t.Errorf("final cumulative bucket = %d, want 3", prev)
	}
	if buckets < 2 {
		t.Errorf("only %d bucket lines exported", buckets)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ok_name", "")
	for name, f := range map[string]func(){
		"duplicate":    func() { reg.Counter("ok_name", "") },
		"invalid name": func() { reg.Gauge("bad name!", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sfi_test_total", "A counter.").Add(5)
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "sfi_test_total 5") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}
