package telemetry

import (
	"strings"
	"testing"
)

func TestLabeledSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.LabeledCounter("sfid_campaign_retries_total", "Retries per campaign.", Label{Name: "campaign", Value: "j000001"})
	a.Add(3)
	b := reg.LabeledCounter("sfid_campaign_retries_total", "Retries per campaign.", Label{Name: "campaign", Value: "j000002"})
	b.Inc()
	reg.LabeledGaugeFunc("sfid_campaign_rate", "Critical rate.", func() float64 { return 0.25 },
		Label{Name: "campaign", Value: "j000001"})
	reg.LabeledGauge("sfid_jobs", "Jobs per state.",
		Label{Name: "state", Value: "running"}, Label{Name: "model", Value: "smallcnn"}).Set(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sfid_campaign_retries_total{campaign="j000001"} 3`,
		`sfid_campaign_retries_total{campaign="j000002"} 1`,
		`sfid_campaign_rate{campaign="j000001"} 0.25`,
		`sfid_jobs{state="running",model="smallcnn"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per metric name, not per series.
	if got := strings.Count(out, "# TYPE sfid_campaign_retries_total counter"); got != 1 {
		t.Errorf("TYPE line appears %d times, want 1:\n%s", got, out)
	}
	if got := strings.Count(out, "# HELP sfid_campaign_retries_total"); got != 1 {
		t.Errorf("HELP line appears %d times, want 1:\n%s", got, out)
	}
	// Series of one name must be adjacent in the output (Prometheus
	// requires grouped families).
	first := strings.Index(out, "sfid_campaign_retries_total{")
	last := strings.LastIndex(out, "sfid_campaign_retries_total{")
	between := out[first:last]
	if strings.Contains(between, "\n# ") {
		t.Errorf("series of the same family are not contiguous:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledGauge("sfid_test", "Escaping.", Label{Name: "name", Value: "a\"b\\c\nd"}).Set(1)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `sfid_test{name="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("output missing %q:\n%s", want, sb.String())
	}
}

func TestLabeledRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	reg.LabeledCounter("dup", "x.", Label{Name: "a", Value: "1"})
	mustPanic("duplicate series", func() {
		reg.LabeledCounter("dup", "x.", Label{Name: "a", Value: "1"})
	})
	mustPanic("type conflict across series of one name", func() {
		reg.LabeledGauge("dup", "x.", Label{Name: "a", Value: "2"})
	})
	mustPanic("invalid label name", func() {
		reg.LabeledGauge("ok", "x.", Label{Name: "0bad", Value: "v"})
	})
	// Same name with a new label set is fine.
	reg.LabeledCounter("dup", "x.", Label{Name: "a", Value: "2"})
}
