package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"cnnsfi/internal/core"
)

// Tracer records campaign events as JSONL through a buffered async
// writer: sinks obtained from Sink and Progress enqueue onto a channel
// and return immediately, and a single writer goroutine encodes to the
// underlying io.Writer — so the engine's dispatcher goroutine never
// blocks on disk, however slow the destination.
//
// Drop policy: when the buffer is full, interior events are dropped and
// counted (Dropped); terminal events — campaign_end and final progress —
// instead block until buffer space frees, which the draining writer
// bounds, so the records summaries depend on are never lost. If
// anything was dropped, Close appends a final "drops" event carrying
// the count, making loss visible in the trace itself.
//
// One Tracer may record several sequential campaigns (each Sink /
// Progress call labels its events with a campaign name); its methods
// are safe for concurrent use.
type Tracer struct {
	mu     sync.RWMutex // guards closed vs. in-flight emits
	closed bool

	ch      chan Event
	done    chan struct{}
	bw      *bufio.Writer
	enc     *json.Encoder
	werr    error // writer-goroutine errors; read after done closes
	dropped atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// NewTracer starts a tracer writing JSONL to w with an event buffer of
// buf (values < 1 are treated as 1; a few hundred is plenty — events
// are emitted at shard boundaries, not per experiment). The caller owns
// w and closes it after Close returns.
func NewTracer(w io.Writer, buf int) *Tracer {
	if buf < 1 {
		buf = 1
	}
	bw := bufio.NewWriter(w)
	t := &Tracer{
		ch:   make(chan Event, buf),
		done: make(chan struct{}),
		bw:   bw,
		enc:  json.NewEncoder(bw),
	}
	go func() {
		defer close(t.done)
		for ev := range t.ch {
			if t.werr == nil {
				t.werr = t.enc.Encode(ev)
			}
		}
	}()
	return t
}

// Sink returns a core.TraceSink recording engine trace events under the
// campaign label.
func (t *Tracer) Sink(campaign string) core.TraceSink {
	return func(ev core.TraceEvent) { t.emit(FromTrace(campaign, ev)) }
}

// Progress returns a core.ProgressSink recording progress events under
// the campaign label. Compose it with other sinks as needed — it only
// enqueues, so no AsyncSink wrapper is necessary.
func (t *Tracer) Progress(campaign string) core.ProgressSink {
	return func(p core.Progress) { t.emit(FromProgress(campaign, p)) }
}

// terminal reports whether ev must never be dropped.
func terminal(ev Event) bool {
	return ev.Kind == core.TraceCampaignEnd.String() || (ev.Kind == KindProgress && ev.Final)
}

// emit enqueues one event according to the drop policy. Events emitted
// after Close are counted as dropped.
func (t *Tracer) emit(ev Event) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		t.dropped.Add(1)
		return
	}
	if terminal(ev) {
		t.ch <- ev
		return
	}
	select {
	case t.ch <- ev:
	default:
		t.dropped.Add(1)
	}
}

// Emit enqueues one pre-built event — e.g. a PartMeta correlation
// prologue — under the same drop policy as the engine-fed sinks.
func (t *Tracer) Emit(ev Event) { t.emit(ev) }

// Dropped returns how many events have been dropped so far.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Close stops accepting events, drains the buffer, appends a "drops"
// event if any were lost, flushes, and returns the first write error
// encountered (nil on a clean trace). Idempotent. Close does not close
// the underlying writer.
func (t *Tracer) Close() error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.ch)
	}
	t.mu.Unlock()
	<-t.done
	t.closeOnce.Do(func() {
		if d := t.dropped.Load(); d > 0 && t.werr == nil {
			ev := newEvent(KindDrops)
			ev.Dropped = d
			t.werr = t.enc.Encode(ev)
		}
		t.closeErr = t.werr
		if err := t.bw.Flush(); t.closeErr == nil {
			t.closeErr = err
		}
	})
	return t.closeErr
}
