// Package telemetry is the campaign observability layer: a structured
// JSONL trace recorder (Tracer) fed by the engine's TraceSink and
// ProgressSink seams, a Prometheus-text metrics registry with an
// optional HTTP listener that also mounts net/http/pprof, and a trace
// summarizer that replays a recorded campaign into a human-readable
// report (cmd/sfitrace).
//
// The package sits strictly above the engine in the import graph:
// internal/core knows only the TraceSink/ProgressSink function types,
// never this package, so campaigns without telemetry pay nothing. All
// recording is asynchronous and drop-counting — a stalled disk or
// consumer can lose interior events (the drop tally says how many) but
// never blocks the dispatcher and never loses terminal events.
package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"cnnsfi/internal/core"
	"cnnsfi/internal/evalstats"
)

// Event is one line of a JSONL campaign trace: the on-disk form of the
// engine's TraceEvent and Progress streams plus the tracer's own
// bookkeeping records. It is a flat union discriminated by Kind —
// unrelated fields are omitted from the encoding, except the five index
// fields (stratum, layer, bit, shard, worker) which are always present
// with -1 meaning "not applicable" so index 0 stays unambiguous.
//
// Kinds and their populated field groups:
//
//	campaign_start  campaign, seed, fingerprint, workers, planned, restored, strata
//	stratum_start   campaign, stratum, layer, bit, stratum_planned, done (restored prefix)
//	shard_done      campaign, stratum, shard, worker, injections, dur_ns
//	experiment_retry        campaign, stratum, draw, fault, attempts, error
//	experiment_quarantined  campaign, stratum, draw, fault, attempts, error
//	stratum_end     campaign, stratum, layer, bit, stratum_planned, done, critical,
//	                dur_ns, eval_*
//	early_stop      campaign, stratum, done, critical, margin
//	checkpoint      campaign, path, done, critical
//	campaign_end    campaign, done, critical, planned, rate, partial, early_stopped,
//	                retries, quarantined, eval_*
//	progress        campaign, done, planned, critical, stratum, stratum_done,
//	                stratum_planned, rate, final, retries, quarantined, eval_*
//	part_meta       campaign, federated_job, part, member, ranges (a federated
//	                part's correlation prologue; see the federation fields)
//	drops           dropped (appended by Tracer.Close when events were lost)
//
// Every kind also carries time_unix_nano and (except drops) elapsed_ns.
type Event struct {
	Kind     string `json:"kind"`
	Campaign string `json:"campaign,omitempty"`
	// TimeUnixNano is the wall-clock emission instant; ElapsedNS the
	// time since the campaign's Execute started.
	TimeUnixNano int64 `json:"time_unix_nano,omitempty"`
	ElapsedNS    int64 `json:"elapsed_ns,omitempty"`

	// Campaign identity (campaign_start): the sampling seed and the
	// plan fingerprint, as zero-padded hex — JSON numbers cannot carry
	// a uint64 faithfully past 2^53.
	Seed        int64  `json:"seed,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	Planned     int64  `json:"planned,omitempty"`
	Restored    int64  `json:"restored,omitempty"`
	Strata      int    `json:"strata,omitempty"`

	// Index fields: always encoded, -1 = not applicable.
	Stratum int `json:"stratum"`
	Layer   int `json:"layer"`
	Bit     int `json:"bit"`
	Shard   int `json:"shard"`
	Worker  int `json:"worker"`

	StratumPlanned int64 `json:"stratum_planned,omitempty"`
	StratumDone    int64 `json:"stratum_done,omitempty"`

	// Done/Critical are tallied injections and criticals — stratum-local
	// for stratum events, campaign-wide otherwise. Injections is a
	// shard's draw count; DurNS a shard or stratum wall time.
	Done       int64 `json:"done,omitempty"`
	Critical   int64 `json:"critical,omitempty"`
	Injections int64 `json:"injections,omitempty"`
	DurNS      int64 `json:"dur_ns,omitempty"`

	// Supervision fields (experiment_retry / experiment_quarantined,
	// plus the campaign-wide retries/quarantined tallies on campaign_end
	// and progress). All omitted when zero so healthy-campaign traces
	// are byte-identical with and without supervision enabled.
	Draw        int64  `json:"draw,omitempty"`
	Fault       string `json:"fault,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Error       string `json:"error,omitempty"`
	Retries     int64  `json:"retries,omitempty"`
	Quarantined int64  `json:"quarantined,omitempty"`

	Margin float64 `json:"margin,omitempty"`
	Rate   float64 `json:"rate,omitempty"`

	Partial      bool   `json:"partial,omitempty"`
	Final        bool   `json:"final,omitempty"`
	EarlyStopped int    `json:"early_stopped,omitempty"`
	Path         string `json:"path,omitempty"`

	// Flattened evalstats.EvalStats snapshot (see Progress.Eval for the
	// delta-vs-level semantics: arena bytes is a level).
	EvalSkipped    int64 `json:"eval_skipped,omitempty"`
	EvalEvaluated  int64 `json:"eval_evaluated,omitempty"`
	EvalEarlyExits int64 `json:"eval_early_exits,omitempty"`
	EvalArenaBytes int64 `json:"eval_arena_bytes,omitempty"`

	// Dropped is the tracer's lost-event count (kind "drops").
	Dropped int64 `json:"dropped,omitempty"`

	// Federation correlation. A member daemon running one part of a
	// federated campaign opens its trace with a part_meta event carrying
	// all four; a coordinator's merged trace keeps those prologues and
	// stamps Part/Member onto every spliced member event so each line of
	// the global trace names the daemon that produced it. All omitted
	// outside federated traces, so single-node traces are byte-stable.
	// Part is a pointer so part 0 survives the omitempty encoding.
	FederatedJob string           `json:"federated_job,omitempty"`
	Part         *int             `json:"part,omitempty"`
	Member       string           `json:"member,omitempty"`
	Ranges       []core.DrawRange `json:"ranges,omitempty"`
}

// Extra event kinds the tracer emits beyond the engine's TraceKind
// vocabulary.
const (
	// KindProgress records one engine Progress event.
	KindProgress = "progress"
	// KindDrops is appended by Tracer.Close when events were dropped.
	KindDrops = "drops"
	// KindPartMeta is a federated part's correlation prologue: the
	// first event of a member's part trace, naming the coordinator job,
	// part index, member, and draw windows the part covers.
	KindPartMeta = "part_meta"
)

// knownKinds is the complete vocabulary ParseEvent accepts.
var knownKinds = func() map[string]bool {
	m := map[string]bool{KindProgress: true, KindDrops: true, KindPartMeta: true}
	for k := core.TraceCampaignStart; k <= core.TraceCampaignEnd; k++ {
		m[k.String()] = true
	}
	return m
}()

// newEvent returns an Event of the given kind with the index fields at
// their "not applicable" value.
func newEvent(kind string) Event {
	return Event{Kind: kind, Stratum: -1, Layer: -1, Bit: -1, Shard: -1, Worker: -1}
}

// NewEvent is the constructor for synthesized events — e.g. a
// coordinator splicing a merged federated trace — returning an Event of
// the given kind with the index fields at their "not applicable" value,
// exactly as the tracer's own conversions produce them.
func NewEvent(kind string) Event { return newEvent(kind) }

// PartMeta builds the correlation prologue of one federated part: the
// first event of a member's part trace (and, relabelled, of the
// coordinator's merged trace), naming the coordinator job, part index,
// member, and the draw windows the part covers.
func PartMeta(campaign, federatedJob string, part int, member string, ranges []core.DrawRange) Event {
	e := newEvent(KindPartMeta)
	e.Campaign = campaign
	e.TimeUnixNano = time.Now().UnixNano()
	e.FederatedJob = federatedJob
	e.Part = &part
	e.Member = member
	e.Ranges = ranges
	return e
}

// FromTrace converts one engine trace event to its JSONL form, labelled
// with the campaign name (one trace file may interleave several named
// campaigns).
func FromTrace(campaign string, ev core.TraceEvent) Event {
	e := newEvent(ev.Kind.String())
	e.Campaign = campaign
	e.TimeUnixNano = ev.Time.UnixNano()
	e.ElapsedNS = int64(ev.Elapsed)
	e.Seed = ev.Seed
	if ev.Kind == core.TraceCampaignStart {
		e.Fingerprint = fmt.Sprintf("%016x", ev.Fingerprint)
	}
	e.Workers = ev.Workers
	e.Planned = ev.Planned
	e.Restored = ev.Restored
	e.Strata = ev.Strata
	e.Stratum = ev.Stratum
	e.Layer = ev.Layer
	e.Bit = ev.Bit
	e.Shard = ev.Shard
	e.Worker = ev.Worker
	e.StratumPlanned = ev.StratumPlanned
	e.Done = ev.Done
	e.Critical = ev.Critical
	e.Injections = ev.Injections
	e.DurNS = int64(ev.Dur)
	e.Draw = ev.Draw
	e.Fault = ev.Fault
	e.Attempts = ev.Attempts
	e.Error = ev.Err
	e.Retries = ev.Retries
	e.Quarantined = ev.Quarantined
	e.Margin = ev.Margin
	e.Rate = ev.Rate
	e.Partial = ev.Partial
	e.EarlyStopped = ev.EarlyStopped
	e.Path = ev.Path
	e.setEval(ev.Eval)
	return e
}

// FromProgress converts one engine progress event to its JSONL form.
func FromProgress(campaign string, p core.Progress) Event {
	e := newEvent(KindProgress)
	e.Campaign = campaign
	e.TimeUnixNano = time.Now().UnixNano()
	e.ElapsedNS = int64(p.Elapsed)
	e.Done = p.Done
	e.Planned = p.Planned
	e.Critical = p.Critical
	e.Stratum = p.Stratum
	e.StratumDone = p.StratumDone
	e.StratumPlanned = p.StratumPlanned
	e.Rate = p.Rate
	e.Final = p.Final
	e.Retries = p.Retries
	e.Quarantined = p.Quarantined
	e.setEval(p.Eval)
	return e
}

func (e *Event) setEval(s evalstats.EvalStats) {
	e.EvalSkipped = s.Skipped
	e.EvalEvaluated = s.Evaluated
	e.EvalEarlyExits = s.EarlyExits
	e.EvalArenaBytes = s.ArenaBytes
}

// Eval reassembles the flattened evalstats snapshot.
func (e Event) Eval() evalstats.EvalStats {
	return evalstats.EvalStats{
		Skipped:    e.EvalSkipped,
		Evaluated:  e.EvalEvaluated,
		EarlyExits: e.EvalEarlyExits,
		ArenaBytes: e.EvalArenaBytes,
	}
}

// ParseEvent decodes one JSONL trace line strictly: unknown fields and
// unknown kinds are errors, so schema drift surfaces as a parse failure
// rather than silently dropped data. A parsed event re-marshals to the
// exact bytes json.Marshal produced when writing it (the round-trip the
// trace tests pin).
func ParseEvent(line []byte) (Event, error) {
	var e Event
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return Event{}, fmt.Errorf("telemetry: bad trace line: %w", err)
	}
	if !knownKinds[e.Kind] {
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", e.Kind)
	}
	return e, nil
}
