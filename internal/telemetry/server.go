package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux returns an http.ServeMux serving the registry at /metrics and
// the standard profiling endpoints under /debug/pprof/ (mounted
// explicitly — the pprof package's side-effect registration only covers
// http.DefaultServeMux, which a diagnostics listener should not expose
// wholesale).
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics/profiling HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (e.g. "localhost:9090", or ":0" for an
// ephemeral port) and serves NewMux(reg) on it in a background
// goroutine. The returned server keeps running until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(reg)}}
	go func() {
		// Serve returns http.ErrServerClosed on Close; other errors mean
		// the listener died, which Close surfaces via the closed socket.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down immediately (in-flight scrapes are
// dropped; campaign telemetry is advisory, not transactional).
func (s *Server) Close() error { return s.srv.Close() }
